//! Reproducer persistence — shrunk failing mutants as JSON files.
//!
//! A campaign that finds an oracle violation shrinks the mutant and writes
//! it to `tests/corpus/`; the corpus replay test parses every file back
//! and asserts the oracle passes, so a fixed bug stays fixed. The format
//! is hand-rolled over [`crate::trace::json`] (the workspace vendors no
//! JSON serializer): amounts are decimal *strings* (u128 does not fit in
//! a JSON number), addresses are 0x-prefixed hex of their 20 bytes, and
//! everything else is the obvious scalar.

use std::fmt::Write as _;

use ethsim::{
    Address, CallFrame, CreationRecord, EventLog, LogValue, TokenId, Transfer, TxId, TxRecord,
    TxStatus, TxTrace,
};

use crate::labels::Labels;
use crate::patterns::PatternKind;
use crate::trace::json::{self, escape_into, Json, JsonError};

use super::{FuzzCase, Mutant, TxExpect};

/// Format version written into every file; bump on breaking changes.
const VERSION: u64 = 1;

/// A persisted failing (or regression-guarding) mutant: the mutated
/// history, its expectations, and enough metadata to explain the find.
#[derive(Clone, Debug)]
pub struct Reproducer {
    /// Name of the operator that produced the mutant (`"seed"` when the
    /// unmutated seed itself failed the oracle pre-pass).
    pub operator: String,
    /// Campaign seed the mutant was derived from.
    pub seed: u64,
    /// Human-readable violation description at find time (empty for
    /// corpus samples persisted from passing mutants).
    pub violation: String,
    /// The mutated history.
    pub case: FuzzCase,
    /// One expectation per transaction.
    pub expect: Vec<TxExpect>,
}

impl Reproducer {
    /// Wraps a mutant with campaign metadata.
    pub fn new(mutant: &Mutant, seed: u64, violation: impl Into<String>) -> Self {
        Reproducer {
            operator: mutant.operator.name().to_string(),
            seed,
            violation: violation.into(),
            case: mutant.case.clone(),
            expect: mutant.expect.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn push_addr(out: &mut String, a: Address) {
    out.push_str("\"0x");
    for b in a.as_bytes() {
        let _ = write!(out, "{b:02x}");
    }
    out.push('"');
}

fn push_string(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

fn push_log_value(out: &mut String, v: &LogValue) {
    match v {
        LogValue::Addr(a) => {
            out.push_str("{\"t\":\"addr\",\"v\":");
            push_addr(out, *a);
            out.push('}');
        }
        LogValue::Amount(n) => {
            let _ = write!(out, "{{\"t\":\"amount\",\"v\":\"{n}\"}}");
        }
        LogValue::Token(t) => {
            let _ = write!(out, "{{\"t\":\"token\",\"v\":{}}}", t.index());
        }
        LogValue::Text(s) => {
            out.push_str("{\"t\":\"text\",\"v\":");
            push_string(out, s);
            out.push('}');
        }
    }
}

fn push_tx(out: &mut String, tx: &TxRecord) {
    let _ = write!(out, "{{\"id\":{},\"block\":{},\"timestamp\":{},", tx.id.0, tx.block, tx.timestamp);
    out.push_str("\"from\":");
    push_addr(out, tx.from);
    out.push_str(",\"to\":");
    push_addr(out, tx.to);
    out.push_str(",\"function\":");
    push_string(out, &tx.function);
    match &tx.status {
        TxStatus::Success => out.push_str(",\"status\":{\"ok\":true}"),
        TxStatus::Reverted(reason) => {
            out.push_str(",\"status\":{\"ok\":false,\"reason\":");
            push_string(out, reason);
            out.push('}');
        }
    }
    out.push_str(",\"transfers\":[");
    for (i, t) in tx.trace.transfers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"seq\":{},\"sender\":", t.seq);
        push_addr(out, t.sender);
        out.push_str(",\"receiver\":");
        push_addr(out, t.receiver);
        let _ = write!(out, ",\"amount\":\"{}\",\"token\":{}}}", t.amount, t.token.index());
    }
    out.push_str("],\"logs\":[");
    for (i, l) in tx.trace.logs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"seq\":{},\"emitter\":", l.seq);
        push_addr(out, l.emitter);
        out.push_str(",\"name\":");
        push_string(out, &l.name);
        out.push_str(",\"params\":[");
        for (j, (k, v)) in l.params.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('[');
            push_string(out, k);
            out.push(',');
            push_log_value(out, v);
            out.push(']');
        }
        out.push_str("]}");
    }
    out.push_str("],\"frames\":[");
    for (i, f) in tx.trace.frames.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"seq\":{},\"depth\":{},\"caller\":", f.seq, f.depth);
        push_addr(out, f.caller);
        out.push_str(",\"callee\":");
        push_addr(out, f.callee);
        out.push_str(",\"function\":");
        push_string(out, &f.function);
        let _ = write!(out, ",\"value\":\"{}\"}}", f.value);
    }
    out.push_str("],\"created\":[");
    for (i, c) in tx.trace.created.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_addr(out, *c);
    }
    out.push_str("]}");
}

/// Serializes a reproducer as a self-contained JSON document.
pub fn reproducer_to_json(r: &Reproducer) -> String {
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "{{\"version\":{VERSION},\"operator\":\"{}\",\"seed\":\"{}\",\"violation\":",
        r.operator, r.seed
    );
    push_string(&mut out, &r.violation);
    match r.case.weth {
        Some(w) => {
            let _ = write!(out, ",\"weth\":{}", w.index());
        }
        None => out.push_str(",\"weth\":null"),
    }
    out.push_str(",\"labels\":[");
    // Labels iterate in hash order; sort for stable, diffable files.
    let mut labels: Vec<(Address, &str)> = r.case.labels.iter().collect();
    labels.sort_by_key(|(a, _)| *a.as_bytes());
    for (i, (a, name)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_addr(&mut out, *a);
        out.push(',');
        push_string(&mut out, name);
        out.push(']');
    }
    out.push_str("],\"creations\":[");
    for (i, c) in r.case.creations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"creator\":");
        push_addr(&mut out, c.creator);
        out.push_str(",\"created\":");
        push_addr(&mut out, c.created);
        let _ = write!(out, ",\"block\":{}}}", c.block);
    }
    out.push_str("],\"txs\":[");
    for (i, tx) in r.case.txs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_tx(&mut out, tx);
    }
    out.push_str("],\"expect\":[");
    for (i, e) in r.expect.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"flagged\":{}", e.flagged);
        match e.flash_loan {
            Some(b) => {
                let _ = write!(out, ",\"flash_loan\":{b}");
            }
            None => out.push_str(",\"flash_loan\":null"),
        }
        match &e.kinds {
            Some(kinds) => {
                out.push_str(",\"kinds\":[");
                for (j, k) in kinds.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{k}\"");
                }
                out.push(']');
            }
            None => out.push_str(",\"kinds\":null"),
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

fn want<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    doc.get(key).ok_or_else(|| JsonError::semantic(format!("missing key `{key}`")))
}

fn parse_addr(j: &Json) -> Result<Address, JsonError> {
    let s = j.as_str().ok_or_else(|| JsonError::semantic("address must be a string"))?;
    let hex = s.strip_prefix("0x").ok_or_else(|| JsonError::semantic("address missing 0x"))?;
    if hex.len() != 40 {
        return Err(JsonError::semantic(format!("address `{s}` is not 20 bytes")));
    }
    let mut bytes = [0u8; 20];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16)
            .map_err(|_| JsonError::semantic(format!("bad hex in address `{s}`")))?;
    }
    Ok(Address::from_bytes(bytes))
}

fn parse_u64(j: &Json, what: &str) -> Result<u64, JsonError> {
    j.as_u64().ok_or_else(|| JsonError::semantic(format!("{what} must be a u64")))
}

fn parse_amount(j: &Json, what: &str) -> Result<u128, JsonError> {
    j.as_u128_str()
        .ok_or_else(|| JsonError::semantic(format!("{what} must be a decimal string")))
}

fn parse_token(j: &Json) -> Result<TokenId, JsonError> {
    let idx = parse_u64(j, "token")?;
    Ok(TokenId::from_index(
        u32::try_from(idx).map_err(|_| JsonError::semantic("token index overflows u32"))?,
    ))
}

fn parse_kind(s: &str) -> Result<PatternKind, JsonError> {
    match s {
        "KRP" => Ok(PatternKind::Krp),
        "SBS" => Ok(PatternKind::Sbs),
        "MBS" => Ok(PatternKind::Mbs),
        "KDP*" => Ok(PatternKind::Kdp),
        other => Err(JsonError::semantic(format!("unknown pattern kind `{other}`"))),
    }
}

fn parse_log_value(j: &Json) -> Result<LogValue, JsonError> {
    let t = want(j, "t")?.as_str().ok_or_else(|| JsonError::semantic("log value tag"))?;
    let v = want(j, "v")?;
    match t {
        "addr" => Ok(LogValue::Addr(parse_addr(v)?)),
        "amount" => Ok(LogValue::Amount(parse_amount(v, "log amount")?)),
        "token" => Ok(LogValue::Token(parse_token(v)?)),
        "text" => Ok(LogValue::Text(
            v.as_str().ok_or_else(|| JsonError::semantic("log text"))?.to_string(),
        )),
        other => Err(JsonError::semantic(format!("unknown log value tag `{other}`"))),
    }
}

fn parse_tx(j: &Json) -> Result<TxRecord, JsonError> {
    let status = {
        let s = want(j, "status")?;
        if want(s, "ok")?.as_bool() == Some(true) {
            TxStatus::Success
        } else {
            TxStatus::Reverted(
                s.get("reason").and_then(Json::as_str).unwrap_or("").to_string(),
            )
        }
    };
    let mut transfers = Vec::new();
    for t in want(j, "transfers")?.as_arr().ok_or_else(|| JsonError::semantic("transfers"))? {
        transfers.push(Transfer {
            seq: parse_u64(want(t, "seq")?, "seq")? as u32,
            sender: parse_addr(want(t, "sender")?)?,
            receiver: parse_addr(want(t, "receiver")?)?,
            amount: parse_amount(want(t, "amount")?, "amount")?,
            token: parse_token(want(t, "token")?)?,
        });
    }
    let mut logs = Vec::new();
    for l in want(j, "logs")?.as_arr().ok_or_else(|| JsonError::semantic("logs"))? {
        let mut params = Vec::new();
        for p in want(l, "params")?.as_arr().ok_or_else(|| JsonError::semantic("params"))? {
            let pair = p.as_arr().ok_or_else(|| JsonError::semantic("param pair"))?;
            if pair.len() != 2 {
                return Err(JsonError::semantic("param pair must have 2 elements"));
            }
            let key = pair[0].as_str().ok_or_else(|| JsonError::semantic("param key"))?;
            params.push((key.to_string(), parse_log_value(&pair[1])?));
        }
        logs.push(EventLog {
            seq: parse_u64(want(l, "seq")?, "seq")? as u32,
            emitter: parse_addr(want(l, "emitter")?)?,
            name: want(l, "name")?.as_str().ok_or_else(|| JsonError::semantic("log name"))?.to_string(),
            params,
        });
    }
    let mut frames = Vec::new();
    for f in want(j, "frames")?.as_arr().ok_or_else(|| JsonError::semantic("frames"))? {
        frames.push(CallFrame {
            seq: parse_u64(want(f, "seq")?, "seq")? as u32,
            depth: parse_u64(want(f, "depth")?, "depth")? as u16,
            caller: parse_addr(want(f, "caller")?)?,
            callee: parse_addr(want(f, "callee")?)?,
            function: want(f, "function")?
                .as_str()
                .ok_or_else(|| JsonError::semantic("frame function"))?
                .to_string(),
            value: parse_amount(want(f, "value")?, "frame value")?,
        });
    }
    let mut created = Vec::new();
    for c in want(j, "created")?.as_arr().ok_or_else(|| JsonError::semantic("created"))? {
        created.push(parse_addr(c)?);
    }
    Ok(TxRecord {
        id: TxId(parse_u64(want(j, "id")?, "id")?),
        block: parse_u64(want(j, "block")?, "block")?,
        timestamp: parse_u64(want(j, "timestamp")?, "timestamp")?,
        from: parse_addr(want(j, "from")?)?,
        to: parse_addr(want(j, "to")?)?,
        function: want(j, "function")?
            .as_str()
            .ok_or_else(|| JsonError::semantic("function"))?
            .to_string(),
        status,
        trace: TxTrace { transfers, logs, frames, created },
    })
}

/// Parses a reproducer document written by [`reproducer_to_json`].
pub fn reproducer_from_json(input: &str) -> Result<Reproducer, JsonError> {
    let doc = json::parse(input)?;
    let version = parse_u64(want(&doc, "version")?, "version")?;
    if version != VERSION {
        return Err(JsonError::semantic(format!("unsupported reproducer version {version}")));
    }
    let operator = want(&doc, "operator")?
        .as_str()
        .ok_or_else(|| JsonError::semantic("operator"))?
        .to_string();
    let seed64 = parse_amount(want(&doc, "seed")?, "seed")?;
    let seed = u64::try_from(seed64).map_err(|_| JsonError::semantic("seed overflows u64"))?;
    let violation = want(&doc, "violation")?
        .as_str()
        .ok_or_else(|| JsonError::semantic("violation"))?
        .to_string();
    let weth = {
        let w = want(&doc, "weth")?;
        if w.is_null() {
            None
        } else {
            Some(parse_token(w)?)
        }
    };
    let mut labels = Labels::new();
    for pair in want(&doc, "labels")?.as_arr().ok_or_else(|| JsonError::semantic("labels"))? {
        let pair = pair.as_arr().ok_or_else(|| JsonError::semantic("label pair"))?;
        if pair.len() != 2 {
            return Err(JsonError::semantic("label pair must have 2 elements"));
        }
        let name = pair[1].as_str().ok_or_else(|| JsonError::semantic("label name"))?;
        labels.set(parse_addr(&pair[0])?, name);
    }
    let mut creations = Vec::new();
    for c in want(&doc, "creations")?.as_arr().ok_or_else(|| JsonError::semantic("creations"))? {
        creations.push(CreationRecord {
            creator: parse_addr(want(c, "creator")?)?,
            created: parse_addr(want(c, "created")?)?,
            block: parse_u64(want(c, "block")?, "block")?,
        });
    }
    let mut txs = Vec::new();
    for tx in want(&doc, "txs")?.as_arr().ok_or_else(|| JsonError::semantic("txs"))? {
        txs.push(parse_tx(tx)?);
    }
    let mut expect = Vec::new();
    for e in want(&doc, "expect")?.as_arr().ok_or_else(|| JsonError::semantic("expect"))? {
        let flagged =
            want(e, "flagged")?.as_bool().ok_or_else(|| JsonError::semantic("flagged"))?;
        let flash_loan = {
            let fl = want(e, "flash_loan")?;
            if fl.is_null() {
                None
            } else {
                Some(fl.as_bool().ok_or_else(|| JsonError::semantic("flash_loan"))?)
            }
        };
        let kinds = {
            let k = want(e, "kinds")?;
            if k.is_null() {
                None
            } else {
                let mut kinds = Vec::new();
                for kind in k.as_arr().ok_or_else(|| JsonError::semantic("kinds"))? {
                    kinds.push(parse_kind(
                        kind.as_str().ok_or_else(|| JsonError::semantic("kind"))?,
                    )?);
                }
                Some(kinds)
            }
        };
        expect.push(TxExpect { flagged, flash_loan, kinds });
    }
    if expect.len() != txs.len() {
        return Err(JsonError::semantic("expect/txs length mismatch"));
    }
    Ok(Reproducer { operator, seed, violation, case: FuzzCase { txs, labels, creations, weth }, expect })
}

//! Trade-action identification (paper §V-C, Table III).
//!
//! From application-level transfers, LeiShen recognizes three key trade
//! actions, each from a window of two or three *consecutive* transfers:
//!
//! * **Swap** — `A→B` then `B→A` in different tokens (plus the
//!   three-transfer form where `B` returns two tokens);
//! * **Mint liquidity** — deposits to `B` plus a mint (transfer *from* the
//!   BlackHole) of a new token to `A`;
//! * **Remove liquidity** — a burn (transfer *to* the BlackHole) from `A`
//!   plus `B` returning one or two tokens.
//!
//! Three-transfer forms are tried before two-transfer forms, and matched
//! windows are consumed, so one transfer never participates in two trades.

use ethsim::TokenId;
use serde::{Deserialize, Serialize};

use crate::tagging::{Tag, TaggedTransfer};

/// Which Table III action a trade is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TradeKind {
    /// Token-for-token exchange.
    Swap,
    /// Deposit assets, mint a new token.
    MintLiquidity,
    /// Burn a token, take assets back.
    RemoveLiquidity,
}

impl std::fmt::Display for TradeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TradeKind::Swap => write!(f, "swap"),
            TradeKind::MintLiquidity => write!(f, "mint-liquidity"),
            TradeKind::RemoveLiquidity => write!(f, "remove-liquidity"),
        }
    }
}

/// One side of a [`Trade`]: its one or two `(amount, token)` legs.
///
/// Table III's windows span at most three transfers, so a side never has
/// more than two legs — they are stored inline rather than in a `Vec`,
/// which makes a `Trade` allocation-free to build (the batch scanner
/// constructs a couple per transaction on its hot path). Dereferences to
/// `[(u128, TokenId)]`, so slice iteration and indexing work unchanged.
#[derive(Clone, Copy, Debug)]
pub struct TradeSide {
    legs: [(u128, TokenId); 2],
    len: u8,
}

impl TradeSide {
    /// A single-leg side.
    pub fn one(amount: u128, token: TokenId) -> Self {
        TradeSide {
            legs: [(amount, token), (0, token)],
            len: 1,
        }
    }

    /// A two-leg side (the three-transfer trade forms).
    pub fn two(first: (u128, TokenId), second: (u128, TokenId)) -> Self {
        TradeSide {
            legs: [first, second],
            len: 2,
        }
    }

    /// The legs as a slice.
    pub fn as_slice(&self) -> &[(u128, TokenId)] {
        &self.legs[..self.len as usize]
    }
}

impl std::ops::Deref for TradeSide {
    type Target = [(u128, TokenId)];

    fn deref(&self) -> &Self::Target {
        self.as_slice()
    }
}

impl PartialEq for TradeSide {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for TradeSide {}

impl PartialEq<Vec<(u128, TokenId)>> for TradeSide {
    fn eq(&self, other: &Vec<(u128, TokenId)>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[(u128, TokenId); N]> for TradeSide {
    fn eq(&self, other: &[(u128, TokenId); N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Serialize for TradeSide {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Same wire shape as the `Vec` this type replaced.
        self.as_slice().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for TradeSide {}

/// One identified trade: the paper's tuple
/// `(buyer, seller, amountSell, tokenSell, amountBuy, tokenBuy)`,
/// generalized to one-or-two legs per side for the three-transfer forms.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trade {
    /// Sequence of the first transfer in the window (orders trades).
    pub seq: u32,
    /// Action kind.
    pub kind: TradeKind,
    /// The application making the trade (`A` in Table III).
    pub buyer: Tag,
    /// The counterparty application (`B`).
    pub seller: Tag,
    /// Assets the buyer gave: `(amount, token)` per leg.
    pub sells: TradeSide,
    /// Assets the buyer received: `(amount, token)` per leg.
    pub buys: TradeSide,
}

impl Trade {
    /// Amount of `token` the buyer received, if any leg matches.
    pub fn buy_of(&self, token: TokenId) -> Option<u128> {
        self.buys.iter().find(|(_, t)| *t == token).map(|(a, _)| *a)
    }

    /// Amount of `token` the buyer gave, if any leg matches.
    pub fn sell_of(&self, token: TokenId) -> Option<u128> {
        self.sells.iter().find(|(_, t)| *t == token).map(|(a, _)| *a)
    }

    /// Iterates all `(sell_leg, buy_leg)` combinations as single-pair
    /// views — the unit the attack patterns reason over.
    pub fn views(&self) -> impl Iterator<Item = TradeLeg<'_>> + '_ {
        self.sells.iter().flat_map(move |&(sa, st)| {
            self.buys.iter().map(move |&(ba, bt)| TradeLeg {
                seq: self.seq,
                buyer: &self.buyer,
                seller: &self.seller,
                sell_amount: sa,
                sell_token: st,
                buy_amount: ba,
                buy_token: bt,
            })
        })
    }
}

/// A single-pair projection of a trade: the buyer gave `sell_amount` of
/// `sell_token` and received `buy_amount` of `buy_token`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TradeLeg<'a> {
    /// Ordering sequence inherited from the trade.
    pub seq: u32,
    /// Trading application.
    pub buyer: &'a Tag,
    /// Counterparty application.
    pub seller: &'a Tag,
    /// Amount given.
    pub sell_amount: u128,
    /// Token given.
    pub sell_token: TokenId,
    /// Amount received.
    pub buy_amount: u128,
    /// Token received.
    pub buy_token: TokenId,
}

impl TradeLeg<'_> {
    /// Price paid per bought token: `amountSell / amountBuy`
    /// (`None` when the buy amount is zero).
    pub fn buy_rate(&self) -> Option<f64> {
        if self.buy_amount == 0 {
            None
        } else {
            Some(self.sell_amount as f64 / self.buy_amount as f64)
        }
    }

    /// Price received per sold token: `amountBuy / amountSell`
    /// (`None` when the sell amount is zero).
    pub fn sell_rate(&self) -> Option<f64> {
        if self.sell_amount == 0 {
            None
        } else {
            Some(self.buy_amount as f64 / self.sell_amount as f64)
        }
    }
}

/// Identifies all trades in an application-level transfer list.
pub fn identify_trades(transfers: &[TaggedTransfer]) -> Vec<Trade> {
    let mut trades = Vec::new();
    identify_trades_into(transfers, &mut trades);
    trades
}

/// [`identify_trades`] writing into a caller-provided buffer (cleared
/// first), so batch scanners and benches can reuse one allocation across
/// transactions.
pub fn identify_trades_into(transfers: &[TaggedTransfer], trades: &mut Vec<Trade>) {
    trades.clear();
    let mut i = 0;
    while i < transfers.len() {
        if i + 2 < transfers.len() {
            if let Some(trade) =
                match_three(&transfers[i], &transfers[i + 1], &transfers[i + 2])
            {
                trades.push(trade);
                i += 3;
                continue;
            }
        }
        if i + 1 < transfers.len() {
            if let Some(trade) = match_two(&transfers[i], &transfers[i + 1]) {
                trades.push(trade);
                i += 2;
                continue;
            }
        }
        i += 1;
    }
}

fn is_app(tag: &Tag) -> bool {
    !tag.is_black_hole()
}

fn distinct3(a: TokenId, b: TokenId, c: TokenId) -> bool {
    a != b && b != c && a != c
}

fn match_three(t1: &TaggedTransfer, t2: &TaggedTransfer, t3: &TaggedTransfer) -> Option<Trade> {
    // Swap, 3-transfer: A->B (t1), B->A (t2), B->A (t3), distinct tokens.
    if is_app(&t1.sender)
        && is_app(&t1.receiver)
        && t2.sender == t1.receiver
        && t2.receiver == t1.sender
        && t3.sender == t1.receiver
        && t3.receiver == t1.sender
        && distinct3(t1.token, t2.token, t3.token)
    {
        return Some(Trade {
            seq: t1.seq,
            kind: TradeKind::Swap,
            buyer: t1.sender.clone(),
            seller: t1.receiver.clone(),
            sells: TradeSide::one(t1.amount, t1.token),
            buys: TradeSide::two((t2.amount, t2.token), (t3.amount, t3.token)),
        });
    }
    // Mint, 3-transfer: A->B (t1), A->B (t2), BlackHole->A (t3).
    if is_app(&t1.sender)
        && is_app(&t1.receiver)
        && t2.sender == t1.sender
        && t2.receiver == t1.receiver
        && t3.sender.is_black_hole()
        && t3.receiver == t1.sender
        && distinct3(t1.token, t2.token, t3.token)
    {
        return Some(Trade {
            seq: t1.seq,
            kind: TradeKind::MintLiquidity,
            buyer: t1.sender.clone(),
            seller: t1.receiver.clone(),
            sells: TradeSide::two((t1.amount, t1.token), (t2.amount, t2.token)),
            buys: TradeSide::one(t3.amount, t3.token),
        });
    }
    // Remove, 3-transfer: A->BlackHole (t1), B->A (t2), B->A (t3).
    if is_app(&t1.sender)
        && t1.receiver.is_black_hole()
        && is_app(&t2.sender)
        && t2.receiver == t1.sender
        && t3.sender == t2.sender
        && t3.receiver == t1.sender
        && distinct3(t1.token, t2.token, t3.token)
    {
        return Some(Trade {
            seq: t1.seq,
            kind: TradeKind::RemoveLiquidity,
            buyer: t1.sender.clone(),
            seller: t2.sender.clone(),
            sells: TradeSide::one(t1.amount, t1.token),
            buys: TradeSide::two((t2.amount, t2.token), (t3.amount, t3.token)),
        });
    }
    None
}

fn match_two(t1: &TaggedTransfer, t2: &TaggedTransfer) -> Option<Trade> {
    // Swap: A->B (t1), B->A (t2), different tokens.
    if is_app(&t1.sender)
        && is_app(&t1.receiver)
        && t2.sender == t1.receiver
        && t2.receiver == t1.sender
        && t1.token != t2.token
    {
        return Some(Trade {
            seq: t1.seq,
            kind: TradeKind::Swap,
            buyer: t1.sender.clone(),
            seller: t1.receiver.clone(),
            sells: TradeSide::one(t1.amount, t1.token),
            buys: TradeSide::one(t2.amount, t2.token),
        });
    }
    // Mint: A->B (t1), BlackHole->A (t2) — order reversible.
    if is_app(&t1.sender)
        && is_app(&t1.receiver)
        && t2.sender.is_black_hole()
        && t2.receiver == t1.sender
        && t1.token != t2.token
    {
        return Some(Trade {
            seq: t1.seq,
            kind: TradeKind::MintLiquidity,
            buyer: t1.sender.clone(),
            seller: t1.receiver.clone(),
            sells: TradeSide::one(t1.amount, t1.token),
            buys: TradeSide::one(t2.amount, t2.token),
        });
    }
    if t1.sender.is_black_hole()
        && is_app(&t2.sender)
        && is_app(&t2.receiver)
        && t2.sender == t1.receiver
        && t1.token != t2.token
    {
        return Some(Trade {
            seq: t1.seq,
            kind: TradeKind::MintLiquidity,
            buyer: t2.sender.clone(),
            seller: t2.receiver.clone(),
            sells: TradeSide::one(t2.amount, t2.token),
            buys: TradeSide::one(t1.amount, t1.token),
        });
    }
    // Remove: A->BlackHole (t1), B->A (t2) — order reversible.
    if is_app(&t1.sender)
        && t1.receiver.is_black_hole()
        && is_app(&t2.sender)
        && t2.receiver == t1.sender
        && t1.token != t2.token
    {
        return Some(Trade {
            seq: t1.seq,
            kind: TradeKind::RemoveLiquidity,
            buyer: t1.sender.clone(),
            seller: t2.sender.clone(),
            sells: TradeSide::one(t1.amount, t1.token),
            buys: TradeSide::one(t2.amount, t2.token),
        });
    }
    if is_app(&t1.sender)
        && is_app(&t1.receiver)
        && t2.sender == t1.receiver
        && t2.receiver.is_black_hole()
        && t1.token != t2.token
    {
        return Some(Trade {
            seq: t1.seq,
            kind: TradeKind::RemoveLiquidity,
            buyer: t2.sender.clone(),
            seller: t1.sender.clone(),
            sells: TradeSide::one(t2.amount, t2.token),
            buys: TradeSide::one(t1.amount, t1.token),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(s: &str) -> Tag {
        Tag::App(s.into())
    }
    fn tk(i: u32) -> TokenId {
        TokenId::from_index(i)
    }
    fn t(seq: u32, sender: Tag, receiver: Tag, amount: u128, token: u32) -> TaggedTransfer {
        TaggedTransfer {
            seq,
            sender,
            receiver,
            amount,
            token: tk(token),
        }
    }

    #[test]
    fn swap_two_transfers() {
        let list = vec![
            t(0, app("A"), app("B"), 5_500, 0),
            t(1, app("B"), app("A"), 112, 1),
        ];
        let trades = identify_trades(&list);
        assert_eq!(trades.len(), 1);
        let tr = &trades[0];
        assert_eq!(tr.kind, TradeKind::Swap);
        assert_eq!(tr.buyer, app("A"));
        assert_eq!(tr.seller, app("B"));
        assert_eq!(tr.sell_of(tk(0)), Some(5_500));
        assert_eq!(tr.buy_of(tk(1)), Some(112));
    }

    #[test]
    fn swap_three_transfers_two_outputs() {
        let list = vec![
            t(0, app("A"), app("B"), 100, 0),
            t(1, app("B"), app("A"), 40, 1),
            t(2, app("B"), app("A"), 60, 2),
        ];
        let trades = identify_trades(&list);
        assert_eq!(trades.len(), 1);
        assert_eq!(trades[0].kind, TradeKind::Swap);
        assert_eq!(trades[0].buys.len(), 2);
        assert_eq!(trades[0].views().count(), 2);
    }

    #[test]
    fn mint_liquidity_both_orders() {
        let forward = vec![
            t(0, app("A"), app("Vault"), 1_000, 1),
            t(1, Tag::BlackHole, app("A"), 990, 2),
        ];
        let reversed = vec![
            t(0, Tag::BlackHole, app("A"), 990, 2),
            t(1, app("A"), app("Vault"), 1_000, 1),
        ];
        for list in [forward, reversed] {
            let trades = identify_trades(&list);
            assert_eq!(trades.len(), 1, "{list:?}");
            let tr = &trades[0];
            assert_eq!(tr.kind, TradeKind::MintLiquidity);
            assert_eq!(tr.buyer, app("A"));
            assert_eq!(tr.seller, app("Vault"));
            assert_eq!(tr.buy_of(tk(2)), Some(990));
        }
    }

    #[test]
    fn mint_liquidity_three_transfers() {
        let list = vec![
            t(0, app("A"), app("Pool"), 100, 1),
            t(1, app("A"), app("Pool"), 200, 2),
            t(2, Tag::BlackHole, app("A"), 50, 3),
        ];
        let trades = identify_trades(&list);
        assert_eq!(trades.len(), 1);
        let tr = &trades[0];
        assert_eq!(tr.kind, TradeKind::MintLiquidity);
        assert_eq!(tr.sells.len(), 2);
        assert_eq!(tr.buy_of(tk(3)), Some(50));
    }

    #[test]
    fn remove_liquidity_both_orders_and_three() {
        let forward = vec![
            t(0, app("A"), Tag::BlackHole, 50, 3),
            t(1, app("Pool"), app("A"), 100, 1),
        ];
        let trades = identify_trades(&forward);
        assert_eq!(trades.len(), 1);
        assert_eq!(trades[0].kind, TradeKind::RemoveLiquidity);
        assert_eq!(trades[0].seller, app("Pool"));

        let reversed = vec![
            t(0, app("Pool"), app("A"), 100, 1),
            t(1, app("A"), Tag::BlackHole, 50, 3),
        ];
        let trades = identify_trades(&reversed);
        assert_eq!(trades.len(), 1);
        assert_eq!(trades[0].kind, TradeKind::RemoveLiquidity);
        assert_eq!(trades[0].buyer, app("A"));

        let three = vec![
            t(0, app("A"), Tag::BlackHole, 50, 3),
            t(1, app("Pool"), app("A"), 100, 1),
            t(2, app("Pool"), app("A"), 200, 2),
        ];
        let trades = identify_trades(&three);
        assert_eq!(trades.len(), 1);
        assert_eq!(trades[0].buys.len(), 2);
    }

    #[test]
    fn same_token_back_and_forth_is_not_a_swap() {
        let list = vec![
            t(0, app("A"), app("B"), 100, 1),
            t(1, app("B"), app("A"), 100, 1),
        ];
        assert!(identify_trades(&list).is_empty());
    }

    #[test]
    fn unmatched_transfers_are_skipped_not_fused() {
        // borrow leg, then a swap, then repay leg
        let list = vec![
            t(0, app("dYdX"), app("E"), 10_000, 0), // borrow
            t(1, app("E"), app("Compound"), 5_500, 0),
            t(2, app("Compound"), app("E"), 112, 1),
            t(3, app("E"), app("dYdX"), 10_000, 0), // repay
        ];
        let trades = identify_trades(&list);
        assert_eq!(trades.len(), 1);
        assert_eq!(trades[0].seller, app("Compound"));
    }

    #[test]
    fn three_transfer_form_takes_priority() {
        // A->B, B->A, B->A should be ONE swap3, not swap2 + dangling.
        let list = vec![
            t(0, app("A"), app("B"), 100, 0),
            t(1, app("B"), app("A"), 40, 1),
            t(2, app("B"), app("A"), 60, 2),
            t(3, app("A"), app("B"), 10, 1),
            t(4, app("B"), app("A"), 5, 0),
        ];
        let trades = identify_trades(&list);
        assert_eq!(trades.len(), 2);
        assert_eq!(trades[0].buys.len(), 2);
        assert_eq!(trades[1].kind, TradeKind::Swap);
    }

    #[test]
    fn consecutive_swaps_all_found() {
        let mut list = Vec::new();
        for i in 0..6u32 {
            list.push(t(2 * i, app("E"), app("Uni"), 20, 0));
            list.push(t(2 * i + 1, app("Uni"), app("E"), 100 - i as u128, 1));
        }
        let trades = identify_trades(&list);
        assert_eq!(trades.len(), 6);
        assert!(trades.iter().all(|tr| tr.kind == TradeKind::Swap));
    }

    #[test]
    fn leg_rates() {
        let list = vec![
            t(0, app("A"), app("B"), 200, 0),
            t(1, app("B"), app("A"), 100, 1),
        ];
        let trades = identify_trades(&list);
        let view = trades[0].views().next().unwrap();
        assert_eq!(view.buy_rate(), Some(2.0));
        assert_eq!(view.sell_rate(), Some(0.5));
    }

    #[test]
    fn blackhole_cannot_be_a_swap_party() {
        let list = vec![
            t(0, Tag::BlackHole, app("B"), 100, 0),
            t(1, app("B"), Tag::BlackHole, 50, 1),
        ];
        // This matches neither swap (blackhole party) nor the mint/remove
        // templates (receiver/sender roles wrong).
        let trades = identify_trades(&list);
        assert!(
            trades.iter().all(|t| t.kind != TradeKind::Swap),
            "{trades:?}"
        );
    }
}

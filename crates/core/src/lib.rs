//! # leishen — detecting flash-loan based price manipulation attacks
//!
//! A from-scratch Rust reproduction of **LeiShen** (*Detecting Flash Loan
//! Based Attacks in Ethereum*, Xia et al., ICDCS 2023). LeiShen takes a
//! flash-loan transaction and decides whether it is a *flash loan based
//! price manipulation attack* (flpAttack) by matching three attack patterns
//! distilled from 22 real-world incidents:
//!
//! * **KRP — Keep Raising Price**: ≥ 5 consecutive buys of a target token
//!   from the same seller at rising prices, then a sell (e.g. bZx-2's 18 ×
//!   20 ETH sUSD buys).
//! * **SBS — Symmetrical Buying and Selling**: buy X, pump X's price with a
//!   middle trade, sell *exactly the bought amount* of X at the higher
//!   price, with ≥ 28% volatility between the legs (e.g. bZx-1's 112 WBTC).
//! * **MBS — Multi-Round Buying and Selling**: ≥ 3 profitable buy-then-sell
//!   rounds against the same counterparty (e.g. Harvest's 3 × 50M USDC
//!   vault cycles).
//!
//! The pipeline (paper Fig. 5) has three stages, each a module here:
//!
//! 1. **Transfer history extraction** — [`flashloan`] identifies flash-loan
//!    transactions by the Table II call/event signatures of Uniswap, AAVE
//!    and dYdX; the ordered account-level transfers come from the
//!    transaction's replay trace ([`ethsim::TxRecord`]).
//! 2. **Application-level transfer construction** — [`tagging`] tags every
//!    account with a DeFi application via creation-tree propagation
//!    (Fig. 7), then [`mod@simplify`] removes intra-app transfers, removes
//!    Wrapped-Ether traffic (unifying WETH with ETH), and merges inter-app
//!    pass-through transfers (±0.1%).
//! 3. **Attack pattern identification** — [`trades`] recognizes Swap /
//!    Mint-liquidity / Remove-liquidity actions from 2–3-transfer windows
//!    (Table III) and [`patterns`] matches KRP / SBS / MBS.
//!
//! [`detector::LeiShen`] wires the stages together; [`analytics`] computes
//! the per-pair price volatility of Table I and the profit statistics of
//! Table VII; [`heuristics`] implements the yield-aggregator-initiator rule
//! that lifts MBS precision from 56.1% to 80% (§VI-C).
//!
//! ```
//! use leishen::{DetectorConfig, LeiShen};
//!
//! let detector = LeiShen::new(DetectorConfig::default());
//! assert_eq!(detector.config().krp_min_buys, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod config;
pub mod detector;
pub mod flashloan;
pub mod forensics;
pub mod fuzz;
pub mod heuristics;
pub mod labels;
pub mod patterns;
pub mod report;
pub mod resilience;
pub mod scan;
pub mod sched;
pub mod simplify;
pub mod stream;
pub mod tagging;
pub mod telemetry;
pub mod trace;
pub mod trades;

pub use analytics::{cluster_reports, pair_volatility, profit_of, AttackCluster, PairVolatility};
pub use config::DetectorConfig;
pub use detector::{Analysis, AnalysisScratch, ChainView, LeiShen};
pub use flashloan::{identify_flash_loans, FlashLoanEvent, Provider};
pub use forensics::{trace_exits, ExitKind, ExitReport};
pub use fuzz::{CaseVerdict, DiffOracle, FuzzCase, FuzzRng, Mutant, SeedCase, TxExpect};
pub use heuristics::{
    aggregator_heuristic, filter_aggregator_initiated, initiated_by_aggregator, HeuristicOutcome,
};
pub use labels::Labels;
pub use patterns::{PatternKind, PatternMatch, PatternScratch};
pub use report::AttackReport;
pub use resilience::{
    install_quiet_hook, Fault, FaultInjector, FaultPlan, InducedFault, InputFault, PlannedFault,
    Quarantine, ResilienceConfig, ResilientScan,
};
pub use scan::{LocalTagCache, ScanEngine, ScanStats, ShardStat, TagCache};
pub use sched::{access_set, SchedStats, WavePlan};
pub use simplify::{
    simplify, simplify_into, simplify_into_observed, DropRule, SimplifyAction, SimplifyStats,
};
pub use stream::{
    Block, BlockReport, BoundedQueue, QueueStats, StreamConfig, StreamProducer, StreamReport,
    StreamService,
};
pub use tagging::{
    shares_creation_ancestry, tag_transfers, tag_transfers_with, tag_transfers_with_into, Tag,
    TagMap, TaggedTransfer,
};
pub use telemetry::{
    MetricsSink, NoopSink, RecordingSink, Stage, StageSummary, TxCounters, TxCountersTotal,
    STAGES, STAGE_COUNT,
};
pub use trace::{
    Decision, FlightRecorder, NoopTracer, Reason, SpanRecord, TraceEvent, TraceSink, TxProvenance,
    Verdict, WorkerTracer,
};
pub use trades::{identify_trades, identify_trades_into, Trade, TradeKind, TradeSide};

//! Regenerates the **§VI-A latency claim**: "On average, LeiShen took 10
//! milliseconds to detect three attack patterns for a flash loan
//! transaction. For 75% of the transactions, the detection can be finished
//! within the time bound of 16 milliseconds."
//!
//! ```sh
//! cargo run -p leishen-bench --release --bin latency
//! ```

use leishen::DetectorConfig;
use leishen_bench::{
    cli_f64, cli_u64, known_attack_world, measure_latencies, percentile, sort_samples, wild_world,
};

fn main() {
    let seed = cli_u64("--seed", 42);
    let scale = cli_f64("--scale", 0.002);

    println!("§VI-A — per-transaction detection latency\n");

    // Known attacks (heaviest transactions).
    let (world, attacks) = known_attack_world();
    let mut lat = measure_latencies(
        &world,
        attacks.iter().map(|a| a.tx),
        DetectorConfig::paper(),
    );
    report("22 known attacks", &mut lat);

    // Wild corpus.
    eprintln!("generating corpus (seed={seed}, scale={scale})...");
    let (world, corpus) = wild_world(seed, scale);
    let mut lat = measure_latencies(
        &world,
        corpus.iter().map(|t| t.tx),
        DetectorConfig::paper(),
    );
    report(&format!("{} wild transactions", corpus.len()), &mut lat);

    println!("\npaper: mean 10 ms, p75 ≤ 16 ms (on a 2.10 GHz Xeon E5-2683 v4).");
    println!("Our traces are shorter than full mainnet transactions, so sub-paper");
    println!("latencies are expected; the budget is comfortably met either way.");
}

fn report(name: &str, lat: &mut [f64]) {
    let mean = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
    sort_samples(lat);
    let p50 = percentile(lat, 50.0);
    let p75 = percentile(lat, 75.0);
    let p99 = percentile(lat, 99.0);
    let max = percentile(lat, 100.0);
    println!(
        "{name:<28} mean {:>9.1} µs   p50 {:>9.1} µs   p75 {:>9.1} µs   p99 {:>9.1} µs   max {:>9.1} µs",
        mean, p50, p75, p99, max
    );
    assert!(p75 < 16_000.0, "p75 exceeds the paper's 16 ms bound");
}

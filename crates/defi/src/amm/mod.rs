//! Automated market makers.
//!
//! DEXs price trades with automatic pricing algorithms (paper §II-B): the
//! constant-product formula ([`UniswapV2Pair`]), weighted constant-mean
//! pools ([`WeightedPool`], Balancer-style) and the StableSwap invariant
//! ([`StableSwapPool`], Curve-style). A trade that significantly shifts the
//! relative reserves moves the price — the mechanism every flpAttack
//! exploits.

mod stableswap;
mod uniswap_v2;
mod weighted;

pub use stableswap::StableSwapPool;
pub use uniswap_v2::{UniswapV2Factory, UniswapV2Pair};
pub use weighted::WeightedPool;

//! Regenerates **Table VI**: the top three most attacked applications,
//! with attacker / attack-contract / attacked-asset counts.
//!
//! ```sh
//! cargo run -p leishen-bench --bin table6
//! ```

use std::collections::{HashMap, HashSet};

use leishen::analytics::cluster_reports;
use leishen::{DetectorConfig, LeiShen};
use leishen_bench::{cli_f64, cli_u64, print_table, wild_world};

fn main() {
    let seed = cli_u64("--seed", 42);
    let scale = cli_f64("--scale", 0.002);
    eprintln!("generating corpus (seed={seed}, scale={scale})...");
    let (world, corpus) = wild_world(seed, scale);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());

    // Count over *detected, unknown, true* attacks as §VI-D does.
    type AppStats = (usize, HashSet<String>, HashSet<String>, HashSet<String>);
    let mut per_app: HashMap<&str, AppStats> = HashMap::new();
    let mut reports = Vec::new();
    for gtx in corpus.iter().filter(|t| t.class.is_attack() && !t.known) {
        let record = world.chain.replay(gtx.tx).expect("recorded");
        if let Some(report) = detector.detect(record, &view, None) {
            reports.push(report);
        } else {
            continue;
        }
        let app = gtx.attacked_app.unwrap_or("-");
        let entry = per_app
            .entry(app)
            .or_insert_with(|| (0, HashSet::new(), HashSet::new(), HashSet::new()));
        entry.0 += 1;
        if let Some(a) = gtx.attacker {
            entry.1.insert(a.to_string());
        }
        if let Some(c) = gtx.contract {
            entry.2.insert(c.to_string());
        }
        if let Some(t) = gtx.asset {
            entry.3.insert(t.to_string());
        }
    }
    let mut apps: Vec<_> = per_app.into_iter().collect();
    apps.sort_by_key(|(_, stats)| std::cmp::Reverse(stats.0));

    println!("Table VI — most attacked applications (unknown detected attacks)\n");
    let rows: Vec<Vec<String>> = apps
        .iter()
        .take(5)
        .map(|(app, (n, attackers, contracts, assets))| {
            vec![
                app.to_string(),
                n.to_string(),
                attackers.len().to_string(),
                contracts.len().to_string(),
                assets.len().to_string(),
            ]
        })
        .collect();
    print_table(
        &["Attacked application", "Attacks", "Attackers", "Attack contracts", "Attacked assets"],
        &rows,
    );
    println!("\npaper top-3: Balancer 31/5/14/13, Uniswap 16/6/8/5, Yearn 11/1/1/1");

    // §VI-D1: repeated attacks happen in short bursts ("attacker 0xF224
    // launches 25 attacks in ten minutes, attacker 0x14EC launches 11
    // attacks in 40 minutes").
    let clusters = cluster_reports(&reports, 24 * 3600);
    println!("\nrepeat-attack bursts (same initiator, <24h apart):");
    for c in clusters.iter().take(3) {
        println!(
            "  {}: {} attacks within {} minutes",
            c.initiator.short(),
            c.len(),
            c.span_secs / 60
        );
    }
}

//! Criterion: batch scanning — the serial `analyze` loop vs the
//! [`leishen::ScanEngine`] over the 22 known attacks, both cold-cache and
//! steady-state (shared `TagCache` kept warm across batches).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use leishen::{DetectorConfig, LeiShen, ScanEngine, TagCache};
use leishen_bench::known_attack_world;

fn bench_scan(c: &mut Criterion) {
    let (world, attacks) = known_attack_world();
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());
    let records: Vec<_> = attacks
        .iter()
        .map(|a| world.chain.replay(a.tx).expect("recorded"))
        .collect();

    let mut group = c.benchmark_group("scan");
    group.throughput(Throughput::Elements(records.len() as u64));

    group.bench_function("serial_loop", |b| {
        b.iter(|| {
            let analyses: Vec<_> = records
                .iter()
                .map(|record| detector.analyze(record, &view))
                .collect();
            std::hint::black_box(analyses)
        })
    });

    group.bench_function("engine_cold_cache", |b| {
        let engine = ScanEngine::new(4);
        b.iter(|| std::hint::black_box(engine.scan(&detector, &records, &view)))
    });

    group.bench_function("engine_warm_cache", |b| {
        let engine = ScanEngine::new(4);
        let cache = TagCache::new();
        std::hint::black_box(engine.scan_with_cache(&detector, &records, &view, &cache));
        b.iter(|| {
            std::hint::black_box(engine.scan_with_cache(&detector, &records, &view, &cache))
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    // CI-friendly settings, matching the other benches in this crate.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_scan
}
criterion_main!(benches);

//! Compound-style collateralized borrowing.
//!
//! In bZx-1 (paper Fig. 3, step 2) the attacker "collateralizes 5,500 ETH
//! to borrow 112 WBTC at the price of 49.1 ETH/WBTC on Compound". From the
//! detector's perspective this is a *swap-shaped* trade: collateral flows
//! to the platform, borrowed assets flow back — which is why LeiShen's SBS
//! pattern catches it as `trade₁`. Borrowing capacity is priced by a DEX
//! oracle, making the platform a downstream victim of pool manipulation.

use ethsim::state::SKey;
use ethsim::{math, Address, Chain, LogValue, Result, SimError, TokenId, TxContext};

use crate::labels::LabelService;
use crate::oracle::DexOracle;

/// Per-user collateral balance.
const SLOT_COLLATERAL: u16 = 0;
/// Per-user debt balance.
const SLOT_DEBT: u16 = 1;

/// Liquidation incentive in basis points over the repaid value (Compound
/// paid liquidators an 8% bonus).
const LIQUIDATION_BONUS_BPS: u128 = 800;

/// A single collateral/debt market (e.g. ETH-collateral → WBTC-debt).
#[derive(Clone, Debug)]
pub struct CompoundMarket {
    /// Market contract account.
    pub address: Address,
    /// Collateral asset users deposit.
    pub collateral: TokenId,
    /// Asset users borrow.
    pub debt_asset: TokenId,
    /// Collateral factor in basis points (7500 = borrow up to 75% of
    /// collateral value).
    pub collateral_factor_bps: u32,
    /// Oracle used to value collateral against debt.
    pub oracle: DexOracle,
}

impl CompoundMarket {
    /// Deploys the market, labeling deployer and contract.
    ///
    /// # Errors
    /// Propagates substrate errors.
    #[allow(clippy::too_many_arguments)]
    pub fn deploy(
        chain: &mut Chain,
        labels: &mut LabelService,
        deployer: Address,
        collateral: TokenId,
        debt_asset: TokenId,
        collateral_factor_bps: u32,
        oracle: DexOracle,
        app_label: &str,
    ) -> Result<CompoundMarket> {
        let mut address = None;
        chain.execute(deployer, deployer, "deployMarket", |ctx| {
            address = Some(ctx.create_contract(deployer)?);
            Ok(())
        })?;
        let address = address.expect("deploy closure ran");
        labels.set(deployer, app_label);
        labels.set(address, app_label);
        Ok(CompoundMarket {
            address,
            collateral,
            debt_asset,
            collateral_factor_bps,
            oracle,
        })
    }

    fn coll_key(who: Address) -> SKey {
        SKey::AddrMap(SLOT_COLLATERAL, who)
    }
    fn debt_key(who: Address) -> SKey {
        SKey::AddrMap(SLOT_DEBT, who)
    }

    /// Collateral currently posted by `who`.
    pub fn collateral_of(&self, ctx: &TxContext<'_>, who: Address) -> u128 {
        ctx.sload(self.address, Self::coll_key(who))
    }

    /// Debt currently owed by `who`.
    pub fn debt_of(&self, ctx: &TxContext<'_>, who: Address) -> u128 {
        ctx.sload(self.address, Self::debt_key(who))
    }

    /// Maximum borrowable debt for `collateral_amount`, at current oracle
    /// prices.
    ///
    /// # Errors
    /// Propagates oracle failures.
    pub fn borrow_capacity(
        &self,
        ctx: &TxContext<'_>,
        collateral_amount: u128,
    ) -> Result<u128> {
        let rate = self.oracle.rate(ctx, self.collateral, self.debt_asset)?;
        let dc = ctx.token(self.collateral)?.decimals as i32;
        let dd = ctx.token(self.debt_asset)?.decimals as i32;
        let coll_whole = collateral_amount as f64 / 10f64.powi(dc);
        let cap_whole = coll_whole * rate * self.collateral_factor_bps as f64 / 10_000.0;
        Ok((cap_whole * 10f64.powi(dd)) as u128)
    }

    /// Posts collateral and borrows in one call (Compound's typical usage
    /// pattern in attacks). Transfers: collateral `who → market`, debt
    /// `market → who`.
    ///
    /// # Errors
    /// Reverts when the borrow exceeds capacity or market liquidity.
    pub fn supply_and_borrow(
        &self,
        ctx: &mut TxContext<'_>,
        who: Address,
        collateral_amount: u128,
        borrow_amount: u128,
    ) -> Result<()> {
        let market = self.clone();
        ctx.call(who, self.address, "supplyAndBorrow", 0, |ctx| {
            ctx.transfer_token(market.collateral, who, market.address, collateral_amount)?;
            let coll = math::add(market.collateral_of(ctx, who), collateral_amount)?;
            ctx.sstore(market.address, Self::coll_key(who), coll);

            let capacity = market.borrow_capacity(ctx, coll)?;
            let debt = math::add(market.debt_of(ctx, who), borrow_amount)?;
            if debt > capacity {
                return Err(SimError::revert("insufficient collateral"));
            }
            let liquidity = ctx.balance(market.debt_asset, market.address);
            if liquidity < borrow_amount {
                return Err(SimError::revert("insufficient market liquidity"));
            }
            ctx.transfer_token(market.debt_asset, market.address, who, borrow_amount)?;
            ctx.sstore(market.address, Self::debt_key(who), debt);
            ctx.emit_log(
                market.address,
                "Borrow",
                vec![
                    ("borrower".into(), LogValue::Addr(who)),
                    ("collateral".into(), LogValue::Amount(collateral_amount)),
                    ("borrowed".into(), LogValue::Amount(borrow_amount)),
                ],
            );
            Ok(())
        })
    }

    /// Whether `who`'s position is liquidatable at current oracle prices
    /// (debt exceeds borrowing capacity).
    ///
    /// # Errors
    /// Propagates oracle failures.
    pub fn is_underwater(&self, ctx: &TxContext<'_>, who: Address) -> Result<bool> {
        let debt = self.debt_of(ctx, who);
        if debt == 0 {
            return Ok(false);
        }
        let capacity = self.borrow_capacity(ctx, self.collateral_of(ctx, who))?;
        Ok(debt > capacity)
    }

    /// Liquidates an underwater position: `liquidator` repays
    /// `repay_amount` of `borrower`'s debt and seizes collateral worth the
    /// repaid value plus an 8% bonus, at oracle prices. This is the
    /// flash-loan *liquidation* use case the paper names alongside
    /// arbitrage and collateral swaps (§I).
    ///
    /// # Errors
    /// Reverts when the position is healthy, the repay exceeds the debt,
    /// or the seizure exceeds posted collateral.
    pub fn liquidate(
        &self,
        ctx: &mut TxContext<'_>,
        liquidator: Address,
        borrower: Address,
        repay_amount: u128,
    ) -> Result<u128> {
        let market = self.clone();
        ctx.call(liquidator, self.address, "liquidateBorrow", 0, |ctx| {
            if !market.is_underwater(ctx, borrower)? {
                return Err(SimError::revert("position is healthy"));
            }
            let debt = market.debt_of(ctx, borrower);
            if repay_amount > debt {
                return Err(SimError::revert("repaying more than owed"));
            }
            ctx.transfer_token(market.debt_asset, liquidator, market.address, repay_amount)?;
            ctx.sstore(market.address, Self::debt_key(borrower), debt - repay_amount);

            // Seize collateral = repaid value × (1 + bonus) at oracle spot.
            let rate = market.oracle.rate(ctx, market.debt_asset, market.collateral)?;
            let dd = ctx.token(market.debt_asset)?.decimals as i32;
            let dc = ctx.token(market.collateral)?.decimals as i32;
            let repay_whole = repay_amount as f64 / 10f64.powi(dd);
            let seize_whole =
                repay_whole * rate * (10_000 + LIQUIDATION_BONUS_BPS) as f64 / 10_000.0;
            let seize = (seize_whole * 10f64.powi(dc)) as u128;
            let coll = market.collateral_of(ctx, borrower);
            if seize > coll {
                return Err(SimError::revert("seizure exceeds collateral"));
            }
            ctx.transfer_token(market.collateral, market.address, liquidator, seize)?;
            ctx.sstore(market.address, Self::coll_key(borrower), coll - seize);
            ctx.emit_log(
                market.address,
                "LiquidateBorrow",
                vec![
                    ("liquidator".into(), LogValue::Addr(liquidator)),
                    ("borrower".into(), LogValue::Addr(borrower)),
                    ("repaid".into(), LogValue::Amount(repay_amount)),
                    ("seized".into(), LogValue::Amount(seize)),
                ],
            );
            Ok(seize)
        })
    }

    /// Repays debt and withdraws collateral. Transfers mirror
    /// [`Self::supply_and_borrow`].
    ///
    /// # Errors
    /// Reverts when repaying more than owed, withdrawing more than posted,
    /// or leaving the position undercollateralized.
    pub fn repay_and_withdraw(
        &self,
        ctx: &mut TxContext<'_>,
        who: Address,
        repay_amount: u128,
        withdraw_amount: u128,
    ) -> Result<()> {
        let market = self.clone();
        ctx.call(who, self.address, "repayAndWithdraw", 0, |ctx| {
            let debt = market.debt_of(ctx, who);
            if repay_amount > debt {
                return Err(SimError::revert("repaying more than owed"));
            }
            ctx.transfer_token(market.debt_asset, who, market.address, repay_amount)?;
            let new_debt = debt - repay_amount;
            ctx.sstore(market.address, Self::debt_key(who), new_debt);

            let coll = market.collateral_of(ctx, who);
            if withdraw_amount > coll {
                return Err(SimError::revert("withdrawing more than posted"));
            }
            let new_coll = coll - withdraw_amount;
            if new_debt > market.borrow_capacity(ctx, new_coll)? {
                return Err(SimError::revert("would become undercollateralized"));
            }
            ctx.transfer_token(market.collateral, market.address, who, withdraw_amount)?;
            ctx.sstore(market.address, Self::coll_key(who), new_coll);
            ctx.emit_log(
                market.address,
                "Repay",
                vec![
                    ("borrower".into(), LogValue::Addr(who)),
                    ("repaid".into(), LogValue::Amount(repay_amount)),
                    ("withdrawn".into(), LogValue::Amount(withdraw_amount)),
                ],
            );
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amm::{UniswapV2Factory, UniswapV2Pair};
    use ethsim::ChainConfig;

    const E18: u128 = 1_000_000_000_000_000_000;
    const E8: u128 = 100_000_000;

    struct Setup {
        chain: Chain,
        market: CompoundMarket,
        user: Address,
        eth: TokenId,
        wbtc: TokenId,
    }

    fn setup() -> Setup {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("compound deployer");
        let whale = chain.create_eoa("whale");
        let user = chain.create_eoa("user");
        let eth = TokenId::ETH;
        let mut wbtc = None;
        chain
            .execute(deployer, deployer, "deployToken", |ctx| {
                let c = ctx.create_contract(deployer)?;
                wbtc = Some(ctx.register_token("WBTC", 8, c));
                Ok(())
            })
            .unwrap();
        let wbtc = wbtc.unwrap();
        let factory =
            UniswapV2Factory::deploy_canonical(&mut chain, &mut labels, deployer).unwrap();
        let pair = UniswapV2Pair::deploy(&mut chain, &factory, eth, wbtc, "UNI ETH/WBTC").unwrap();
        chain.state_mut().credit_eth(whale, 50_000 * E18).unwrap();
        chain.state_mut().credit_eth(user, 10_000 * E18).unwrap();
        chain
            .execute(whale, pair.address, "seed", |ctx| {
                ctx.mint_token(wbtc, whale, 1_000 * E8)?;
                // 50 ETH per WBTC
                pair.add_liquidity(ctx, whale, 25_000 * E18, 500 * E8)?;
                Ok(())
            })
            .unwrap();
        let mut oracle = DexOracle::new();
        oracle.add_pair(pair);
        let market = CompoundMarket::deploy(
            &mut chain,
            &mut labels,
            deployer,
            eth,
            wbtc,
            7_500,
            oracle,
            "Compound",
        )
        .unwrap();
        // Market liquidity: 400 WBTC.
        chain
            .execute(whale, market.address, "fund", |ctx| {
                ctx.mint_token(wbtc, market.address, 400 * E8)?;
                Ok(())
            })
            .unwrap();
        Setup {
            chain,
            market,
            user,
            eth,
            wbtc,
        }
    }

    #[test]
    fn borrow_within_capacity_succeeds() {
        let s = setup();
        let mut chain = s.chain;
        chain
            .execute(s.user, s.market.address, "borrow", |ctx| {
                // 5,500 ETH at 1/50 WBTC/ETH * 75% ≈ 82.5 WBTC capacity
                let cap = s.market.borrow_capacity(ctx, 5_500 * E18)?;
                assert!(cap > 80 * E8 && cap < 85 * E8, "cap {cap}");
                s.market
                    .supply_and_borrow(ctx, s.user, 5_500 * E18, 80 * E8)?;
                assert_eq!(ctx.balance(s.wbtc, s.user), 80 * E8);
                assert_eq!(s.market.debt_of(ctx, s.user), 80 * E8);
                assert_eq!(s.market.collateral_of(ctx, s.user), 5_500 * E18);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn overborrow_reverts() {
        let s = setup();
        let mut chain = s.chain;
        let tx = chain
            .execute(s.user, s.market.address, "overborrow", |ctx| {
                s.market
                    .supply_and_borrow(ctx, s.user, 1_000 * E18, 100 * E8)
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }

    #[test]
    fn repay_and_withdraw_roundtrip() {
        let s = setup();
        let mut chain = s.chain;
        chain
            .execute(s.user, s.market.address, "cycle", |ctx| {
                s.market
                    .supply_and_borrow(ctx, s.user, 1_000 * E18, 10 * E8)?;
                s.market
                    .repay_and_withdraw(ctx, s.user, 10 * E8, 1_000 * E18)?;
                assert_eq!(s.market.debt_of(ctx, s.user), 0);
                assert_eq!(s.market.collateral_of(ctx, s.user), 0);
                assert_eq!(ctx.balance(s.eth, s.user), 10_000 * E18);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn liquidation_seizes_with_bonus_when_underwater() {
        let s = setup();
        let mut chain = s.chain;
        let liquidator = chain.create_eoa("liquidator");
        // User borrows near capacity, then WBTC appreciates (ETH collateral
        // now covers less): crash the pool's ETH side.
        chain
            .execute(s.user, s.market.address, "borrow", |ctx| {
                s.market
                    .supply_and_borrow(ctx, s.user, 1_000 * E18, 14 * E8)
            })
            .unwrap();
        // Whale pumps WBTC on the oracle pair: 1 ETH now buys less WBTC.
        let whale = chain.create_eoa("pumper");
        chain.state_mut().credit_eth(whale, 40_000 * E18).unwrap();
        let pair = s.market.oracle.pairs()[0];
        chain
            .execute(whale, pair.address, "pump", |ctx| {
                pair.swap_exact_in(ctx, whale, s.eth, 20_000 * E18, 0)?;
                Ok(())
            })
            .unwrap();
        chain
            .execute(liquidator, s.market.address, "liquidate", |ctx| {
                assert!(s.market.is_underwater(ctx, s.user)?);
                ctx.mint_token(s.wbtc, liquidator, 10 * E8)?;
                let seized = s.market.liquidate(ctx, liquidator, s.user, 4 * E8)?;
                // 4 WBTC at the (pumped) oracle rate + 8% bonus
                let rate = s.market.oracle.rate(ctx, s.wbtc, s.eth)?;
                let expected = 4.0 * rate * 1.08;
                let got = seized as f64 / E18 as f64;
                assert!((got - expected).abs() / expected < 1e-6, "{got} vs {expected}");
                assert_eq!(s.market.debt_of(ctx, s.user), 10 * E8);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn healthy_positions_cannot_be_liquidated() {
        let s = setup();
        let mut chain = s.chain;
        let liquidator = chain.create_eoa("liquidator");
        let tx = chain
            .execute(liquidator, s.market.address, "liquidate", |ctx| {
                ctx.mint_token(s.wbtc, liquidator, 10 * E8)?;
                s.market
                    .supply_and_borrow(ctx, s.user, 1_000 * E18, 5 * E8)?;
                s.market.liquidate(ctx, liquidator, s.user, E8)?;
                Ok(())
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }

    #[test]
    fn cannot_withdraw_into_undercollateralization() {
        let s = setup();
        let mut chain = s.chain;
        let tx = chain
            .execute(s.user, s.market.address, "sneak", |ctx| {
                s.market
                    .supply_and_borrow(ctx, s.user, 1_000 * E18, 14 * E8)?;
                // withdraw nearly all collateral while still owing 14 WBTC
                s.market.repay_and_withdraw(ctx, s.user, 0, 990 * E18)
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }
}

//! Metamorphic mutation operators.
//!
//! Each operator transforms a whole [`FuzzCase`] and states, as part of its
//! contract, what must happen to the verdicts:
//!
//! * **Preserving** operators exploit invariances of the pipeline — the
//!   detector analyzes transactions independently (reordering,
//!   interleaving), tags only transfer endpoints by name (renaming, no-op
//!   frames), and compares amounts only through ratios (power-of-two
//!   scaling is exact in `f64`). Verdicts must be unchanged.
//! * **Breaking** operators remove exactly the evidence a detection rests
//!   on — the Table II identification signatures, or the SBS symmetry —
//!   and must flip flagged → cleared.
//!
//! Soundness notes justifying each relation live on the variants; they are
//! load-bearing (an unsound operator turns into false oracle violations).

use std::collections::{HashMap, HashSet};

use ethsim::{Address, CallFrame, EventLog, LogValue, TokenId, Transfer, TxRecord};

use crate::patterns::PatternKind;

use super::rng::FuzzRng;
use super::{FuzzCase, Mutant, SeedCase, TxExpect};

/// Frame function names with Table II identification meaning; the no-op
/// wrapper must never introduce them.
const RESERVED_FRAMES: &[&str] = &["uniswapV2Call", "swap", "flashLoan"];

/// Log names with Table II identification meaning.
const RESERVED_LOGS: &[&str] =
    &["FlashLoan", "LogOperation", "LogWithdraw", "LogCall", "LogDeposit"];

/// Neutral function names the no-op wrapper draws from.
const NOOP_FRAMES: &[&str] = &["multicallProxy", "delegateHop", "batchRelay"];

/// `ethsim::SpanId` packs a sequence number into 20 bits; mutations that
/// renumber sequence positions must stay under this.
const MAX_SEQ: u32 = (1 << 20) - 2;

/// Whether an operator's contract preserves or breaks detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpFamily {
    /// Verdicts must be byte-identical to the seed's.
    Preserving,
    /// The targeted flagged transaction must come out cleared.
    Breaking,
}

/// The mutation operators, in campaign round-robin order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operator {
    /// Shuffle whole transactions (with their expectations). Sound because
    /// the pipeline analyzes each transaction independently; batch order
    /// only affects scheduling.
    ReorderTxs,
    /// Insert 1–3 benign pool transactions (fresh ids) at random
    /// positions. Sound for the same independence reason; the insertions
    /// carry their own expectations.
    InterleaveBenign,
    /// Apply a fresh bijection to every address and every non-ETH token.
    /// Sound because tagging depends on label *strings* and the shape of
    /// the creation tree, not on address identity, and ETH (which simplify
    /// unifies WETH into) is kept fixed.
    RenameAddresses,
    /// Multiply every amount by a power of two (2, 4 or 8). Sound because
    /// every detector comparison is a ratio or an equal-scaled inequality,
    /// and power-of-two scaling commutes exactly with `u128 → f64`
    /// rounding, so even the float comparisons are bit-identical.
    ScaleAmounts,
    /// Append call frames (and one log) with neutral names. Sound because
    /// identification matches only the reserved Table II names and tagging
    /// looks only at transfer endpoints.
    WrapNoopFrames,
    /// Remove the Table II identification evidence (the `uniswapV2Call`
    /// callback frame, `FlashLoan` and `LogOperation` logs) from a
    /// flash-loan transaction: identification must now find nothing, so
    /// the pipeline stops and the transaction is cleared.
    StripFlashLoan,
    /// Split every resell leg of an SBS-only attack into two halves. The
    /// halves share token and direction, so no Table III window form can
    /// consume them together (`distinct3` and the two-transfer forms both
    /// require the second leg to flow back), leaving a sell of roughly
    /// half the bought amount — far outside the 0.1% symmetry tolerance —
    /// so SBS must reject and the transaction is cleared.
    SplitRepay,
}

impl Operator {
    /// All operators, in campaign round-robin order.
    pub const ALL: [Operator; 7] = [
        Operator::ReorderTxs,
        Operator::InterleaveBenign,
        Operator::RenameAddresses,
        Operator::ScaleAmounts,
        Operator::WrapNoopFrames,
        Operator::StripFlashLoan,
        Operator::SplitRepay,
    ];

    /// Stable snake-case name (JSON reports, corpus file names).
    pub fn name(self) -> &'static str {
        match self {
            Operator::ReorderTxs => "reorder_txs",
            Operator::InterleaveBenign => "interleave_benign",
            Operator::RenameAddresses => "rename_addresses",
            Operator::ScaleAmounts => "scale_amounts",
            Operator::WrapNoopFrames => "wrap_noop_frames",
            Operator::StripFlashLoan => "strip_flash_loan",
            Operator::SplitRepay => "split_repay",
        }
    }

    /// Parses [`Operator::name`] back (corpus loading).
    pub fn from_name(name: &str) -> Option<Operator> {
        Operator::ALL.into_iter().find(|op| op.name() == name)
    }

    /// Which contract family the operator belongs to.
    pub fn family(self) -> OpFamily {
        match self {
            Operator::StripFlashLoan | Operator::SplitRepay => OpFamily::Breaking,
            _ => OpFamily::Preserving,
        }
    }

    /// Convenience: is this a detection-preserving operator?
    pub fn is_preserving(self) -> bool {
        self.family() == OpFamily::Preserving
    }

    /// Applies the operator to the seed, returning the mutant plus its
    /// expectations, or `None` when the operator is not applicable (e.g.
    /// no SBS-only transaction to split).
    pub fn apply(self, seed: &SeedCase, rng: &mut FuzzRng) -> Option<Mutant> {
        let mut case = seed.case.clone();
        let mut expect = seed.expect.clone();
        match self {
            Operator::ReorderTxs => reorder(&mut case, &mut expect, rng)?,
            Operator::InterleaveBenign => interleave(&mut case, &mut expect, &seed.pool, rng)?,
            Operator::RenameAddresses => {
                let salt = rng.next_u64();
                let (renamed, _) = rename_case(&case, salt);
                case = renamed;
            }
            Operator::ScaleAmounts => scale(&mut case, rng)?,
            Operator::WrapNoopFrames => wrap_noop(&mut case, rng)?,
            Operator::StripFlashLoan => strip_flash_loan(&mut case, &mut expect, seed, rng)?,
            Operator::SplitRepay => split_repay(&mut case, &mut expect, seed, rng)?,
        }
        Some(Mutant { operator: self, case, expect })
    }
}

impl std::fmt::Display for Operator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Preserving operators
// ---------------------------------------------------------------------------

fn reorder(case: &mut FuzzCase, expect: &mut [TxExpect], rng: &mut FuzzRng) -> Option<()> {
    if case.txs.len() < 2 {
        return None;
    }
    let mut perm: Vec<usize> = (0..case.txs.len()).collect();
    rng.shuffle(&mut perm);
    let txs = std::mem::take(&mut case.txs);
    let old_expect = expect.to_vec();
    let mut reordered_txs = Vec::with_capacity(txs.len());
    let mut txs: Vec<Option<TxRecord>> = txs.into_iter().map(Some).collect();
    for (slot, &src) in perm.iter().enumerate() {
        reordered_txs.push(txs[src].take().expect("permutation visits each index once"));
        expect[slot] = old_expect[src].clone();
    }
    case.txs = reordered_txs;
    Some(())
}

fn interleave(
    case: &mut FuzzCase,
    expect: &mut Vec<TxExpect>,
    pool: &[(TxRecord, TxExpect)],
    rng: &mut FuzzRng,
) -> Option<()> {
    if pool.is_empty() {
        return None;
    }
    let next_id = case
        .txs
        .iter()
        .map(|tx| tx.id.0)
        .chain(pool.iter().map(|(tx, _)| tx.id.0))
        .max()
        .unwrap_or(0)
        + 1;
    let n = rng.range(1, 3);
    for j in 0..n {
        let (tx, ex) = rng.pick(pool);
        let mut tx = tx.clone();
        tx.id.0 = next_id + j as u64;
        let at = rng.below(case.txs.len() + 1);
        case.txs.insert(at, tx);
        expect.insert(at, ex.clone());
    }
    Some(())
}

/// Renames every address and every non-ETH token in `case` through a fresh
/// bijection derived from `salt`, returning the renamed case and the
/// address mapping (old → new) for property tests.
///
/// `Address::ZERO` (the BlackHole) and `TokenId::ETH` are fixed points:
/// simplify rewrites the WETH token to ETH unconditionally, and the mint /
/// burn trade forms test for the BlackHole, so moving either would change
/// semantics.
pub fn rename_case(case: &FuzzCase, salt: u64) -> (FuzzCase, Vec<(Address, Address)>) {
    // Deterministic first-appearance order: transactions, then creation
    // records, then labels sorted by address bytes (label iteration order
    // is a hash map's, so it must not influence the mapping).
    let mut order: Vec<Address> = Vec::new();
    let mut seen: HashSet<Address> = HashSet::new();
    let note = |order: &mut Vec<Address>, seen: &mut HashSet<Address>, a: Address| {
        if !a.is_zero() && seen.insert(a) {
            order.push(a);
        }
    };
    for tx in &case.txs {
        note(&mut order, &mut seen, tx.from);
        note(&mut order, &mut seen, tx.to);
        for t in &tx.trace.transfers {
            note(&mut order, &mut seen, t.sender);
            note(&mut order, &mut seen, t.receiver);
        }
        for f in &tx.trace.frames {
            note(&mut order, &mut seen, f.caller);
            note(&mut order, &mut seen, f.callee);
        }
        for l in &tx.trace.logs {
            note(&mut order, &mut seen, l.emitter);
            for (_, v) in &l.params {
                if let LogValue::Addr(a) = v {
                    note(&mut order, &mut seen, *a);
                }
            }
        }
        for c in &tx.trace.created {
            note(&mut order, &mut seen, *c);
        }
    }
    for r in &case.creations {
        note(&mut order, &mut seen, r.creator);
        note(&mut order, &mut seen, r.created);
    }
    let mut labeled: Vec<Address> = case.labels.iter().map(|(a, _)| a).collect();
    labeled.sort_by_key(|a| *a.as_bytes());
    for a in labeled {
        note(&mut order, &mut seen, a);
    }

    let mut addr_map: HashMap<Address, Address> = HashMap::with_capacity(order.len());
    let mut used: HashSet<Address> = HashSet::new();
    for (i, old) in order.iter().enumerate() {
        // `from_seed` is hash-derived; bump the nonce on the (vanishingly
        // unlikely) collision so the mapping stays injective.
        let mut nonce = 0u32;
        let fresh = loop {
            let candidate = Address::from_seed(&format!("fuzz:rename:{salt}:{i}:{nonce}"));
            if !candidate.is_zero() && used.insert(candidate) {
                break candidate;
            }
            nonce += 1;
        };
        addr_map.insert(*old, fresh);
    }
    let map = |a: Address| if a.is_zero() { a } else { addr_map[&a] };

    // Token bijection: ETH fixed, everything else moved past the highest
    // observed index so old and new ranges cannot collide.
    let mut tokens: Vec<TokenId> = Vec::new();
    let mut tok_seen: HashSet<TokenId> = HashSet::new();
    let note_tok = |tokens: &mut Vec<TokenId>, tok_seen: &mut HashSet<TokenId>, t: TokenId| {
        if !t.is_eth() && tok_seen.insert(t) {
            tokens.push(t);
        }
    };
    for tx in &case.txs {
        for t in &tx.trace.transfers {
            note_tok(&mut tokens, &mut tok_seen, t.token);
        }
        for l in &tx.trace.logs {
            for (_, v) in &l.params {
                if let LogValue::Token(t) = v {
                    note_tok(&mut tokens, &mut tok_seen, *t);
                }
            }
        }
    }
    if let Some(w) = case.weth {
        note_tok(&mut tokens, &mut tok_seen, w);
    }
    let base = tokens.iter().map(|t| t.index()).max().unwrap_or(0) as u32 + 1;
    let tok_map: HashMap<TokenId, TokenId> = tokens
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, TokenId::from_index(base + i as u32)))
        .collect();
    let map_tok = |t: TokenId| if t.is_eth() { t } else { tok_map[&t] };

    let mut out = case.clone();
    for tx in &mut out.txs {
        tx.from = map(tx.from);
        tx.to = map(tx.to);
        for t in &mut tx.trace.transfers {
            t.sender = map(t.sender);
            t.receiver = map(t.receiver);
            t.token = map_tok(t.token);
        }
        for f in &mut tx.trace.frames {
            f.caller = map(f.caller);
            f.callee = map(f.callee);
        }
        for l in &mut tx.trace.logs {
            l.emitter = map(l.emitter);
            for (_, v) in &mut l.params {
                match v {
                    LogValue::Addr(a) => *a = map(*a),
                    LogValue::Token(t) => *t = map_tok(*t),
                    _ => {}
                }
            }
        }
        for c in &mut tx.trace.created {
            *c = map(*c);
        }
    }
    for r in &mut out.creations {
        r.creator = map(r.creator);
        r.created = map(r.created);
    }
    let mut labels = crate::labels::Labels::new();
    for (a, name) in case.labels.iter() {
        labels.set(map(a), name);
    }
    out.labels = labels;
    out.weth = case.weth.map(map_tok);

    let pairs = order.iter().map(|&a| (a, addr_map[&a])).collect();
    (out, pairs)
}

fn scale(case: &mut FuzzCase, rng: &mut FuzzRng) -> Option<()> {
    let k: u128 = 1 << rng.range(1, 3); // 2, 4 or 8
    let limit = u128::MAX / k;
    let fits = case.txs.iter().all(|tx| {
        tx.trace.transfers.iter().all(|t| t.amount <= limit)
            && tx.trace.frames.iter().all(|f| f.value <= limit)
            && tx.trace.logs.iter().all(|l| {
                l.params.iter().all(|(_, v)| match v {
                    LogValue::Amount(a) => *a <= limit,
                    _ => true,
                })
            })
    });
    if !fits {
        return None;
    }
    for tx in &mut case.txs {
        for t in &mut tx.trace.transfers {
            t.amount *= k;
        }
        for f in &mut tx.trace.frames {
            f.value *= k;
        }
        for l in &mut tx.trace.logs {
            for (_, v) in &mut l.params {
                if let LogValue::Amount(a) = v {
                    *a *= k;
                }
            }
        }
    }
    Some(())
}

fn wrap_noop(case: &mut FuzzCase, rng: &mut FuzzRng) -> Option<()> {
    if case.txs.is_empty() {
        return None;
    }
    let tx_index = rng.below(case.txs.len());
    let tx = &mut case.txs[tx_index];
    let mut seq = next_seq(tx);
    let n = rng.range(1, 3);
    if seq + n as u32 + 1 > MAX_SEQ {
        return None;
    }
    for _ in 0..n {
        let function = (*rng.pick(NOOP_FRAMES)).to_string();
        debug_assert!(!RESERVED_FRAMES.contains(&function.as_str()));
        tx.trace.frames.push(CallFrame {
            seq,
            depth: 1,
            caller: tx.from,
            callee: tx.to,
            function,
            value: 0,
        });
        seq += 1;
    }
    debug_assert!(!RESERVED_LOGS.contains(&"FuzzNoop"));
    tx.trace.logs.push(EventLog {
        seq,
        emitter: tx.to,
        name: "FuzzNoop".to_string(),
        params: vec![("probe".to_string(), LogValue::Text("metamorphic".to_string()))],
    });
    Some(())
}

/// First free sequence position in a transaction's action stream.
fn next_seq(tx: &TxRecord) -> u32 {
    let t = tx.trace.transfers.iter().map(|t| t.seq).max().unwrap_or(0);
    let l = tx.trace.logs.iter().map(|l| l.seq).max().unwrap_or(0);
    let f = tx.trace.frames.iter().map(|f| f.seq).max().unwrap_or(0);
    t.max(l).max(f) + 1
}

// ---------------------------------------------------------------------------
// Breaking operators
// ---------------------------------------------------------------------------

fn strip_flash_loan(
    case: &mut FuzzCase,
    expect: &mut [TxExpect],
    seed: &SeedCase,
    rng: &mut FuzzRng,
) -> Option<()> {
    let targets: Vec<usize> = seed
        .refs
        .iter()
        .enumerate()
        .filter(|(_, a)| !a.flash_loans.is_empty())
        .map(|(i, _)| i)
        .collect();
    if targets.is_empty() {
        return None;
    }
    let i = *rng.pick(&targets);
    let tx = &mut case.txs[i];
    tx.trace.frames.retain(|f| f.function != "uniswapV2Call");
    tx.trace.logs.retain(|l| l.name != "FlashLoan" && l.name != "LogOperation");
    expect[i] = TxExpect { flagged: false, flash_loan: Some(false), kinds: Some(Vec::new()) };
    Some(())
}

fn split_repay(
    case: &mut FuzzCase,
    expect: &mut [TxExpect],
    seed: &SeedCase,
    rng: &mut FuzzRng,
) -> Option<()> {
    // Applicable to transactions whose *only* detection evidence is one
    // SBS match: breaking its symmetry must clear the transaction.
    let targets: Vec<usize> = seed
        .refs
        .iter()
        .enumerate()
        .filter(|(_, a)| a.matches.len() == 1 && a.matches[0].kind == PatternKind::Sbs)
        .map(|(i, _)| i)
        .collect();
    if targets.is_empty() {
        return None;
    }
    let i = *rng.pick(&targets);
    let m = &seed.refs[i].matches[0];
    let sell_seq = *m.trade_seqs.last()?;
    let tx = &mut case.txs[i];
    if next_seq(tx) * 2 + 1 > MAX_SEQ {
        return None;
    }
    // Split every target-token transfer from the resell phase onward —
    // including the whole pass-through chain, so simplification cannot
    // re-merge a full-amount leg. Every split leg must carry at least two
    // units for the halves to be non-empty.
    let candidates: Vec<usize> = tx
        .trace
        .transfers
        .iter()
        .enumerate()
        .filter(|(_, t)| t.seq >= sell_seq && t.token == m.target_token)
        .map(|(j, _)| j)
        .collect();
    if candidates.is_empty()
        || candidates.iter().any(|&j| tx.trace.transfers[j].amount < 2)
    {
        return None;
    }
    for t in &mut tx.trace.transfers {
        t.seq *= 2;
    }
    for l in &mut tx.trace.logs {
        l.seq *= 2;
    }
    for f in &mut tx.trace.frames {
        f.seq *= 2;
    }
    // Walk candidates back to front so earlier indices stay valid.
    for &j in candidates.iter().rev() {
        let t = tx.trace.transfers[j].clone();
        let half = t.amount / 2;
        tx.trace.transfers[j].amount = half;
        tx.trace.transfers.insert(
            j + 1,
            Transfer { seq: t.seq + 1, amount: t.amount - half, ..t },
        );
    }
    expect[i] = TxExpect {
        flagged: false,
        flash_loan: seed.expect[i].flash_loan,
        kinds: Some(Vec::new()),
    };
    Some(())
}

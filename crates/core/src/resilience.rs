//! Fault isolation, input quarantine, and reproducible fault injection.
//!
//! LeiShen is meant to run continuously over an adversarial transaction
//! stream. One malformed record — or one panic deep in a matcher — must
//! degrade a *single transaction's* verdict, never a whole batch. This
//! module provides the vocabulary and the harness for that guarantee:
//!
//! * **Quarantine** — a transaction the scan could not analyze gets a
//!   [`Verdict::Indeterminate`] carrying a structured [`Quarantine`]
//!   (which fault, at which pipeline stage, after how many attempts)
//!   instead of aborting the worker. Machine-readable reasons flow into
//!   provenance traces ([`crate::trace::Reason::Indeterminate`]) and
//!   telemetry counters
//!   ([`crate::telemetry::TxCountersTotal::quarantined`]).
//! * **Policy** — [`ResilienceConfig`] decides whether inputs are
//!   validated against the `ethsim` invariant list before analysis and
//!   whether a panicking analysis is retried once with fresh scratch
//!   state (transient faults — an injected panic, a poisoned cache line
//!   — succeed on retry; deterministic ones quarantine).
//! * **Fault injection** — a seed-deterministic [`FaultPlan`] assigns
//!   faults to corpus positions: corrupted inputs applied at the
//!   `ethsim` boundary by the `scenarios` crate's corruption
//!   generators, plus induced panics/delays landed mid-pipeline by a
//!   [`FaultInjector`] sink at exact [`Stage`] boundaries. The same
//!   seed reproduces the same campaign, like the fuzz harness.
//!
//! The scan-side integration lives in [`crate::scan::ScanEngine`]
//! (`scan_resilient*`); the chaos campaign bin and `BENCH_chaos.json`
//! schema are described in `EXPERIMENTS.md`.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use ethsim::{RecordViolation, TxId};
use parking_lot::Mutex;

use crate::detector::Analysis;
use crate::fuzz::FuzzRng;
use crate::scan::ScanStats;
use crate::telemetry::{MetricsSink, Stage, StageLaps, TxCounters};

/// Prefix of every panic payload raised by a [`FaultInjector`]. The
/// stage name follows the prefix, so the quarantine logic can attribute
/// the fault to a pipeline stage, and [`install_quiet_hook`] can
/// suppress the default panic banner for injected (expected) panics.
pub const INDUCED_PANIC_PREFIX: &str = "injected-fault@";

// ---------------------------------------------------------------------------
// Quarantine vocabulary
// ---------------------------------------------------------------------------

/// Why a transaction could not be analyzed.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// The record failed [`ethsim::validate_record`] — it never reached
    /// the pipeline.
    InvalidInput {
        /// Every invariant the record violated, in check order.
        violations: Vec<RecordViolation>,
    },
    /// The analysis panicked (and, under a retry policy, panicked
    /// again on the retry).
    Panic {
        /// The panic payload, stringified.
        message: String,
    },
    /// The per-block deadline budget expired before this transaction
    /// was analyzed. The streaming service downgrades late work to
    /// [`Verdict::Indeterminate`] instead of stalling the stream; the
    /// transaction never entered the pipeline.
    Deadline,
}

impl Fault {
    /// Stable machine-readable code: `invalid_input`, `panic`, or
    /// `deadline`.
    pub fn code(&self) -> &'static str {
        match self {
            Fault::InvalidInput { .. } => "invalid_input",
            Fault::Panic { .. } => "panic",
            Fault::Deadline => "deadline",
        }
    }
}

/// A transaction the resilient scan refused to produce a verdict for.
#[derive(Clone, Debug, PartialEq)]
pub struct Quarantine {
    /// The quarantined transaction.
    pub tx: TxId,
    /// Its position in the scanned batch.
    pub index: usize,
    /// What went wrong.
    pub fault: Fault,
    /// The pipeline stage the fault was attributed to, when known
    /// (injected panics carry their stage in the payload; input
    /// validation happens before any stage runs).
    pub stage: Option<Stage>,
    /// Analysis attempts made before giving up (0 for invalid input —
    /// the record never entered the pipeline).
    pub attempts: u32,
}

impl Quarantine {
    /// One-token machine-readable reason, used in provenance traces and
    /// `BENCH_chaos.json`: `invalid_input:<code>+<code>...` or
    /// `panic@<stage>` / `panic`.
    pub fn reason(&self) -> String {
        match &self.fault {
            Fault::InvalidInput { violations } => {
                let codes: Vec<&str> = violations.iter().map(|v| v.code()).collect();
                format!("invalid_input:{}", codes.join("+"))
            }
            Fault::Panic { .. } => match self.stage {
                Some(stage) => format!("panic@{}", stage.name()),
                None => "panic".to_string(),
            },
            Fault::Deadline => "deadline".to_string(),
        }
    }
}

/// The per-transaction outcome of a resilient scan: a completed
/// [`Analysis`], or a degraded-mode marker that refuses to claim either
/// "attack" or "benign".
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// The pipeline completed; the verdict is trustworthy.
    Analyzed(Analysis),
    /// The pipeline did not complete; treat the transaction as
    /// *unknown*, not as benign.
    Indeterminate(Quarantine),
}

impl Verdict {
    /// The analysis, if the pipeline completed.
    pub fn analysis(&self) -> Option<&Analysis> {
        match self {
            Verdict::Analyzed(a) => Some(a),
            Verdict::Indeterminate(_) => None,
        }
    }

    /// The quarantine record, if the transaction was quarantined.
    pub fn quarantine(&self) -> Option<&Quarantine> {
        match self {
            Verdict::Analyzed(_) => None,
            Verdict::Indeterminate(q) => Some(q),
        }
    }

    /// Whether this transaction ended in degraded mode.
    pub fn is_indeterminate(&self) -> bool {
        matches!(self, Verdict::Indeterminate(_))
    }
}

/// What the resilient scan does about faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Run [`ethsim::validate_record`] before analysis and quarantine
    /// records that violate the executor invariants (recommended: the
    /// pipeline is only hardened against records the executor could
    /// have produced).
    pub validate_inputs: bool,
    /// Retry a panicked analysis once with fresh scratch state before
    /// quarantining. Transient faults (scheduling artifacts, injected
    /// chaos) succeed on retry; deterministic panics quarantine on the
    /// second attempt.
    pub retry_once: bool,
    /// Absolute wall-clock deadline for the scan. A transaction whose
    /// analysis has not *started* by this instant is quarantined with
    /// [`Fault::Deadline`] instead of being analyzed — the scan keeps
    /// draining its inputs (every transaction still gets a verdict) but
    /// stops paying for analysis. `None` (the default) never expires,
    /// and batch semantics are byte-identical to the pre-deadline
    /// engine. The streaming service derives one deadline per block
    /// from its [`crate::stream::StreamConfig::block_budget`].
    pub deadline: Option<std::time::Instant>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            validate_inputs: true,
            retry_once: true,
            deadline: None,
        }
    }
}

impl ResilienceConfig {
    /// The recommended policy: validate inputs, retry once.
    pub fn new() -> Self {
        ResilienceConfig::default()
    }

    /// Disables input validation (panics are still isolated).
    pub fn without_validation(mut self) -> Self {
        self.validate_inputs = false;
        self
    }

    /// Disables the retry, quarantining on the first panic.
    pub fn without_retry(mut self) -> Self {
        self.retry_once = false;
        self
    }

    /// Sets an absolute deadline: transactions not yet started by
    /// `deadline` are downgraded to [`Verdict::Indeterminate`] with
    /// [`Fault::Deadline`].
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// The outcome of [`crate::scan::ScanEngine::scan_resilient`]: one
/// verdict per input transaction, in input order, plus run stats.
#[derive(Debug)]
pub struct ResilientScan {
    /// One verdict per scanned transaction, in input order.
    pub verdicts: Vec<Verdict>,
    /// Run statistics ([`ScanStats::quarantined`] counts the
    /// indeterminate verdicts).
    pub stats: ScanStats,
}

impl ResilientScan {
    /// The completed analyses, in input order (quarantined positions
    /// are skipped).
    pub fn analyses(&self) -> impl Iterator<Item = &Analysis> {
        self.verdicts.iter().filter_map(Verdict::analysis)
    }

    /// The quarantine records, in input order.
    pub fn quarantines(&self) -> impl Iterator<Item = &Quarantine> {
        self.verdicts.iter().filter_map(Verdict::quarantine)
    }

    /// The input positions of the quarantined transactions, in input
    /// order. Useful for asserting that two scans of the same corpus —
    /// serial and wave-scheduled, say — sidelined exactly the same
    /// records.
    pub fn quarantined_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.quarantines().map(|q| q.index)
    }

    /// Whether every transaction was fully analyzed.
    pub fn is_fully_analyzed(&self) -> bool {
        self.stats.quarantined == 0
    }
}

// ---------------------------------------------------------------------------
// Panic payload helpers
// ---------------------------------------------------------------------------

/// Stringifies a caught panic payload (`&str` and `String` payloads
/// verbatim, anything else a placeholder).
pub(crate) fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The pipeline stage encoded in an injected panic payload, if any.
pub(crate) fn stage_of_payload(message: &str) -> Option<Stage> {
    message
        .strip_prefix(INDUCED_PANIC_PREFIX)
        .and_then(Stage::from_name)
}

/// Installs a process-wide panic hook that stays silent for panics
/// raised by a [`FaultInjector`] (their payloads start with
/// [`INDUCED_PANIC_PREFIX`]) and defers to the previous hook for
/// everything else. Chaos campaigns call this once at startup so
/// thousands of expected injected panics don't flood stderr; genuine
/// panics still print.
pub fn install_quiet_hook() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = payload_message(info.payload());
        if !message.starts_with(INDUCED_PANIC_PREFIX) {
            previous(info);
        }
    }));
}

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// The corrupted-input fault kinds the chaos generators know how to
/// apply at the `ethsim` boundary (each breaks exactly one
/// [`ethsim::validate_record`] invariant — the validator is the
/// ground-truth list these were derived from).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InputFault {
    /// Journal entries dropped — the seq union is no longer contiguous.
    TruncatedJournal,
    /// Transfer order scrambled — per-stream seqs stop increasing.
    ShuffledSeqs,
    /// Frame depths rewritten so no call tree can produce them.
    CyclicFrames,
    /// A transfer amount pushed past the executor's checked range.
    OverflowAmount,
    /// A log pointed at a journal position that does not exist.
    DanglingLog,
}

impl InputFault {
    /// Every corrupted-input fault kind.
    pub const ALL: [InputFault; 5] = [
        InputFault::TruncatedJournal,
        InputFault::ShuffledSeqs,
        InputFault::CyclicFrames,
        InputFault::OverflowAmount,
        InputFault::DanglingLog,
    ];

    /// Stable snake_case name (used in `BENCH_chaos.json` and
    /// `LEISHEN_CHAOS_FAULTS`).
    pub fn name(self) -> &'static str {
        match self {
            InputFault::TruncatedJournal => "truncated_journal",
            InputFault::ShuffledSeqs => "shuffled_seqs",
            InputFault::CyclicFrames => "cyclic_frames",
            InputFault::OverflowAmount => "overflow_amount",
            InputFault::DanglingLog => "dangling_log",
        }
    }

    /// Inverse of [`InputFault::name`].
    pub fn from_name(name: &str) -> Option<InputFault> {
        InputFault::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// A fault induced *inside* the pipeline (as opposed to a corrupted
/// input), landed by a [`FaultInjector`] at a stage boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InducedFault {
    /// Panic when the transaction crosses `stage`'s boundary.
    Panic {
        /// Which stage boundary.
        stage: Stage,
    },
    /// Stall for `micros` when the transaction crosses `stage`'s
    /// boundary (models a hung dependency rather than a crash).
    Delay {
        /// Which stage boundary.
        stage: Stage,
        /// How long to stall, microseconds.
        micros: u32,
    },
}

impl InducedFault {
    /// The stage this fault lands at.
    pub fn stage(self) -> Stage {
        match self {
            InducedFault::Panic { stage } | InducedFault::Delay { stage, .. } => stage,
        }
    }
}

/// One planned fault for one corpus position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlannedFault {
    /// Corrupt the record before it reaches the scan.
    Input(InputFault),
    /// Panic or stall mid-pipeline while the record is analyzed.
    Induced(InducedFault),
}

/// A seed-deterministic assignment of faults to corpus positions.
///
/// The same `(seed, rate, fault menu)` triple always produces the same
/// [`FaultPlan::assign`] output, so a chaos campaign replays exactly —
/// the same property the fuzz campaigns have.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Campaign seed.
    pub seed: u64,
    /// Faults per 1000 transactions (1000 = every transaction).
    pub rate_permille: u32,
    /// Corrupted-input kinds to draw from.
    pub input_faults: Vec<InputFault>,
    /// Stages eligible for induced panics (empty disables them).
    pub panic_stages: Vec<Stage>,
    /// Stages eligible for induced delays (empty disables them).
    pub delay_stages: Vec<Stage>,
    /// Induced delay length, microseconds.
    pub delay_micros: u32,
}

/// The pipeline stages the tentpole targets for induced faults
/// (tagging, simplification, pattern matching — the three stages that
/// touch the most adversarial-controlled structure).
const DEFAULT_INDUCED_STAGES: [Stage; 3] = [Stage::Tagging, Stage::Simplify, Stage::Patterns];

impl FaultPlan {
    /// A plan over every fault kind: all five input corruptions plus
    /// induced panics and 50µs delays at tagging/simplify/patterns.
    pub fn new(seed: u64, rate_permille: u32) -> Self {
        FaultPlan {
            seed,
            rate_permille: rate_permille.min(1000),
            input_faults: InputFault::ALL.to_vec(),
            panic_stages: DEFAULT_INDUCED_STAGES.to_vec(),
            delay_stages: DEFAULT_INDUCED_STAGES.to_vec(),
            delay_micros: 50,
        }
    }

    /// A plan drawing only corrupted-input faults.
    pub fn inputs_only(seed: u64, rate_permille: u32) -> Self {
        let mut plan = FaultPlan::new(seed, rate_permille);
        plan.panic_stages.clear();
        plan.delay_stages.clear();
        plan
    }

    /// Builds a plan from the environment, for wiring chaos into any
    /// existing binary without new flags:
    ///
    /// * `LEISHEN_CHAOS=1` enables (unset/`0` returns `None`);
    /// * `LEISHEN_CHAOS_SEED` — campaign seed (default 42);
    /// * `LEISHEN_CHAOS_RATE_PERMILLE` — fault rate (default 100, i.e.
    ///   10%);
    /// * `LEISHEN_CHAOS_FAULTS` — comma-separated [`InputFault::name`]s
    ///   restricting the input-fault menu (default: all; unknown names
    ///   are ignored).
    pub fn from_env() -> Option<FaultPlan> {
        let enabled = std::env::var("LEISHEN_CHAOS").is_ok_and(|v| v != "0" && !v.is_empty());
        if !enabled {
            return None;
        }
        let seed = std::env::var("LEISHEN_CHAOS_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        let rate = std::env::var("LEISHEN_CHAOS_RATE_PERMILLE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        let mut plan = FaultPlan::new(seed, rate);
        if let Ok(list) = std::env::var("LEISHEN_CHAOS_FAULTS") {
            let picked: Vec<InputFault> = list
                .split(',')
                .filter_map(|name| InputFault::from_name(name.trim()))
                .collect();
            if !picked.is_empty() {
                plan.input_faults = picked;
            }
        }
        Some(plan)
    }

    /// The flattened fault menu this plan draws from, in stable order.
    pub fn menu(&self) -> Vec<PlannedFault> {
        let mut menu: Vec<PlannedFault> =
            self.input_faults.iter().map(|&f| PlannedFault::Input(f)).collect();
        menu.extend(
            self.panic_stages
                .iter()
                .map(|&stage| PlannedFault::Induced(InducedFault::Panic { stage })),
        );
        if self.delay_micros > 0 {
            menu.extend(self.delay_stages.iter().map(|&stage| {
                PlannedFault::Induced(InducedFault::Delay {
                    stage,
                    micros: self.delay_micros,
                })
            }));
        }
        menu
    }

    /// Deterministically assigns faults to the positions of a
    /// `corpus_len`-transaction batch. Each position independently
    /// draws "faulted?" at `rate_permille`, then a fault uniformly
    /// from [`FaultPlan::menu`].
    pub fn assign(&self, corpus_len: usize) -> Vec<Option<PlannedFault>> {
        let menu = self.menu();
        let mut rng = FuzzRng::new(self.seed);
        (0..corpus_len)
            .map(|_| {
                // Always consume the same number of draws per position
                // so assignments at different rates stay aligned.
                let roll = rng.below(1000) as u32;
                let pick = rng.below(menu.len().max(1));
                if roll < self.rate_permille && !menu.is_empty() {
                    Some(menu[pick])
                } else {
                    None
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Induced-fault injector (a MetricsSink wrapper)
// ---------------------------------------------------------------------------

/// Shared injector state, reachable from every worker front.
#[derive(Debug)]
struct InjectorState {
    by_tx: HashMap<TxId, InducedFault>,
    /// Faults fire once per transaction: the first crossing of the
    /// target stage trips the fault, the retry passes. This is what
    /// makes induced faults *transient* — under a retry-once policy
    /// every planned transaction still gets a real verdict.
    fired: Mutex<HashSet<TxId>>,
    panics_fired: AtomicU64,
    delays_fired: AtomicU64,
}

impl InjectorState {
    fn maybe_fire(&self, tx: TxId, stage: Stage) {
        let Some(&fault) = self.by_tx.get(&tx) else {
            return;
        };
        if fault.stage() != stage || !self.fired.lock().insert(tx) {
            return;
        }
        match fault {
            InducedFault::Panic { stage } => {
                self.panics_fired.fetch_add(1, Ordering::Relaxed);
                panic!("{INDUCED_PANIC_PREFIX}{}", stage.name());
            }
            InducedFault::Delay { micros, .. } => {
                self.delays_fired.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_micros(u64::from(micros)));
            }
        }
    }
}

/// A [`MetricsSink`] wrapper that lands planned [`InducedFault`]s at
/// exact pipeline-stage boundaries, forwarding every telemetry hook to
/// the wrapped sink.
///
/// The injector keys faults by [`TxId`], so it works identically under
/// serial and work-stealing parallel scans regardless of which worker
/// picks the transaction up. Each fault fires exactly once (see
/// [`FaultInjector::panics_fired`]); a retried analysis therefore
/// completes, modelling a transient fault.
#[derive(Debug)]
pub struct FaultInjector<S> {
    state: InjectorState,
    inner: S,
}

impl<S: MetricsSink> FaultInjector<S> {
    /// Wraps `inner`, planning `faults` as `(transaction, fault)`
    /// pairs (typically derived from [`FaultPlan::assign`]).
    pub fn new(inner: S, faults: impl IntoIterator<Item = (TxId, InducedFault)>) -> Self {
        FaultInjector {
            state: InjectorState {
                by_tx: faults.into_iter().collect(),
                fired: Mutex::new(HashSet::new()),
                panics_fired: AtomicU64::new(0),
                delays_fired: AtomicU64::new(0),
            },
            inner,
        }
    }

    /// The wrapped sink (e.g. to read a `RecordingSink`'s totals).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Panics fired so far.
    pub fn panics_fired(&self) -> u64 {
        self.state.panics_fired.load(Ordering::Relaxed)
    }

    /// Delays fired so far.
    pub fn delays_fired(&self) -> u64 {
        self.state.delays_fired.load(Ordering::Relaxed)
    }

    /// Transactions whose planned fault has fired.
    pub fn fired(&self) -> Vec<TxId> {
        let mut fired: Vec<TxId> = self.state.fired.lock().iter().copied().collect();
        fired.sort_unstable();
        fired
    }
}

impl<S: MetricsSink> MetricsSink for FaultInjector<S> {
    const ENABLED: bool = true;

    type WorkerFront<'a>
        = FaultFront<'a, S::WorkerFront<'a>>
    where
        Self: 'a;

    fn worker_front(&self) -> FaultFront<'_, S::WorkerFront<'_>> {
        FaultFront {
            state: &self.state,
            inner: self.inner.worker_front(),
        }
    }

    fn stage_sampling(&self) -> u32 {
        self.inner.stage_sampling()
    }

    fn transaction(&self, counters: &TxCounters, laps: &StageLaps) {
        self.inner.transaction(counters, laps);
    }

    fn stage_boundary(&self, tx: TxId, stage: Stage) {
        self.state.maybe_fire(tx, stage);
        self.inner.stage_boundary(tx, stage);
    }

    fn quarantined(&self) {
        self.inner.quarantined();
    }

    fn scheduled(&self, stats: &crate::sched::SchedStats) {
        self.inner.scheduled(stats);
    }
}

/// One worker's front of a [`FaultInjector`]: injection state is shared
/// (fault firing must be once-per-transaction across workers), the
/// wrapped sink's front is worker-local as usual.
#[derive(Debug)]
pub struct FaultFront<'a, F> {
    state: &'a InjectorState,
    inner: F,
}

impl<F: MetricsSink> MetricsSink for FaultFront<'_, F> {
    const ENABLED: bool = true;

    type WorkerFront<'b>
        = FaultFront<'b, F::WorkerFront<'b>>
    where
        Self: 'b;

    fn worker_front(&self) -> FaultFront<'_, F::WorkerFront<'_>> {
        FaultFront {
            state: self.state,
            inner: self.inner.worker_front(),
        }
    }

    fn stage_sampling(&self) -> u32 {
        self.inner.stage_sampling()
    }

    fn transaction(&self, counters: &TxCounters, laps: &StageLaps) {
        self.inner.transaction(counters, laps);
    }

    fn stage_boundary(&self, tx: TxId, stage: Stage) {
        self.state.maybe_fire(tx, stage);
        self.inner.stage_boundary(tx, stage);
    }

    fn quarantined(&self) {
        self.inner.quarantined();
    }

    fn scheduled(&self, stats: &crate::sched::SchedStats) {
        self.inner.scheduled(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{NoopSink, STAGES};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn plans_are_seed_deterministic() {
        let plan = FaultPlan::new(7, 250);
        let a = plan.assign(200);
        let b = plan.assign(200);
        assert_eq!(a, b);
        let c = FaultPlan::new(8, 250).assign(200);
        assert_ne!(a, c, "different seeds must differ somewhere");
        let faulted = a.iter().flatten().count();
        // 25% of 200 ± generous slack.
        assert!((20..=80).contains(&faulted), "faulted = {faulted}");
    }

    #[test]
    fn zero_rate_assigns_nothing_and_full_rate_everything() {
        assert!(FaultPlan::new(1, 0).assign(64).iter().all(Option::is_none));
        assert!(FaultPlan::new(1, 1000).assign(64).iter().all(Option::is_some));
    }

    #[test]
    fn menu_respects_disabled_families() {
        let plan = FaultPlan::inputs_only(1, 100);
        assert!(plan
            .menu()
            .iter()
            .all(|f| matches!(f, PlannedFault::Input(_))));
        let mut none = FaultPlan::new(1, 1000);
        none.input_faults.clear();
        none.panic_stages.clear();
        none.delay_stages.clear();
        assert!(none.menu().is_empty());
        assert!(none.assign(16).iter().all(Option::is_none));
    }

    #[test]
    fn input_fault_names_round_trip() {
        for fault in InputFault::ALL {
            assert_eq!(InputFault::from_name(fault.name()), Some(fault));
        }
        assert_eq!(InputFault::from_name("nope"), None);
    }

    #[test]
    fn from_env_reads_the_chaos_variables() {
        // Untouched environment: disabled.
        std::env::remove_var("LEISHEN_CHAOS");
        assert_eq!(FaultPlan::from_env(), None);

        std::env::set_var("LEISHEN_CHAOS", "1");
        std::env::set_var("LEISHEN_CHAOS_SEED", "99");
        std::env::set_var("LEISHEN_CHAOS_RATE_PERMILLE", "333");
        std::env::set_var("LEISHEN_CHAOS_FAULTS", "seq nonsense,overflow_amount");
        let plan = FaultPlan::from_env().expect("enabled");
        assert_eq!(plan.seed, 99);
        assert_eq!(plan.rate_permille, 333);
        assert_eq!(plan.input_faults, vec![InputFault::OverflowAmount]);
        std::env::remove_var("LEISHEN_CHAOS");
        std::env::remove_var("LEISHEN_CHAOS_SEED");
        std::env::remove_var("LEISHEN_CHAOS_RATE_PERMILLE");
        std::env::remove_var("LEISHEN_CHAOS_FAULTS");
    }

    #[test]
    fn injector_fires_each_fault_exactly_once() {
        let injector = FaultInjector::new(
            NoopSink,
            [(TxId(5), InducedFault::Panic { stage: Stage::Tagging })],
        );
        // Wrong transaction, wrong stage: nothing fires.
        injector.stage_boundary(TxId(4), Stage::Tagging);
        injector.stage_boundary(TxId(5), Stage::Patterns);
        assert_eq!(injector.panics_fired(), 0);

        let hit = catch_unwind(AssertUnwindSafe(|| {
            injector.stage_boundary(TxId(5), Stage::Tagging);
        }));
        let payload = hit.expect_err("planned panic fires");
        let message = payload_message(payload.as_ref());
        assert_eq!(message, format!("{INDUCED_PANIC_PREFIX}tagging"));
        assert_eq!(stage_of_payload(&message), Some(Stage::Tagging));
        assert_eq!(injector.panics_fired(), 1);
        assert_eq!(injector.fired(), vec![TxId(5)]);

        // Second crossing (the retry): passes.
        injector.stage_boundary(TxId(5), Stage::Tagging);
        assert_eq!(injector.panics_fired(), 1);
    }

    #[test]
    fn injector_delay_does_not_panic() {
        let injector = FaultInjector::new(
            NoopSink,
            [(TxId(1), InducedFault::Delay { stage: Stage::Simplify, micros: 1 })],
        );
        injector.stage_boundary(TxId(1), Stage::Simplify);
        assert_eq!(injector.delays_fired(), 1);
        assert_eq!(injector.panics_fired(), 0);
    }

    #[test]
    fn fronts_share_firing_state() {
        let injector = FaultInjector::new(
            NoopSink,
            [(TxId(2), InducedFault::Delay { stage: Stage::Trades, micros: 1 })],
        );
        {
            let front = injector.worker_front();
            front.stage_boundary(TxId(2), Stage::Trades);
        }
        {
            let front = injector.worker_front();
            front.stage_boundary(TxId(2), Stage::Trades); // already fired
        }
        assert_eq!(injector.delays_fired(), 1);
    }

    #[test]
    fn quarantine_reasons_are_machine_readable() {
        let invalid = Quarantine {
            tx: TxId(1),
            index: 0,
            fault: Fault::InvalidInput {
                violations: vec![
                    RecordViolation::SeqGap { missing: 3 },
                    RecordViolation::AmountOverflow { seq: 1 },
                ],
            },
            stage: None,
            attempts: 0,
        };
        assert_eq!(invalid.reason(), "invalid_input:seq_gap+amount_overflow");
        assert_eq!(invalid.fault.code(), "invalid_input");

        let panicked = Quarantine {
            tx: TxId(2),
            index: 1,
            fault: Fault::Panic { message: "boom".into() },
            stage: Some(Stage::Simplify),
            attempts: 2,
        };
        assert_eq!(panicked.reason(), "panic@simplify");
        let unattributed = Quarantine { stage: None, ..panicked };
        assert_eq!(unattributed.reason(), "panic");
    }

    #[test]
    fn every_stage_is_a_valid_induced_target() {
        for &stage in &STAGES {
            let fault = InducedFault::Panic { stage };
            assert_eq!(fault.stage(), stage);
        }
    }
}

//! Golden streaming replay: the 22-attack corpus fed through the
//! streaming service one block at a time must reproduce the exact
//! `tests/golden/*.json` snapshots the batch suite pins.
//!
//! This inherits the pinned corpus for free: any divergence between the
//! streamed pipeline and the batch pipeline — a dropped transaction, a
//! shifted verdict, a reordered emission — shows up as a snapshot
//! mismatch naming the attack, rendered by the *same* renderer
//! (`tests/common/snapshot.rs`) the batch goldens use.

use std::collections::HashMap;

use ethsim::TxId;
use leishen::resilience::Verdict;
use leishen::stream::{Block, StreamConfig, StreamService};
use leishen::Analysis;

mod common;
use common::snapshot::{exits_for, file_name, render};
use common::AttackCorpus;

/// Streams the sorted attack corpus one block per attack transaction
/// and returns each transaction's completed analysis keyed by id.
fn stream_corpus(corpus: &AttackCorpus) -> HashMap<TxId, Analysis> {
    let view = corpus.view();
    let detector = common::paper_detector();
    let records = corpus.sorted_records();

    let service = StreamService::new(4, StreamConfig::default());
    let blocks: Vec<Block<'_>> = records
        .iter()
        .enumerate()
        .map(|(i, record)| Block { number: i as u64, txs: vec![*record] })
        .collect();
    let report = service.replay(&detector, &view, blocks);

    assert_eq!(
        report.transactions,
        records.len(),
        "every attack must be emitted exactly once"
    );
    assert_eq!(
        report.quarantined, 0,
        "the genuine corpus must never quarantine"
    );

    records
        .iter()
        .zip(report.blocks.iter())
        .map(|(record, block)| {
            assert_eq!(block.verdicts.len(), 1, "one tx per block");
            match &block.verdicts[0] {
                Verdict::Analyzed(a) => (record.id, a.clone()),
                Verdict::Indeterminate(q) => {
                    panic!("tx#{} quarantined in stream: {}", q.tx.0, q.reason())
                }
            }
        })
        .collect()
}

#[test]
fn streamed_corpus_matches_golden_snapshots() {
    let corpus = AttackCorpus::build();
    let view = corpus.view();
    let detector = common::paper_detector();
    let dir = common::tests_dir("golden");

    let streamed = stream_corpus(&corpus);

    let mut failures = Vec::new();
    for attack in &corpus.attacks {
        let record = corpus.record(attack);
        let analysis = streamed
            .get(&record.id)
            .expect("streamed analysis for every attack");
        // Exits route through the report builder exactly as the batch
        // golden suite does, so the rendered bytes are comparable.
        let exits = exits_for(&corpus.world, attack, &view);
        let exits = match detector.detect(record, &view, None) {
            Some(report) => report.with_exits(exits).exits,
            None => exits,
        };
        let rendered = render(&corpus.world, attack, analysis, &exits);
        let file = file_name(attack);
        match std::fs::read_to_string(dir.join(&file)) {
            Ok(golden) if golden == rendered => {}
            Ok(golden) => {
                let line = golden
                    .lines()
                    .zip(rendered.lines())
                    .position(|(a, b)| a != b)
                    .map(|i| i + 1)
                    .unwrap_or_else(|| golden.lines().count().min(rendered.lines().count()) + 1);
                failures.push(format!(
                    "{file}: streamed analysis drifted from the batch golden \
                     (first difference at line {line})"
                ));
            }
            Err(e) => failures.push(format!(
                "{file}: cannot read snapshot ({e}); generate with \
                 UPDATE_GOLDEN=1 cargo test --test golden_attacks"
            )),
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// The block cut must not matter: one-tx-per-block and
/// whole-corpus-in-one-block streams produce identical analyses.
#[test]
fn block_granularity_does_not_change_streamed_analyses() {
    let corpus = AttackCorpus::build();
    let view = corpus.view();
    let detector = common::paper_detector();
    let records = corpus.sorted_records();

    let service = StreamService::new(4, StreamConfig::default());
    let fine = service.replay(
        &detector,
        &view,
        records
            .iter()
            .enumerate()
            .map(|(i, r)| Block { number: i as u64, txs: vec![*r] })
            .collect::<Vec<_>>(),
    );
    let coarse = service.replay(
        &detector,
        &view,
        vec![Block { number: 0, txs: records.clone() }],
    );

    let dump = |report: &leishen::StreamReport| -> Vec<String> {
        report.verdicts().map(|v| format!("{v:?}")).collect()
    };
    assert_eq!(dump(&fine), dump(&coarse));
    assert_eq!(fine.attacks, corpus.expected_flagged());
    assert_eq!(coarse.attacks, corpus.expected_flagged());
}

//! Building blocks shared by the trace-scripted attack scenarios.
//!
//! Scripted attacks reproduce the *published transfer structure* of each
//! incident: who paid whom, in what order, through which intermediaries,
//! and which event logs fired. These helpers encode the recurring shapes:
//! direct swaps, routed swaps (intermediary breaks account-level
//! adjacency), vault share mints/burns, and split-account trades for
//! untaggable victims.

use ethsim::{Address, LogValue, Result, TokenId, TxContext};

/// A direct two-transfer swap: `a` pays `app`, `app` pays back. Adjacent
/// at account level (DeFiRanger-visible) and at app level.
pub fn direct_swap(
    ctx: &mut TxContext<'_>,
    a: Address,
    app: Address,
    sell_amount: u128,
    sell_token: TokenId,
    buy_amount: u128,
    buy_token: TokenId,
) -> Result<()> {
    ctx.transfer_token(sell_token, a, app, sell_amount)?;
    ctx.transfer_token(buy_token, app, a, buy_amount)
}

/// A swap routed through `via` with identical pass-through amounts: LeiShen
/// merges the hops (rule 3) or removes them (rule 1 when `via` shares the
/// attacker's tag); account-level analysis sees no adjacent trade pair.
#[allow(clippy::too_many_arguments)]
pub fn routed_swap(
    ctx: &mut TxContext<'_>,
    a: Address,
    via: Address,
    app: Address,
    sell_amount: u128,
    sell_token: TokenId,
    buy_amount: u128,
    buy_token: TokenId,
) -> Result<()> {
    ctx.transfer_token(sell_token, a, via, sell_amount)?;
    ctx.transfer_token(sell_token, via, app, sell_amount)?;
    ctx.transfer_token(buy_token, app, via, buy_amount)?;
    ctx.transfer_token(buy_token, via, a, buy_amount)
}

/// A swap against an application that uses **separate in/out contracts**:
/// `a` pays `app_in` while `app_out` pays `a`. When the two contracts
/// share an application tag LeiShen still sees one swap; when they are
/// untaggable (conflicting creation trees, Fig. 7c) the trade never forms —
/// the JulSwap / PancakeHunny failure mode.
#[allow(clippy::too_many_arguments)]
pub fn split_swap(
    ctx: &mut TxContext<'_>,
    a: Address,
    app_in: Address,
    app_out: Address,
    sell_amount: u128,
    sell_token: TokenId,
    buy_amount: u128,
    buy_token: TokenId,
) -> Result<()> {
    ctx.transfer_token(sell_token, a, app_in, sell_amount)?;
    ctx.transfer_token(buy_token, app_out, a, buy_amount)
}

/// A vault-style share purchase: deposit `underlying`, mint `shares` from
/// the BlackHole (Table III mint-liquidity shape). Optionally emits the
/// standard `Deposit` event explorers parse.
#[allow(clippy::too_many_arguments)]
pub fn deposit_mint(
    ctx: &mut TxContext<'_>,
    a: Address,
    vault: Address,
    amount: u128,
    underlying: TokenId,
    shares: u128,
    share_token: TokenId,
    emit_event: bool,
) -> Result<()> {
    ctx.transfer_token(underlying, a, vault, amount)?;
    ctx.mint_token(share_token, a, shares)?;
    if emit_event {
        ctx.emit_log(
            vault,
            "Deposit",
            vec![
                ("who".into(), LogValue::Addr(a)),
                ("amount".into(), LogValue::Amount(amount)),
                ("shares".into(), LogValue::Amount(shares)),
                ("underlying".into(), LogValue::Token(underlying)),
                ("shareToken".into(), LogValue::Token(share_token)),
            ],
        );
    }
    Ok(())
}

/// The inverse of [`deposit_mint`]: burn shares, withdraw underlying.
#[allow(clippy::too_many_arguments)]
pub fn withdraw_burn(
    ctx: &mut TxContext<'_>,
    a: Address,
    vault: Address,
    shares: u128,
    share_token: TokenId,
    amount: u128,
    underlying: TokenId,
    emit_event: bool,
) -> Result<()> {
    ctx.burn_token(share_token, a, shares)?;
    ctx.transfer_token(underlying, vault, a, amount)?;
    if emit_event {
        ctx.emit_log(
            vault,
            "Withdraw",
            vec![
                ("who".into(), LogValue::Addr(a)),
                ("amount".into(), LogValue::Amount(amount)),
                ("shares".into(), LogValue::Amount(shares)),
                ("underlying".into(), LogValue::Token(underlying)),
                ("shareToken".into(), LogValue::Token(share_token)),
            ],
        );
    }
    Ok(())
}

/// Emits a Uniswap-style `Swap` event (for protocols whose trades are
/// explorer-visible even when scripted).
pub fn emit_swap_event(
    ctx: &mut TxContext<'_>,
    emitter: Address,
    trader: Address,
    sell_amount: u128,
    sell_token: TokenId,
    buy_amount: u128,
    buy_token: TokenId,
) {
    ctx.emit_log(
        emitter,
        "Swap",
        vec![
            ("sender".into(), LogValue::Addr(trader)),
            ("tokenIn".into(), LogValue::Token(sell_token)),
            ("amountIn".into(), LogValue::Amount(sell_amount)),
            ("tokenOut".into(), LogValue::Token(buy_token)),
            ("amountOut".into(), LogValue::Amount(buy_amount)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{Chain, ChainConfig};

    fn setup() -> (Chain, Address, Address, TokenId) {
        let mut chain = Chain::new(ChainConfig::default());
        let a = chain.create_eoa("a");
        let app = chain.create_eoa("app");
        let deployer = chain.create_eoa("d");
        let mut tok = None;
        chain
            .execute(deployer, deployer, "t", |ctx| {
                let c = ctx.create_contract(deployer)?;
                let t = ctx.register_token("X", 18, c);
                ctx.mint_token(t, app, 1_000_000)?;
                Ok(())
                    .map(|_| tok = Some(t))
            })
            .unwrap();
        chain.state_mut().credit_eth(a, 1_000_000).unwrap();
        (chain, a, app, tok.unwrap())
    }

    #[test]
    fn direct_swap_is_two_transfers() {
        let (mut chain, a, app, x) = setup();
        let tx = chain
            .execute(a, app, "swap", |ctx| {
                direct_swap(ctx, a, app, 100, TokenId::ETH, 50, x)
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        assert_eq!(rec.trace.transfers.len(), 2);
        assert_eq!(chain.state().balance(x, a), 50);
    }

    #[test]
    fn routed_swap_passes_amounts_exactly() {
        let (mut chain, a, app, x) = setup();
        let via = chain.create_eoa("router");
        let tx = chain
            .execute(a, app, "swap", |ctx| {
                routed_swap(ctx, a, via, app, 100, TokenId::ETH, 50, x)
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        assert_eq!(rec.trace.transfers.len(), 4);
        assert_eq!(chain.state().balance(x, via), 0, "router keeps nothing");
        assert_eq!(chain.state().balance(x, a), 50);
    }

    #[test]
    fn deposit_withdraw_roundtrip_with_events() {
        let (mut chain, a, vault, _) = setup();
        let deployer = chain.create_eoa("d2");
        let mut share = None;
        chain
            .execute(deployer, deployer, "t", |ctx| {
                let c = ctx.create_contract(deployer)?;
                share = Some(ctx.register_token("fX", 18, c));
                Ok(())
            })
            .unwrap();
        let share = share.unwrap();
        chain.state_mut().credit_eth(vault, 1_000).unwrap();
        let tx = chain
            .execute(a, vault, "cycle", |ctx| {
                deposit_mint(ctx, a, vault, 100, TokenId::ETH, 90, share, true)?;
                withdraw_burn(ctx, a, vault, 90, share, 101, TokenId::ETH, true)
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        assert!(rec.status.is_success());
        assert!(rec.trace.emitted(vault, "Deposit"));
        assert!(rec.trace.emitted(vault, "Withdraw"));
        // mint and burn bracket the underlying transfers
        assert!(rec.trace.transfers.iter().any(|t| t.is_mint()));
        assert!(rec.trace.transfers.iter().any(|t| t.is_burn()));
    }

    #[test]
    fn split_swap_uses_two_counterparties() {
        let (mut chain, a, app_in, x) = setup();
        let app_out = chain.create_eoa("app-out");
        chain
            .execute(a, app_in, "fund", |ctx| {
                ctx.mint_token(x, app_out, 1_000)?;
                Ok(())
            })
            .unwrap();
        let tx = chain
            .execute(a, app_in, "swap", |ctx| {
                split_swap(ctx, a, app_in, app_out, 100, TokenId::ETH, 50, x)
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        assert_eq!(rec.trace.transfers[0].receiver, app_in);
        assert_eq!(rec.trace.transfers[1].sender, app_out);
    }
}

//! Price-volatility and profit analytics (paper §III-D, Table I, Table VII).
//!
//! * **Volatility**: for every token pair traded at least twice inside one
//!   transaction, `((rate_max − rate_min)/rate_min) · 100%` — the column of
//!   Table I (from 0.5% for Harvest to 6.5·10²⁸% for Balancer).
//! * **Profit**: the borrower's per-token net flows over the account-level
//!   transfers, valued by a USD price table (the paper uses "average asset
//!   prices on the attack day"), and the yield rate (profit / borrowed
//!   value) of Table VII.

use std::collections::{HashMap, HashSet};

use ethsim::{Address, TokenId, Transfer};
use serde::{Deserialize, Serialize};

use crate::trades::Trade;

/// Price volatility observed on one token pair within one transaction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairVolatility {
    /// First token of the pair (canonical: lower id).
    pub token_a: TokenId,
    /// Second token of the pair.
    pub token_b: TokenId,
    /// Minimum observed rate (units of `b` per unit of `a`).
    pub rate_min: f64,
    /// Maximum observed rate.
    pub rate_max: f64,
    /// Number of trades observed on the pair.
    pub samples: usize,
}

impl PairVolatility {
    /// Volatility as a fraction: `(max − min) / min`.
    pub fn volatility(&self) -> f64 {
        if self.rate_min <= 0.0 {
            0.0
        } else {
            (self.rate_max - self.rate_min) / self.rate_min
        }
    }

    /// Volatility in percent, the unit Table I reports.
    pub fn volatility_pct(&self) -> f64 {
        self.volatility() * 100.0
    }
}

/// Computes per-pair volatility over a transaction's identified trades.
/// Pairs traded fewer than two times are omitted (the paper draws price
/// movements only "for these token pairs that appeared at least two
/// times").
pub fn pair_volatility(trades: &[Trade]) -> Vec<PairVolatility> {
    let mut acc: HashMap<(TokenId, TokenId), (f64, f64, usize)> = HashMap::new();
    for trade in trades {
        for leg in trade.views() {
            if leg.sell_amount == 0 || leg.buy_amount == 0 {
                continue;
            }
            // Canonical direction: rate = b per a with a < b by id.
            let (a, b, rate) = if leg.sell_token < leg.buy_token {
                (
                    leg.sell_token,
                    leg.buy_token,
                    leg.buy_amount as f64 / leg.sell_amount as f64,
                )
            } else {
                (
                    leg.buy_token,
                    leg.sell_token,
                    leg.sell_amount as f64 / leg.buy_amount as f64,
                )
            };
            let e = acc.entry((a, b)).or_insert((f64::INFINITY, 0.0, 0));
            e.0 = e.0.min(rate);
            e.1 = e.1.max(rate);
            e.2 += 1;
        }
    }
    let mut out: Vec<PairVolatility> = acc
        .into_iter()
        .filter(|(_, (_, _, n))| *n >= 2)
        .map(|((a, b), (min, max, n))| PairVolatility {
            token_a: a,
            token_b: b,
            rate_min: min,
            rate_max: max,
            samples: n,
        })
        .collect();
    out.sort_by(|x, y| {
        y.volatility()
            .partial_cmp(&x.volatility())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// USD prices per **raw token unit** (callers divide per-whole-token prices
/// by `10^decimals` once, so ledger math stays unit-consistent).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct UsdPriceTable {
    per_raw_unit: HashMap<TokenId, f64>,
}

impl UsdPriceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a token's price given USD per whole token and its decimals.
    pub fn set_whole(&mut self, token: TokenId, usd_per_whole: f64, decimals: u8) {
        self.per_raw_unit
            .insert(token, usd_per_whole / 10f64.powi(decimals as i32));
    }

    /// USD value of a raw amount (0 for unpriced tokens).
    pub fn value(&self, token: TokenId, raw_amount: u128) -> f64 {
        self.per_raw_unit.get(&token).copied().unwrap_or(0.0) * raw_amount as f64
    }

    /// USD value of a signed raw amount.
    pub fn value_signed(&self, token: TokenId, raw_amount: i128) -> f64 {
        self.per_raw_unit.get(&token).copied().unwrap_or(0.0) * raw_amount as f64
    }

    /// Whether the table has a price for `token`.
    pub fn has(&self, token: TokenId) -> bool {
        self.per_raw_unit.contains_key(&token)
    }
}

/// Per-token net flows (received − sent) of a set of accounts over a
/// transfer list.
pub fn net_flows(
    transfers: &[Transfer],
    accounts: &HashSet<Address>,
) -> HashMap<TokenId, i128> {
    let mut flows: HashMap<TokenId, i128> = HashMap::new();
    for t in transfers {
        let incoming = accounts.contains(&t.receiver);
        let outgoing = accounts.contains(&t.sender);
        if incoming == outgoing {
            continue; // internal or unrelated
        }
        let delta = if incoming {
            t.amount as i128
        } else {
            -(t.amount as i128)
        };
        *flows.entry(t.token).or_insert(0) += delta;
    }
    flows.retain(|_, v| *v != 0);
    flows
}

/// USD profit of `accounts` over `transfers` (Table VII's net profit).
pub fn profit_of(
    transfers: &[Transfer],
    accounts: &HashSet<Address>,
    prices: &UsdPriceTable,
) -> f64 {
    net_flows(transfers, accounts)
        .into_iter()
        .map(|(token, flow)| prices.value_signed(token, flow))
        .sum()
}

/// A burst of repeat attacks by one initiator (paper §VI-D1: "attackers
/// generally invoke the same attack contract multiple times… these
/// repeated attacks happen in a short period", e.g. 25 attacks in ten
/// minutes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttackCluster {
    /// The shared initiating EOA.
    pub initiator: Address,
    /// Indices into the input report slice, in time order.
    pub reports: Vec<usize>,
    /// Seconds between the first and last attack of the cluster.
    pub span_secs: u64,
}

impl AttackCluster {
    /// Number of attacks in the burst.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the cluster is empty (never produced by
    /// [`cluster_reports`]).
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

/// Groups attack reports into repeat-attack bursts: reports from the same
/// initiator whose consecutive timestamps are at most `window_secs` apart.
/// Returns clusters of two or more, largest first.
pub fn cluster_reports(
    reports: &[crate::report::AttackReport],
    window_secs: u64,
) -> Vec<AttackCluster> {
    // Sort indices by (initiator, timestamp).
    let mut order: Vec<usize> = (0..reports.len()).collect();
    order.sort_by_key(|&i| (reports[i].initiator, reports[i].timestamp));

    let mut clusters = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let flush = |current: &mut Vec<usize>, clusters: &mut Vec<AttackCluster>| {
        if current.len() >= 2 {
            let first = reports[current[0]].timestamp;
            let last = reports[*current.last().expect("non-empty")].timestamp;
            clusters.push(AttackCluster {
                initiator: reports[current[0]].initiator,
                reports: current.clone(),
                span_secs: last.saturating_sub(first),
            });
        }
        current.clear();
    };
    for &i in &order {
        match current.last() {
            Some(&prev)
                if reports[prev].initiator == reports[i].initiator
                    && reports[i].timestamp.saturating_sub(reports[prev].timestamp)
                        <= window_secs =>
            {
                current.push(i);
            }
            _ => {
                flush(&mut current, &mut clusters);
                current.push(i);
            }
        }
    }
    flush(&mut current, &mut clusters);
    clusters.sort_by_key(|c| std::cmp::Reverse(c.reports.len()));
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tagging::Tag;
    use crate::trades::{TradeKind, TradeSide};

    fn trade(seq: u32, sell: u128, st: u32, buy: u128, bt: u32) -> Trade {
        Trade {
            seq,
            kind: TradeKind::Swap,
            buyer: Tag::App("E".into()),
            seller: Tag::App("Uni".into()),
            sells: TradeSide::one(sell, TokenId::from_index(st)),
            buys: TradeSide::one(buy, TokenId::from_index(bt)),
        }
    }

    #[test]
    fn volatility_over_both_directions() {
        // buy 100 of token1 for 4900 of token0 (rate 49), sell 100 for
        // 6130 (rate 61.3): volatility 25.1%
        let trades = vec![trade(0, 4_900, 0, 100, 1), trade(1, 100, 1, 6_130, 0)];
        let vols = pair_volatility(&trades);
        assert_eq!(vols.len(), 1);
        let v = &vols[0];
        assert_eq!(v.samples, 2);
        // canonical: token0 < token1 so rate = token1 per token0
        assert!(v.rate_min < v.rate_max);
        assert!((v.volatility_pct() - 25.1).abs() < 0.5, "{}", v.volatility_pct());
    }

    #[test]
    fn single_trade_pairs_are_omitted() {
        let trades = vec![trade(0, 10, 0, 10, 1), trade(1, 10, 2, 10, 3)];
        assert!(pair_volatility(&trades).is_empty());
    }

    #[test]
    fn sorted_by_volatility_desc() {
        let trades = vec![
            trade(0, 100, 0, 100, 1),
            trade(1, 100, 0, 50, 1), // pair (0,1): rates 1.0, 0.5 -> 100%
            trade(2, 100, 2, 100, 3),
            trade(3, 100, 2, 99, 3), // pair (2,3): ~1%
        ];
        let vols = pair_volatility(&trades);
        assert_eq!(vols.len(), 2);
        assert!(vols[0].volatility() > vols[1].volatility());
    }

    #[test]
    fn price_table_and_profit() {
        let mut prices = UsdPriceTable::new();
        let eth = TokenId::ETH;
        let usdc = TokenId::from_index(1);
        prices.set_whole(eth, 2_000.0, 18);
        prices.set_whole(usdc, 1.0, 6);
        assert!(prices.has(eth));
        assert!(!prices.has(TokenId::from_index(9)));
        let e18 = 10u128.pow(18);
        assert!((prices.value(eth, e18) - 2_000.0).abs() < 1e-6);

        let attacker = Address::from_u64(1);
        let contract = Address::from_u64(2);
        let victim = Address::from_u64(3);
        let accounts: HashSet<Address> = [attacker, contract].into_iter().collect();
        let transfers = vec![
            Transfer {
                seq: 0,
                sender: victim,
                receiver: contract,
                amount: 71 * e18,
                token: eth,
            },
            Transfer {
                seq: 1,
                sender: contract,
                receiver: attacker,
                amount: 71 * e18,
                token: eth,
            }, // internal: ignored
            Transfer {
                seq: 2,
                sender: contract,
                receiver: victim,
                amount: 1_000_000,
                token: usdc,
            },
        ];
        let flows = net_flows(&transfers, &accounts);
        assert_eq!(flows[&eth], (71 * e18) as i128);
        assert_eq!(flows[&usdc], -1_000_000);
        let profit = profit_of(&transfers, &accounts, &prices);
        assert!((profit - (71.0 * 2_000.0 - 1.0)).abs() < 1e-6, "{profit}");
    }

    #[test]
    fn clustering_groups_bursts_by_initiator_and_window() {
        use crate::report::AttackReport;
        let report = |initiator: u64, ts: u64| AttackReport {
            tx: ethsim::TxId(ts),
            block: 0,
            timestamp: ts,
            initiator: Address::from_u64(initiator),
            flash_loans: vec![],
            patterns: vec![],
            volatilities: vec![],
            profit_usd: None,
            exits: vec![],
        };
        let reports = vec![
            report(1, 100),
            report(1, 200),
            report(1, 10_000), // same attacker, far later: separate
            report(2, 150),
            report(2, 160),
            report(2, 170),
            report(3, 500), // singleton: no cluster
        ];
        let clusters = cluster_reports(&reports, 600);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].initiator, Address::from_u64(2));
        assert_eq!(clusters[0].len(), 3);
        assert_eq!(clusters[0].span_secs, 20);
        assert_eq!(clusters[1].initiator, Address::from_u64(1));
        assert_eq!(clusters[1].len(), 2);
        assert!(!clusters[0].is_empty());
    }

    #[test]
    fn zero_flows_are_dropped() {
        let a = Address::from_u64(1);
        let b = Address::from_u64(2);
        let accounts: HashSet<Address> = [a].into_iter().collect();
        let transfers = vec![
            Transfer {
                seq: 0,
                sender: a,
                receiver: b,
                amount: 5,
                token: TokenId::ETH,
            },
            Transfer {
                seq: 1,
                sender: b,
                receiver: a,
                amount: 5,
                token: TokenId::ETH,
            },
        ];
        assert!(net_flows(&transfers, &accounts).is_empty());
    }
}

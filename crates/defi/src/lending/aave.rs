//! AAVE-style flash loans.
//!
//! AAVE was the first flash-loan provider (paper Fig. 1: its first flash
//! loan appeared Jan 18, 2020). Per Table II, an AAVE flash-loan
//! transaction invokes the `flashLoan` function and emits a `FlashLoan`
//! event — both of which this implementation records so LeiShen's
//! identification sees exactly the mainnet signature.

use ethsim::{math, Address, Chain, LogValue, Result, SimError, TokenId, TxContext};

use crate::labels::{apps, LabelService};

/// The AAVE lending pool, holding reserves of many tokens and offering
/// flash loans at a 0.09% fee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AavePool {
    /// Pool contract account.
    pub address: Address,
    /// Flash-loan fee in basis points (9 = 0.09%, AAVE v1's fee).
    pub fee_bps: u32,
}

impl AavePool {
    /// Deploys the pool with the canonical "Aave" label.
    ///
    /// # Errors
    /// Propagates substrate errors.
    pub fn deploy(
        chain: &mut Chain,
        labels: &mut LabelService,
        deployer: Address,
    ) -> Result<AavePool> {
        let mut address = None;
        chain.execute(deployer, deployer, "deployPool", |ctx| {
            address = Some(ctx.create_contract(deployer)?);
            Ok(())
        })?;
        let address = address.expect("deploy closure ran");
        labels.set(deployer, apps::AAVE);
        labels.set(address, apps::AAVE);
        Ok(AavePool { address, fee_bps: 9 })
    }

    /// The fee charged on a loan of `amount`.
    ///
    /// # Errors
    /// [`SimError::Overflow`] on absurd amounts.
    pub fn fee(&self, amount: u128) -> Result<u128> {
        math::mul_div_ceil(amount, self.fee_bps as u128, 10_000)
    }

    /// Takes a flash loan: transfers `amount` of `token` to `borrower`,
    /// invokes `executeOperation` on the borrower (the `body` closure),
    /// and requires principal + fee back — or the transaction reverts.
    ///
    /// Records the `flashLoan` call frame and `FlashLoan` event from
    /// Table II.
    ///
    /// # Errors
    /// Reverts on insufficient pool reserves or missing repayment.
    pub fn flash_loan(
        &self,
        ctx: &mut TxContext<'_>,
        borrower: Address,
        token: TokenId,
        amount: u128,
        body: impl FnOnce(&mut TxContext<'_>) -> Result<()>,
    ) -> Result<()> {
        let pool = *self;
        ctx.call(borrower, self.address, "flashLoan", 0, |ctx| {
            let reserve = ctx.balance(token, pool.address);
            if amount == 0 || amount > reserve {
                return Err(SimError::revert("insufficient reserves for flash loan"));
            }
            let fee = pool.fee(amount)?;
            ctx.emit_log(
                pool.address,
                "FlashLoan",
                vec![
                    ("target".into(), LogValue::Addr(borrower)),
                    ("reserve".into(), LogValue::Token(token)),
                    ("amount".into(), LogValue::Amount(amount)),
                    ("totalFee".into(), LogValue::Amount(fee)),
                ],
            );
            let before = ctx.balance(token, pool.address);
            ctx.transfer_token(token, pool.address, borrower, amount)?;
            ctx.call(pool.address, borrower, "executeOperation", 0, body)?;
            let required = math::add(before, fee)?;
            if ctx.balance(token, pool.address) < required {
                return Err(SimError::revert("flash loan not repaid with fee"));
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::ChainConfig;

    const E18: u128 = 1_000_000_000_000_000_000;

    fn setup() -> (Chain, AavePool, Address, TokenId) {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("aave deployer");
        let borrower = chain.create_eoa("borrower");
        let pool = AavePool::deploy(&mut chain, &mut labels, deployer).unwrap();
        assert_eq!(labels.get(pool.address), Some(apps::AAVE));
        let mut dai = None;
        chain
            .execute(deployer, deployer, "deployToken", |ctx| {
                let c = ctx.create_contract(deployer)?;
                let t = ctx.register_token("DAI", 18, c);
                ctx.mint_token(t, pool.address, 1_000_000 * E18)?;
                ctx.mint_token(t, borrower, 10_000 * E18)?;
                dai = Some(t);
                Ok(())
            })
            .unwrap();
        (chain, pool, borrower, dai.unwrap())
    }

    #[test]
    fn loan_with_repayment_succeeds_and_signs_table_ii() {
        let (mut chain, pool, borrower, dai) = setup();
        let amount = 500_000 * E18;
        let fee = pool.fee(amount).unwrap();
        let tx = chain
            .execute(borrower, pool.address, "flash", |ctx| {
                pool.flash_loan(ctx, borrower, dai, amount, |ctx| {
                    ctx.transfer_token(dai, borrower, pool.address, amount + fee)
                })
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        assert!(rec.status.is_success());
        assert!(rec.trace.called(pool.address, "flashLoan"));
        assert!(rec.trace.emitted(pool.address, "FlashLoan"));
        assert!(rec.trace.called(borrower, "executeOperation"));
        assert_eq!(
            chain.state().balance(dai, pool.address),
            1_000_000 * E18 + fee
        );
    }

    #[test]
    fn missing_fee_reverts() {
        let (mut chain, pool, borrower, dai) = setup();
        let amount = 500_000 * E18;
        let tx = chain
            .execute(borrower, pool.address, "flash", |ctx| {
                pool.flash_loan(ctx, borrower, dai, amount, |ctx| {
                    ctx.transfer_token(dai, borrower, pool.address, amount)
                })
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
        assert_eq!(chain.state().balance(dai, pool.address), 1_000_000 * E18);
    }

    #[test]
    fn oversized_loan_reverts() {
        let (mut chain, pool, borrower, dai) = setup();
        let tx = chain
            .execute(borrower, pool.address, "flash", |ctx| {
                pool.flash_loan(ctx, borrower, dai, 2_000_000 * E18, |_| Ok(()))
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }

    #[test]
    fn fee_is_nine_bps_rounded_up() {
        let (_, pool, _, _) = setup();
        assert_eq!(pool.fee(10_000).unwrap(), 9);
        assert_eq!(pool.fee(10_001).unwrap(), 10, "rounds up");
        assert_eq!(pool.fee(1).unwrap(), 1);
    }
}

//! Integration: the detector's public data types (reports, provenance
//! traces, labels, configs, price tables) implement `serde::Serialize`
//! end to end, so
//! downstream tooling (dashboards, archives) can consume them with any
//! serde format crate. No format crate is in the approved offline
//! dependency set, so the check drives each value through a minimal
//! counting `Serializer` — which exercises every derived implementation
//! without committing to a wire format.

use leishen::{DetectorConfig, LeiShen};
use leishen_scenarios::attacks::all_attacks;
use leishen_scenarios::World;

/// A serializer that counts emitted primitive values and fails never:
/// driving a value through it proves the whole `Serialize` tree works.
struct CountingSink(usize);

impl serde::Serializer for &mut CountingSink {
    type Ok = ();
    type Error = std::fmt::Error;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, _: bool) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_i8(self, _: i8) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_i16(self, _: i16) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_i32(self, _: i32) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_i64(self, _: i64) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_i128(self, _: i128) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_u8(self, _: u8) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_u16(self, _: u16) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_u32(self, _: u32) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_u64(self, _: u64) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_u128(self, _: u128) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_f32(self, _: f32) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_f64(self, _: f64) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_char(self, _: char) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_str(self, _: &str) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_bytes(self, _: &[u8]) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_none(self) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_some<T: serde::Serialize + ?Sized>(self, v: &T) -> Result<(), Self::Error> {
        v.serialize(&mut *self)
    }
    fn serialize_unit(self) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_unit_struct(self, _: &'static str) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
    ) -> Result<(), Self::Error> {
        self.0 += 1;
        Ok(())
    }
    fn serialize_newtype_struct<T: serde::Serialize + ?Sized>(
        self,
        _: &'static str,
        v: &T,
    ) -> Result<(), Self::Error> {
        v.serialize(&mut *self)
    }
    fn serialize_newtype_variant<T: serde::Serialize + ?Sized>(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        v: &T,
    ) -> Result<(), Self::Error> {
        v.serialize(&mut *self)
    }
    fn serialize_seq(self, _: Option<usize>) -> Result<Self::SerializeSeq, Self::Error> {
        Ok(self)
    }
    fn serialize_tuple(self, _: usize) -> Result<Self::SerializeTuple, Self::Error> {
        Ok(self)
    }
    fn serialize_tuple_struct(
        self,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error> {
        Ok(self)
    }
    fn serialize_map(self, _: Option<usize>) -> Result<Self::SerializeMap, Self::Error> {
        Ok(self)
    }
    fn serialize_struct(
        self,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeStruct, Self::Error> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error> {
        Ok(self)
    }
}

macro_rules! impl_compound {
    ($trait:path, $($fn:ident $(, $key:ident)? );+) => {
        impl $trait for &mut CountingSink {
            type Ok = ();
            type Error = std::fmt::Error;
            $(
                impl_compound!(@method $fn $(, $key)?);
            )+
            fn end(self) -> Result<(), Self::Error> { Ok(()) }
        }
    };
    (@method $fn:ident) => {
        fn $fn<T: serde::Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Self::Error> {
            v.serialize(&mut **self)
        }
    };
    (@method $fn:ident, keyed) => {
        fn $fn<T: serde::Serialize + ?Sized>(
            &mut self,
            _key: &'static str,
            v: &T,
        ) -> Result<(), Self::Error> {
            v.serialize(&mut **self)
        }
    };
}

impl_compound!(serde::ser::SerializeSeq, serialize_element);
impl_compound!(serde::ser::SerializeTuple, serialize_element);
impl_compound!(serde::ser::SerializeTupleStruct, serialize_field);
impl_compound!(serde::ser::SerializeTupleVariant, serialize_field);
impl_compound!(serde::ser::SerializeStruct, serialize_field, keyed);
impl_compound!(serde::ser::SerializeStructVariant, serialize_field, keyed);

impl serde::ser::SerializeMap for &mut CountingSink {
    type Ok = ();
    type Error = std::fmt::Error;
    fn serialize_key<T: serde::Serialize + ?Sized>(&mut self, k: &T) -> Result<(), Self::Error> {
        k.serialize(&mut **self)
    }
    fn serialize_value<T: serde::Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Self::Error> {
        v.serialize(&mut **self)
    }
    fn end(self) -> Result<(), Self::Error> {
        Ok(())
    }
}

fn serializes<T: serde::Serialize>(value: &T) -> usize {
    let mut sink = CountingSink(0);
    value.serialize(&mut sink).expect("serialization succeeds");
    sink.0
}

#[test]
fn detector_outputs_are_serializable() {
    let mut world = World::new();
    let attack = all_attacks()[0](&mut world); // bZx-1
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let record = world.chain.replay(attack.tx).expect("recorded");
    let report = LeiShen::new(DetectorConfig::paper())
        .detect(record, &view, Some(&world.prices))
        .expect("detected");

    assert!(serializes(&report) > 10, "AttackReport serializes");
    assert!(serializes(record) > 10, "TxRecord serializes");

    // The report with a forensics exit analysis attached.
    let cluster: std::collections::HashSet<_> =
        [attack.attacker, attack.contract].into_iter().collect();
    let exits = leishen::trace_exits(
        &[record],
        &cluster,
        view.labels(),
        view.creations(),
        &["Tornado Cash"],
    );
    assert!(!exits.is_empty(), "bZx-1 moves funds out of the cluster");
    let with_exits = report.clone().with_exits(exits);
    assert!(
        serializes(&with_exits) > serializes(&report),
        "ExitReports add serialized fields"
    );

    // A full provenance trace from the flight recorder.
    let recorder = leishen::FlightRecorder::new();
    let engine = leishen::ScanEngine::new(1);
    let cache = leishen::TagCache::new();
    engine.scan_traced(
        &LeiShen::new(DetectorConfig::paper()),
        &[record],
        &view,
        &cache,
        &recorder,
    );
    let trace = recorder.find(record.id).expect("trace recorded");
    assert!(trace.decision.flagged, "bZx-1 is detected");
    assert!(
        serializes(&trace) > 20,
        "TxProvenance (spans + events + decision) serializes"
    );
    assert!(serializes(&labels) > 0, "Labels serialize");
    assert!(serializes(&DetectorConfig::paper()) > 0, "config serializes");
    assert!(
        serializes(&world.prices) > 0,
        "UsdPriceTable serializes for archival"
    );
}

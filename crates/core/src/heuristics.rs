//! Post-detection heuristics (paper §VI-C).
//!
//! "The investment strategy of yield aggregators can also show the behavior
//! of Multi-Round Buying and Selling. When we apply a heuristics rule on
//! the detection result, i.e., we assume that a transaction initiated from
//! yield aggregators is not an attack, the precision for the MBS pattern
//! can increase to 80%."

use ethsim::{Address, CreationIndex};

use crate::labels::Labels;
use crate::patterns::PatternKind;
use crate::report::AttackReport;
use crate::tagging::tag_of;

/// Whether `initiator` belongs to one of the named aggregator applications
/// (by direct label or creation-tree tag).
pub fn initiated_by_aggregator(
    initiator: Address,
    aggregator_apps: &[&str],
    labels: &Labels,
    creations: &CreationIndex,
) -> bool {
    match tag_of(initiator, labels, creations).app_name() {
        Some(app) => aggregator_apps.contains(&app),
        None => false,
    }
}

/// The outcome of one post-detection heuristic check, in the shape the
/// provenance trace records it ([`crate::trace::TraceEvent::Heuristic`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeuristicOutcome {
    /// Stable heuristic name.
    pub name: &'static str,
    /// Whether the report survives the check (`false` = would be dropped).
    pub passed: bool,
    /// Human-readable explanation of the verdict.
    pub detail: String,
}

/// Runs the §VI-C yield-aggregator-initiator rule against one report's
/// initiator and returns a recordable outcome instead of filtering.
pub fn aggregator_heuristic(
    initiator: Address,
    aggregator_apps: &[&str],
    labels: &Labels,
    creations: &CreationIndex,
) -> HeuristicOutcome {
    let is_aggregator = initiated_by_aggregator(initiator, aggregator_apps, labels, creations);
    HeuristicOutcome {
        name: "aggregator_initiator",
        passed: !is_aggregator,
        detail: if is_aggregator {
            format!("initiator {initiator} is tagged as a yield aggregator")
        } else {
            format!("initiator {initiator} is not a known yield aggregator")
        },
    }
}

/// Applies the paper's heuristic verbatim: "a transaction initiated from
/// yield aggregators is not an attack" — any report whose initiator is an
/// aggregator is dropped, whatever patterns it matched. This is what lifts
/// the MBS precision from 56.1% to 80% in §VI-C.
pub fn filter_aggregator_initiated(
    reports: Vec<AttackReport>,
    aggregator_apps: &[&str],
    labels: &Labels,
    creations: &CreationIndex,
) -> Vec<AttackReport> {
    reports
        .into_iter()
        .filter(|r| !initiated_by_aggregator(r.initiator, aggregator_apps, labels, creations))
        .collect()
}

/// A conservative variant that only drops reports whose **sole** matched
/// pattern is MBS — the pattern the aggregator strategies mimic. Kept for
/// the ablation bench (it trades fewer dropped true positives for a lower
/// MBS-precision gain).
pub fn filter_aggregator_initiated_mbs_only(
    reports: Vec<AttackReport>,
    aggregator_apps: &[&str],
    labels: &Labels,
    creations: &CreationIndex,
) -> Vec<AttackReport> {
    reports
        .into_iter()
        .filter(|r| {
            let mbs_only = r.pattern_kinds() == vec![PatternKind::Mbs];
            !(mbs_only
                && initiated_by_aggregator(r.initiator, aggregator_apps, labels, creations))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PatternMatch;
    use ethsim::{CreationRecord, TokenId, TxId};

    fn pm(kind: PatternKind) -> PatternMatch {
        PatternMatch {
            kind,
            target_token: TokenId::from_index(1),
            quote_token: TokenId::ETH,
            trade_seqs: vec![],
            volatility: 0.1,
            counterparty: "V".into(),
        }
    }

    fn report(initiator: Address, kinds: &[PatternKind]) -> AttackReport {
        AttackReport {
            tx: TxId(0),
            block: 0,
            timestamp: 0,
            initiator,
            flash_loans: vec![],
            patterns: kinds.iter().map(|k| pm(*k)).collect(),
            volatilities: vec![],
            profit_usd: None,
            exits: vec![],
        }
    }

    #[test]
    fn direct_label_detection() {
        let agg = Address::from_u64(1);
        let user = Address::from_u64(2);
        let mut labels = Labels::new();
        labels.set(agg, "Yearn");
        let idx = CreationIndex::new(&[]);
        assert!(initiated_by_aggregator(agg, &["Yearn"], &labels, &idx));
        assert!(!initiated_by_aggregator(user, &["Yearn"], &labels, &idx));
        assert!(!initiated_by_aggregator(agg, &["Kyber"], &labels, &idx));
    }

    #[test]
    fn tree_propagated_label_detection() {
        // operator EOA labeled; the strategy bot EOA... rather: the
        // aggregator deployer created the strategy contract that initiates.
        let operator = Address::from_u64(1);
        let strategy = Address::from_u64(2);
        let mut labels = Labels::new();
        labels.set(operator, "Kyber");
        let idx = CreationIndex::new(&[CreationRecord {
            creator: operator,
            created: strategy,
            block: 0,
        }]);
        assert!(initiated_by_aggregator(strategy, &["Kyber"], &labels, &idx));
    }

    #[test]
    fn aggregator_heuristic_reports_both_verdicts() {
        let agg = Address::from_u64(1);
        let user = Address::from_u64(2);
        let mut labels = Labels::new();
        labels.set(agg, "Yearn");
        let idx = CreationIndex::new(&[]);
        let failed = aggregator_heuristic(agg, &["Yearn"], &labels, &idx);
        assert_eq!(failed.name, "aggregator_initiator");
        assert!(!failed.passed);
        assert!(failed.detail.contains("yield aggregator"));
        let passed = aggregator_heuristic(user, &["Yearn"], &labels, &idx);
        assert!(passed.passed);
        assert!(passed.detail.contains(&user.to_string()));
    }

    #[test]
    fn filter_drops_all_aggregator_initiated_reports() {
        let agg = Address::from_u64(1);
        let attacker = Address::from_u64(2);
        let mut labels = Labels::new();
        labels.set(agg, "Yearn");
        let idx = CreationIndex::new(&[]);
        let reports = vec![
            report(agg, &[PatternKind::Mbs]),                   // dropped
            report(attacker, &[PatternKind::Mbs]),              // kept
            report(agg, &[PatternKind::Mbs, PatternKind::Sbs]), // dropped
            report(agg, &[PatternKind::Krp]),                   // dropped
        ];
        let kept = filter_aggregator_initiated(reports, &["Yearn"], &labels, &idx);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].initiator, attacker);
    }

    #[test]
    fn mbs_only_variant_keeps_multi_pattern_reports() {
        let agg = Address::from_u64(1);
        let attacker = Address::from_u64(2);
        let mut labels = Labels::new();
        labels.set(agg, "Yearn");
        let idx = CreationIndex::new(&[]);
        let reports = vec![
            report(agg, &[PatternKind::Mbs]),                   // dropped
            report(attacker, &[PatternKind::Mbs]),              // kept
            report(agg, &[PatternKind::Mbs, PatternKind::Sbs]), // kept (not MBS-only)
            report(agg, &[PatternKind::Krp]),                   // kept
        ];
        let kept = filter_aggregator_initiated_mbs_only(reports, &["Yearn"], &labels, &idx);
        assert_eq!(kept.len(), 3);
        assert!(kept.iter().all(|r| !(r.initiator == agg
            && r.pattern_kinds() == vec![PatternKind::Mbs])));
    }
}

//! dYdX SoloMargin flash loans.
//!
//! dYdX "flash loans" are a composition of three actions inside one
//! `operate` call: withdraw, call, deposit. Per paper Table II the
//! transaction invokes `Operate`, `Withdraw`, `callFunction` and `Deposit`
//! in sequence, emitting `LogOperation`, `LogWithdraw`, `LogCall` and
//! `LogDeposit`. dYdX charged no fee — only 2 wei of rounding — which is
//! why bZx-1's attacker borrowed its 10,000 ETH there.

use ethsim::{math, Address, Chain, LogValue, Result, SimError, TokenId, TxContext};

use crate::labels::{apps, LabelService};

/// The dYdX SoloMargin contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DydxSolo {
    /// SoloMargin contract account.
    pub address: Address,
    /// Flat repayment surcharge in raw units (2 wei on mainnet).
    pub surcharge: u128,
}

impl DydxSolo {
    /// Deploys SoloMargin with the canonical "dYdX" label.
    ///
    /// # Errors
    /// Propagates substrate errors.
    pub fn deploy(
        chain: &mut Chain,
        labels: &mut LabelService,
        deployer: Address,
    ) -> Result<DydxSolo> {
        let mut address = None;
        chain.execute(deployer, deployer, "deploySolo", |ctx| {
            address = Some(ctx.create_contract(deployer)?);
            Ok(())
        })?;
        let address = address.expect("deploy closure ran");
        labels.set(deployer, apps::DYDX);
        labels.set(address, apps::DYDX);
        Ok(DydxSolo {
            address,
            surcharge: 2,
        })
    }

    /// Runs a withdraw → callFunction → deposit operation — dYdX's flash
    /// loan. The `body` closure is the borrower's `callFunction` logic.
    ///
    /// Records all four Table II frames and their event logs.
    ///
    /// # Errors
    /// Reverts when reserves are insufficient or repayment (principal +
    /// 2 wei) is missing.
    pub fn operate(
        &self,
        ctx: &mut TxContext<'_>,
        borrower: Address,
        token: TokenId,
        amount: u128,
        body: impl FnOnce(&mut TxContext<'_>) -> Result<()>,
    ) -> Result<()> {
        let solo = *self;
        ctx.call(borrower, self.address, "operate", 0, |ctx| {
            ctx.emit_log(
                solo.address,
                "LogOperation",
                vec![("sender".into(), LogValue::Addr(borrower))],
            );
            let reserve = ctx.balance(token, solo.address);
            if amount == 0 || amount > reserve {
                return Err(SimError::revert("insufficient reserves"));
            }
            let before = ctx.balance(token, solo.address);
            // Withdraw action.
            ctx.call(borrower, solo.address, "withdraw", 0, |ctx| {
                ctx.transfer_token(token, solo.address, borrower, amount)?;
                ctx.emit_log(
                    solo.address,
                    "LogWithdraw",
                    vec![
                        ("account".into(), LogValue::Addr(borrower)),
                        ("market".into(), LogValue::Token(token)),
                        ("amount".into(), LogValue::Amount(amount)),
                    ],
                );
                Ok(())
            })?;
            // Call action — borrower's arbitrary logic.
            ctx.call(solo.address, borrower, "callFunction", 0, |ctx| {
                ctx.emit_log(
                    solo.address,
                    "LogCall",
                    vec![("callee".into(), LogValue::Addr(borrower))],
                );
                body(ctx)
            })?;
            // Deposit action — repayment must already be scheduled by the
            // borrower transferring back; verify and log.
            let required = math::add(before, solo.surcharge)?;
            ctx.emit_log(
                solo.address,
                "LogDeposit",
                vec![
                    ("account".into(), LogValue::Addr(borrower)),
                    ("market".into(), LogValue::Token(token)),
                ],
            );
            if ctx.balance(token, solo.address) < required {
                return Err(SimError::revert("dydx operation not repaid"));
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::ChainConfig;

    const E18: u128 = 1_000_000_000_000_000_000;

    fn setup() -> (Chain, DydxSolo, Address) {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("dydx deployer");
        let borrower = chain.create_eoa("borrower");
        let solo = DydxSolo::deploy(&mut chain, &mut labels, deployer).unwrap();
        chain
            .state_mut()
            .credit_eth(solo.address, 50_000 * E18)
            .unwrap();
        chain.state_mut().credit_eth(borrower, E18).unwrap();
        (chain, solo, borrower)
    }

    #[test]
    fn full_table_ii_signature_recorded() {
        let (mut chain, solo, borrower) = setup();
        let amount = 10_000 * E18;
        let tx = chain
            .execute(borrower, solo.address, "operate", |ctx| {
                solo.operate(ctx, borrower, TokenId::ETH, amount, |ctx| {
                    ctx.transfer_eth(borrower, solo.address, amount + 2)
                })
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        assert!(rec.status.is_success());
        for f in ["operate", "withdraw", "callFunction"] {
            assert!(
                rec.trace.function_names().any(|n| n == f),
                "missing frame {f}"
            );
        }
        for l in ["LogOperation", "LogWithdraw", "LogCall", "LogDeposit"] {
            assert!(rec.trace.emitted(solo.address, l), "missing log {l}");
        }
    }

    #[test]
    fn missing_surcharge_reverts() {
        let (mut chain, solo, borrower) = setup();
        let amount = 10_000 * E18;
        let tx = chain
            .execute(borrower, solo.address, "operate", |ctx| {
                solo.operate(ctx, borrower, TokenId::ETH, amount, |ctx| {
                    ctx.transfer_eth(borrower, solo.address, amount) // missing 2 wei
                })
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
        assert_eq!(chain.state().eth_balance(solo.address), 50_000 * E18);
    }

    #[test]
    fn zero_amount_reverts() {
        let (mut chain, solo, borrower) = setup();
        let tx = chain
            .execute(borrower, solo.address, "operate", |ctx| {
                solo.operate(ctx, borrower, TokenId::ETH, 0, |_| Ok(()))
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }
}

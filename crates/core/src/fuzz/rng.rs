//! Deterministic fuzzing RNG.
//!
//! The fuzzer must replay byte-identically from a seed (CI pins one), so
//! it cannot depend on an external RNG crate whose stream might change.
//! [`FuzzRng`] is SplitMix64 — the tiny, well-studied generator used to
//! seed xoshiro — which is more than enough for choosing mutation sites.

/// A deterministic SplitMix64 stream.
///
/// ```
/// use leishen::fuzz::FuzzRng;
///
/// let mut a = FuzzRng::new(42);
/// let mut b = FuzzRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a stream from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n = 0` returns 0). Uses the widening
    /// multiply trick; the modulo bias is irrelevant for mutation choice.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher–Yates shuffle of `items`, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let seq = |seed| {
            let mut r = FuzzRng::new(seed);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = FuzzRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.range(4, 4), 4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = FuzzRng::new(3);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}

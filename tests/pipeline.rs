//! Integration: cross-crate pipeline invariants — flash-loan atomicity on
//! real protocols, replay determinism, detector-report consistency, and
//! the baselines' blind spots on flagship attacks.

use leishen::patterns::PatternKind;
use leishen::{DetectorConfig, LeiShen};
use leishen_baselines::VolatilityMonitor;
use leishen_scenarios::attacks::all_attacks;
use leishen_scenarios::world::{E18, E6};
use leishen_scenarios::World;

/// Flash-loan atomicity on the real protocol stack: an attack body that
/// fails to repay leaves every pool, vault and balance untouched.
#[test]
fn failed_flash_loan_leaves_no_trace_in_state() {
    let mut world = World::new();
    let (attacker, contract) = world.create_attacker("clumsy");
    let pair = world.pair_eth_usdc;
    let usdc = world.usdc.id;

    let reserves_before = {
        let mut out = (0u128, 0u128);
        world.execute(attacker, pair.address, "probe", |ctx| {
            out = pair.reserves(ctx);
            Ok(())
        });
        out
    };

    // Borrow 10M USDC, trade it away, "forget" to repay.
    let tx = world.execute(attacker, contract, "botched", |ctx| {
        pair.flash_swap(ctx, contract, usdc, 10_000_000 * E6, |ctx| {
            pair.swap_exact_in(ctx, contract, usdc, 5_000_000 * E6, 0)?;
            Ok(()) // no repayment
        })
    });
    let record = world.chain.replay(tx).expect("recorded").clone();
    assert!(!record.status.is_success());

    let reserves_after = {
        let mut out = (0u128, 0u128);
        world.execute(attacker, pair.address, "probe", |ctx| {
            out = pair.reserves(ctx);
            Ok(())
        });
        out
    };
    assert_eq!(reserves_before, reserves_after, "pool untouched");
    assert_eq!(world.chain.state().balance(usdc, contract), 0);
    // The failed attempt is not reported as an attack.
    let labels = world.detector_labels();
    let view = world.view(&labels);
    assert!(!LeiShen::default().analyze(&record, &view).is_attack());
}

/// Two identical worlds produce byte-identical attack traces — the
/// determinism the whole evaluation rests on.
#[test]
fn world_and_attacks_are_deterministic() {
    let build = || {
        let mut world = World::new();
        let attack = all_attacks()[0](&mut world); // bZx-1
        let record = world.chain.replay(attack.tx).expect("recorded").clone();
        record
    };
    let a = build();
    let b = build();
    assert_eq!(a.trace.transfers, b.trace.transfers);
    assert_eq!(a.trace.logs, b.trace.logs);
    assert_eq!(a.trace.frames, b.trace.frames);
    assert_eq!(a.status, b.status);
}

/// `detect` and `analyze` agree, and the report's contents are internally
/// consistent with the analysis.
#[test]
fn report_is_consistent_with_analysis() {
    let mut world = World::new();
    let attack = all_attacks()[4](&mut world); // Harvest
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());
    let record = world.chain.replay(attack.tx).expect("recorded");

    let analysis = detector.analyze(record, &view);
    let report = detector
        .detect(record, &view, Some(&world.prices))
        .expect("attack");
    assert!(analysis.is_attack());
    assert_eq!(report.patterns.len(), analysis.matches.len());
    assert_eq!(report.flash_loans.len(), analysis.flash_loans.len());
    assert_eq!(report.tx, record.id);
    assert_eq!(report.initiator, record.from);
    assert!(report.has_pattern(PatternKind::Mbs));
    assert!(report.profit_usd.unwrap() > 0.0);
}

/// The volatility-threshold baseline (Xue et al.) misses Harvest (0.5%
/// volatility) but catches Balancer — the blind spot the paper motivates
/// pattern-based detection with (§I).
#[test]
fn volatility_baseline_misses_harvest_catches_balancer() {
    let mut world = World::new();
    let balancer = all_attacks()[2](&mut world);
    let harvest = all_attacks()[4](&mut world);
    let monitor = VolatilityMonitor::default(); // 99% threshold

    let balancer_rec = world.chain.replay(balancer.tx).expect("recorded");
    let harvest_rec = world.chain.replay(harvest.tx).expect("recorded");

    assert!(
        monitor.is_attack(balancer_rec),
        "Balancer's volatility is enormous: {:.0}%",
        monitor.max_volatility(balancer_rec) * 100.0
    );
    assert!(
        !monitor.is_attack(harvest_rec),
        "Harvest's {:.2}% volatility is invisible to threshold monitoring",
        monitor.max_volatility(harvest_rec) * 100.0
    );
    // …while LeiShen catches both.
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());
    assert!(detector.analyze(balancer_rec, &view).is_attack());
    assert!(detector.analyze(harvest_rec, &view).is_attack());
}

/// The attacker's self-destruct trick (paper §VI-D2) does not hide the
/// attack: the replayed trace is intact and detection still fires.
#[test]
fn self_destruct_does_not_hide_the_attack() {
    let mut world = World::new();
    let attack = all_attacks()[0](&mut world); // bZx-1
    let contract = attack.contract;
    let attacker = attack.attacker;
    // Attacker destroys the contract after the fact.
    world.execute(attacker, contract, "selfdestruct", |ctx| {
        ctx.self_destruct(contract)
    });
    assert!(world.chain.state().account(contract).unwrap().destroyed);

    // Replay + detection still work: history is immutable.
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let record = world.chain.replay(attack.tx).expect("history survives");
    let analysis = LeiShen::new(DetectorConfig::paper()).analyze(record, &view);
    assert!(analysis.is_attack(), "replayable despite selfdestruct");
}

/// Removing the attacker's after-the-fact label (paper §VI-B: "we remove
/// attackers' tags during the detection") changes nothing for detection,
/// because tagging falls back to the creation root.
#[test]
fn attacker_labels_are_irrelevant() {
    let mut world = World::new();
    let attack = all_attacks()[0](&mut world);
    let record = world.chain.replay(attack.tx).expect("recorded").clone();

    // unlabeled attacker (the evaluation setting)
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let without = LeiShen::new(DetectorConfig::paper()).analyze(&record, &view);

    // attacker labeled post-hoc, as on Etherscan today
    let mut labeled = world.detector_labels();
    labeled.set(attack.attacker, "bZx Exploiter");
    labeled.set(attack.contract, "bZx Exploiter");
    let view2 = world.view(&labeled);
    let with = LeiShen::new(DetectorConfig::paper()).analyze(&record, &view2);

    assert_eq!(without.is_attack(), with.is_attack());
    assert_eq!(without.matches.len(), with.matches.len());
}

/// ETH funding constant sanity for cross-crate tests.
#[test]
fn unit_constants_are_consistent() {
    assert_eq!(E18, 10u128.pow(18));
    assert_eq!(E6, 10u128.pow(6));
}

/// Beanstalk-style multi-provider borrowing (paper §III-B: "in seven
/// attacks, attackers borrow a variety of crypto assets from more than one
/// flash loan provider… the Beanstalk attacker borrows five types of
/// assets from three flash loan providers simultaneously"): all three
/// Table II signatures identified in one transaction, and the attack still
/// detected.
#[test]
fn multi_provider_attack_is_identified_and_detected() {
    use ethsim::TokenId;
    use leishen::flashloan::Provider;

    let mut world = World::new();
    let victim = world.scripted_app("Beanstalk", 1)[0];
    let bean = world.deploy_token("BEAN", 18, 1.0);
    world.fund_token(bean.id, victim, 100_000_000 * E18);
    world.fund_eth(victim, 50_000 * E18);

    let (attacker, contract) = world.create_attacker("beanstalk");
    let aave = world.aave;
    let dydx = world.dydx;
    let pair = world.pair_eth_usdc;
    let usdc = world.usdc.id;
    let dai = world.dai.id;
    let aave_fee = aave.fee(1_000_000 * E18).unwrap();
    let uni_fee = ethsim::math::mul_div_ceil(5_000_000 * E6, 3, 997).unwrap();
    // Fee headroom for the stable-coin legs (the profit is in ETH).
    world.fund_token(usdc, contract, 2 * uni_fee);
    world.fund_token(dai, contract, 2 * aave_fee);
    world.fund_eth(contract, E18);

    let tx = world.execute(attacker, contract, "attack", |ctx| {
        // three nested loans: dYdX ETH, AAVE DAI, Uniswap USDC
        dydx.operate(ctx, contract, TokenId::ETH, 2_000 * E18, |ctx| {
            aave.flash_loan(ctx, contract, dai, 1_000_000 * E18, |ctx| {
                pair.flash_swap(ctx, contract, usdc, 5_000_000 * E6, |ctx| {
                    // SBS on BEAN priced in ETH
                    ctx.transfer_eth(contract, victim, 500 * E18)?;
                    ctx.transfer_token(bean.id, victim, contract, 50_000 * E18)?;
                    ctx.transfer_eth(contract, victim, 800 * E18)?;
                    ctx.transfer_token(bean.id, victim, contract, 5_000 * E18)?;
                    ctx.transfer_token(bean.id, contract, victim, 50_000 * E18)?;
                    ctx.transfer_eth(victim, contract, 1_500 * E18)?;
                    ctx.transfer_token(usdc, contract, pair.address, 5_000_000 * E6 + uni_fee)
                })?;
                ctx.transfer_token(dai, contract, aave.address, 1_000_000 * E18 + aave_fee)
            })?;
            ctx.transfer_eth(contract, dydx.address, 2_000 * E18 + 2)
        })
    });
    let record = world.chain.replay(tx).expect("recorded").clone();
    assert!(record.status.is_success(), "{:?}", record.status);

    let loans = leishen::identify_flash_loans(&record);
    let providers: std::collections::HashSet<Provider> =
        loans.iter().map(|l| l.provider).collect();
    assert_eq!(providers.len(), 3, "all three providers identified: {loans:?}");

    let labels = world.detector_labels();
    let view = world.view(&labels);
    let analysis = LeiShen::new(DetectorConfig::paper()).analyze(&record, &view);
    assert!(
        analysis.matches.iter().any(|m| m.kind == PatternKind::Sbs),
        "{:?}",
        analysis.matches
    );
}

/// A real flash-loan liquidation (the paper's §I benign use case) against
/// the full protocol stack: borrow the debt asset, liquidate an underwater
/// Compound position, sell the seized collateral, repay — profitable for
/// the liquidator and *not* flagged by LeiShen.
#[test]
fn flash_loan_liquidation_is_benign() {
    use defi::{CompoundMarket, DexOracle};
    use ethsim::TokenId;

    let mut world = World::new();
    let mut oracle = DexOracle::new();
    oracle.add_pair(world.pair_eth_dai);
    let deployer = world.chain.create_eoa("compound deployer");
    let market = CompoundMarket::deploy(
        &mut world.chain,
        &mut world.labels,
        deployer,
        TokenId::ETH,
        world.dai.id,
        7_500,
        oracle,
        "Compound",
    )
    .expect("market");
    world.fund_token(world.dai.id, market.address, 10_000_000 * E18);

    // A borrower takes a near-capacity DAI loan against ETH…
    let borrower = world.chain.create_eoa("borrower");
    world.fund_eth(borrower, 1_000 * E18);
    let dai = world.dai.id;
    world.execute(borrower, market.address, "borrow", |ctx| {
        market.supply_and_borrow(ctx, borrower, 1_000 * E18, 1_400_000 * E18)
    });
    // …then ETH crashes on the oracle pair (someone dumps 30k ETH).
    let whale = world.whale;
    let pair = world.pair_eth_dai;
    world.execute(whale, pair.address, "crash", |ctx| {
        pair.swap_exact_in(ctx, whale, TokenId::ETH, 30_000 * E18, 0)?;
        Ok(())
    });

    // The liquidator flash-borrows the repay amount from AAVE.
    let (liq_eoa, liq) = world.create_attacker("liquidator");
    let aave = world.aave;
    let repay = 700_000 * E18;
    let fee = aave.fee(repay).unwrap();
    let tx = world.execute(liq_eoa, liq, "liquidate", |ctx| {
        aave.flash_loan(ctx, liq, dai, repay, |ctx| {
            assert!(market.is_underwater(ctx, borrower)?);
            let seized = market.liquidate(ctx, liq, borrower, repay)?;
            // sell the seized ETH back into DAI
            pair.swap_exact_in(ctx, liq, TokenId::ETH, seized, 0)?;
            ctx.transfer_token(dai, liq, aave.address, repay + fee)
        })?;
        let profit = ctx.balance(dai, liq);
        ctx.transfer_token(dai, liq, liq_eoa, profit)
    });

    let record = world.chain.replay(tx).expect("recorded");
    assert!(record.status.is_success(), "{:?}", record.status);
    assert!(
        world.chain.state().balance(dai, liq_eoa) > 0,
        "liquidation bonus nets a profit"
    );
    // LeiShen identifies the flash loan but reports no attack.
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let analysis = LeiShen::new(DetectorConfig::paper()).analyze(record, &view);
    assert_eq!(analysis.flash_loans.len(), 1);
    assert!(
        !analysis.is_attack(),
        "liquidation wrongly flagged: {:?}",
        analysis.matches
    );
}

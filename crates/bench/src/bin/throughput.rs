//! Batch-scan throughput: the serial per-transaction loop vs the
//! [`leishen::ScanEngine`] (shared tag cache + wave-scheduled
//! work-stealing workers) over the wild corpus, swept across worker
//! counts, with a naive fixed-chunking engine timed alongside for
//! comparison.
//!
//! ```sh
//! cargo run -p leishen-bench --release --bin throughput -- \
//!     --workers 1,2,4,8 --reps 7
//! ```
//!
//! Prints a table and persists the numbers to `BENCH_scan.json` (see
//! `EXPERIMENTS.md` for the schema). The serial baseline is the plain
//! `LeiShen::analyze` loop every other binary uses, which re-resolves
//! every tag from the creation tree on every transaction. Each engine
//! configuration keeps one shared `TagCache` alive across trials — the
//! engine's steady state, where a scanner processes batch after batch
//! over the same chain and only the first (untimed, warm-up) batch pays
//! the cold tag-resolution misses. Each reported number is the best of
//! `--reps` timed trials after that warm-up pass; both counts are
//! recorded in the JSON so a reader can judge how hardened the
//! measurement was.

use leishen::{DetectorConfig, LeiShen, RecordingSink, ScanEngine, TagCache};
use leishen_bench::{
    cli_f64, cli_str, cli_u64, corpus_records, measure_engine_throughput, measure_latencies,
    measure_latencies_cached, measure_serial_throughput, percentile, print_table, sort_samples,
    wild_world, ThroughputRun,
};

/// Keeps the best (highest tx/s) run seen so far. The corpus takes only
/// a few milliseconds per scan, so a single run is at the mercy of
/// scheduler noise; trials are **interleaved** across configurations
/// (round-robin, see `main`) so a noisy stretch of wall-clock time cannot
/// eat every trial of one configuration while another gets a clean
/// best — and then the best of each is the stable number.
fn keep_best(best: &mut Option<ThroughputRun>, run: ThroughputRun) {
    if best.is_none_or(|b| run.tx_per_sec > b.tx_per_sec) {
        *best = Some(run);
    }
}

/// One engine configuration under measurement: a worker count in either
/// scheduling mode, with its own steady-state cache and running best.
struct Config {
    workers: usize,
    scheduled: bool,
    engine: ScanEngine,
    cache: TagCache,
    best: Option<ThroughputRun>,
}

impl Config {
    fn new(workers: usize, scheduled: bool) -> Config {
        let engine = ScanEngine::new(workers);
        let engine = if scheduled { engine } else { engine.with_naive_chunking() };
        Config {
            workers,
            scheduled,
            engine,
            cache: TagCache::new(),
            best: None,
        }
    }
}

fn parse_workers(spec: &str) -> Vec<usize> {
    let mut counts: Vec<usize> = Vec::new();
    for part in spec.split(',') {
        if let Ok(w) = part.trim().parse::<usize>() {
            if w > 0 && !counts.contains(&w) {
                counts.push(w);
            }
        }
    }
    assert!(!counts.is_empty(), "--workers needs at least one positive count, got {spec:?}");
    counts
}

fn main() {
    let seed = cli_u64("--seed", 42);
    let scale = cli_f64("--scale", 0.002);
    let trials = cli_u64("--reps", 7).max(1) as usize;
    let warmup = 1usize;
    let worker_counts = parse_workers(&cli_str("--workers", "1,2,4,8"));
    let config = DetectorConfig::paper;

    eprintln!("generating corpus (seed={seed}, scale={scale})...");
    let (world, corpus) = wild_world(seed, scale);
    let n = corpus.len();
    let txs = || corpus.iter().map(|t| t.tx);
    println!(
        "batch-scan throughput — {n} wild flash-loan transactions (best of {trials} after {warmup} warm-up)\n"
    );

    // Every worker count in both scheduling modes, each with its own
    // steady-state cache.
    let mut configs: Vec<Config> = worker_counts
        .iter()
        .flat_map(|&w| [Config::new(w, true), Config::new(w, false)])
        .collect();

    // Warm-up: untimed passes down each path, so cold tag-cache misses,
    // page faults, lazy allocator arenas, and branch-predictor cold
    // starts land outside the measured trials.
    for _ in 0..warmup {
        std::hint::black_box(measure_serial_throughput(&world, txs(), config()));
        for c in &configs {
            std::hint::black_box(measure_engine_throughput(
                &world, txs(), config(), &c.engine, c.workers, &c.cache,
            ));
        }
    }

    // Interleaved trials: each round measures the serial baseline and
    // every configuration back to back, keeping the per-configuration
    // best across rounds.
    let mut serial_best: Option<ThroughputRun> = None;
    for _ in 0..trials {
        keep_best(
            &mut serial_best,
            measure_serial_throughput(&world, txs(), config()),
        );
        for c in &mut configs {
            let run =
                measure_engine_throughput(&world, txs(), config(), &c.engine, c.workers, &c.cache);
            keep_best(&mut c.best, run);
        }
    }
    let serial = serial_best.expect("trials >= 1");

    let mut serial_lat = measure_latencies(&world, txs(), config());
    sort_samples(&mut serial_lat);

    // The engine's hot path timed per transaction (shared cache, serial
    // order) — where the batch percentiles come from.
    let mut cached_lat = measure_latencies_cached(&world, txs(), config());
    sort_samples(&mut cached_lat);

    let pcts = |lat: &[f64]| {
        (
            percentile(lat, 50.0),
            percentile(lat, 95.0),
            percentile(lat, 99.0),
        )
    };
    let (s50, s95, s99) = pcts(&serial_lat);
    let (c50, c95, c99) = pcts(&cached_lat);

    let mut rows = vec![row("serial loop", serial.tx_per_sec, 1.0, Some((s50, s95, s99)))];
    for c in &configs {
        let run = c.best.expect("trials >= 1");
        let pct = (c.workers == 1 && c.scheduled).then_some((c50, c95, c99));
        rows.push(row(
            &format!(
                "engine, {} worker{}{}",
                c.workers,
                if c.workers == 1 { "" } else { "s" },
                if c.scheduled { "" } else { " (naive chunks)" }
            ),
            run.tx_per_sec,
            run.tx_per_sec / serial.tx_per_sec,
            pct,
        ));
    }
    print_table(
        &["configuration", "tx/s", "speedup", "p50", "p95", "p99"],
        &rows,
    );

    let scheduled_tps = |w: usize| {
        configs
            .iter()
            .find(|c| c.scheduled && c.workers == w)
            .and_then(|c| c.best)
            .map(|r| r.tx_per_sec)
    };
    let speedup_at_4 = scheduled_tps(4).map_or(0.0, |tps| tps / serial.tx_per_sec);
    if worker_counts.contains(&4) {
        println!("\nspeedup at 4 workers: {speedup_at_4:.2}× (target ≥ 2×)");
    } else {
        println!("\n(no 4-worker configuration in --workers; speedup_at_4_workers recorded as 0)");
    }

    // Steady-state cache behaviour: after the warm-up pass plus the timed
    // trials, nearly every tag lookup should hit, and on a lightly
    // contended scan the shards should almost never make a worker wait.
    for c in &configs {
        if !c.scheduled {
            continue;
        }
        println!(
            "tag cache at {} worker{}: {:.1}% hit rate ({} hits / {} misses, {} entries, {} lock waits, {} snapshot rebuilds)",
            c.workers,
            if c.workers == 1 { "" } else { "s" },
            c.cache.hit_rate() * 100.0,
            c.cache.hits(),
            c.cache.misses(),
            c.cache.len(),
            c.cache.lock_waits(),
            c.cache.snapshot_rebuilds(),
        );
    }

    // One untimed instrumented scan through the threaded path (the
    // hardware cap lifted, so it exercises real multi-worker scheduling
    // even on small CI boxes) to capture the wave plan the scheduler
    // actually built for this corpus.
    let sched_probe_workers = worker_counts.iter().copied().max().unwrap_or(1).max(2);
    let sched = {
        let labels = world.detector_labels();
        let view = world.view(&labels);
        let detector = LeiShen::new(config());
        let records = corpus_records(&world, txs());
        let engine = ScanEngine::new(sched_probe_workers).allow_oversubscription();
        let sink = RecordingSink::new();
        std::hint::black_box(engine.scan_metered(&detector, &records, &view, &TagCache::new(), &sink));
        sink.scheduler_stats()
    };
    let sched_json = match sched {
        Some(s) => {
            println!(
                "wave plan at {sched_probe_workers} workers: {} txs → {} clusters (largest {}), {} waves, {} chunks (adaptive target {} txs), {} steal retries",
                s.transactions, s.clusters, s.largest_cluster, s.waves, s.chunks, s.chunk_size, s.steal_retries,
            );
            format!(
                "{{ \"workers\": {sched_probe_workers}, \"transactions\": {}, \"clusters\": {}, \"largest_cluster\": {}, \"waves\": {}, \"chunks\": {}, \"chunk_size\": {}, \"steal_retries\": {} }}",
                s.transactions, s.clusters, s.largest_cluster, s.waves, s.chunks, s.chunk_size, s.steal_retries,
            )
        }
        None => "null".to_string(),
    };

    let mode_rows = |scheduled: bool| {
        configs
            .iter()
            .filter(|c| c.scheduled == scheduled)
            .map(|c| {
                let r = c.best.expect("trials >= 1");
                format!(
                    "    {{ \"workers\": {}, \"mode\": \"{}\", \"tx_per_sec\": {:.1}, \"speedup\": {:.3}, \"cache_hit_rate\": {:.4} }}",
                    c.workers,
                    if scheduled { "scheduled" } else { "naive" },
                    r.tx_per_sec,
                    r.tx_per_sec / serial.tx_per_sec,
                    c.cache.hit_rate()
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        "{{\n  \"bench\": \"scan\",\n  \"corpus\": {{ \"seed\": {seed}, \"scale\": {scale}, \"transactions\": {n} }},\n  \"trials\": {trials},\n  \"warmup\": {warmup},\n  \"serial\": {{ \"tx_per_sec\": {:.1}, \"p50_us\": {s50:.2}, \"p95_us\": {s95:.2}, \"p99_us\": {s99:.2} }},\n  \"scan_hot_path\": {{ \"p50_us\": {c50:.2}, \"p95_us\": {c95:.2}, \"p99_us\": {c99:.2} }},\n  \"parallel\": [\n{}\n  ],\n  \"naive\": [\n{}\n  ],\n  \"scheduler\": {sched_json},\n  \"speedup_at_4_workers\": {speedup_at_4:.3}\n}}\n",
        serial.tx_per_sec,
        mode_rows(true),
        mode_rows(false),
    );
    std::fs::write("BENCH_scan.json", &json).expect("write BENCH_scan.json");
    println!("wrote BENCH_scan.json");

    if worker_counts.contains(&4) {
        assert!(
            speedup_at_4 >= 2.0,
            "engine at 4 workers must be ≥ 2× the serial loop, got {speedup_at_4:.2}×"
        );
    }
}

fn row(name: &str, tx_per_sec: f64, speedup: f64, pct: Option<(f64, f64, f64)>) -> Vec<String> {
    let fmt_us = |v: f64| format!("{v:.0} µs");
    let (p50, p95, p99) = match pct {
        Some((a, b, c)) => (fmt_us(a), fmt_us(b), fmt_us(c)),
        None => ("-".into(), "-".into(), "-".into()),
    };
    vec![
        name.to_string(),
        format!("{tx_per_sec:.0}"),
        format!("{speedup:.2}x"),
        p50,
        p95,
        p99,
    ]
}

//! Journaled world state with atomic revert.
//!
//! The world state holds accounts, native-Ether balances, the token registry
//! with per-token ledgers, free-form contract storage, and the contract
//! creation records used by account tagging. Every mutation appends an undo
//! entry to an internal journal; [`WorldState::snapshot`] /
//! [`WorldState::revert_to`] give the transaction executor the atomicity
//! property flash loans depend on (paper §I: "if a user fails to repay the
//! borrowed assets, the flash loan transaction will be aborted").

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::address::Address;
use crate::creation::CreationRecord;
use crate::error::SimError;
use crate::token::{TokenId, TokenInfo};
use crate::Result;

/// Kind of an Ethereum account (paper §II-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccountKind {
    /// Externally owned account, controlled by private keys.
    Eoa,
    /// Contract account, controlled by contract code.
    Contract,
}

/// Per-account metadata.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Account {
    /// EOA or contract.
    pub kind: AccountKind,
    /// Creating account (`None` for EOAs and genesis contracts).
    pub creator: Option<Address>,
    /// Creation nonce, incremented per contract created by this account.
    pub nonce: u64,
    /// Whether the contract has self-destructed. The paper (§VI-D2) notes
    /// attackers call `selfdestruct` to hide, but the history remains
    /// replayable — we keep the account's records for exactly that reason.
    pub destroyed: bool,
}

/// Typed key into a contract's journaled storage.
///
/// Protocol implementations keep all mutable state here so that a
/// transaction revert restores them for free, matching EVM semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SKey {
    /// A scalar field, keyed by a protocol-chosen slot number.
    Field(u16),
    /// A mapping field keyed by address (e.g. per-user deposits).
    AddrMap(u16, Address),
    /// A mapping field keyed by token (e.g. per-asset reserves).
    TokenMap(u16, TokenId),
    /// A mapping field keyed by (address, token).
    AddrTokenMap(u16, Address, TokenId),
}

/// Undo-journal entries. Each records the *previous* value of whatever the
/// mutation touched.
#[derive(Clone, Debug)]
enum JournalEntry {
    EthBalance(Address, u128),
    TokenBalance(TokenId, Address, u128),
    TokenSupply(TokenId, u128),
    Storage(Address, SKey, Option<u128>),
    AccountCreated(Address),
    CreationPushed,
    Nonce(Address, u64),
    Destroyed(Address, bool),
}

/// Opaque snapshot token for [`WorldState::revert_to`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Snapshot(usize);

/// The complete journaled chain state.
#[derive(Debug, Default)]
pub struct WorldState {
    accounts: HashMap<Address, Account>,
    eth_balances: HashMap<Address, u128>,
    token_balances: HashMap<(TokenId, Address), u128>,
    token_supply: Vec<u128>,
    tokens: Vec<TokenInfo>,
    storage: HashMap<(Address, SKey), u128>,
    creations: Vec<CreationRecord>,
    journal: Vec<JournalEntry>,
}

impl WorldState {
    /// Creates an empty world with native ETH pre-registered as token 0.
    pub fn new() -> Self {
        let mut s = WorldState::default();
        s.tokens.push(TokenInfo {
            symbol: "ETH".into(),
            decimals: 18,
            contract: Address::ZERO,
        });
        s.token_supply.push(0);
        s
    }

    // ----- accounts ------------------------------------------------------

    /// Registers an externally owned account.
    pub fn create_eoa(&mut self, addr: Address) {
        if !self.accounts.contains_key(&addr) {
            self.journal.push(JournalEntry::AccountCreated(addr));
            self.accounts.insert(
                addr,
                Account {
                    kind: AccountKind::Eoa,
                    creator: None,
                    nonce: 0,
                    destroyed: false,
                },
            );
        }
    }

    /// Creates a contract account owned by `creator`, deriving a fresh
    /// address from the creator's nonce and recording the creation
    /// relationship (the substrate's XBlock-ETH equivalent).
    ///
    /// # Errors
    /// Returns [`SimError::UnknownAccount`] if `creator` does not exist.
    pub fn create_contract(&mut self, creator: Address, block: u64) -> Result<Address> {
        let acct = self
            .accounts
            .get_mut(&creator)
            .ok_or(SimError::UnknownAccount(creator))?;
        let nonce = acct.nonce;
        self.journal.push(JournalEntry::Nonce(creator, nonce));
        acct.nonce += 1;
        let addr = Address::derive(creator, nonce);
        self.journal.push(JournalEntry::AccountCreated(addr));
        self.accounts.insert(
            addr,
            Account {
                kind: AccountKind::Contract,
                creator: Some(creator),
                nonce: 0,
                destroyed: false,
            },
        );
        self.journal.push(JournalEntry::CreationPushed);
        self.creations.push(CreationRecord {
            creator,
            created: addr,
            block,
        });
        Ok(addr)
    }

    /// Marks a contract self-destructed (paper §VI-D2). The account record
    /// and its history remain queryable — exactly as on the real chain,
    /// where the code "remains in the entire blockchain history and can be
    /// replayed exactly".
    ///
    /// # Errors
    /// Returns [`SimError::UnknownAccount`] for unknown addresses and
    /// [`SimError::WrongAccountKind`] for EOAs.
    pub fn self_destruct(&mut self, contract: Address) -> Result<()> {
        let acct = self
            .accounts
            .get_mut(&contract)
            .ok_or(SimError::UnknownAccount(contract))?;
        if acct.kind != AccountKind::Contract {
            return Err(SimError::WrongAccountKind(contract));
        }
        self.journal
            .push(JournalEntry::Destroyed(contract, acct.destroyed));
        acct.destroyed = true;
        Ok(())
    }

    /// Looks up an account.
    pub fn account(&self, addr: Address) -> Option<&Account> {
        self.accounts.get(&addr)
    }

    /// Whether `addr` exists (EOA or contract).
    pub fn exists(&self, addr: Address) -> bool {
        self.accounts.contains_key(&addr)
    }

    /// All creation records, in creation order.
    pub fn creations(&self) -> &[CreationRecord] {
        &self.creations
    }

    /// Iterates all known accounts.
    pub fn accounts(&self) -> impl Iterator<Item = (&Address, &Account)> {
        self.accounts.iter()
    }

    // ----- tokens ---------------------------------------------------------

    /// Registers a new ERC20-style token and returns its id.
    pub fn register_token(
        &mut self,
        symbol: impl Into<String>,
        decimals: u8,
        contract: Address,
    ) -> TokenId {
        let id = TokenId(self.tokens.len() as u32);
        self.tokens.push(TokenInfo {
            symbol: symbol.into(),
            decimals,
            contract,
        });
        self.token_supply.push(0);
        id
    }

    /// Token metadata lookup.
    ///
    /// # Errors
    /// Returns [`SimError::UnknownToken`] for unregistered ids.
    pub fn token(&self, id: TokenId) -> Result<&TokenInfo> {
        self.tokens.get(id.index()).ok_or(SimError::UnknownToken(id))
    }

    /// Finds a token id by its symbol (first match).
    pub fn token_by_symbol(&self, symbol: &str) -> Option<TokenId> {
        self.tokens
            .iter()
            .position(|t| t.symbol == symbol)
            .map(|i| TokenId(i as u32))
    }

    /// Number of registered tokens (including ETH).
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }

    /// Total minted supply of a token.
    pub fn total_supply(&self, id: TokenId) -> u128 {
        self.token_supply.get(id.index()).copied().unwrap_or(0)
    }

    // ----- balances -------------------------------------------------------

    /// Native Ether balance of `addr`.
    pub fn eth_balance(&self, addr: Address) -> u128 {
        self.eth_balances.get(&addr).copied().unwrap_or(0)
    }

    /// ERC20 balance of `addr` for `token`; for [`TokenId::ETH`] this is the
    /// native balance.
    pub fn balance(&self, token: TokenId, addr: Address) -> u128 {
        if token.is_eth() {
            self.eth_balance(addr)
        } else {
            self.token_balances
                .get(&(token, addr))
                .copied()
                .unwrap_or(0)
        }
    }

    /// Credits native Ether out of thin air (genesis funding / block
    /// rewards). Journaled like every other mutation.
    ///
    /// # Errors
    /// Returns [`SimError::Overflow`] if the balance would exceed `u128`.
    pub fn credit_eth(&mut self, addr: Address, amount: u128) -> Result<()> {
        let old = self.eth_balance(addr);
        let new = old.checked_add(amount).ok_or(SimError::Overflow)?;
        self.journal.push(JournalEntry::EthBalance(addr, old));
        self.eth_balances.insert(addr, new);
        Ok(())
    }

    pub(crate) fn set_eth_balance_journaled(&mut self, addr: Address, new: u128) {
        let old = self.eth_balance(addr);
        self.journal.push(JournalEntry::EthBalance(addr, old));
        self.eth_balances.insert(addr, new);
    }

    pub(crate) fn set_token_balance_journaled(
        &mut self,
        token: TokenId,
        addr: Address,
        new: u128,
    ) {
        let old = self.balance(token, addr);
        self.journal
            .push(JournalEntry::TokenBalance(token, addr, old));
        self.token_balances.insert((token, addr), new);
    }

    pub(crate) fn set_supply_journaled(&mut self, token: TokenId, new: u128) {
        let old = self.total_supply(token);
        self.journal.push(JournalEntry::TokenSupply(token, old));
        if let Some(slot) = self.token_supply.get_mut(token.index()) {
            *slot = new;
        }
    }

    // ----- contract storage ------------------------------------------------

    /// Reads a storage slot (0 when never written).
    pub fn storage(&self, contract: Address, key: SKey) -> u128 {
        self.storage.get(&(contract, key)).copied().unwrap_or(0)
    }

    /// Writes a storage slot, journaled.
    pub fn set_storage(&mut self, contract: Address, key: SKey, value: u128) {
        let old = self.storage.get(&(contract, key)).copied();
        self.journal.push(JournalEntry::Storage(contract, key, old));
        self.storage.insert((contract, key), value);
    }

    // ----- snapshots --------------------------------------------------------

    /// Takes a snapshot of the journal position.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot(self.journal.len())
    }

    /// Number of undo entries accumulated since the last [`commit`].
    ///
    /// The executor samples this right before committing or reverting a
    /// transaction to report journal pressure in
    /// [`crate::chain::ExecStats`].
    ///
    /// [`commit`]: WorldState::commit
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Rolls every mutation made after `snap` back, in reverse order.
    pub fn revert_to(&mut self, snap: Snapshot) {
        while self.journal.len() > snap.0 {
            match self.journal.pop().expect("journal length checked") {
                JournalEntry::EthBalance(addr, old) => {
                    self.eth_balances.insert(addr, old);
                }
                JournalEntry::TokenBalance(token, addr, old) => {
                    self.token_balances.insert((token, addr), old);
                }
                JournalEntry::TokenSupply(token, old) => {
                    if let Some(slot) = self.token_supply.get_mut(token.index()) {
                        *slot = old;
                    }
                }
                JournalEntry::Storage(contract, key, old) => match old {
                    Some(v) => {
                        self.storage.insert((contract, key), v);
                    }
                    None => {
                        self.storage.remove(&(contract, key));
                    }
                },
                JournalEntry::AccountCreated(addr) => {
                    self.accounts.remove(&addr);
                }
                JournalEntry::CreationPushed => {
                    self.creations.pop();
                }
                JournalEntry::Nonce(addr, old) => {
                    if let Some(a) = self.accounts.get_mut(&addr) {
                        a.nonce = old;
                    }
                }
                JournalEntry::Destroyed(addr, old) => {
                    if let Some(a) = self.accounts.get_mut(&addr) {
                        a.destroyed = old;
                    }
                }
            }
        }
    }

    /// Discards undo history older than the current position (commit).
    /// Called between transactions to bound journal growth.
    pub fn commit(&mut self) {
        self.journal.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world_with_eoa() -> (WorldState, Address) {
        let mut w = WorldState::new();
        let a = Address::from_seed("alice");
        w.create_eoa(a);
        (w, a)
    }

    #[test]
    fn eth_is_preregistered() {
        let w = WorldState::new();
        assert_eq!(w.token(TokenId::ETH).unwrap().symbol, "ETH");
        assert_eq!(w.token(TokenId::ETH).unwrap().decimals, 18);
        assert_eq!(w.token_count(), 1);
    }

    #[test]
    fn register_and_lookup_token() {
        let mut w = WorldState::new();
        let id = w.register_token("WBTC", 8, Address::from_seed("wbtc"));
        assert_eq!(w.token(id).unwrap().symbol, "WBTC");
        assert_eq!(w.token_by_symbol("WBTC"), Some(id));
        assert_eq!(w.token_by_symbol("NOPE"), None);
        assert!(w.token(TokenId::from_index(99)).is_err());
    }

    #[test]
    fn contract_creation_records_relationship() {
        let (mut w, a) = world_with_eoa();
        let c1 = w.create_contract(a, 10).unwrap();
        let c2 = w.create_contract(c1, 11).unwrap();
        assert_ne!(c1, c2);
        assert_eq!(w.account(c1).unwrap().creator, Some(a));
        assert_eq!(w.account(c2).unwrap().creator, Some(c1));
        assert_eq!(w.creations().len(), 2);
        assert_eq!(w.creations()[1].creator, c1);
        assert!(w.create_contract(Address::from_u64(404), 0).is_err());
    }

    #[test]
    fn self_destruct_keeps_history() {
        let (mut w, a) = world_with_eoa();
        let c = w.create_contract(a, 0).unwrap();
        w.self_destruct(c).unwrap();
        assert!(w.account(c).unwrap().destroyed);
        assert_eq!(w.creations().len(), 1, "creation record survives");
        assert!(w.self_destruct(a).is_err(), "EOAs cannot self-destruct");
        assert!(w.self_destruct(Address::from_u64(404)).is_err());
    }

    #[test]
    fn balances_default_to_zero() {
        let (w, a) = world_with_eoa();
        assert_eq!(w.eth_balance(a), 0);
        assert_eq!(w.balance(TokenId::from_index(1), a), 0);
    }

    #[test]
    fn revert_restores_everything() {
        let (mut w, a) = world_with_eoa();
        let tok = w.register_token("T", 18, Address::from_seed("t"));
        w.credit_eth(a, 100).unwrap();
        w.commit();

        let snap = w.snapshot();
        let c = w.create_contract(a, 5).unwrap();
        w.set_eth_balance_journaled(a, 40);
        w.set_token_balance_journaled(tok, a, 77);
        w.set_supply_journaled(tok, 77);
        w.set_storage(c, SKey::Field(0), 9);
        w.self_destruct(c).unwrap();
        assert_eq!(w.eth_balance(a), 40);

        w.revert_to(snap);
        assert_eq!(w.eth_balance(a), 100);
        assert_eq!(w.balance(tok, a), 0);
        assert_eq!(w.total_supply(tok), 0);
        assert!(!w.exists(c));
        assert_eq!(w.creations().len(), 0);
        assert_eq!(w.storage(c, SKey::Field(0)), 0);
        assert_eq!(w.account(a).unwrap().nonce, 0, "nonce restored");
    }

    #[test]
    fn nested_snapshots_revert_partially() {
        let (mut w, a) = world_with_eoa();
        w.credit_eth(a, 10).unwrap();
        let outer = w.snapshot();
        w.set_eth_balance_journaled(a, 20);
        let inner = w.snapshot();
        w.set_eth_balance_journaled(a, 30);
        w.revert_to(inner);
        assert_eq!(w.eth_balance(a), 20);
        w.revert_to(outer);
        assert_eq!(w.eth_balance(a), 10);
    }

    #[test]
    fn storage_keys_are_distinct() {
        let (mut w, a) = world_with_eoa();
        let c = w.create_contract(a, 0).unwrap();
        let t = TokenId::from_index(1);
        w.set_storage(c, SKey::Field(0), 1);
        w.set_storage(c, SKey::TokenMap(0, t), 2);
        w.set_storage(c, SKey::AddrMap(0, a), 3);
        w.set_storage(c, SKey::AddrTokenMap(0, a, t), 4);
        assert_eq!(w.storage(c, SKey::Field(0)), 1);
        assert_eq!(w.storage(c, SKey::TokenMap(0, t)), 2);
        assert_eq!(w.storage(c, SKey::AddrMap(0, a)), 3);
        assert_eq!(w.storage(c, SKey::AddrTokenMap(0, a, t)), 4);
    }

    #[test]
    fn create_eoa_is_idempotent() {
        let (mut w, a) = world_with_eoa();
        w.credit_eth(a, 5).unwrap();
        w.create_eoa(a);
        assert_eq!(w.eth_balance(a), 5);
    }
}

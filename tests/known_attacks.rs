//! Integration: the 22 known attacks vs the three detectors (paper
//! Tables I and IV).
//!
//! Every attack scenario carries its expected detection outcome for
//! LeiShen, DeFiRanger and Explorer+LeiShen; this test executes all 22 on
//! one world and checks every cell of Table IV, plus the Table I pattern
//! assignments for the attacks LeiShen detects.

use leishen::{DetectorConfig, LeiShen};
use leishen_baselines::{DefiRanger, ExplorerLeiShen};
use leishen_scenarios::{run_all_attacks, World};

#[test]
fn table_iv_every_cell() {
    let mut world = World::new();
    let attacks = run_all_attacks(&mut world);
    assert_eq!(attacks.len(), 22);

    let labels = world.detector_labels();
    let view = world.view(&labels);
    let leishen = LeiShen::new(DetectorConfig::paper());
    let ranger = DefiRanger::new();
    let explorer = ExplorerLeiShen::new(DetectorConfig::paper());

    let mut failures = Vec::new();
    for attack in &attacks {
        let record = world.chain.replay(attack.tx).expect("recorded");
        assert!(
            record.status.is_success(),
            "{} reverted: {:?}",
            attack.spec.name,
            record.status
        );

        let analysis = leishen.analyze(record, &view);
        if analysis.is_attack() != attack.spec.expect_leishen {
            failures.push(format!(
                "{}: LeiShen {} (expected {}); matches={:?}",
                attack.spec.name,
                analysis.is_attack(),
                attack.spec.expect_leishen,
                analysis.matches
            ));
        }
        // Table I: the detected patterns must include the paper's
        // assignment.
        if attack.spec.expect_leishen {
            for kind in attack.spec.patterns {
                if !analysis.matches.iter().any(|m| m.kind == *kind) {
                    failures.push(format!(
                        "{}: missing expected pattern {kind}; found {:?}",
                        attack.spec.name,
                        analysis.matches.iter().map(|m| m.kind).collect::<Vec<_>>()
                    ));
                }
            }
        }

        let dr = ranger.is_attack(record);
        if dr != attack.spec.expect_defiranger {
            failures.push(format!(
                "{}: DeFiRanger {} (expected {}): {:?}",
                attack.spec.name,
                dr,
                attack.spec.expect_defiranger,
                ranger.detect(record)
            ));
        }

        let ex = explorer.is_attack(record);
        if ex != attack.spec.expect_explorer {
            failures.push(format!(
                "{}: Explorer+LeiShen {} (expected {}): {:?}",
                attack.spec.name,
                ex,
                attack.spec.expect_explorer,
                explorer.detect(record)
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn table_iv_totals() {
    let mut world = World::new();
    let attacks = run_all_attacks(&mut world);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let leishen = LeiShen::new(DetectorConfig::paper());
    let ranger = DefiRanger::new();
    let explorer = ExplorerLeiShen::new(DetectorConfig::paper());

    let mut ls = 0;
    let mut dr = 0;
    let mut ex = 0;
    for attack in &attacks {
        let record = world.chain.replay(attack.tx).expect("recorded");
        if leishen.analyze(record, &view).is_attack() {
            ls += 1;
        }
        if ranger.is_attack(record) {
            dr += 1;
        }
        if explorer.is_attack(record) {
            ex += 1;
        }
    }
    assert_eq!(ls, 15, "LeiShen detects 15 known attacks");
    assert_eq!(dr, 9, "DeFiRanger detects 9 known attacks");
    assert_eq!(ex, 4, "Explorer+LeiShen detects 4 known attacks");
    assert_eq!(ls - dr, 6, "paper: LeiShen detects six more than DeFiRanger");
}

/// The experimental KDP pattern (§VII future-work direction, off by
/// default) classifies MY FARM PET — the dump-then-rebuy incident the
/// paper's three patterns leave uncovered — without changing any other
/// known-attack verdict.
#[test]
fn experimental_kdp_covers_my_farm_pet_only() {
    use leishen::patterns::PatternKind;
    let mut world = World::new();
    let attacks = run_all_attacks(&mut world);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let strict = LeiShen::new(DetectorConfig::paper());
    let kdp = LeiShen::new(DetectorConfig {
        experimental_kdp: true,
        ..DetectorConfig::paper()
    });
    for attack in &attacks {
        let record = world.chain.replay(attack.tx).expect("recorded");
        let before = strict.analyze(record, &view).is_attack();
        let analysis = kdp.analyze(record, &view);
        if attack.spec.name == "MY FARM PET" {
            assert!(!before, "uncovered by the paper's patterns");
            assert!(
                analysis.matches.iter().any(|m| m.kind == PatternKind::Kdp),
                "KDP classifies the dump-and-rebuy: {:?}",
                analysis.matches
            );
        } else {
            assert_eq!(
                before,
                analysis.is_attack(),
                "{}: KDP must not change the verdict",
                attack.spec.name
            );
        }
    }
}

/// §III-B: "18 attackers take flash loans from Uniswap, dYdX and AAVE" —
/// every scripted attack borrows from one of the three monitored
/// providers, and identification names the right one.
#[test]
fn every_attack_borrows_from_a_monitored_provider() {
    use leishen::flashloan::Provider;
    let mut world = World::new();
    let attacks = run_all_attacks(&mut world);
    let mut by_provider = std::collections::HashMap::new();
    for attack in &attacks {
        let record = world.chain.replay(attack.tx).expect("recorded");
        let loans = leishen::identify_flash_loans(record);
        assert_eq!(loans.len(), 1, "{}: one loan", attack.spec.name);
        *by_provider.entry(loans[0].provider).or_insert(0usize) += 1;
        // The borrower is always the attack contract.
        assert_eq!(
            loans[0].borrower, attack.contract,
            "{}: borrower is the attack contract",
            attack.spec.name
        );
    }
    // The flagship scripts use dYdX (bZx-1/2, Balancer, Saddle), Harvest
    // uses a Uniswap flash swap, and the scripted attacks use AAVE.
    assert_eq!(by_provider[&Provider::Dydx], 4);
    assert_eq!(by_provider[&Provider::Uniswap], 1);
    assert_eq!(by_provider[&Provider::Aave], 17);
}

#[test]
fn all_attacks_are_profitable_flash_loan_txs() {
    let mut world = World::new();
    let attacks = run_all_attacks(&mut world);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    for attack in &attacks {
        let record = world.chain.replay(attack.tx).expect("recorded");
        let loans = leishen::identify_flash_loans(record);
        assert!(
            !loans.is_empty(),
            "{}: no flash loan identified",
            attack.spec.name
        );
        // Profit: borrower-cluster net flows valued at attack-day prices.
        let analysis = LeiShen::new(DetectorConfig::paper()).analyze(record, &view);
        let mut accounts = std::collections::HashSet::new();
        accounts.insert(attack.attacker);
        accounts.insert(attack.contract);
        // include mid-attack helper contracts (same creation root)
        for t in &record.trace.transfers {
            for addr in [t.sender, t.receiver] {
                if !addr.is_zero() && view.creations().root(addr) == attack.attacker {
                    accounts.insert(addr);
                }
            }
        }
        let profit = leishen::profit_of(&record.trace.transfers, &accounts, &world.prices);
        assert!(
            profit > 0.0,
            "{}: expected positive profit, got ${profit:.0}",
            attack.spec.name
        );
        let _ = analysis;
    }
}

//! Legitimate flash-loan workloads and near-miss confusers.
//!
//! The paper notes flash loans are "widely used for arbitrage, liquidation
//! and collateral swaps" (§I). These builders produce such transactions —
//! plus the *near-miss* shapes that stress the detector's thresholds
//! (4-buy KRP series, sub-28% SBS volatility, unprofitable rounds) and the
//! *confuser* shapes that the detector genuinely flags but manual
//! verification rules benign (paper §VI-C: aggregator strategies).

use ethsim::{math, Address, Result, TokenId, TxContext, TxId};
use leishen::flashloan::Provider;

use crate::attacks::util::{deposit_mint, direct_swap, withdraw_burn};
use crate::world::{World, E18, E6};

/// Runs `body` inside an ETH flash loan from the chosen provider. The
/// contract is pre-funded with the provider's fee so that fee economics
/// never mask the workload's own profit/loss shape.
pub fn with_eth_loan(
    world: &mut World,
    provider: Provider,
    eoa: Address,
    contract: Address,
    amount_eth: u128,
    body: impl FnOnce(&mut TxContext<'_>) -> Result<()>,
) -> TxId {
    let amount = amount_eth * E18;
    match provider {
        Provider::Dydx => {
            let dydx = world.dydx;
            world.fund_eth(contract, E18);
            world.execute(eoa, contract, "flashUse", |ctx| {
                dydx.operate(ctx, contract, TokenId::ETH, amount, |ctx| {
                    body(ctx)?;
                    ctx.transfer_eth(contract, dydx.address, amount + 2)
                })
            })
        }
        Provider::Aave => {
            let aave = world.aave;
            let fee = aave.fee(amount).expect("fee");
            world.fund_eth(contract, fee + E18);
            world.execute(eoa, contract, "flashUse", |ctx| {
                aave.flash_loan(ctx, contract, TokenId::ETH, amount, |ctx| {
                    body(ctx)?;
                    ctx.transfer_eth(contract, aave.address, amount + fee)
                })
            })
        }
        Provider::Uniswap => {
            let pair = world.pair_eth_usdc;
            let fee = math::mul_div_ceil(amount, 3, 997).expect("fee");
            world.fund_eth(contract, fee + E18);
            world.execute(eoa, contract, "flashUse", |ctx| {
                pair.flash_swap(ctx, contract, TokenId::ETH, amount, |ctx| {
                    body(ctx)?;
                    ctx.transfer_eth(contract, pair.address, amount + fee)
                })
            })
        }
    }
}

/// A flash loan borrowed and repaid with no intermediate action (testing /
/// griefing transactions exist on mainnet in large numbers).
pub fn plain_loan(world: &mut World, provider: Provider, eoa: Address, contract: Address) -> TxId {
    world.fund_eth(contract, E18); // dust for the 2-wei surcharge
    with_eth_loan(world, provider, eoa, contract, 1_000, |_| Ok(()))
}

/// Cross-venue arbitrage: buy USDC on Uniswap, sell it to an OTC desk at a
/// slightly better rate. One buy + one sell — below every pattern's
/// structural minimum.
pub fn arbitrage(world: &mut World, provider: Provider, eoa: Address, contract: Address) -> TxId {
    let desk = world.scripted_app("OTC Desk", 1)[0];
    world.fund_eth(desk, 5_000 * E18);
    let pair = world.pair_eth_usdc;
    let usdc = world.usdc.id;
    with_eth_loan(world, provider, eoa, contract, 1_000, move |ctx| {
        let got = pair.swap_exact_in(ctx, contract, TokenId::ETH, 100 * E18, 0)?;
        // the desk pays 0.7% over the pool's execution
        let eth_back = 100 * E18 + 7 * E18 / 10;
        direct_swap(ctx, contract, desk, got, usdc, eth_back, TokenId::ETH)?;
        Ok(())
    })
}

/// A collateral swap: repay DAI debt, withdraw ETH collateral (a single
/// swap-shaped trade against a lending market).
pub fn collateral_swap(world: &mut World, provider: Provider, eoa: Address, contract: Address) -> TxId {
    let market = world.scripted_app("Lending Market", 1)[0];
    world.fund_eth(market, 10_000 * E18);
    world.fund_token(world.dai.id, contract, 2_100_000 * E18);
    let dai = world.dai.id;
    with_eth_loan(world, provider, eoa, contract, 500, move |ctx| {
        direct_swap(ctx, contract, market, 2_000_000 * E18, dai, 995 * E18, TokenId::ETH)?;
        Ok(())
    })
}

/// A user trade routed through the Kyber aggregator inside a flash loan —
/// exercises the inter-app merge rule on benign traffic.
pub fn routed_trade(world: &mut World, provider: Provider, eoa: Address, contract: Address) -> TxId {
    let pair = world.pair_eth_usdc;
    let kyber = world.kyber;
    let usdc = world.usdc.id;
    world.fund_token(usdc, contract, 1_000_000 * E6);
    world.fund_eth(contract, 100 * E18); // covers routing fees + slippage
    with_eth_loan(world, provider, eoa, contract, 300, move |ctx| {
        let got = kyber.route_swap(ctx, contract, &pair, TokenId::ETH, 50 * E18)?;
        // swap part of it back directly, at a small loss (fees)
        pair.swap_exact_in(ctx, contract, usdc, got / 2, 0)?;
        Ok(())
    })
}

/// Four rising buys then a sell — one short of the KRP minimum (paper
/// §VII: relaxing N to 3 "would increase the false positive rate"; this is
/// the transaction class that increase would come from).
pub fn near_krp(world: &mut World, provider: Provider, eoa: Address, contract: Address) -> TxId {
    let token = world.deploy_token("NKRP", 18, 1.0);
    let venue = world.scripted_app("Small DEX", 1)[0];
    world.fund_token(token.id, venue, 10_000_000 * E18);
    world.fund_eth(venue, 10_000 * E18);
    with_eth_loan(world, provider, eoa, contract, 2_000, move |ctx| {
        for out in [10_000u128, 9_500, 9_000, 8_500] {
            direct_swap(ctx, contract, venue, 100 * E18, TokenId::ETH, out * E18, token.id)?;
        }
        direct_swap(ctx, contract, venue, 37_000 * E18, token.id, 410 * E18, TokenId::ETH)?;
        Ok(())
    })
}

/// A symmetric buy/pump/sell with only ~10% volatility — below the SBS
/// threshold of 28%.
pub fn near_sbs(world: &mut World, provider: Provider, eoa: Address, contract: Address) -> TxId {
    let token = world.deploy_token("NSBS", 18, 1.0);
    let venue = world.scripted_app("Small DEX", 1)[0];
    world.fund_token(token.id, venue, 10_000_000 * E18);
    world.fund_eth(venue, 10_000 * E18);
    world.fund_eth(contract, 200 * E18); // migration cost, user's own funds
    with_eth_loan(world, provider, eoa, contract, 2_000, move |ctx| {
        direct_swap(ctx, contract, venue, 100 * E18, TokenId::ETH, 10_000 * E18, token.id)?;
        direct_swap(ctx, contract, venue, 110 * E18, TokenId::ETH, 10_000 * E18, token.id)?;
        direct_swap(ctx, contract, venue, 10_000 * E18, token.id, 105 * E18, TokenId::ETH)?;
        Ok(())
    })
}

/// Three buy/sell rounds that each *lose* money (fee-paying rebalances) —
/// fails MBS's profitability condition.
pub fn lossy_rounds(world: &mut World, provider: Provider, eoa: Address, contract: Address) -> TxId {
    let share = world.deploy_token("LROUND", 18, 1.0);
    let vault = world.scripted_app("Rebalance Vault", 1)[0];
    world.fund_eth(vault, 10_000 * E18);
    world.fund_eth(contract, 20 * E18); // the rounds pay fees
    with_eth_loan(world, provider, eoa, contract, 2_000, move |ctx| {
        for (eth_in, eth_out) in [(100u128, 99u128), (110, 109), (120, 118)] {
            deposit_mint(ctx, contract, vault, eth_in * E18, TokenId::ETH, eth_in * E18, share.id, false)?;
            withdraw_burn(ctx, contract, vault, eth_in * E18, share.id, eth_out * E18, TokenId::ETH, false)?;
        }
        Ok(())
    })
}

/// **Confuser**: a genuinely profitable multi-round harvest strategy — the
/// paper's dominant MBS false-positive source. The detector flags it; the
/// ground truth (strategy source is public, initiator is a yield
/// aggregator) says benign. Round sizes are pairwise distinct so no SBS
/// symmetry arises.
pub fn confuser_mbs(world: &mut World, provider: Provider, operator: Address, strategy: Address) -> TxId {
    let share = world.deploy_token("STRAT", 18, 1.0);
    let vault = world.scripted_app("Strategy Vault", 1)[0];
    world.fund_eth(vault, 20_000 * E18);
    with_eth_loan(world, provider, operator, strategy, 2_000, move |ctx| {
        for (eth_in, share_out, eth_out) in
            [(100u128, 100u128, 101u128), (113, 111, 115), (127, 123, 129)]
        {
            deposit_mint(ctx, strategy, vault, eth_in * E18, TokenId::ETH, share_out * E18, share.id, false)?;
            withdraw_burn(ctx, strategy, vault, share_out * E18, share.id, eth_out * E18, TokenId::ETH, false)?;
        }
        Ok(())
    })
}

/// **Confuser**: an SBS-shaped benign migration — symmetric legs around a
/// coincidental higher-priced third-party buy batched into the same
/// transaction.
pub fn confuser_sbs(world: &mut World, provider: Provider, eoa: Address, contract: Address) -> TxId {
    let token = world.deploy_token("MIGR", 18, 1.0);
    let venue = world.scripted_app("Migration Pool", 1)[0];
    world.fund_token(token.id, venue, 10_000_000 * E18);
    world.fund_eth(venue, 20_000 * E18);
    world.fund_eth(contract, 200 * E18); // migration cost, user's own funds
    with_eth_loan(world, provider, eoa, contract, 2_000, move |ctx| {
        direct_swap(ctx, contract, venue, 100 * E18, TokenId::ETH, 10_000 * E18, token.id)?;
        direct_swap(ctx, contract, venue, 150 * E18, TokenId::ETH, 1_000 * E18, token.id)?;
        direct_swap(ctx, contract, venue, 10_000 * E18, token.id, 140 * E18, TokenId::ETH)?;
        Ok(())
    })
}

/// **Confuser**: rounds *and* symmetry — detected as SBS + MBS, benign per
/// ground truth (an aggregator's ladder strategy).
pub fn confuser_sbs_mbs(world: &mut World, provider: Provider, operator: Address, strategy: Address) -> TxId {
    let share = world.deploy_token("LADDER", 18, 1.0);
    let vault = world.scripted_app("Ladder Vault", 1)[0];
    world.fund_eth(vault, 20_000 * E18);
    with_eth_loan(world, provider, operator, strategy, 2_000, move |ctx| {
        let rounds: [(u128, u128, u128); 3] =
            [(100, 100, 110), (128, 80, 132), (120, 100, 140)];
        for (eth_in, share_out, eth_out) in rounds {
            deposit_mint(ctx, strategy, vault, eth_in * E18, TokenId::ETH, share_out * E18, share.id, false)?;
            withdraw_burn(ctx, strategy, vault, share_out * E18, share.id, eth_out * E18, TokenId::ETH, false)?;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use leishen::patterns::PatternKind;
    use leishen::{DetectorConfig, LeiShen};

    fn analyze(world: &World, tx: TxId) -> leishen::detector::Analysis {
        let labels = world.detector_labels();
        let view = world.view(&labels);
        let record = world.chain.replay(tx).expect("recorded");
        assert!(record.status.is_success(), "{:?}", record.status);
        LeiShen::new(DetectorConfig::paper()).analyze(record, &view)
    }

    fn user(world: &mut World, name: &str) -> (Address, Address) {
        world.create_attacker(name) // same mechanics: EOA + contract
    }

    #[test]
    fn benign_workloads_are_not_flagged() {
        let mut world = World::new();
        type Workload = fn(&mut World, Provider, Address, Address) -> TxId;
        let cases: Vec<(&str, Workload)> = vec![
            ("plain", plain_loan),
            ("arbitrage", arbitrage),
            ("collateral", collateral_swap),
            ("routed", routed_trade),
            ("near_krp", near_krp),
            ("near_sbs", near_sbs),
            ("lossy", lossy_rounds),
        ];
        let providers = [Provider::Uniswap, Provider::Aave, Provider::Dydx];
        for (i, (name, f)) in cases.into_iter().enumerate() {
            let (eoa, contract) = user(&mut world, name);
            let tx = f(&mut world, providers[i % 3], eoa, contract);
            let analysis = analyze(&world, tx);
            assert_eq!(analysis.flash_loans.len(), 1, "{name}: loan identified");
            assert!(
                !analysis.is_attack(),
                "{name} wrongly flagged: {:?}",
                analysis.matches
            );
        }
    }

    #[test]
    fn confusers_are_flagged_as_designed() {
        let mut world = World::new();
        let (op, strat) = user(&mut world, "op1");
        let tx = confuser_mbs(&mut world, Provider::Dydx, op, strat);
        let a = analyze(&world, tx);
        assert!(a.matches.iter().any(|m| m.kind == PatternKind::Mbs), "{:?}", a.matches);
        assert!(!a.matches.iter().any(|m| m.kind == PatternKind::Sbs));

        let (eoa, c) = user(&mut world, "migrator");
        let tx = confuser_sbs(&mut world, Provider::Aave, eoa, c);
        let a = analyze(&world, tx);
        assert!(a.matches.iter().any(|m| m.kind == PatternKind::Sbs), "{:?}", a.matches);

        let (op2, strat2) = user(&mut world, "op2");
        let tx = confuser_sbs_mbs(&mut world, Provider::Uniswap, op2, strat2);
        let a = analyze(&world, tx);
        assert!(a.matches.iter().any(|m| m.kind == PatternKind::Sbs), "{:?}", a.matches);
        assert!(a.matches.iter().any(|m| m.kind == PatternKind::Mbs), "{:?}", a.matches);
    }
}

//! Regenerates **Table IV**: detection of the 22 known attacks by
//! DeFiRanger, Explorer+LeiShen, and LeiShen.
//!
//! ```sh
//! cargo run -p leishen-bench --bin table4
//! ```

use leishen::{DetectorConfig, LeiShen};
use leishen_baselines::{DefiRanger, ExplorerLeiShen};
use leishen_bench::{known_attack_world, print_table};

fn main() {
    let (world, attacks) = known_attack_world();
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let leishen = LeiShen::new(DetectorConfig::paper());
    let ranger = DefiRanger::new();
    let explorer = ExplorerLeiShen::new(DetectorConfig::paper());

    let mark = |b: bool| if b { "Y".to_string() } else { String::new() };
    let mut rows = Vec::new();
    let (mut dr_n, mut ex_n, mut ls_n) = (0, 0, 0);
    for attack in &attacks {
        let record = world.chain.replay(attack.tx).expect("recorded");
        let dr = ranger.is_attack(record);
        let ex = explorer.is_attack(record);
        let ls = leishen.analyze(record, &view).is_attack();
        dr_n += dr as usize;
        ex_n += ex as usize;
        ls_n += ls as usize;
        let agree = dr == attack.spec.expect_defiranger
            && ex == attack.spec.expect_explorer
            && ls == attack.spec.expect_leishen;
        rows.push(vec![
            attack.spec.id.to_string(),
            attack.spec.name.to_string(),
            mark(dr),
            mark(ex),
            mark(ls),
            if agree { "ok".into() } else { "MISMATCH".into() },
        ]);
    }
    println!("Table IV — detection results on known flpAttacks\n");
    print_table(
        &["ID", "Attack", "DeFiRanger", "Explorer+LeiShen", "LeiShen", "vs paper"],
        &rows,
    );
    println!("\ntotals: DeFiRanger {dr_n} (paper 9), Explorer+LeiShen {ex_n} (paper 4), LeiShen {ls_n} (paper 15)");
    println!("LeiShen − DeFiRanger = {} (paper: six more)", ls_n - dr_n);
}

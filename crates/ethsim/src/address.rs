//! 160-bit Ethereum-style account addresses.
//!
//! Both user accounts (EOAs) and contract accounts are identified by a
//! 160-bit address (paper §II-A). The paper abbreviates addresses by their
//! first 16 bits (e.g. `0xb017`); [`Address::short`] reproduces that
//! rendering for reports and figures.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A 160-bit account address.
///
/// The zero address doubles as the *BlackHole* used by DeFi conventions for
/// minting and burning tokens (paper §V-C): newly minted tokens are
/// transferred *from* `Address::ZERO`, burned tokens are transferred *to* it.
///
/// ```
/// use ethsim::Address;
///
/// let a = Address::from_u64(0xb017_cafe);
/// assert!(!a.is_zero());
/// assert!(Address::ZERO.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Address([u8; 20]);

impl Address {
    /// The zero address, a.k.a. the BlackHole mint/burn address.
    pub const ZERO: Address = Address([0u8; 20]);

    /// Builds an address from raw bytes.
    pub const fn from_bytes(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }

    /// Builds a deterministic address whose low 8 bytes are `value`
    /// (big-endian). Useful for tests and synthetic scenarios.
    pub const fn from_u64(value: u64) -> Self {
        let mut b = [0u8; 20];
        let v = value.to_be_bytes();
        let mut i = 0;
        while i < 8 {
            b[12 + i] = v[i];
            i += 1;
        }
        Address(b)
    }

    /// Derives a fresh address from a creator address and a nonce, mimicking
    /// Ethereum's `CREATE` address derivation (deterministic, collision-free
    /// for our substrate's purposes).
    pub fn derive(creator: Address, nonce: u64) -> Self {
        // A simple, well-mixed permutation (FNV-1a over creator bytes + nonce).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in creator.0 {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        for byte in nonce.to_be_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut b = [0u8; 20];
        b[0..8].copy_from_slice(&h.to_be_bytes());
        let h2 = h.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31);
        b[8..16].copy_from_slice(&h2.to_be_bytes());
        b[16..20].copy_from_slice(&(nonce as u32).to_be_bytes());
        Address(b)
    }

    /// Builds a deterministic address from a human-readable seed string.
    /// Distinct seeds map to distinct addresses with overwhelming
    /// probability; the same seed always maps to the same address.
    pub fn from_seed(seed: &str) -> Self {
        let mut h: u64 = 0x8422_2325_cbf2_9ce4;
        for byte in seed.as_bytes() {
            h ^= *byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut b = [0u8; 20];
        b[0..8].copy_from_slice(&h.to_be_bytes());
        let h2 = h.wrapping_mul(0xff51_afd7_ed55_8ccd).rotate_left(17);
        b[8..16].copy_from_slice(&h2.to_be_bytes());
        let h3 = (h ^ h2) as u32;
        b[16..20].copy_from_slice(&h3.to_be_bytes());
        Address(b)
    }

    /// Returns the raw 20 bytes.
    pub const fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Whether this is the zero / BlackHole address.
    pub const fn is_zero(&self) -> bool {
        let mut i = 0;
        while i < 20 {
            if self.0[i] != 0 {
                return false;
            }
            i += 1;
        }
        true
    }

    /// The paper's abbreviated rendering: `0x` plus the first 16 bits
    /// (4 hex digits), e.g. `0xb017`.
    pub fn short(&self) -> String {
        format!("0x{:02x}{:02x}", self.0[0], self.0[1])
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for byte in self.0 {
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Short form keeps traces and assertion failures readable.
        write!(f, "Address({})", self.short())
    }
}

/// Error returned when parsing an [`Address`] from a hex string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddressError {
    reason: &'static str,
}

impl fmt::Display for ParseAddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address: {}", self.reason)
    }
}

impl std::error::Error for ParseAddressError {}

impl FromStr for Address {
    type Err = ParseAddressError;

    /// Parses `0x`-prefixed (or bare) 40-digit hex.
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.len() != 40 {
            return Err(ParseAddressError {
                reason: "expected 40 hex digits",
            });
        }
        let mut b = [0u8; 20];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = hex_val(chunk[0]).ok_or(ParseAddressError {
                reason: "non-hex digit",
            })?;
            let lo = hex_val(chunk[1]).ok_or(ParseAddressError {
                reason: "non-hex digit",
            })?;
            b[i] = (hi << 4) | lo;
        }
        Ok(Address(b))
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_zero() {
        assert!(Address::ZERO.is_zero());
        assert!(!Address::from_u64(1).is_zero());
        assert_eq!(Address::default(), Address::ZERO);
    }

    #[test]
    fn from_u64_roundtrips_low_bytes() {
        let a = Address::from_u64(0xdead_beef);
        assert_eq!(&a.as_bytes()[16..], &0xdead_beef_u32.to_be_bytes());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let a = Address::from_seed("uniswap pair WBTC/ETH");
        let s = a.to_string();
        assert!(s.starts_with("0x"));
        assert_eq!(s.len(), 42);
        let parsed: Address = s.parse().expect("roundtrip");
        assert_eq!(parsed, a);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("0x1234".parse::<Address>().is_err());
        assert!("zz".repeat(20).parse::<Address>().is_err());
        let ok = "0x".to_string() + &"ab".repeat(20);
        assert!(ok.parse::<Address>().is_ok());
    }

    #[test]
    fn short_form_matches_paper_rendering() {
        let mut b = [0u8; 20];
        b[0] = 0xb0;
        b[1] = 0x17;
        assert_eq!(Address::from_bytes(b).short(), "0xb017");
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let creator = Address::from_seed("factory");
        let a = Address::derive(creator, 0);
        let b = Address::derive(creator, 1);
        assert_eq!(a, Address::derive(creator, 0));
        assert_ne!(a, b);
        assert_ne!(a, creator);
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(Address::from_seed(&format!("seed-{i}"))));
        }
    }
}

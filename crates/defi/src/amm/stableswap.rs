//! Curve-style StableSwap pools.
//!
//! Several of the paper's attacks trade against stable pools: Harvest
//! Finance (fUSDC/USDC through a Curve Y pool, 0.5% volatility — the
//! lowest in Table I), Yearn (DAI/3Crv, 402%), Value DeFi (3Crv/mvUSD) and
//! Saddle Finance (saddleUSD/sUSD). The StableSwap invariant keeps the
//! price near 1:1 for balanced pools but still moves under very large
//! trades — which is why vaults that price shares off these pools are
//! manipulatable at sub-percent volatility.
//!
//! The invariant (Egorov 2019) over `n` coins with amplification `A`:
//!
//! ```text
//! A·nⁿ·Σxᵢ + D = A·nⁿ·D + D^{n+1} / (nⁿ·∏xᵢ)
//! ```
//!
//! `D` and the post-trade balance `y` are found with Newton iterations on
//! `f64` over *normalized* (18-decimals-equivalent) balances; settlement is
//! `u128` and clamped, which preserves the price *shape* the detector sees.

use ethsim::state::SKey;
use ethsim::{math, Address, Chain, LogValue, Result, SimError, TokenId, TxContext};

use crate::labels::LabelService;

const SLOT_RESERVE: u16 = 0;

/// A StableSwap pool over `n ≥ 2` like-valued coins, with an LP token.
#[derive(Clone, Debug, PartialEq)]
pub struct StableSwapPool {
    /// The pool contract account.
    pub address: Address,
    /// Pooled coins.
    pub tokens: Vec<TokenId>,
    /// Per-coin decimal scaling to 18-decimals-equivalent, parallel to
    /// `tokens`.
    pub rates: Vec<u128>,
    /// Amplification coefficient (e.g. 100 for deep stable pools).
    pub amp: u64,
    /// LP token for deposits.
    pub lp_token: TokenId,
    /// Swap fee in basis points (4 = 0.04%, Curve's classic fee).
    pub fee_bps: u32,
}

impl StableSwapPool {
    /// Deploys a stable pool as a child of `parent` in the creation tree.
    ///
    /// # Errors
    /// Propagates substrate errors.
    ///
    /// # Panics
    /// Panics on fewer than two coins.
    #[allow(clippy::too_many_arguments)]
    pub fn deploy(
        chain: &mut Chain,
        _labels: &mut LabelService,
        deployer_eoa: Address,
        parent: Address,
        tokens: Vec<TokenId>,
        amp: u64,
        lp_symbol: &str,
        fee_bps: u32,
    ) -> Result<Self> {
        assert!(tokens.len() >= 2, "stable pool needs >= 2 coins");
        let mut out = None;
        chain.execute(deployer_eoa, parent, "createStablePool", |ctx| {
            let address = ctx.create_contract(parent)?;
            let lp_token = ctx.register_token(lp_symbol, 18, address);
            let mut rates = Vec::with_capacity(tokens.len());
            for t in &tokens {
                let d = ctx.token(*t)?.decimals as u32;
                rates.push(10u128.pow(18u32.saturating_sub(d)));
            }
            out = Some(StableSwapPool {
                address,
                tokens: tokens.clone(),
                rates,
                amp,
                lp_token,
                fee_bps,
            });
            Ok(())
        })?;
        Ok(out.expect("deploy closure ran"))
    }

    fn key(token: TokenId) -> SKey {
        SKey::TokenMap(SLOT_RESERVE, token)
    }

    fn index_of(&self, token: TokenId) -> Option<usize> {
        self.tokens.iter().position(|t| *t == token)
    }

    /// Reserve of `token` in raw units.
    pub fn reserve_of(&self, ctx: &TxContext<'_>, token: TokenId) -> u128 {
        ctx.sload(self.address, Self::key(token))
    }

    fn set_reserve(&self, ctx: &mut TxContext<'_>, token: TokenId, v: u128) {
        ctx.sstore(self.address, Self::key(token), v);
    }

    /// Normalized balances (18-decimals-equivalent) as `f64`.
    fn xp(&self, ctx: &TxContext<'_>) -> Vec<f64> {
        self.tokens
            .iter()
            .zip(&self.rates)
            .map(|(t, r)| (self.reserve_of(ctx, *t) as f64) * (*r as f64))
            .collect()
    }

    /// StableSwap invariant `D` for balances `xp` (normalized).
    fn d(&self, xp: &[f64]) -> f64 {
        let n = xp.len() as f64;
        let s: f64 = xp.iter().sum();
        if s == 0.0 {
            return 0.0;
        }
        let ann = self.amp as f64 * n.powf(n);
        let mut d = s;
        for _ in 0..255 {
            let mut d_p = d;
            for x in xp {
                d_p = d_p * d / (x * n);
            }
            let d_prev = d;
            d = (ann * s + d_p * n) * d / ((ann - 1.0) * d + (n + 1.0) * d_p);
            if (d - d_prev).abs() <= 1e-6 * d {
                break;
            }
        }
        d
    }

    /// Solves for the post-trade balance of coin `j` given the new balance
    /// `x` of coin `i`, holding `D` fixed.
    fn y(&self, xp: &[f64], i: usize, j: usize, x: f64) -> f64 {
        let n = xp.len() as f64;
        let d = self.d(xp);
        let ann = self.amp as f64 * n.powf(n);
        let mut c = d;
        let mut s = 0.0;
        for (k, xk) in xp.iter().enumerate() {
            let xk = if k == i {
                x
            } else if k == j {
                continue;
            } else {
                *xk
            };
            s += xk;
            c = c * d / (xk * n);
        }
        c = c * d / (ann * n);
        let b = s + d / ann;
        let mut y = d;
        for _ in 0..255 {
            let y_prev = y;
            y = (y * y + c) / (2.0 * y + b - d);
            if (y - y_prev).abs() <= 1e-6 * y.max(1.0) {
                break;
            }
        }
        y
    }

    /// Out-given-in under the StableSwap invariant, fee deducted from the
    /// output (as Curve does).
    ///
    /// # Errors
    /// Reverts on unknown coins, zero input or empty pool.
    pub fn amount_out(
        &self,
        ctx: &TxContext<'_>,
        token_in: TokenId,
        token_out: TokenId,
        amount_in: u128,
    ) -> Result<u128> {
        let i = self
            .index_of(token_in)
            .ok_or_else(|| SimError::revert("coin in not in pool"))?;
        let j = self
            .index_of(token_out)
            .ok_or_else(|| SimError::revert("coin out not in pool"))?;
        if i == j {
            return Err(SimError::revert("identical coins"));
        }
        if amount_in == 0 {
            return Err(SimError::revert("zero input"));
        }
        let xp = self.xp(ctx);
        if xp.contains(&0.0) {
            return Err(SimError::revert("empty pool"));
        }
        let x_new = xp[i] + amount_in as f64 * self.rates[i] as f64;
        let y_new = self.y(&xp, i, j, x_new);
        let dy_norm = (xp[j] - y_new).max(0.0);
        let fee = dy_norm * self.fee_bps as f64 / 10_000.0;
        let out_raw = ((dy_norm - fee) / self.rates[j] as f64) as u128;
        let reserve_out = self.reserve_of(ctx, token_out);
        Ok(out_raw.min(reserve_out.saturating_sub(1)))
    }

    /// Seeds reserves and mints initial LP supply equal to `D`.
    ///
    /// # Errors
    /// Reverts on amount mismatch or insufficient balances.
    pub fn seed(
        &self,
        ctx: &mut TxContext<'_>,
        provider: Address,
        amounts: &[u128],
    ) -> Result<u128> {
        if amounts.len() != self.tokens.len() {
            return Err(SimError::revert("seed amounts mismatch"));
        }
        let pool = self.clone();
        let amounts = amounts.to_vec();
        ctx.call(provider, self.address, "add_liquidity", 0, |ctx| {
            for (idx, token) in pool.tokens.iter().enumerate() {
                ctx.transfer_token(*token, provider, pool.address, amounts[idx])?;
                pool.set_reserve(ctx, *token, amounts[idx]);
            }
            let d = pool.d(&pool.xp(ctx)) as u128;
            ctx.mint_token(pool.lp_token, provider, d)?;
            Ok(d)
        })
    }

    /// Adds liquidity after seeding; mints LP pro-rata to the growth of `D`.
    ///
    /// # Errors
    /// Reverts on mismatch, empty pool, or insufficient balances.
    pub fn add_liquidity(
        &self,
        ctx: &mut TxContext<'_>,
        provider: Address,
        amounts: &[u128],
    ) -> Result<u128> {
        if amounts.len() != self.tokens.len() {
            return Err(SimError::revert("amounts mismatch"));
        }
        let pool = self.clone();
        let amounts = amounts.to_vec();
        ctx.call(provider, self.address, "add_liquidity", 0, |ctx| {
            let d0 = pool.d(&pool.xp(ctx));
            if d0 == 0.0 {
                return Err(SimError::revert("seed the pool first"));
            }
            for (idx, token) in pool.tokens.iter().enumerate() {
                if amounts[idx] > 0 {
                    ctx.transfer_token(*token, provider, pool.address, amounts[idx])?;
                    let r = pool.reserve_of(ctx, *token);
                    pool.set_reserve(ctx, *token, math::add(r, amounts[idx])?);
                }
            }
            let d1 = pool.d(&pool.xp(ctx));
            let supply = ctx.state().total_supply(pool.lp_token);
            let minted = (supply as f64 * (d1 - d0) / d0).max(0.0) as u128;
            if minted == 0 {
                return Err(SimError::revert("zero LP minted"));
            }
            ctx.mint_token(pool.lp_token, provider, minted)?;
            ctx.emit_log(
                pool.address,
                "AddLiquidity",
                vec![
                    ("provider".into(), LogValue::Addr(provider)),
                    ("lpMinted".into(), LogValue::Amount(minted)),
                ],
            );
            Ok(minted)
        })
    }

    /// Removes liquidity pro-rata across all coins.
    ///
    /// # Errors
    /// Reverts on zero shares or empty supply.
    pub fn remove_liquidity(
        &self,
        ctx: &mut TxContext<'_>,
        provider: Address,
        lp_amount: u128,
    ) -> Result<Vec<u128>> {
        let pool = self.clone();
        ctx.call(provider, self.address, "remove_liquidity", 0, |ctx| {
            let supply = ctx.state().total_supply(pool.lp_token);
            if lp_amount == 0 || supply == 0 {
                return Err(SimError::revert("zero shares"));
            }
            let mut outs = Vec::with_capacity(pool.tokens.len());
            ctx.burn_token(pool.lp_token, provider, lp_amount)?;
            for token in &pool.tokens {
                let r = pool.reserve_of(ctx, *token);
                let out = math::mul_div(r, lp_amount, supply)?;
                ctx.transfer_token(*token, pool.address, provider, out)?;
                pool.set_reserve(ctx, *token, math::sub(r, out)?);
                outs.push(out);
            }
            ctx.emit_log(
                pool.address,
                "RemoveLiquidity",
                vec![
                    ("provider".into(), LogValue::Addr(provider)),
                    ("lpBurned".into(), LogValue::Amount(lp_amount)),
                ],
            );
            Ok(outs)
        })
    }

    /// Swaps exact-in (Curve's `exchange`).
    ///
    /// # Errors
    /// Reverts on pricing failure, balance shortfall or `min_out`.
    pub fn swap_exact_in(
        &self,
        ctx: &mut TxContext<'_>,
        trader: Address,
        token_in: TokenId,
        token_out: TokenId,
        amount_in: u128,
        min_out: u128,
    ) -> Result<u128> {
        let pool = self.clone();
        ctx.call(trader, self.address, "exchange", 0, |ctx| {
            let out = pool.amount_out(ctx, token_in, token_out, amount_in)?;
            if out < min_out {
                return Err(SimError::revert("slippage"));
            }
            ctx.transfer_token(token_in, trader, pool.address, amount_in)?;
            ctx.transfer_token(token_out, pool.address, trader, out)?;
            let r_in = pool.reserve_of(ctx, token_in);
            let r_out = pool.reserve_of(ctx, token_out);
            pool.set_reserve(ctx, token_in, math::add(r_in, amount_in)?);
            pool.set_reserve(ctx, token_out, math::sub(r_out, out)?);
            ctx.emit_log(
                pool.address,
                "TokenExchange",
                vec![
                    ("buyer".into(), LogValue::Addr(trader)),
                    ("tokenIn".into(), LogValue::Token(token_in)),
                    ("amountIn".into(), LogValue::Amount(amount_in)),
                    ("tokenOut".into(), LogValue::Token(token_out)),
                    ("amountOut".into(), LogValue::Amount(out)),
                ],
            );
            Ok(out)
        })
    }

    /// Virtual price of one LP token in normalized coin terms (`D / supply`)
    /// — the quantity share-price vaults read, and the one the Harvest
    /// attack manipulates.
    pub fn virtual_price(&self, ctx: &TxContext<'_>) -> f64 {
        let supply = ctx.state().total_supply(self.lp_token);
        if supply == 0 {
            return 0.0;
        }
        self.d(&self.xp(ctx)) / supply as f64
    }

    /// Spot exchange rate of `token_in` → `token_out` for an infinitesimal
    /// trade (approximated with a small probe).
    ///
    /// # Errors
    /// Reverts on pricing failure.
    pub fn spot_price(
        &self,
        ctx: &TxContext<'_>,
        token_in: TokenId,
        token_out: TokenId,
    ) -> Result<f64> {
        let i = self
            .index_of(token_in)
            .ok_or_else(|| SimError::revert("coin in not in pool"))?;
        let probe = self.reserve_of(ctx, self.tokens[i]) / 100_000;
        let probe = probe.max(1);
        let out = self.amount_out(ctx, token_in, token_out, probe)?;
        let din = ctx.token(token_in)?.decimals as i32;
        let dout = ctx.token(token_out)?.decimals as i32;
        Ok((out as f64 / 10f64.powi(dout)) / (probe as f64 / 10f64.powi(din)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::ChainConfig;

    const E6: u128 = 1_000_000;
    const E18: u128 = 1_000_000_000_000_000_000;

    fn deploy_token(chain: &mut Chain, deployer: Address, symbol: &str, decimals: u8) -> TokenId {
        let mut out = None;
        chain
            .execute(deployer, deployer, "deployToken", |ctx| {
                let c = ctx.create_contract(deployer)?;
                out = Some(ctx.register_token(symbol, decimals, c));
                Ok(())
            })
            .unwrap();
        out.unwrap()
    }

    fn setup() -> (Chain, StableSwapPool, Address, TokenId, TokenId) {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("curve deployer");
        let whale = chain.create_eoa("whale");
        let usdc = deploy_token(&mut chain, deployer, "USDC", 6);
        let dai = deploy_token(&mut chain, deployer, "DAI", 18);
        let pool = StableSwapPool::deploy(
            &mut chain,
            &mut labels,
            deployer,
            deployer,
            vec![usdc, dai],
            100,
            "crvUSDCDAI",
            4,
        )
        .unwrap();
        chain
            .execute(whale, pool.address, "seed", |ctx| {
                ctx.mint_token(usdc, whale, 200_000_000 * E6)?;
                ctx.mint_token(dai, whale, 200_000_000 * E18)?;
                pool.seed(ctx, whale, &[100_000_000 * E6, 100_000_000 * E18])?;
                Ok(())
            })
            .unwrap();
        (chain, pool, whale, usdc, dai)
    }

    #[test]
    fn balanced_pool_trades_near_one_to_one() {
        let (mut chain, pool, whale, usdc, dai) = setup();
        chain
            .execute(whale, pool.address, "swap", |ctx| {
                let out = pool.swap_exact_in(ctx, whale, usdc, dai, 1_000_000 * E6, 0)?;
                let rate = out as f64 / E18 as f64 / 1_000_000.0;
                assert!(rate > 0.995 && rate < 1.0, "near-parity rate, got {rate}");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn huge_trade_moves_price_but_slightly() {
        let (mut chain, pool, whale, usdc, dai) = setup();
        chain
            .execute(whale, pool.address, "swap", |ctx| {
                let p0 = pool.spot_price(ctx, usdc, dai)?;
                // 50M into a 100M-per-side pool — the Harvest-scale trade.
                pool.swap_exact_in(ctx, whale, usdc, dai, 50_000_000 * E6, 0)?;
                let p1 = pool.spot_price(ctx, usdc, dai)?;
                assert!(p1 < p0, "USDC cheapens");
                let vol = (p0 - p1) / p1 * 100.0;
                assert!(vol > 0.05 && vol < 20.0, "sub-Uniswap volatility: {vol}%");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn virtual_price_rises_with_fees_and_moves_with_imbalance() {
        let (mut chain, pool, whale, usdc, dai) = setup();
        chain
            .execute(whale, pool.address, "cycle", |ctx| {
                let vp0 = pool.virtual_price(ctx);
                assert!(vp0 > 0.0);
                let got = pool.swap_exact_in(ctx, whale, usdc, dai, 10_000_000 * E6, 0)?;
                pool.swap_exact_in(ctx, whale, dai, usdc, got, 0)?;
                let vp1 = pool.virtual_price(ctx);
                assert!(vp1 >= vp0, "round trip leaves fees in the pool");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn add_remove_liquidity_roundtrip() {
        let (mut chain, pool, whale, usdc, dai) = setup();
        chain
            .execute(whale, pool.address, "lp", |ctx| {
                let minted = pool.add_liquidity(ctx, whale, &[1_000_000 * E6, 1_000_000 * E18])?;
                assert!(minted > 0);
                let outs = pool.remove_liquidity(ctx, whale, minted)?;
                assert_eq!(outs.len(), 2);
                // Balanced deposit and immediate withdrawal: near-lossless.
                let usdc_back = outs[0] as f64 / E6 as f64;
                assert!(usdc_back > 990_000.0 && usdc_back < 1_010_000.0);
                let _ = (usdc, dai);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn rejects_bad_inputs() {
        let (mut chain, pool, whale, usdc, _) = setup();
        chain
            .execute(whale, pool.address, "bad", |ctx| {
                assert!(pool.amount_out(ctx, usdc, usdc, E6).is_err());
                assert!(pool
                    .amount_out(ctx, usdc, TokenId::from_index(88), E6)
                    .is_err());
                assert!(pool.amount_out(ctx, usdc, pool.tokens[1], 0).is_err());
                assert!(pool.remove_liquidity(ctx, whale, 0).is_err());
                Ok(())
            })
            .unwrap();
    }
}

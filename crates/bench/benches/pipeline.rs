//! Criterion: sustained wild-scan throughput — the whole pipeline over a
//! mixed corpus slice, the workload behind the paper's 272,984-transaction
//! scan.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use leishen::{DetectorConfig, LeiShen};
use leishen_bench::wild_world;

fn bench_pipeline(c: &mut Criterion) {
    let (world, corpus) = wild_world(7, 0.0005);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());
    let records: Vec<_> = corpus
        .iter()
        .map(|t| world.chain.replay(t.tx).expect("recorded").clone())
        .collect();

    let mut group = c.benchmark_group("wild_scan");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("corpus_sweep", |b| {
        b.iter(|| {
            let mut attacks = 0usize;
            for record in &records {
                if detector.analyze(record, &view).is_attack() {
                    attacks += 1;
                }
            }
            std::hint::black_box(attacks)
        })
    });
    group.finish();

    // Per-transaction figure comparable to the paper's 10 ms budget.
    let heaviest = records
        .iter()
        .max_by_key(|r| r.trace.transfers.len())
        .expect("non-empty corpus")
        .clone();
    c.bench_function("heaviest_tx", |b| {
        b.iter_batched(
            || heaviest.clone(),
            |record| std::hint::black_box(detector.analyze(&record, &view)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    // CI-friendly settings: the distributions here are tight, so
    // short measurement windows give stable numbers.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_pipeline
}
criterion_main!(benches);

//! The transaction execution context.
//!
//! Protocol code runs inside a [`TxContext`]: it moves assets, emits logs,
//! enters call frames, creates contracts, and reads/writes journaled
//! storage. Every action is recorded into the transaction's [`TxTrace`]
//! with a single monotone sequence counter, so the trace preserves the
//! happened-before order between native transfers, token transfers, logs
//! and calls — the exact information the paper's modified Geth recovers.

use crate::address::Address;
use crate::error::SimError;
use crate::frame::CallFrame;
use crate::log::{EventLog, LogValue};
use crate::state::{SKey, WorldState};
use crate::token::{TokenId, TokenInfo};
use crate::transfer::Transfer;
use crate::tx::TxTrace;
use crate::Result;

/// Execution context for one transaction.
///
/// Constructed by [`crate::Chain::execute`]; protocol code receives
/// `&mut TxContext` and should never need the chain itself.
pub struct TxContext<'a> {
    state: &'a mut WorldState,
    trace: TxTrace,
    seq: u32,
    depth: u16,
    block: u64,
    timestamp: u64,
}

impl<'a> TxContext<'a> {
    pub(crate) fn new(state: &'a mut WorldState, block: u64, timestamp: u64) -> Self {
        TxContext {
            state,
            trace: TxTrace::default(),
            seq: 0,
            depth: 0,
            block,
            timestamp,
        }
    }

    pub(crate) fn into_trace(self) -> TxTrace {
        self.trace
    }

    fn next_seq(&mut self) -> u32 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    // ----- environment -----------------------------------------------------

    /// Current block number.
    pub fn block(&self) -> u64 {
        self.block
    }

    /// Current block timestamp (unix seconds).
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// Read-only view of the world state.
    pub fn state(&self) -> &WorldState {
        self.state
    }

    /// Current call depth (0 at the external call).
    pub fn depth(&self) -> u16 {
        self.depth
    }

    // ----- asset movement ---------------------------------------------------

    /// Transfers native Ether, recording the transfer in the trace.
    ///
    /// # Errors
    /// [`SimError::InsufficientBalance`] if `from` holds less than `amount`;
    /// [`SimError::Overflow`] on receiver balance overflow.
    pub fn transfer_eth(&mut self, from: Address, to: Address, amount: u128) -> Result<()> {
        self.transfer_token(TokenId::ETH, from, to, amount)
    }

    /// Transfers `amount` of `token` from `from` to `to`, recording the
    /// transfer. Zero-amount transfers are recorded too (they occur on real
    /// chains and the simplification rules must tolerate them).
    ///
    /// # Errors
    /// [`SimError::UnknownToken`] for unregistered tokens,
    /// [`SimError::InsufficientBalance`] if `from` holds less than `amount`.
    pub fn transfer_token(
        &mut self,
        token: TokenId,
        from: Address,
        to: Address,
        amount: u128,
    ) -> Result<()> {
        self.state.token(token)?; // existence check
        let from_bal = self.state.balance(token, from);
        if from_bal < amount {
            return Err(SimError::InsufficientBalance {
                who: from,
                token,
                needed: amount,
                available: from_bal,
            });
        }
        let to_bal = self.state.balance(token, to);
        let new_to = to_bal.checked_add(amount).ok_or(SimError::Overflow)?;
        if token.is_eth() {
            self.state.set_eth_balance_journaled(from, from_bal - amount);
            self.state.set_eth_balance_journaled(to, new_to);
        } else {
            self.state
                .set_token_balance_journaled(token, from, from_bal - amount);
            self.state.set_token_balance_journaled(token, to, new_to);
        }
        let seq = self.next_seq();
        self.trace.transfers.push(Transfer {
            seq,
            sender: from,
            receiver: to,
            amount,
            token,
        });
        Ok(())
    }

    /// Mints `amount` of `token` to `to`. Recorded as a transfer **from the
    /// BlackHole address**, matching the ERC20 convention the paper's
    /// mint-liquidity detection relies on (Table III).
    ///
    /// # Errors
    /// [`SimError::UnknownToken`], [`SimError::Overflow`].
    pub fn mint_token(&mut self, token: TokenId, to: Address, amount: u128) -> Result<()> {
        if token.is_eth() {
            return Err(SimError::revert("cannot mint native ETH"));
        }
        self.state.token(token)?;
        let supply = self.state.total_supply(token);
        let new_supply = supply.checked_add(amount).ok_or(SimError::Overflow)?;
        let bal = self.state.balance(token, to);
        let new_bal = bal.checked_add(amount).ok_or(SimError::Overflow)?;
        self.state.set_supply_journaled(token, new_supply);
        self.state.set_token_balance_journaled(token, to, new_bal);
        let seq = self.next_seq();
        self.trace.transfers.push(Transfer {
            seq,
            sender: Address::ZERO,
            receiver: to,
            amount,
            token,
        });
        Ok(())
    }

    /// Burns `amount` of `token` from `from`. Recorded as a transfer **to
    /// the BlackHole address** (remove-liquidity detection, Table III).
    ///
    /// # Errors
    /// [`SimError::UnknownToken`], [`SimError::InsufficientBalance`].
    pub fn burn_token(&mut self, token: TokenId, from: Address, amount: u128) -> Result<()> {
        if token.is_eth() {
            return Err(SimError::revert("cannot burn native ETH"));
        }
        self.state.token(token)?;
        let bal = self.state.balance(token, from);
        if bal < amount {
            return Err(SimError::InsufficientBalance {
                who: from,
                token,
                needed: amount,
                available: bal,
            });
        }
        let supply = self.state.total_supply(token);
        self.state
            .set_supply_journaled(token, supply.saturating_sub(amount));
        self.state
            .set_token_balance_journaled(token, from, bal - amount);
        let seq = self.next_seq();
        self.trace.transfers.push(Transfer {
            seq,
            sender: from,
            receiver: Address::ZERO,
            amount,
            token,
        });
        Ok(())
    }

    // ----- logs, calls, creation ---------------------------------------------

    /// Emits an event log.
    pub fn emit_log(
        &mut self,
        emitter: Address,
        name: impl Into<String>,
        params: Vec<(String, LogValue)>,
    ) {
        let seq = self.next_seq();
        self.trace.logs.push(EventLog {
            seq,
            emitter,
            name: name.into(),
            params,
        });
    }

    /// Enters a call frame, runs `body`, and exits the frame. Errors
    /// propagate (the whole transaction reverts at the top level —
    /// sub-call try/catch is intentionally not modelled because flash-loan
    /// atomicity is a transaction-level property).
    ///
    /// # Errors
    /// Whatever `body` returns.
    pub fn call<R>(
        &mut self,
        caller: Address,
        callee: Address,
        function: impl Into<String>,
        value: u128,
        body: impl FnOnce(&mut Self) -> Result<R>,
    ) -> Result<R> {
        let seq = self.next_seq();
        self.trace.frames.push(CallFrame {
            seq,
            depth: self.depth,
            caller,
            callee,
            function: function.into(),
            value,
        });
        if value > 0 {
            self.transfer_eth(caller, callee, value)?;
        }
        self.depth += 1;
        let out = body(self);
        self.depth -= 1;
        out
    }

    /// Creates a contract account owned by `creator` and records it in the
    /// trace and the creation dataset.
    ///
    /// # Errors
    /// [`SimError::UnknownAccount`] if `creator` does not exist.
    pub fn create_contract(&mut self, creator: Address) -> Result<Address> {
        let addr = self.state.create_contract(creator, self.block)?;
        self.trace.created.push(addr);
        Ok(addr)
    }

    /// Registers a token mid-transaction (token deployments happen inside
    /// transactions on the real chain).
    pub fn register_token(
        &mut self,
        symbol: impl Into<String>,
        decimals: u8,
        contract: Address,
    ) -> TokenId {
        self.state.register_token(symbol, decimals, contract)
    }

    /// Marks `contract` self-destructed.
    ///
    /// # Errors
    /// See [`WorldState::self_destruct`].
    pub fn self_destruct(&mut self, contract: Address) -> Result<()> {
        self.state.self_destruct(contract)
    }

    // ----- storage ------------------------------------------------------------

    /// Reads contract storage.
    pub fn sload(&self, contract: Address, key: SKey) -> u128 {
        self.state.storage(contract, key)
    }

    /// Writes contract storage (journaled).
    pub fn sstore(&mut self, contract: Address, key: SKey, value: u128) {
        self.state.set_storage(contract, key, value);
    }

    // ----- conveniences ----------------------------------------------------------

    /// Balance shorthand.
    pub fn balance(&self, token: TokenId, who: Address) -> u128 {
        self.state.balance(token, who)
    }

    /// Token-metadata shorthand.
    ///
    /// # Errors
    /// [`SimError::UnknownToken`].
    pub fn token(&self, id: TokenId) -> Result<&TokenInfo> {
        self.state.token(id)
    }

    /// Immutable view of the trace recorded so far (useful for protocols
    /// that introspect, and for tests).
    pub fn trace(&self) -> &TxTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (WorldState, Address, Address) {
        let mut w = WorldState::new();
        let a = Address::from_seed("a");
        let b = Address::from_seed("b");
        w.create_eoa(a);
        w.create_eoa(b);
        w.credit_eth(a, 1_000).unwrap();
        w.commit();
        (w, a, b)
    }

    #[test]
    fn eth_transfer_records_trace_and_moves_balance() {
        let (mut w, a, b) = setup();
        let mut ctx = TxContext::new(&mut w, 1, 100);
        ctx.transfer_eth(a, b, 400).unwrap();
        assert_eq!(ctx.balance(TokenId::ETH, a), 600);
        assert_eq!(ctx.balance(TokenId::ETH, b), 400);
        let trace = ctx.into_trace();
        assert_eq!(trace.transfers.len(), 1);
        assert_eq!(trace.transfers[0].amount, 400);
        assert!(trace.transfers[0].is_native());
    }

    #[test]
    fn insufficient_balance_fails() {
        let (mut w, a, b) = setup();
        let mut ctx = TxContext::new(&mut w, 1, 100);
        let err = ctx.transfer_eth(b, a, 1).unwrap_err();
        assert!(matches!(err, SimError::InsufficientBalance { .. }));
    }

    #[test]
    fn mint_burn_use_blackhole() {
        let (mut w, a, _) = setup();
        let tok = w.register_token("LP", 18, Address::from_seed("lp"));
        let mut ctx = TxContext::new(&mut w, 1, 100);
        ctx.mint_token(tok, a, 55).unwrap();
        ctx.burn_token(tok, a, 20).unwrap();
        assert_eq!(ctx.balance(tok, a), 35);
        assert_eq!(ctx.state().total_supply(tok), 35);
        let trace = ctx.into_trace();
        assert!(trace.transfers[0].is_mint());
        assert!(trace.transfers[1].is_burn());
    }

    #[test]
    fn eth_cannot_mint_or_burn() {
        let (mut w, a, _) = setup();
        let mut ctx = TxContext::new(&mut w, 1, 100);
        assert!(ctx.mint_token(TokenId::ETH, a, 1).is_err());
        assert!(ctx.burn_token(TokenId::ETH, a, 1).is_err());
    }

    #[test]
    fn seq_interleaves_streams() {
        let (mut w, a, b) = setup();
        let mut ctx = TxContext::new(&mut w, 1, 100);
        ctx.transfer_eth(a, b, 1).unwrap(); // seq 0
        ctx.emit_log(b, "Ping", vec![]); // seq 1
        ctx.transfer_eth(a, b, 2).unwrap(); // seq 2
        let trace = ctx.into_trace();
        assert_eq!(trace.transfers[0].seq, 0);
        assert_eq!(trace.logs[0].seq, 1);
        assert_eq!(trace.transfers[1].seq, 2);
    }

    #[test]
    fn call_frames_track_depth_and_value() {
        let (mut w, a, b) = setup();
        let mut ctx = TxContext::new(&mut w, 1, 100);
        ctx.call(a, b, "outer", 10, |ctx| {
            assert_eq!(ctx.depth(), 1);
            ctx.call(b, a, "inner", 0, |ctx| {
                assert_eq!(ctx.depth(), 2);
                Ok(())
            })
        })
        .unwrap();
        assert_eq!(ctx.depth(), 0);
        let trace = ctx.into_trace();
        assert_eq!(trace.frames.len(), 2);
        assert_eq!(trace.frames[0].function, "outer");
        assert_eq!(trace.frames[0].depth, 0);
        assert_eq!(trace.frames[1].depth, 1);
        // value transfer recorded as a native transfer
        assert_eq!(trace.transfers[0].amount, 10);
    }

    #[test]
    fn create_contract_records_in_trace() {
        let (mut w, a, _) = setup();
        let mut ctx = TxContext::new(&mut w, 7, 100);
        let c = ctx.create_contract(a).unwrap();
        assert!(ctx.state().exists(c));
        assert_eq!(ctx.trace().created, vec![c]);
        assert_eq!(ctx.state().creations()[0].block, 7);
    }

    #[test]
    fn zero_amount_transfer_is_recorded() {
        let (mut w, a, b) = setup();
        let mut ctx = TxContext::new(&mut w, 1, 100);
        ctx.transfer_eth(a, b, 0).unwrap();
        assert_eq!(ctx.into_trace().transfers.len(), 1);
    }
}

//! The 22 real-world flpAttacks of paper Table I, re-scripted.
//!
//! Each attack function extends the standard [`World`] with its victim
//! protocol, executes the attack as one flash-loan transaction, and returns
//! an [`ExecutedAttack`] whose [`AttackSpec`] carries machine-checkable
//! expectations:
//!
//! * the Table I attack patterns the attack conforms to,
//! * the Table IV detection outcomes for DeFiRanger, Explorer+LeiShen and
//!   LeiShen.
//!
//! Four flagship attacks (bZx-1, bZx-2, Balancer, Harvest Finance) run
//! against the full protocol implementations in the `defi` crate; the
//! remaining attacks are trace-scripted from their published analyses —
//! the detector consumes replay traces either way.

mod flagship;
mod scripted;
pub(crate) mod util;

use ethsim::calendar::Date;
use ethsim::{Address, TxId};
use leishen::patterns::PatternKind;

use crate::world::World;

/// Static metadata for one studied attack (Tables I and IV).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttackSpec {
    /// Row number in Table I.
    pub id: u32,
    /// Canonical attack name.
    pub name: &'static str,
    /// The exploited application.
    pub attacked_app: &'static str,
    /// Chain the original attack ran on.
    pub origin: Origin,
    /// Real-world attack date (used to place the transaction on the
    /// simulated timeline).
    pub date: Date,
    /// Patterns the attack conforms to per Table I (empty = the paper
    /// observed no clear pattern).
    pub patterns: &'static [PatternKind],
    /// Table IV: does DeFiRanger detect it?
    pub expect_defiranger: bool,
    /// Table IV: does Explorer+LeiShen detect it?
    pub expect_explorer: bool,
    /// Table IV: does LeiShen detect it?
    pub expect_leishen: bool,
}

/// Which chain the original incident happened on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Origin {
    /// Ethereum mainnet.
    Ethereum,
    /// BNB Smart Chain (a fork of Ethereum; paper §III-A).
    Bsc,
}

/// One executed attack scenario.
#[derive(Clone, Copy, Debug)]
pub struct ExecutedAttack {
    /// Metadata and expectations.
    pub spec: AttackSpec,
    /// The attack transaction.
    pub tx: TxId,
    /// The attacker's EOA.
    pub attacker: Address,
    /// The attack contract.
    pub contract: Address,
}

/// All 22 attack runners in Table I order.
pub fn all_attacks() -> Vec<fn(&mut World) -> ExecutedAttack> {
    vec![
        flagship::bzx1,          // 1
        flagship::bzx2,          // 2
        flagship::balancer,      // 3
        scripted::eminence,      // 4
        flagship::harvest,       // 5
        scripted::cheese_bank,   // 6
        scripted::value_defi,    // 7
        scripted::yearn,         // 8
        scripted::spartan,       // 9
        scripted::xtoken1,       // 10
        scripted::pancake_bunny, // 11
        scripted::julswap,       // 12
        scripted::belt,          // 13
        scripted::xwin,          // 14
        scripted::wault,         // 15
        scripted::twindex,       // 16
        scripted::autoshark2,    // 17
        scripted::my_farm_pet,   // 18
        scripted::pancake_hunny, // 19
        scripted::autoshark3,    // 20
        scripted::ploutoz,       // 21
        scripted::saddle,        // 22
    ]
}

/// Runs every attack against one world, in Table I order. Each attack is
/// placed at (or after) its real-world date on the simulated timeline.
pub fn run_all_attacks(world: &mut World) -> Vec<ExecutedAttack> {
    all_attacks().into_iter().map(|f| f(world)).collect()
}

pub(crate) use specs::spec;

/// Table I + Table IV data, one row per attack.
mod specs {
    use super::*;
    use PatternKind::{Krp, Mbs, Sbs};

    /// Looks up the spec for Table I row `id`.
    ///
    /// # Panics
    /// Panics on ids outside 1..=22.
    pub fn spec(id: u32) -> AttackSpec {
        ALL.iter().find(|s| s.id == id).copied().expect("id in 1..=22")
    }

    const ALL: &[AttackSpec] = &[
        AttackSpec {
            id: 1,
            name: "bZx-1",
            attacked_app: "bZx",
            origin: Origin::Ethereum,
            date: Date { year: 2020, month: 2, day: 15 },
            patterns: &[Sbs],
            expect_defiranger: false,
            expect_explorer: false,
            expect_leishen: true,
        },
        AttackSpec {
            id: 2,
            name: "bZx-2",
            attacked_app: "bZx",
            origin: Origin::Ethereum,
            date: Date { year: 2020, month: 2, day: 18 },
            patterns: &[Krp],
            expect_defiranger: false,
            expect_explorer: true,
            expect_leishen: true,
        },
        AttackSpec {
            id: 3,
            name: "Balancer",
            attacked_app: "Balancer",
            origin: Origin::Ethereum,
            date: Date { year: 2020, month: 6, day: 29 },
            patterns: &[Krp],
            expect_defiranger: false,
            expect_explorer: true,
            expect_leishen: true,
        },
        AttackSpec {
            id: 4,
            name: "Eminence",
            attacked_app: "Eminence",
            origin: Origin::Ethereum,
            date: Date { year: 2020, month: 9, day: 29 },
            patterns: &[Mbs],
            expect_defiranger: false,
            expect_explorer: false,
            expect_leishen: true,
        },
        AttackSpec {
            id: 5,
            name: "Harvest Finance",
            attacked_app: "Harvest Finance",
            origin: Origin::Ethereum,
            date: Date { year: 2020, month: 10, day: 26 },
            patterns: &[Mbs],
            expect_defiranger: true,
            expect_explorer: true,
            expect_leishen: true,
        },
        AttackSpec {
            id: 6,
            name: "Cheese Bank",
            attacked_app: "Cheese Bank",
            origin: Origin::Ethereum,
            date: Date { year: 2020, month: 11, day: 6 },
            patterns: &[Sbs],
            expect_defiranger: true,
            expect_explorer: false,
            expect_leishen: true,
        },
        AttackSpec {
            id: 7,
            name: "Value DeFi",
            attacked_app: "Value DeFi",
            origin: Origin::Ethereum,
            date: Date { year: 2020, month: 11, day: 14 },
            patterns: &[],
            expect_defiranger: true,
            expect_explorer: false,
            expect_leishen: false,
        },
        AttackSpec {
            id: 8,
            name: "Yearn Finance",
            attacked_app: "Yearn",
            origin: Origin::Ethereum,
            date: Date { year: 2021, month: 2, day: 4 },
            patterns: &[Sbs],
            expect_defiranger: true,
            expect_explorer: false,
            expect_leishen: true,
        },
        AttackSpec {
            id: 9,
            name: "Spartan Protocol",
            attacked_app: "Spartan Protocol",
            origin: Origin::Bsc,
            date: Date { year: 2021, month: 5, day: 2 },
            patterns: &[Krp],
            expect_defiranger: false,
            expect_explorer: false,
            expect_leishen: true,
        },
        AttackSpec {
            id: 10,
            name: "XToken-1",
            attacked_app: "XToken",
            origin: Origin::Ethereum,
            date: Date { year: 2021, month: 5, day: 12 },
            patterns: &[],
            expect_defiranger: false,
            expect_explorer: false,
            expect_leishen: false,
        },
        AttackSpec {
            id: 11,
            name: "PancakeBunny",
            attacked_app: "PancakeBunny",
            origin: Origin::Bsc,
            date: Date { year: 2021, month: 5, day: 19 },
            patterns: &[],
            expect_defiranger: false,
            expect_explorer: false,
            expect_leishen: false,
        },
        AttackSpec {
            id: 12,
            name: "JulSwap",
            attacked_app: "JulSwap",
            origin: Origin::Bsc,
            date: Date { year: 2021, month: 5, day: 27 },
            patterns: &[Sbs],
            expect_defiranger: false,
            expect_explorer: false,
            // Misses: untaggable accounts hinder trade identification
            // (paper §VI-B).
            expect_leishen: false,
        },
        AttackSpec {
            id: 13,
            name: "Belt Finance",
            attacked_app: "Belt Finance",
            origin: Origin::Bsc,
            date: Date { year: 2021, month: 5, day: 29 },
            patterns: &[Mbs],
            expect_defiranger: true,
            expect_explorer: false,
            expect_leishen: true,
        },
        AttackSpec {
            id: 14,
            name: "xWin Finance",
            attacked_app: "xWin Finance",
            origin: Origin::Bsc,
            date: Date { year: 2021, month: 6, day: 9 },
            patterns: &[Mbs],
            expect_defiranger: true,
            expect_explorer: true,
            expect_leishen: true,
        },
        AttackSpec {
            id: 15,
            name: "Wault Finance",
            attacked_app: "Wault Finance",
            origin: Origin::Bsc,
            date: Date { year: 2021, month: 6, day: 15 },
            patterns: &[Krp],
            expect_defiranger: false,
            expect_explorer: false,
            expect_leishen: true,
        },
        AttackSpec {
            id: 16,
            name: "Twindex",
            attacked_app: "Twindex",
            origin: Origin::Bsc,
            date: Date { year: 2021, month: 6, day: 27 },
            patterns: &[],
            expect_defiranger: false,
            expect_explorer: false,
            expect_leishen: false,
        },
        AttackSpec {
            id: 17,
            name: "AutoShark-2",
            attacked_app: "AutoShark",
            origin: Origin::Bsc,
            date: Date { year: 2021, month: 7, day: 2 },
            patterns: &[Sbs],
            expect_defiranger: false,
            expect_explorer: false,
            expect_leishen: true,
        },
        AttackSpec {
            id: 18,
            name: "MY FARM PET",
            attacked_app: "MY FARM PET",
            origin: Origin::Bsc,
            date: Date { year: 2021, month: 7, day: 6 },
            patterns: &[],
            expect_defiranger: false,
            expect_explorer: false,
            expect_leishen: false,
        },
        AttackSpec {
            id: 19,
            name: "PancakeHunny",
            attacked_app: "PancakeHunny",
            origin: Origin::Bsc,
            date: Date { year: 2021, month: 7, day: 20 },
            patterns: &[Mbs],
            expect_defiranger: false,
            expect_explorer: false,
            // Misses: untaggable accounts (paper §VI-B).
            expect_leishen: false,
        },
        AttackSpec {
            id: 20,
            name: "AutoShark-3",
            attacked_app: "AutoShark",
            origin: Origin::Bsc,
            date: Date { year: 2021, month: 8, day: 25 },
            patterns: &[Sbs],
            expect_defiranger: true,
            expect_explorer: false,
            expect_leishen: true,
        },
        AttackSpec {
            id: 21,
            name: "Ploutoz Finance",
            attacked_app: "Ploutoz Finance",
            origin: Origin::Bsc,
            date: Date { year: 2021, month: 10, day: 8 },
            patterns: &[Sbs],
            expect_defiranger: true,
            expect_explorer: false,
            expect_leishen: true,
        },
        AttackSpec {
            id: 22,
            name: "Saddle Finance",
            attacked_app: "Saddle Finance",
            origin: Origin::Ethereum,
            date: Date { year: 2022, month: 1, day: 30 },
            patterns: &[Sbs, Mbs],
            expect_defiranger: true,
            expect_explorer: false,
            expect_leishen: true,
        },
    ];

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn twenty_two_rows_in_order() {
            assert_eq!(ALL.len(), 22);
            for (i, s) in ALL.iter().enumerate() {
                assert_eq!(s.id as usize, i + 1);
            }
        }

        #[test]
        fn table_iv_column_totals_match_paper() {
            let dr = ALL.iter().filter(|s| s.expect_defiranger).count();
            let ex = ALL.iter().filter(|s| s.expect_explorer).count();
            let ls = ALL.iter().filter(|s| s.expect_leishen).count();
            assert_eq!(dr, 9, "DeFiRanger detects 9 known attacks");
            assert_eq!(ex, 4, "Explorer+LeiShen detects 4 known attacks");
            assert_eq!(ls, 15, "LeiShen detects 15 known attacks (6 more than DeFiRanger)");
            assert_eq!(ls - dr, 6, "paper: LeiShen detects six more than DeFiRanger");
        }

        #[test]
        fn table_i_pattern_totals_match_paper() {
            use PatternKind::*;
            let krp = ALL.iter().filter(|s| s.patterns.contains(&Krp)).count();
            let sbs = ALL.iter().filter(|s| s.patterns.contains(&Sbs)).count();
            let mbs = ALL.iter().filter(|s| s.patterns.contains(&Mbs)).count();
            let none = ALL.iter().filter(|s| s.patterns.is_empty()).count();
            assert_eq!(krp, 4, "four KRP attacks");
            assert_eq!(sbs, 8, "eight SBS attacks");
            assert_eq!(mbs, 6, "six MBS attacks");
            assert_eq!(none, 5, "five attacks without clear patterns");
            let conforming = ALL.iter().filter(|s| !s.patterns.is_empty()).count();
            assert_eq!(conforming, 17, "17 attacks conform (Saddle counts once)");
        }

        #[test]
        fn dates_are_chronological() {
            for w in ALL.windows(2) {
                assert!(w[0].date <= w[1].date, "{} before {}", w[0].name, w[1].name);
            }
        }

        #[test]
        fn leishen_misses_are_the_documented_ones() {
            let missed: Vec<&str> = ALL
                .iter()
                .filter(|s| !s.patterns.is_empty() && !s.expect_leishen)
                .map(|s| s.name)
                .collect();
            assert_eq!(missed, vec!["JulSwap", "PancakeHunny"]);
        }
    }
}

//! Integration: §VI-D2 post-attack behaviors — profit laundering traced
//! end-to-end through real follow-up transactions, mixer unlinkability,
//! and selfdestruct resilience.

use std::collections::HashSet;

use leishen::forensics::{trace_exits, ExitKind};
use leishen_scenarios::attacks::all_attacks;
use leishen_scenarios::laundering::launder_profit;
use leishen_scenarios::World;

#[test]
fn laundering_after_bzx1_is_fully_traced() {
    let mut world = World::new();
    let attack = all_attacks()[0](&mut world); // bZx-1, profit in ETH
    let attacker = attack.attacker;
    let contract = attack.contract;
    let profit = world.chain.state().eth_balance(attacker);
    assert!(profit > 300 * 10u128.pow(18), "bZx-1 nets 300+ ETH here");

    let outcome = launder_profit(&mut world, attacker, 3, 3);

    let labels = world.detector_labels();
    let view = world.view(&labels);
    let cluster: HashSet<_> = [attacker, contract].into_iter().collect();
    let follow_ups: Vec<&ethsim::TxRecord> = world
        .chain
        .transactions()
        .iter()
        .filter(|t| t.id.0 > attack.tx.0)
        .collect();
    let exits = trace_exits(
        &follow_ups,
        &cluster,
        view.labels(),
        view.creations(),
        &["Tornado Cash"],
    );

    // All three notes traced to the mixer, through the full hop chain.
    let mixer_exits: Vec<_> = exits
        .iter()
        .filter(|e| e.kind == ExitKind::CoinMixer)
        .collect();
    assert_eq!(mixer_exits.len(), 3, "{exits:?}");
    for e in &mixer_exits {
        assert_eq!(e.amount, world.tornado.denomination);
        assert_eq!(
            e.path.len(),
            outcome.intermediaries.len() + 1,
            "path runs through every intermediary"
        );
        assert_eq!(e.sink, world.tornado.address);
        assert_eq!(e.sink_tag.app_name(), Some("Tornado Cash"));
    }

    // The direct cash-out is traced too.
    let direct: Vec<_> = exits
        .iter()
        .filter(|e| e.kind == ExitKind::Direct)
        .collect();
    assert!(direct
        .iter()
        .any(|e| e.sink == outcome.direct_recipient && e.amount == outcome.direct_amount));

    // What forensics *cannot* see: the clean recipient. The mixer breaks
    // the trail — no exit references the withdrawal address.
    assert!(
        exits.iter().all(|e| e.sink != outcome.clean_recipient),
        "the mixer hides the clean exit, as on mainnet"
    );
}

#[test]
fn tracer_does_not_confuse_unrelated_traffic() {
    let mut world = World::new();
    let attack = all_attacks()[0](&mut world);
    let attacker = attack.attacker;
    // Unrelated users move money around after the attack.
    let alice = world.chain.create_eoa("alice");
    let bob = world.chain.create_eoa("bob");
    world.fund_eth(alice, 500 * 10u128.pow(18));
    world.execute(alice, bob, "gift", |ctx| {
        ctx.transfer_eth(alice, bob, 100 * 10u128.pow(18))
    });

    let labels = world.detector_labels();
    let view = world.view(&labels);
    let cluster: HashSet<_> = [attacker, attack.contract].into_iter().collect();
    let follow_ups: Vec<&ethsim::TxRecord> = world
        .chain
        .transactions()
        .iter()
        .filter(|t| t.id.0 > attack.tx.0)
        .collect();
    let exits = trace_exits(&follow_ups, &cluster, view.labels(), view.creations(), &[]);
    assert!(
        exits.iter().all(|e| e.sink != bob),
        "alice's gift is not attributed to the attacker"
    );
}

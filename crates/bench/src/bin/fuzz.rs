//! `fuzz` — the budgeted metamorphic fuzzing campaign.
//!
//! Builds the standard seed corpus (22 attacks + benign/confuser
//! workloads), runs `--mutants` metamorphic mutants through the
//! four-configuration differential oracle, diffs the `baselines` crate
//! against a sample of the surviving mutants, and writes `BENCH_fuzz.json`.
//! Any oracle violation is shrunk to a minimal history, persisted to
//! `--violations-dir`, and turns the exit status non-zero, so CI fails
//! loudly with a replayable artifact.
//!
//! ```text
//! cargo run --release -p leishen-bench --bin fuzz -- [--seed 42]
//!     [--mutants 600] [--smoke] [--no-shrink]
//!     [--out BENCH_fuzz.json] [--violations-dir tests/corpus]
//!     [--save-samples N]
//! ```
//!
//! `FUZZ_MUTANTS` overrides the mutant budget from the environment (CI
//! keeps the fixed default). `--save-samples N` persists the first N
//! passing mutants as corpus documents (for committing regression seeds).

use std::path::{Path, PathBuf};
use std::time::Instant;

use leishen::fuzz::{
    reproducer_to_json, run_campaign, CampaignConfig, CampaignReport, Mutant, Reproducer,
};
use leishen::trace::json::fmt_f64;
use leishen::DetectorConfig;
use leishen::fuzz::DiffOracle;
use leishen::fuzz::SeedCase;
use leishen_baselines::{DefiRanger, ExplorerLeiShen, VolatilityMonitor};
use leishen_bench::{cli_flag, cli_str, cli_u64, print_table};
use leishen_scenarios::fuzz::seed_case;

/// Per-baseline agreement counters over sampled preserving mutants,
/// judged per transaction against ground truth.
#[derive(Default)]
struct BaselineStats {
    samples: usize,
    agree: usize,
    fp: usize,
    fn_: usize,
}

fn main() {
    let seed = cli_u64("--seed", 42);
    let default_mutants = std::env::var("FUZZ_MUTANTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600);
    let mutants = cli_u64("--mutants", default_mutants) as usize;
    let smoke = cli_flag("--smoke");
    let out_path = cli_str("--out", "BENCH_fuzz.json");
    let violations_dir = cli_str("--violations-dir", "tests/corpus");
    let save_samples = cli_u64("--save-samples", 0) as usize;
    let shrink = !cli_flag("--no-shrink");

    println!("building seed corpus (22 attacks + benign/confuser workloads)...");
    let build_start = Instant::now();
    let seeds = seed_case(DetectorConfig::paper());
    let seed_txs = seeds.case.txs.len();
    let seed_flagged = seeds.expect.iter().filter(|e| e.flagged).count();
    println!(
        "seed ready: {seed_txs} transactions ({seed_flagged} ground-truth attacks), \
         pool of {} ({:.1}s)",
        seeds.pool.len(),
        build_start.elapsed().as_secs_f64()
    );

    let oracle = DiffOracle::new(DetectorConfig::paper());
    let mut config = CampaignConfig::new(seed, mutants);
    config.shrink = shrink;

    // Baseline differential sampling: every 8th preserving mutant also
    // runs the three baseline detectors, per transaction, against ground
    // truth. Baselines are compared, never oracle-gating — they are
    // different algorithms with different (worse) expected accuracy.
    let defiranger = DefiRanger::new();
    let explorer = ExplorerLeiShen::new(DetectorConfig::paper());
    let volatility = VolatilityMonitor::default();
    let mut base_stats =
        [BaselineStats::default(), BaselineStats::default(), BaselineStats::default()];
    let mut preserving_seen = 0usize;
    let mut samples: Vec<Reproducer> = Vec::new();
    let mut sampled_ops: Vec<&'static str> = Vec::new();

    let campaign_start = Instant::now();
    let report = run_campaign(&seeds, &oracle, &config, |mutant: &Mutant, _verdicts| {
        if save_samples > 0
            && samples.len() < save_samples
            && !sampled_ops.contains(&mutant.operator.name())
        {
            sampled_ops.push(mutant.operator.name());
            samples.push(Reproducer::new(&trim_sample(mutant, &seeds), seed, ""));
        }
        if !mutant.operator.is_preserving() {
            return;
        }
        preserving_seen += 1;
        if preserving_seen % 8 != 1 {
            return;
        }
        for (tx, expect) in mutant.case.txs.iter().zip(&mutant.expect) {
            let verdicts = [
                defiranger.is_attack(tx),
                explorer.is_attack(tx),
                volatility.is_attack(tx),
            ];
            for (stats, got) in base_stats.iter_mut().zip(verdicts) {
                stats.samples += 1;
                if got == expect.flagged {
                    stats.agree += 1;
                } else if got {
                    stats.fp += 1;
                } else {
                    stats.fn_ += 1;
                }
            }
        }
    });
    let elapsed = campaign_start.elapsed();

    persist_violations(&report, seed, Path::new(&violations_dir));
    if save_samples > 0 {
        persist_samples(&samples, Path::new(&violations_dir));
    }

    print_report(&report, elapsed.as_secs_f64());
    let json = render_json(
        &report, seed, smoke, seed_txs, seed_flagged, &base_stats, elapsed.as_millis() as u64,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_fuzz.json");
    println!("wrote {out_path}");

    if report.total_violations() > 0 {
        eprintln!(
            "FUZZ FAILED: {} oracle violation(s); shrunk reproducers in {violations_dir}/",
            report.total_violations()
        );
        std::process::exit(1);
    }
    println!("campaign clean: {} mutants, zero oracle violations", report.generated);
}

/// Trims a passing mutant to a small committed-corpus document: per-tx
/// expectations are independent, so any (tx, expect) subset stays
/// oracle-valid. Keeps every transaction whose expectation a breaking
/// operator changed, plus one flagged and one benign representative.
fn trim_sample(mutant: &Mutant, seeds: &SeedCase) -> Mutant {
    let mut keep: Vec<usize> = Vec::new();
    if mutant.expect.len() == seeds.expect.len() {
        // Index-stable operators: keep expectation diffs (breaking targets).
        for i in 0..mutant.expect.len() {
            if mutant.expect[i] != seeds.expect[i] {
                keep.push(i);
            }
        }
    }
    if let Some(i) = mutant.expect.iter().position(|e| e.flagged) {
        keep.push(i);
    }
    if let Some(i) = mutant.expect.iter().position(|e| !e.flagged) {
        keep.push(i);
    }
    keep.sort_unstable();
    keep.dedup();
    keep.truncate(4);
    Mutant {
        operator: mutant.operator,
        case: leishen::fuzz::FuzzCase {
            txs: keep.iter().map(|&i| mutant.case.txs[i].clone()).collect(),
            labels: mutant.case.labels.clone(),
            creations: mutant.case.creations.clone(),
            weth: mutant.case.weth,
        },
        expect: keep.iter().map(|&i| mutant.expect[i].clone()).collect(),
    }
}

fn persist_violations(report: &CampaignReport, seed: u64, dir: &Path) {
    let all = report.seed_violation.iter().chain(&report.violations);
    for v in all {
        std::fs::create_dir_all(dir).expect("create violations dir");
        let mut repro = Reproducer::new(&v.shrunk, seed, v.message.clone());
        repro.operator = v.operator.clone();
        let path: PathBuf = dir.join(format!("violation_{}_{:04}.json", v.operator, v.iteration));
        std::fs::write(&path, reproducer_to_json(&repro)).expect("write reproducer");
        eprintln!(
            "violation [{}] iter {} ({}): {} — shrunk to {} tx(s) in {} oracle runs -> {}",
            v.operator,
            v.iteration,
            v.code,
            v.message,
            v.shrunk.case.txs.len(),
            v.shrink_runs,
            path.display()
        );
    }
}

fn persist_samples(samples: &[Reproducer], dir: &Path) {
    std::fs::create_dir_all(dir).expect("create corpus dir");
    for (i, sample) in samples.iter().enumerate() {
        let path = dir.join(format!("corpus_{}_{i:02}.json", sample.operator));
        std::fs::write(&path, reproducer_to_json(sample)).expect("write corpus sample");
        println!("saved corpus sample {}", path.display());
    }
}

fn print_report(report: &CampaignReport, secs: f64) {
    let rows: Vec<Vec<String>> = report
        .per_operator
        .iter()
        .map(|s| {
            vec![
                s.operator.name().to_string(),
                if s.operator.is_preserving() { "preserving" } else { "breaking" }.to_string(),
                s.generated.to_string(),
                s.skipped.to_string(),
                s.violations.to_string(),
            ]
        })
        .collect();
    print_table(&["operator", "family", "mutants", "skipped", "violations"], &rows);
    let c = &report.confusion;
    println!(
        "{} mutants in {secs:.1}s ({:.1}/s); detector on preserving mutants: \
         tp={} fp={} tn={} fn={} (fp_rate={:.4}, fn_rate={:.4})",
        report.generated,
        report.generated as f64 / secs.max(1e-9),
        c.tp,
        c.fp,
        c.tn,
        c.fn_,
        c.fp_rate(),
        c.fn_rate()
    );
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    report: &CampaignReport,
    seed: u64,
    smoke: bool,
    seed_txs: usize,
    seed_flagged: usize,
    base_stats: &[BaselineStats; 3],
    elapsed_ms: u64,
) -> String {
    let mut ops = String::new();
    for (i, s) in report.per_operator.iter().enumerate() {
        if i > 0 {
            ops.push(',');
        }
        ops.push_str(&format!(
            "{{\"name\":\"{}\",\"family\":\"{}\",\"generated\":{},\"skipped\":{},\"violations\":{}}}",
            s.operator.name(),
            if s.operator.is_preserving() { "preserving" } else { "breaking" },
            s.generated,
            s.skipped,
            s.violations
        ));
    }
    let mut violations = String::new();
    for (i, v) in report.seed_violation.iter().chain(&report.violations).enumerate() {
        if i > 0 {
            violations.push(',');
        }
        violations.push_str(&format!(
            "{{\"operator\":\"{}\",\"iteration\":{},\"code\":\"{}\",\"shrunk_txs\":{},\"shrink_runs\":{}}}",
            v.operator,
            v.iteration,
            v.code,
            v.shrunk.case.txs.len(),
            v.shrink_runs
        ));
    }
    let mut baselines = String::new();
    for (i, (name, s)) in ["defiranger", "explorer", "volatility"]
        .iter()
        .zip(base_stats)
        .enumerate()
    {
        if i > 0 {
            baselines.push(',');
        }
        let agreement = if s.samples == 0 { 0.0 } else { s.agree as f64 / s.samples as f64 };
        baselines.push_str(&format!(
            "{{\"name\":\"{name}\",\"samples\":{},\"agreement\":{},\"fp\":{},\"fn\":{}}}",
            s.samples,
            fmt_f64(agreement),
            s.fp,
            s.fn_
        ));
    }
    let c = &report.confusion;
    format!(
        "{{\n  \"bench\": \"fuzz\",\n  \"smoke\": {smoke},\n  \"seed\": {seed},\n  \
         \"seed_corpus\": {{\"txs\": {seed_txs}, \"flagged\": {seed_flagged}}},\n  \
         \"mutants_requested\": {},\n  \"mutants_generated\": {},\n  \"skipped_draws\": {},\n  \
         \"violations\": {},\n  \"seed_violation\": {},\n  \
         \"operators\": [{ops}],\n  \"violation_details\": [{violations}],\n  \
         \"detector\": {{\"tp\": {}, \"fp\": {}, \"tn\": {}, \"fn\": {}, \"fp_rate\": {}, \"fn_rate\": {}}},\n  \
         \"baselines\": [{baselines}],\n  \"elapsed_ms\": {elapsed_ms}\n}}\n",
        report.requested,
        report.generated,
        report.skipped,
        report.total_violations(),
        report.seed_violation.is_some(),
        c.tp,
        c.fp,
        c.tn,
        c.fn_,
        fmt_f64(c.fp_rate()),
        fmt_f64(c.fn_rate()),
    )
}

//! Streaming-service integration: backpressure, poisoned blocks, and
//! the drain/shutdown protocol, on the real seed corpus.
//!
//! The unit tests in `leishen::stream` pin the queue mechanics on
//! synthetic data; these tests prove the service-level guarantees the
//! ISSUE names, end to end:
//!
//! * a full queue *blocks* the producer — explicit backpressure, never
//!   a dropped or duplicated transaction;
//! * a poisoned block (corrupted records, induced panics) degrades to
//!   quarantined verdicts without stalling the blocks behind it;
//! * shutdown is a deterministic drain: every in-flight transaction is
//!   emitted exactly once, in submission order.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use ethsim::{TxId, TxRecord};
use leishen::resilience::{InducedFault, Verdict};
use leishen::stream::{Block, StreamConfig, StreamService};
use leishen::telemetry::{NoopSink, Stage};
use leishen::trace::{FlightRecorder, NoopTracer, Reason};
use leishen::{
    install_quiet_hook, FaultInjector, ResilienceConfig, TagCache,
};
use leishen::InputFault;
use leishen_scenarios::chaos::corrupt;

mod common;

/// Cuts the corpus into fixed-size blocks of borrowed records.
fn blocks_of<'a>(records: &[&'a TxRecord], size: usize) -> Vec<Block<'a>> {
    records
        .chunks(size)
        .enumerate()
        .map(|(i, chunk)| Block { number: i as u64, txs: chunk.to_vec() })
        .collect()
}

#[test]
fn full_queue_blocks_producer_without_dropping_transactions() {
    let seeds = common::seed_corpus();
    let detector = common::paper_detector();
    let view = seeds.case.view();
    let records: Vec<&TxRecord> = seeds.case.txs.iter().collect();

    // Tiny queues + a slow consumer: the emitter sleeps per block, the
    // emit queue fills, the scanner stalls, the ingest queue fills, and
    // `submit` must block — that stall is the backpressure under test.
    let service = StreamService::new(
        2,
        StreamConfig::default().with_capacity(1, 1),
    );
    let cache = TagCache::new();
    let emitted: Mutex<Vec<TxId>> = Mutex::new(Vec::new());
    let blocks = blocks_of(&records, 3);
    let submitted = blocks.len();

    let report = service.run(
        &detector,
        &view,
        &cache,
        &NoopSink,
        &NoopTracer,
        |producer| {
            for block in blocks {
                assert!(producer.submit(block), "stream must accept every block");
            }
        },
        |block| {
            std::thread::sleep(Duration::from_millis(2));
            let mut emitted = emitted.lock().unwrap();
            for (i, v) in block.verdicts.iter().enumerate() {
                let id = match v {
                    Verdict::Analyzed(_) => records[block.base + i].id,
                    Verdict::Indeterminate(q) => q.tx,
                };
                emitted.push(id);
            }
        },
    );

    // Backpressure was real: the producer had to wait at least once,
    // and the bounded queues never exceeded their capacity.
    assert!(
        report.ingest.producer_waits > 0,
        "a 1-deep ingest queue against a slow consumer must stall the \
         producer (waits={}, submitted {submitted} blocks)",
        report.ingest.producer_waits
    );
    assert!(report.ingest.max_depth <= 1, "bounded means bounded");
    assert!(report.emit.max_depth <= 1, "bounded means bounded");

    // Nothing dropped, nothing duplicated, order preserved.
    let emitted = emitted.into_inner().unwrap();
    let expected: Vec<TxId> = records.iter().map(|r| r.id).collect();
    assert_eq!(emitted, expected);
    assert_eq!(report.transactions, records.len());
    assert_eq!(report.quarantined, 0);
}

#[test]
fn poisoned_block_quarantines_without_stalling_the_stream() {
    install_quiet_hook();
    let seeds = common::seed_corpus();
    let detector = common::paper_detector();
    let view = seeds.case.view();

    // Corrupt every record of one middle block at the ethsim boundary.
    let mut txs = seeds.case.txs.clone();
    let poisoned_block = 2usize;
    let block_size = 4usize;
    let poisoned: Vec<usize> =
        (poisoned_block * block_size..(poisoned_block + 1) * block_size).collect();
    for &i in &poisoned {
        assert!(
            corrupt(&mut txs[i], InputFault::TruncatedJournal),
            "seed tx index {i} must be corruptible"
        );
    }
    let records: Vec<&TxRecord> = txs.iter().collect();

    let service = StreamService::new(2, StreamConfig::default());
    let recorder = FlightRecorder::new();
    let cache = TagCache::new();
    let report = service.run(
        &detector,
        &view,
        &cache,
        &NoopSink,
        &recorder,
        |producer| {
            for block in blocks_of(&records, block_size) {
                producer.submit(block);
            }
        },
        |_| {},
    );

    // The stream survived the poisoned block: every transaction got a
    // verdict, the corrupted ones quarantined with machine-readable
    // reasons and provenance traces, everything else analyzed clean.
    assert_eq!(report.transactions, records.len());
    let quarantined: Vec<usize> = report.quarantined_indices().collect();
    assert_eq!(quarantined, poisoned, "exactly the poisoned block quarantines");
    for q in report.quarantines() {
        assert!(q.reason().starts_with("invalid_input:"), "{}", q.reason());
        let trace = recorder.find(q.tx).expect("quarantine is traced");
        assert!(trace
            .decision
            .reasons
            .iter()
            .any(|r| matches!(r, Reason::Indeterminate { .. })));
    }
    // Blocks after the poisoned one still produced clean analyses.
    let last = report.blocks.last().expect("blocks streamed");
    assert!(last.base > poisoned[poisoned.len() - 1]);
    assert!(last.verdicts.iter().all(|v| !v.is_indeterminate()));
}

#[test]
fn induced_stage_panics_degrade_single_transactions_mid_stream() {
    install_quiet_hook();
    let seeds = common::seed_corpus();
    let detector = common::paper_detector();
    let view = seeds.case.view();
    let records: Vec<&TxRecord> = seeds.case.txs.iter().collect();

    // Panic at the tagging stage of one ground-truth attack; with the
    // retry disabled the panic becomes a quarantine, not a second
    // attempt — the harshest single-tx poisoning the injector can do.
    let target = seeds
        .expect
        .iter()
        .position(|e| e.flagged)
        .expect("corpus has attacks");
    let target_id = records[target].id;
    let injector = FaultInjector::new(
        NoopSink,
        [(target_id, InducedFault::Panic { stage: Stage::Tagging })],
    );

    let service = StreamService::new(
        2,
        StreamConfig::default()
            .with_policy(ResilienceConfig::new().without_retry()),
    );
    let cache = TagCache::new();
    let report = service.run(
        &detector,
        &view,
        &cache,
        &injector,
        &NoopTracer,
        |producer| {
            for block in blocks_of(&records, 5) {
                producer.submit(block);
            }
        },
        |_| {},
    );

    assert_eq!(report.transactions, records.len());
    assert_eq!(injector.panics_fired(), 1);
    let quarantined: Vec<usize> = report.quarantined_indices().collect();
    assert_eq!(quarantined, vec![target], "only the injected tx degrades");
    let q = report.quarantines().next().expect("one quarantine");
    assert_eq!(q.tx, target_id);
    assert_eq!(q.reason(), "panic@tagging");
    // Every clean transaction kept its ground-truth verdict.
    for (i, v) in report.verdicts().enumerate() {
        if i == target {
            continue;
        }
        let a = v.analysis().expect("clean txs analyze");
        assert_eq!(a.is_attack(), seeds.expect[i].flagged, "tx index {i}");
    }
}

#[test]
fn drain_on_shutdown_flushes_every_in_flight_tx_exactly_once() {
    let seeds = common::seed_corpus();
    let detector = common::paper_detector();
    let view = seeds.case.view();
    let records: Vec<&TxRecord> = seeds.case.txs.iter().collect();

    // Deep backlog relative to the queues: most blocks are still
    // in-flight (queued or unscanned) when the producer returns, so the
    // drain protocol — not luck — is what flushes them.
    let service = StreamService::new(1, StreamConfig::default().with_capacity(2, 2));
    let cache = TagCache::new();
    let counts: Mutex<HashMap<TxId, usize>> = Mutex::new(HashMap::new());
    let report = service.run(
        &detector,
        &view,
        &cache,
        &NoopSink,
        &NoopTracer,
        |producer| {
            for block in blocks_of(&records, 1) {
                producer.submit(block);
            }
            // Producer returns immediately: shutdown begins with the
            // pipeline still full.
        },
        |block| {
            let mut counts = counts.lock().unwrap();
            for (i, _) in block.verdicts.iter().enumerate() {
                *counts.entry(records[block.base + i].id).or_insert(0) += 1;
            }
        },
    );

    let counts = counts.into_inner().unwrap();
    assert_eq!(counts.len(), records.len(), "every tx emitted");
    for (id, n) in &counts {
        assert_eq!(*n, 1, "tx#{} emitted {n} times", id.0);
    }
    assert_eq!(report.transactions, records.len());
    assert_eq!(report.blocks.len(), records.len(), "one report per block");
    // Emission order is submission order even under drain.
    let bases: Vec<usize> = report.blocks.iter().map(|b| b.base).collect();
    let expected: Vec<usize> = (0..records.len()).collect();
    assert_eq!(bases, expected);
}

//! # leishen-scenarios — attacks, workloads and the synthetic wild corpus
//!
//! The paper evaluates LeiShen on (a) 22 real-world flpAttacks (Tables I
//! and IV) and (b) 272,984 wild flash-loan transactions from the first
//! 14,500,000 Ethereum blocks (Tables V–VII, Figs. 1 and 8). Neither input
//! is available offline, so this crate rebuilds both:
//!
//! * [`world`] — a standard deployment of the whole protocol suite
//!   (tokens, Uniswap, flash-loan providers, aggregator, label cloud, USD
//!   prices) that every scenario runs on;
//! * [`attacks`] — each of the 22 studied attacks re-scripted from its
//!   published step-by-step description, with Table I / Table IV expected
//!   outcomes as machine-checkable metadata;
//! * [`benign`] — legitimate flash-loan workloads (arbitrage, collateral
//!   swap, routed trades, aggregator strategies) and the near-miss
//!   confusers the precision study needs;
//! * [`generator`] — a seeded synthetic transaction stream over the paper's
//!   Jan 2020 – Apr 2022 timeline whose composition reproduces the shapes
//!   of Fig. 1, Fig. 8 and Tables V–VII;
//! * [`prices`] — attack-day USD prices for profit accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod attacks;
pub mod benign;
pub mod chaos;
pub mod fuzz;
pub mod generator;
pub mod laundering;
pub mod prices;
pub mod world;

pub use arrival::ArrivalCurve;
pub use attacks::{run_all_attacks, AttackSpec, ExecutedAttack};
pub use generator::{GeneratedTx, Generator, GeneratorConfig, TxClass};
pub use world::World;

//! Price-volatility threshold monitoring (Xue et al., paper §I/§VIII).
//!
//! "Xue et al. utilized price inquiry methods provided by DeFi applications
//! to monitor the price volatility caused by a transaction. If the price
//! volatility exceeds a pre-defined threshold, e.g., 99%, they consider it
//! a flpAttack. … it cannot detect flpAttacks with slight price movements."
//! Harvest Finance moved prices by 0.5% — far below any usable threshold —
//! which LeiShen's pattern-based approach catches and this baseline cannot.

use ethsim::TxRecord;
use leishen::analytics::pair_volatility;
use leishen::flashloan::identify_flash_loans;
use leishen::tagging::{Tag, TaggedTransfer};
use leishen::trades::identify_trades;

/// The volatility-threshold baseline.
#[derive(Clone, Copy, Debug)]
pub struct VolatilityMonitor {
    /// Flag a transaction when some pair's volatility exceeds this
    /// fraction (0.99 = the paper's quoted 99% example).
    pub threshold: f64,
}

impl Default for VolatilityMonitor {
    fn default() -> Self {
        VolatilityMonitor { threshold: 0.99 }
    }
}

impl VolatilityMonitor {
    /// Creates a monitor with a custom threshold.
    pub fn new(threshold: f64) -> Self {
        VolatilityMonitor { threshold }
    }

    /// Maximum per-pair volatility caused by the transaction (fraction).
    pub fn max_volatility(&self, tx: &TxRecord) -> f64 {
        // Price inquiry ≈ observing every executed trade's rate; we reuse
        // the account-level trade lifting for the rate samples.
        let tagged: Vec<TaggedTransfer> = tx
            .trace
            .transfers
            .iter()
            .map(|t| TaggedTransfer {
                seq: t.seq,
                sender: if t.sender.is_zero() {
                    Tag::BlackHole
                } else {
                    Tag::Root(t.sender)
                },
                receiver: if t.receiver.is_zero() {
                    Tag::BlackHole
                } else {
                    Tag::Root(t.receiver)
                },
                amount: t.amount,
                token: t.token,
            })
            .collect();
        let trades = identify_trades(&tagged);
        pair_volatility(&trades)
            .first()
            .map(|v| v.volatility())
            .unwrap_or(0.0)
    }

    /// Whether the monitor flags the transaction.
    pub fn is_attack(&self, tx: &TxRecord) -> bool {
        if !tx.status.is_success() || identify_flash_loans(tx).is_empty() {
            return false;
        }
        self.max_volatility(tx) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{Address, Chain, ChainConfig, TokenId};

    fn tx_with_rates(rates: &[(u128, u128)]) -> TxRecord {
        // Each (eth_in, x_out) pair is one buy of X inside a flash loan.
        let mut chain = Chain::new(ChainConfig::default());
        let attacker = chain.create_eoa("attacker");
        let lender = chain.create_eoa("lender");
        let victim = Address::from_seed("victim");
        chain.state_mut().credit_eth(lender, 10_000_000).unwrap();
        chain.state_mut().credit_eth(attacker, 1_000_000).unwrap();
        let mut x = None;
        chain
            .execute(attacker, attacker, "prep", |ctx| {
                let c = ctx.create_contract(attacker)?;
                let t = ctx.register_token("X", 18, c);
                ctx.mint_token(t, victim, 10_000_000)?;
                x = Some(t);
                Ok(())
            })
            .unwrap();
        let x = x.unwrap();
        let rates = rates.to_vec();
        let tx = chain
            .execute(attacker, lender, "attack", |ctx| {
                ctx.call(attacker, lender, "swap", 0, |ctx| {
                    ctx.transfer_eth(lender, attacker, 1_000_000)?;
                    ctx.call(lender, attacker, "uniswapV2Call", 0, |ctx| {
                        for (eth_in, x_out) in rates {
                            ctx.transfer_eth(attacker, victim, eth_in)?;
                            ctx.transfer_token(x, victim, attacker, x_out)?;
                        }
                        Ok(())
                    })?;
                    ctx.transfer_eth(attacker, lender, 1_000_000)?;
                    Ok(())
                })
            })
            .unwrap();
        let _ = TokenId::ETH;
        chain.replay(tx).unwrap().clone()
    }

    #[test]
    fn large_volatility_is_flagged() {
        // rate moves 10 -> 25: volatility 150%
        let rec = tx_with_rates(&[(1_000, 100), (2_500, 100)]);
        let monitor = VolatilityMonitor::default();
        assert!(monitor.max_volatility(&rec) > 1.0);
        assert!(monitor.is_attack(&rec));
    }

    #[test]
    fn harvest_scale_volatility_is_missed() {
        // rate moves 0.5%: below any workable threshold
        let rec = tx_with_rates(&[(10_000, 1_000), (10_050, 1_000)]);
        let monitor = VolatilityMonitor::default();
        let v = monitor.max_volatility(&rec);
        assert!(v > 0.004 && v < 0.006, "{v}");
        assert!(!monitor.is_attack(&rec));
    }

    #[test]
    fn custom_threshold() {
        let rec = tx_with_rates(&[(1_000, 100), (1_200, 100)]);
        assert!(!VolatilityMonitor::default().is_attack(&rec));
        assert!(VolatilityMonitor::new(0.1).is_attack(&rec));
    }
}

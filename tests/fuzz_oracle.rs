//! Integration: the metamorphic fuzzing campaign and its differential
//! oracle.
//!
//! * The Table I corpus itself passes the four-configuration oracle.
//! * A short fixed-seed campaign over the standard seed produces zero
//!   violations and exercises every operator.
//! * Breaking operators really flip flagged transactions to cleared.
//! * A deliberately crippled detector is caught by the seed pre-pass and
//!   shrunk to a ≤ 10-transaction reproducer.
//! * Every committed `tests/corpus/*.json` document parses and replays
//!   cleanly, and the persistence layer round-trips byte-for-byte.

use leishen::fuzz::{
    reproducer_from_json, reproducer_to_json, run_campaign, CampaignConfig, DiffOracle, FuzzCase,
    FuzzRng, Operator, Reproducer, TxExpect,
};
use leishen::DetectorConfig;
use leishen_scenarios::fuzz::seed_case;

mod common;
use common::AttackCorpus;

/// The 22-attack golden corpus, reshaped as a fuzz case with ground-truth
/// expectations from the `expect_leishen` column.
fn corpus_fuzz_case() -> (FuzzCase, Vec<TxExpect>) {
    let corpus = AttackCorpus::build();
    let mut pairs: Vec<(ethsim::TxRecord, TxExpect)> = corpus
        .attacks
        .iter()
        .map(|a| {
            (
                corpus.record(a).clone(),
                TxExpect::flag_only(a.spec.expect_leishen),
            )
        })
        .collect();
    pairs.sort_by_key(|(tx, _)| tx.id);
    let (txs, expect): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
    let case = FuzzCase {
        txs,
        labels: corpus.labels.clone(),
        creations: corpus.world.chain.state().creations().to_vec(),
        weth: Some(corpus.world.weth.token),
    };
    (case, expect)
}

#[test]
fn attack_corpus_passes_the_differential_oracle() {
    let (case, expect) = corpus_fuzz_case();
    let oracle = DiffOracle::new(DetectorConfig::paper());
    let verdicts = oracle
        .check(&case, &expect)
        .expect("golden corpus must satisfy all four configurations");
    assert_eq!(verdicts.len(), 22);
    let flagged = verdicts.iter().filter(|v| v.flagged).count();
    assert_eq!(
        flagged,
        expect.iter().filter(|e| e.flagged).count(),
        "verdicts must match the Table I ground truth"
    );
}

#[test]
fn mini_campaign_is_violation_free_and_covers_every_operator() {
    let seeds = seed_case(DetectorConfig::paper());
    let oracle = DiffOracle::new(DetectorConfig::paper());
    let config = CampaignConfig::new(42, 70);
    let report = run_campaign(&seeds, &oracle, &config, |_, _| {});

    assert_eq!(report.total_violations(), 0, "{:?}", report.violations);
    assert!(report.seed_violation.is_none(), "seed pre-pass must be clean");
    assert_eq!(report.generated, 70);
    for stats in &report.per_operator {
        assert!(
            stats.generated > 0,
            "operator {} never produced a mutant",
            stats.operator.name()
        );
    }
    // Preserving mutants contribute confusion counts; a healthy detector
    // has zero false positives and zero false negatives on them.
    assert!(report.confusion.tp > 0, "campaign saw no true positives");
    assert_eq!(report.confusion.fp, 0);
    assert_eq!(report.confusion.fn_, 0);
}

#[test]
fn breaking_operators_flip_flagged_transactions_to_cleared() {
    let seeds = seed_case(DetectorConfig::paper());
    let oracle = DiffOracle::new(DetectorConfig::paper());
    for op in [Operator::StripFlashLoan, Operator::SplitRepay] {
        let mut rng = FuzzRng::new(7);
        // The operator may pick an unflagged target (e.g. stripping the
        // loan from a benign borrower); keep drawing until a mutant clears
        // a transaction the seed flags.
        let mutant = (0..64)
            .filter_map(|_| op.apply(&seeds, &mut rng))
            .find(|m| {
                seeds
                    .expect
                    .iter()
                    .zip(&m.expect)
                    .any(|(seed, mutated)| seed.flagged && !mutated.flagged)
            })
            .unwrap_or_else(|| panic!("{} never cleared a flagged transaction", op.name()));
        // The mutated expectation clears a formerly flagged transaction —
        // and the detector agrees, in all four configurations.
        oracle
            .check_mutant(&mutant)
            .unwrap_or_else(|v| panic!("{} mutant violated the oracle: {v}", op.name()));
    }
}

#[test]
fn crippled_detector_is_caught_and_shrinks_small() {
    // Ground truth comes from the healthy paper configuration; the oracle
    // runs a detector whose KRP matcher can never fire. The seed pre-pass
    // must notice before a single mutant is generated, and the shrunk
    // reproducer must stay small enough to read.
    let seeds = seed_case(DetectorConfig::paper());
    let crippled = DetectorConfig { krp_min_buys: 1000, ..DetectorConfig::paper() };
    let oracle = DiffOracle::new(crippled);
    let config = CampaignConfig::new(42, 8);
    let report = run_campaign(&seeds, &oracle, &config, |_, _| {});

    let violation = report
        .seed_violation
        .as_ref()
        .expect("crippled detector must fail the seed pre-pass");
    assert_eq!(violation.code, "wrong_flag");
    assert!(
        violation.shrunk.case.txs.len() <= 10,
        "reproducer must shrink to ≤ 10 transactions, got {}",
        violation.shrunk.case.txs.len()
    );
    // The shrunk case still reproduces: a healthy oracle accepts nothing
    // about it being wrong, the crippled one still disagrees.
    assert!(oracle.check_mutant(&violation.shrunk).is_err());
}

#[test]
fn committed_corpus_documents_replay_cleanly() {
    let dir = common::tests_dir("corpus");
    let oracle = DiffOracle::new(DetectorConfig::paper());
    let mut replayed = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "json")
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("corpus_"))
        })
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("read corpus document");
        let repro = reproducer_from_json(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        oracle
            .check(&repro.case, &repro.expect)
            .unwrap_or_else(|v| panic!("{} violates the oracle: {v}", path.display()));
        replayed += 1;
    }
    assert!(
        replayed >= Operator::ALL.len(),
        "expected at least one committed sample per operator, found {replayed}"
    );
}

#[test]
fn reproducer_persistence_round_trips() {
    let seeds = seed_case(DetectorConfig::paper());
    let mut rng = FuzzRng::new(11);
    for op in Operator::ALL {
        let Some(mutant) = (0..32).find_map(|_| op.apply(&seeds, &mut rng)) else {
            panic!("{} has applicable targets in the seed", op.name());
        };
        let repro = Reproducer::new(&mutant, 11, "round-trip");
        let json = reproducer_to_json(&repro);
        let parsed = reproducer_from_json(&json)
            .unwrap_or_else(|e| panic!("{} reproducer does not re-parse: {e}", op.name()));
        assert_eq!(
            reproducer_to_json(&parsed),
            json,
            "{} reproducer round trip is not byte-stable",
            op.name()
        );
        assert_eq!(parsed.expect, repro.expect);
        assert_eq!(parsed.case.txs.len(), repro.case.txs.len());
    }
}

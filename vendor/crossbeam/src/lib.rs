//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces the scan engine uses, with upstream-compatible
//! signatures:
//!
//! * [`thread::scope`] — scoped worker threads whose closures receive the
//!   scope handle (crossbeam's calling convention), built on
//!   `std::thread::scope`;
//! * [`deque::Injector`] — a shared FIFO work queue with the
//!   `push`/`steal` API of `crossbeam-deque`'s injector, built on a
//!   mutex-guarded `VecDeque` (contention here is one lock per *chunk*
//!   claim, not per item, so the simple implementation suffices).

#![deny(unsafe_code)]

pub mod thread {
    //! Scoped threads with crossbeam's `scope(|s| …)` shape.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle; closures passed to [`Scope::spawn`] receive one,
    /// enabling nested spawns exactly like upstream crossbeam.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joining yields the closure's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads. Returns `Err` with
    /// the panic payload if the closure (or an unjoined child) panicked —
    /// crossbeam's contract, mapped onto `std::thread::scope`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod deque {
    //! A shared FIFO injector queue (`crossbeam-deque` API subset).

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Outcome of a [`Injector::steal`] attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was claimed.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The claimed task, if the steal succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A FIFO queue shared between a submitter and many stealing workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task at the back.
        pub fn push(&self, task: T) {
            self.lock().push_back(task);
        }

        /// Claims the task at the front, if any.
        pub fn steal(&self) -> Steal<T> {
            match self.lock().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        /// Number of queued tasks at the time of observation.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(|p| p.into_inner())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn scope_surfaces_panics_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn injector_is_fifo_and_drains() {
        let inj = deque::Injector::new();
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal(), deque::Steal::Success(1));
        assert_eq!(inj.steal(), deque::Steal::Success(2));
        assert_eq!(inj.steal(), deque::Steal::Empty);
        assert!(inj.is_empty());
    }
}

//! Protocol-backed reconstructions of the four flagship attacks: bZx-1,
//! bZx-2, Balancer and Harvest Finance. These run against the full `defi`
//! protocol implementations — real constant-product pricing, real flash
//! loan mechanics, real vault share pricing — with the amounts the paper
//! and the incident post-mortems report.

use defi::{CompoundMarket, DexOracle, MarginDesk, ShareVault, StableSwapPool, WeightedPool};
use ethsim::{Result, TokenId};

use super::util::emit_swap_event;
use super::{spec, ExecutedAttack};
use crate::world::{World, E18, E6, E8};

/// bZx-1 (paper Fig. 3; Table I row 1, SBS, ETH-WBTC 125%).
///
/// 1. Borrow 10,000 ETH from dYdX.
/// 2. Collateralize 5,500 ETH on Compound, borrow 112 WBTC @ ~49 ETH/WBTC.
/// 3. Post 1,300 ETH margin on bZx; the desk swaps ~5,638 of its own ETH
///    through Uniswap, pumping WBTC to ~110 ETH.
/// 4. Sell the 112 WBTC through Kyber (the Fig. 6 intermediary) at ~63 ETH.
/// 5. Repay dYdX; keep the difference.
pub(super) fn bzx1(world: &mut World) -> ExecutedAttack {
    let spec = spec(1);
    world.chain.seek_date(spec.date);

    let mut oracle = DexOracle::new();
    oracle.add_pair(world.pair_eth_wbtc);
    let comp_deployer = world.chain.create_eoa("compound deployer");
    // The real position was at ~100% LTV (5,500 ETH for 112 WBTC at the
    // spot price); model it with a 100% collateral-factor market.
    let market = CompoundMarket::deploy(
        &mut world.chain,
        &mut world.labels,
        comp_deployer,
        TokenId::ETH,
        world.wbtc.id,
        10_000,
        oracle,
        "Compound",
    )
    .expect("compound deploy");
    world.fund_token(world.wbtc.id, market.address, 400 * E8);

    let bzx_deployer = world.chain.create_eoa("bzx deployer");
    let desk = MarginDesk::deploy(
        &mut world.chain,
        &mut world.labels,
        bzx_deployer,
        TokenId::ETH,
        50_000,
        "bZx",
    )
    .expect("desk deploy");
    world.fund_eth(desk.address, 20_000 * E18);

    let (attacker, contract) = world.create_attacker("bzx1");
    let dydx = world.dydx;
    let kyber = world.kyber;
    let pair = world.pair_eth_wbtc;
    let wbtc = world.wbtc.id;

    let tx = world.execute(attacker, contract, "attack", |ctx| {
        dydx.operate(ctx, contract, TokenId::ETH, 10_000 * E18, |ctx| {
            market.supply_and_borrow(ctx, contract, 5_500 * E18, 112 * E8)?;
            desk.open_long(ctx, contract, 1_300 * E18, 43_370, &pair)?;
            kyber.route_swap(ctx, contract, &pair, wbtc, 112 * E8)?;
            ctx.transfer_eth(contract, dydx.address, 10_000 * E18 + 2)
        })?;
        take_profit_home(ctx, contract, attacker)
    });
    ExecutedAttack {
        spec,
        tx,
        attacker,
        contract,
    }
}

/// bZx-2 (Table I row 2, KRP, ETH-sUSD 136%).
///
/// 18 repeated 20-ETH buys of sUSD on Uniswap pump the price from 0.0038
/// to ~0.009 ETH/sUSD; the stash is then sold to bZx (whose oracle is that
/// same Uniswap pool) at ~0.0062, through bZx's router/vault pair of
/// contracts.
pub(super) fn bzx2(world: &mut World) -> ExecutedAttack {
    let spec = spec(2);
    world.chain.seek_date(spec.date);

    let bzx = world.scripted_app("bZx", 2);
    let (bzx_router, bzx_vault) = (bzx[0], bzx[1]);
    world.fund_eth(bzx_vault, 2_000 * E18);

    let (attacker, contract) = world.create_attacker("bzx2");
    let dydx = world.dydx;
    let pair = world.pair_eth_susd;
    let susd = world.susd.id;

    let tx = world.execute(attacker, contract, "attack", |ctx| {
        dydx.operate(ctx, contract, TokenId::ETH, 7_500 * E18, |ctx| {
            for _ in 0..18 {
                pair.swap_exact_in(ctx, contract, TokenId::ETH, 20 * E18, 0)?;
            }
            // Sell the whole stash on bZx at 0.0062 ETH/sUSD, through the
            // router into the vault (iToken machinery).
            let stash = ctx.balance(susd, contract);
            let eth_out = stash * 62 / 10_000;
            ctx.transfer_token(susd, contract, bzx_router, stash)?;
            ctx.transfer_token(susd, bzx_router, bzx_vault, stash)?;
            ctx.transfer_eth(bzx_vault, contract, eth_out)?;
            // bZx's exchange emits a trade event the explorers index.
            emit_swap_event(ctx, bzx_vault, contract, stash, susd, eth_out, TokenId::ETH);
            ctx.transfer_eth(contract, dydx.address, 7_500 * E18 + 2)
        })?;
        take_profit_home(ctx, contract, attacker)
    });
    ExecutedAttack {
        spec,
        tx,
        attacker,
        contract,
    }
}

/// Balancer (Table I row 3, KRP; the largest volatility in the study).
///
/// Six escalating WETH→STA buys drain the pool's STA side and send the
/// spot price vertical; the stash is then sold at the pumped price to
/// Balancer's treasury through a freshly created helper contract.
pub(super) fn balancer(world: &mut World) -> ExecutedAttack {
    let spec = spec(3);
    world.chain.seek_date(spec.date);

    let weth = world.weth;
    let sta = world.deploy_token("STA", 18, 0.05);
    let bal_deployer = world.chain.create_eoa("balancer deployer");
    world.labels.set(bal_deployer, "Balancer");
    let pool = WeightedPool::deploy(
        &mut world.chain,
        &mut world.labels,
        bal_deployer,
        bal_deployer,
        vec![weth.token, sta.id],
        vec![0.5, 0.5],
        "BPT",
        30,
    )
    .expect("weighted pool deploy");
    let treasury = world.scripted_app("Balancer", 1)[0];

    // Seed: whale wraps ETH, provides 500 WETH / 500,000 STA; the treasury
    // holds WETH to buy STA at (manipulated) spot.
    let whale = world.whale;
    let sta_id = sta.id;
    world.execute(whale, pool.address, "seed", |ctx| {
        weth.deposit(ctx, whale, 41_000 * E18)?;
        ctx.mint_token(sta_id, whale, 1_000_000 * E18)?;
        pool.seed(ctx, whale, &[500 * E18, 500_000 * E18], 100 * E18)?;
        ctx.transfer_token(weth.token, whale, treasury, 40_000 * E18)?;
        Ok(())
    });

    let (attacker, contract) = world.create_attacker("balancer");
    let dydx = world.dydx;
    let pool_attack = pool.clone();

    let tx = world.execute(attacker, contract, "attack", |ctx| {
        dydx.operate(ctx, contract, TokenId::ETH, 20_000 * E18, |ctx| {
            weth.deposit(ctx, contract, 16_000 * E18)?;
            for amount in [1_000u128, 2_000, 3_000, 4_000, 5_000, 1_000] {
                pool_attack.swap_exact_in(
                    ctx,
                    contract,
                    weth.token,
                    sta_id,
                    amount * E18,
                    0,
                )?;
            }
            // Sell the STA stash to the treasury at the pumped spot price,
            // via a helper contract deployed mid-attack.
            let stash = ctx.balance(sta_id, contract);
            let eth_out = 18_000 * E18;
            let helper = ctx.create_contract(contract)?;
            ctx.transfer_token(sta_id, contract, helper, stash)?;
            ctx.transfer_token(sta_id, helper, treasury, stash)?;
            ctx.transfer_token(weth.token, treasury, helper, eth_out)?;
            ctx.transfer_token(weth.token, helper, contract, eth_out)?;
            ctx.emit_log(
                treasury,
                "LOG_SWAP",
                vec![
                    ("caller".into(), ethsim::LogValue::Addr(contract)),
                    ("tokenIn".into(), ethsim::LogValue::Token(sta_id)),
                    ("tokenAmountIn".into(), ethsim::LogValue::Amount(stash)),
                    ("tokenOut".into(), ethsim::LogValue::Token(weth.token)),
                    ("tokenAmountOut".into(), ethsim::LogValue::Amount(eth_out)),
                ],
            );
            let weth_bal = ctx.balance(weth.token, contract);
            weth.withdraw(ctx, contract, weth_bal)?;
            ctx.transfer_eth(contract, dydx.address, 20_000 * E18 + 2)
        })?;
        take_profit_home(ctx, contract, attacker)
    });
    ExecutedAttack {
        spec,
        tx,
        attacker,
        contract,
    }
}

/// Harvest Finance (Table I row 5, MBS, fUSDC-USDC 0.5% — the smallest
/// volatility in the study).
///
/// Borrow 50M USDC from Uniswap; three rounds of: deposit 28M into the
/// fUSDC vault, skew the farmed Curve pool with a 20M USDC→USDT swap
/// (raising the vault's spot-valued share price ~0.5%), withdraw at the
/// higher price, swap the USDT back.
pub(super) fn harvest(world: &mut World) -> ExecutedAttack {
    let spec = spec(5);
    world.chain.seek_date(spec.date);

    let curve_deployer = world.chain.create_eoa("curve deployer");
    world.labels.set(curve_deployer, "Curve");
    // Low amplification: the curvature is what makes the skew move the
    // spot valuation by the ~0.5% Harvest observed.
    let pool = StableSwapPool::deploy(
        &mut world.chain,
        &mut world.labels,
        curve_deployer,
        curve_deployer,
        vec![world.usdc.id, world.usdt.id],
        10,
        "yCrv",
        4,
    )
    .expect("stable pool deploy");
    let harvest_deployer = world.chain.create_eoa("harvest deployer");
    let vault = ShareVault::deploy(
        &mut world.chain,
        &mut world.labels,
        harvest_deployer,
        world.usdc.id,
        &pool,
        "fUSDC",
        "Harvest Finance",
    )
    .expect("vault deploy");

    // Seed: 100M/100M pool; the vault farms half the LP, carries an 80M
    // idle buffer, and existing farmers hold ~100M shares.
    let whale = world.whale;
    let usdc = world.usdc.id;
    let usdt = world.usdt.id;
    let pool_seed = pool.clone();
    let vault_seed = vault.clone();
    world.execute(whale, vault.address, "seed", |ctx| {
        let lp = pool_seed.seed(ctx, whale, &[100_000_000 * E6, 100_000_000 * E6])?;
        ctx.transfer_token(pool_seed.lp_token, whale, vault_seed.address, lp / 2)?;
        ctx.transfer_token(usdc, whale, vault_seed.address, 80_000_000 * E6)?;
        ctx.mint_token(vault_seed.share_token, whale, 100_000_000 * E6)?;
        Ok(())
    });

    let (attacker, contract) = world.create_attacker("harvest");
    let pair = world.pair_eth_usdc;
    let pool_attack = pool.clone();
    let vault_attack = vault.clone();

    let tx = world.execute(attacker, contract, "attack", |ctx| {
        pair.flash_swap(ctx, contract, usdc, 50_000_000 * E6, |ctx| {
            for _ in 0..3 {
                let shares = vault_attack.deposit(ctx, contract, 28_000_000 * E6)?;
                let got_usdt = pool_attack.swap_exact_in(
                    ctx,
                    contract,
                    usdc,
                    usdt,
                    20_000_000 * E6,
                    0,
                )?;
                vault_attack.withdraw(ctx, contract, shares)?;
                pool_attack.swap_exact_in(ctx, contract, usdt, usdc, got_usdt, 0)?;
            }
            // Repay principal + 0.3% flash-swap fee.
            let fee = ethsim::math::mul_div_ceil(50_000_000 * E6, 3, 997)?;
            ctx.transfer_token(usdc, contract, pair.address, 50_000_000 * E6 + fee)
        })?;
        // Profit home (USDC).
        let bal = ctx.balance(usdc, contract);
        ctx.transfer_token(usdc, contract, attacker, bal)
    });
    ExecutedAttack {
        spec,
        tx,
        attacker,
        contract,
    }
}

/// Transfers the attack contract's remaining ETH to the attacker's EOA
/// (paper Fig. 2, step 3). Intra-cluster at app level — LeiShen removes it.
fn take_profit_home(
    ctx: &mut ethsim::TxContext<'_>,
    contract: ethsim::Address,
    attacker: ethsim::Address,
) -> Result<()> {
    let bal = ctx.balance(TokenId::ETH, contract);
    if bal > 0 {
        ctx.transfer_eth(contract, attacker, bal)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use leishen::patterns::PatternKind;
    use leishen::{DetectorConfig, LeiShen};

    fn detect(world: &World, attack: &ExecutedAttack) -> leishen::detector::Analysis {
        let labels = world.detector_labels();
        let view = world.view(&labels);
        let record = world.chain.replay(attack.tx).expect("tx recorded");
        assert!(
            record.status.is_success(),
            "{} reverted: {:?}",
            attack.spec.name,
            record.status
        );
        LeiShen::new(DetectorConfig::paper()).analyze(record, &view)
    }

    #[test]
    fn bzx1_is_sbs() {
        let mut world = World::new();
        let attack = bzx1(&mut world);
        let analysis = detect(&world, &attack);
        assert_eq!(analysis.flash_loans.len(), 1);
        assert!(
            analysis.matches.iter().any(|m| m.kind == PatternKind::Sbs),
            "trades: {:#?}\nmatches: {:?}",
            analysis.trades,
            analysis.matches
        );
        // ~125% ETH-WBTC volatility in Table I; ours lands in the band.
        let sbs = analysis
            .matches
            .iter()
            .find(|m| m.kind == PatternKind::Sbs)
            .unwrap();
        assert!(sbs.volatility > 0.28, "vol {}", sbs.volatility);
    }

    #[test]
    fn bzx1_profit_is_positive() {
        let mut world = World::new();
        let attack = bzx1(&mut world);
        let labels = world.detector_labels();
        let view = world.view(&labels);
        let record = world.chain.replay(attack.tx).unwrap();
        let report = LeiShen::new(DetectorConfig::paper())
            .detect(record, &view, Some(&world.prices))
            .expect("attack detected");
        let profit = report.profit_usd.expect("prices supplied");
        // ~296 ETH × $2,000 ≈ $590k (the real attack netted 71 ETH; our
        // pool depths differ — the sign and order of magnitude matter).
        assert!(profit > 100_000.0, "profit {profit}");
    }

    #[test]
    fn bzx2_is_krp() {
        let mut world = World::new();
        let attack = bzx2(&mut world);
        let analysis = detect(&world, &attack);
        assert!(
            analysis.matches.iter().any(|m| m.kind == PatternKind::Krp),
            "trades: {:#?}\nmatches: {:?}",
            analysis.trades,
            analysis.matches
        );
    }

    #[test]
    fn balancer_is_krp_with_huge_volatility() {
        let mut world = World::new();
        let attack = balancer(&mut world);
        let analysis = detect(&world, &attack);
        let krp = analysis
            .matches
            .iter()
            .find(|m| m.kind == PatternKind::Krp)
            .unwrap_or_else(|| {
                panic!(
                    "no KRP: trades {:#?} matches {:?}",
                    analysis.trades, analysis.matches
                )
            });
        assert!(krp.volatility > 100.0, "volatility {}", krp.volatility);
    }

    #[test]
    fn harvest_is_mbs_with_small_volatility() {
        let mut world = World::new();
        let attack = harvest(&mut world);
        let analysis = detect(&world, &attack);
        let mbs = analysis
            .matches
            .iter()
            .find(|m| m.kind == PatternKind::Mbs)
            .unwrap_or_else(|| {
                panic!(
                    "no MBS: trades {:#?} matches {:?}",
                    analysis.trades, analysis.matches
                )
            });
        assert!(
            mbs.volatility < 0.05,
            "Harvest's volatility was ~0.5%, got {}",
            mbs.volatility
        );
    }
}

//! ERC20 token deployment helpers.
//!
//! Deploying a token on our substrate means (1) creating a contract account
//! via a transaction — so the creation relationship lands in the dataset
//! account tagging uses — and (2) registering the token in the world-state
//! registry.

use ethsim::{Address, Chain, Result, TokenId, TxContext};

use crate::labels::LabelService;

/// A deployed ERC20-style token: the registry id plus its contract address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TokenDeployment {
    /// Registry id used in transfers.
    pub id: TokenId,
    /// The token's contract account.
    pub contract: Address,
}

impl TokenDeployment {
    /// Deploys a token contract from `deployer` in its own transaction and
    /// registers it. If `label` is given, the *contract* is labeled in the
    /// label service (major tokens are labeled on Etherscan; scenario
    /// tokens typically are not).
    ///
    /// # Errors
    /// Propagates substrate errors (unknown deployer account).
    pub fn deploy(
        chain: &mut Chain,
        labels: &mut LabelService,
        deployer: Address,
        symbol: &str,
        decimals: u8,
        label: Option<&str>,
    ) -> Result<TokenDeployment> {
        let mut out = None;
        chain.execute(deployer, deployer, "deployToken", |ctx| {
            let contract = ctx.create_contract(deployer)?;
            let id = ctx.register_token(symbol, decimals, contract);
            out = Some(TokenDeployment { id, contract });
            Ok(())
        })?;
        let deployment = out.expect("deployment closure ran");
        if let Some(l) = label {
            labels.set(deployment.contract, l);
        }
        Ok(deployment)
    }

    /// Mints initial supply to `to` inside an existing transaction context.
    ///
    /// # Errors
    /// Propagates mint errors (overflow, unknown token).
    pub fn mint(&self, ctx: &mut TxContext<'_>, to: Address, amount: u128) -> Result<()> {
        ctx.mint_token(self.id, to, amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::ChainConfig;

    #[test]
    fn deploy_registers_token_and_creation() {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("token deployer");
        let t = TokenDeployment::deploy(&mut chain, &mut labels, deployer, "USDC", 6, Some("USDC"))
            .unwrap();
        assert_eq!(chain.state().token(t.id).unwrap().symbol, "USDC");
        assert_eq!(chain.state().token(t.id).unwrap().decimals, 6);
        assert_eq!(labels.get(t.contract), Some("USDC"));
        // creation relationship recorded for tagging
        let creations = chain.state().creations();
        assert_eq!(creations.len(), 1);
        assert_eq!(creations[0].creator, deployer);
        assert_eq!(creations[0].created, t.contract);
    }

    #[test]
    fn unlabeled_deploy() {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("d");
        let t =
            TokenDeployment::deploy(&mut chain, &mut labels, deployer, "OBSCURE", 18, None).unwrap();
        assert!(labels.get(t.contract).is_none());
    }
}

//! Yield aggregators.
//!
//! Aggregators "bridge users and DeFi applications" (paper §II-B). They
//! matter to LeiShen twice:
//!
//! 1. **Routing** — when an aggregator routes a trade, the user's tokens
//!    pass *through* the aggregator, producing two consecutive transfers of
//!    nearly the same amount with the aggregator as intermediary. LeiShen's
//!    third simplification rule merges these (tolerance 0.1%, because "the
//!    intermediary generally charges a small fee", §V-B2). Our routing fee
//!    is 5 bps, inside the tolerance.
//! 2. **Strategies** — an aggregator's investment strategy can legitimately
//!    buy and sell the same token for several rounds, which "can also show
//!    the behavior of Multi-Round Buying and Selling" (§VI-C): the paper's
//!    dominant MBS false-positive source, and the reason the
//!    aggregator-initiator heuristic lifts MBS precision from 56.1% to 80%.

use ethsim::{math, Address, Chain, LogValue, Result, SimError, TokenId, TxContext};

use crate::amm::UniswapV2Pair;
use crate::labels::LabelService;

/// A yield aggregator: router plus strategy runner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct YieldAggregator {
    /// Aggregator contract account.
    pub address: Address,
    /// The EOA that operates strategies (labeled with the aggregator's
    /// app name, so the initiator heuristic can recognize it).
    pub operator: Address,
    /// Routing fee in basis points — deliberately below LeiShen's 0.1%
    /// merge tolerance.
    pub fee_bps: u32,
}

impl YieldAggregator {
    /// Deploys an aggregator, labeling operator and contract with
    /// `app_label` (e.g. "Kyber", "Yearn").
    ///
    /// # Errors
    /// Propagates substrate errors.
    pub fn deploy(
        chain: &mut Chain,
        labels: &mut LabelService,
        operator: Address,
        app_label: &str,
    ) -> Result<YieldAggregator> {
        let mut address = None;
        chain.execute(operator, operator, "deployAggregator", |ctx| {
            address = Some(ctx.create_contract(operator)?);
            Ok(())
        })?;
        let address = address.expect("deploy closure ran");
        labels.set(operator, app_label);
        labels.set(address, app_label);
        Ok(YieldAggregator {
            address,
            operator,
            fee_bps: 5,
        })
    }

    /// Routes a swap through the aggregator: `user → aggregator → pair →
    /// aggregator → user`, with the aggregator keeping `fee_bps` of the
    /// output. The resulting transfer stream contains the inter-app
    /// pass-through LeiShen's merge rule collapses.
    ///
    /// # Errors
    /// Reverts on swap failure or insufficient user balance.
    pub fn route_swap(
        &self,
        ctx: &mut TxContext<'_>,
        user: Address,
        pair: &UniswapV2Pair,
        token_in: TokenId,
        amount_in: u128,
    ) -> Result<u128> {
        let agg = *self;
        let pair = *pair;
        ctx.call(user, self.address, "trade", 0, |ctx| {
            let token_out = pair.other(token_in);
            ctx.transfer_token(token_in, user, agg.address, amount_in)?;
            let out = pair.swap_exact_in(ctx, agg.address, token_in, amount_in, 0)?;
            let fee = math::mul_div(out, agg.fee_bps as u128, 10_000)?;
            let forwarded = math::sub(out, fee)?;
            ctx.transfer_token(token_out, agg.address, user, forwarded)?;
            ctx.emit_log(
                agg.address,
                "Routed",
                vec![
                    ("user".into(), LogValue::Addr(user)),
                    ("tokenIn".into(), LogValue::Token(token_in)),
                    ("amountIn".into(), LogValue::Amount(amount_in)),
                    ("tokenOut".into(), LogValue::Token(token_out)),
                    ("amountOut".into(), LogValue::Amount(forwarded)),
                ],
            );
            Ok(forwarded)
        })
    }

    /// Runs a multi-round rebalancing strategy: `rounds` cycles of buying
    /// `pair.other(base)` with `amount_per_round` of `base` and selling the
    /// proceeds straight back. Economically a (fee-losing) no-op that
    /// harvests positions; *structurally* indistinguishable from the MBS
    /// attack pattern — the paper's main false-positive source.
    ///
    /// # Errors
    /// Reverts on swap failures or balance shortfalls.
    pub fn strategy_rebalance(
        &self,
        ctx: &mut TxContext<'_>,
        pair: &UniswapV2Pair,
        base: TokenId,
        amount_per_round: u128,
        rounds: u32,
    ) -> Result<()> {
        if rounds == 0 {
            return Err(SimError::revert("zero rounds"));
        }
        let agg = *self;
        let pair = *pair;
        ctx.call(self.operator, self.address, "rebalance", 0, |ctx| {
            for _ in 0..rounds {
                let bought = pair.swap_exact_in(ctx, agg.address, base, amount_per_round, 0)?;
                pair.swap_exact_in(ctx, agg.address, pair.other(base), bought, 0)?;
            }
            ctx.emit_log(
                agg.address,
                "Rebalanced",
                vec![("rounds".into(), LogValue::Amount(rounds as u128))],
            );
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amm::UniswapV2Factory;
    use ethsim::ChainConfig;

    const E18: u128 = 1_000_000_000_000_000_000;
    const E6: u128 = 1_000_000;

    fn setup() -> (Chain, YieldAggregator, UniswapV2Pair, Address, TokenId) {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("uniswap deployer");
        let operator = chain.create_eoa("kyber operator");
        let user = chain.create_eoa("user");
        let factory =
            UniswapV2Factory::deploy_canonical(&mut chain, &mut labels, deployer).unwrap();
        let mut usdc = None;
        chain
            .execute(deployer, deployer, "deployToken", |ctx| {
                let c = ctx.create_contract(deployer)?;
                usdc = Some(ctx.register_token("USDC", 6, c));
                Ok(())
            })
            .unwrap();
        let usdc = usdc.unwrap();
        let pair =
            UniswapV2Pair::deploy(&mut chain, &factory, TokenId::ETH, usdc, "UNI ETH/USDC")
                .unwrap();
        let agg = YieldAggregator::deploy(&mut chain, &mut labels, operator, "Kyber").unwrap();
        chain.state_mut().credit_eth(user, 1_000 * E18).unwrap();
        let whale = chain.create_eoa("whale");
        chain.state_mut().credit_eth(whale, 10_000 * E18).unwrap();
        chain
            .execute(whale, pair.address, "seed", |ctx| {
                ctx.mint_token(usdc, whale, 20_000_000 * E6)?;
                ctx.mint_token(usdc, agg.address, 1_000_000 * E6)?;
                pair.add_liquidity(ctx, whale, 10_000 * E18, 20_000_000 * E6)?;
                Ok(())
            })
            .unwrap();
        (chain, agg, pair, user, usdc)
    }

    #[test]
    fn route_swap_passes_through_with_sub_tolerance_fee() {
        let (mut chain, agg, pair, user, usdc) = setup();
        let tx = chain
            .execute(user, agg.address, "trade", |ctx| {
                let out = agg.route_swap(ctx, user, &pair, TokenId::ETH, 10 * E18)?;
                assert!(out > 0);
                assert_eq!(ctx.balance(usdc, user), out);
                Ok(())
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        // Find the pair->agg and agg->user USDC transfers; difference < 0.1%.
        let t_pair_agg = rec
            .trace
            .transfers
            .iter()
            .find(|t| t.sender == pair.address && t.receiver == agg.address && t.token == usdc)
            .expect("pair->agg leg");
        let t_agg_user = rec
            .trace
            .transfers
            .iter()
            .find(|t| t.sender == agg.address && t.receiver == user && t.token == usdc)
            .expect("agg->user leg");
        let diff = t_pair_agg.amount - t_agg_user.amount;
        assert!(
            (diff as f64) / (t_pair_agg.amount as f64) < 0.001,
            "fee under LeiShen's 0.1% merge tolerance"
        );
    }

    #[test]
    fn strategy_rebalance_produces_mbs_shaped_trades() {
        let (mut chain, agg, pair, _, usdc) = setup();
        chain
            .state_mut()
            .credit_eth(agg.address, 500 * E18)
            .unwrap();
        let tx = chain
            .execute(agg.operator, agg.address, "rebalance", |ctx| {
                agg.strategy_rebalance(ctx, &pair, TokenId::ETH, 50 * E18, 3)
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        assert!(rec.status.is_success());
        // 3 rounds × 2 swaps × 2 transfers each = 12 transfers
        let usdc_buys = rec
            .trace
            .transfers
            .iter()
            .filter(|t| t.sender == pair.address && t.token == usdc)
            .count();
        assert_eq!(usdc_buys, 3, "one USDC-buy per round");
    }

    #[test]
    fn zero_rounds_reverts() {
        let (mut chain, agg, pair, _, _) = setup();
        let tx = chain
            .execute(agg.operator, agg.address, "rebalance", |ctx| {
                agg.strategy_rebalance(ctx, &pair, TokenId::ETH, E18, 0)
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }
}

//! Substrate error type.

use std::fmt;

use crate::address::Address;
use crate::token::TokenId;

/// Errors surfaced by the execution substrate and by protocol code built on
/// top of it. Any error returned from a transaction closure aborts the
/// transaction and rolls the world state back atomically — this is the
/// atomicity property flash loans rely on (paper §I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An arithmetic result exceeded `u128` (or underflowed zero).
    Overflow,
    /// Division by zero in amount math.
    DivisionByZero,
    /// `who` holds less than `needed` of `token`.
    InsufficientBalance {
        /// Account whose balance was insufficient.
        who: Address,
        /// Token being debited ([`TokenId::ETH`] for native transfers).
        token: TokenId,
        /// Amount the operation required.
        needed: u128,
        /// Amount actually available.
        available: u128,
    },
    /// A token id that was never registered.
    UnknownToken(TokenId),
    /// An address that was never created on this chain.
    UnknownAccount(Address),
    /// An operation that only a contract account supports was attempted on
    /// an EOA (or vice versa).
    WrongAccountKind(Address),
    /// Explicit revert raised by protocol logic (e.g. a failed flash-loan
    /// repayment check, slippage guard, or insufficient collateral).
    Reverted(String),
}

impl SimError {
    /// Convenience constructor for protocol-level reverts.
    pub fn revert(reason: impl Into<String>) -> Self {
        SimError::Reverted(reason.into())
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Overflow => write!(f, "arithmetic overflow"),
            SimError::DivisionByZero => write!(f, "division by zero"),
            SimError::InsufficientBalance {
                who,
                token,
                needed,
                available,
            } => write!(
                f,
                "insufficient balance: {} needs {} of {} but has {}",
                who.short(),
                needed,
                token,
                available
            ),
            SimError::UnknownToken(t) => write!(f, "unknown token {t}"),
            SimError::UnknownAccount(a) => write!(f, "unknown account {}", a.short()),
            SimError::WrongAccountKind(a) => {
                write!(f, "operation unsupported for account kind of {}", a.short())
            }
            SimError::Reverted(reason) => write!(f, "reverted: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::InsufficientBalance {
            who: Address::from_u64(7),
            token: TokenId::ETH,
            needed: 10,
            available: 3,
        };
        let s = e.to_string();
        assert!(s.contains("needs 10"));
        assert!(s.contains("has 3"));
        assert!(!SimError::Overflow.to_string().is_empty());
        assert!(SimError::revert("no repay").to_string().contains("no repay"));
    }
}

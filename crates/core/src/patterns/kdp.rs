//! Keep Dumping Price (KDP) — an **experimental** fourth pattern.
//!
//! The paper's §VII acknowledges that "more attack patterns beyond the
//! scope of 22 flpAttacks may be missed". One shape its three patterns
//! cannot express is the *inverse* manipulation: dump a (minted or
//! borrowed) token to crash its price, then re-accumulate cheaply — the
//! MY FARM PET incident's structure, which Table I leaves unclassified.
//!
//! KDP matches when the borrower **sells** the target token, later **buys
//! it back** at a price at least [`DetectorConfig::kdp_min_drop`] below the
//! sale price, and ends up a *net dumper* (sold more than re-accumulated —
//! this excludes the mirror image of ordinary profitable round trips,
//! where the "dump" of the quote token is just the payment leg). It is
//! disabled by default ([`DetectorConfig::experimental_kdp`]) and excluded
//! from every paper-reproduction figure; the `ablation` bench reports what
//! enabling it changes.

use crate::config::DetectorConfig;
use crate::patterns::{for_each_pair, PairLegs, PatternKind, PatternMatch};
use crate::tagging::Tag;
use crate::trades::TradeLeg;

/// Detects KDP instances across all token pairs.
pub fn detect(
    legs: &[TradeLeg<'_>],
    borrower: &Tag,
    config: &DetectorConfig,
) -> Vec<PatternMatch> {
    let mut out = Vec::new();
    let mut scratch = crate::patterns::PatternScratch::default();
    for_each_pair(legs, borrower, &mut scratch, |pair, _| {
        let _ = detect_pair(pair, config, &mut out);
    });
    out
}

/// KDP over one pair's leg views — allocation-free until a match.
///
/// Returns `None` when a match was pushed, otherwise the deepest
/// predicate that failed — the provenance layer's "why not".
pub(crate) fn detect_pair(
    pair: &PairLegs<'_, '_, '_>,
    config: &DetectorConfig,
    out: &mut Vec<PatternMatch>,
) -> Option<&'static str> {
    // 0 = no net dump followed by a smaller rebuy; 1 = rebuy not cheaper;
    // 2 = cheaper but the drop is under the threshold.
    let mut depth = 0u8;
    let mut found = false;
    for &dump in pair.own_sells {
        let dump = pair.leg(dump);
        if found {
            break;
        }
        let Some(dump_rate) = dump.sell_rate() else { continue };
        for &rebuy in pair.own_buys {
            let rebuy = pair.leg(rebuy);
            if rebuy.seq <= dump.seq {
                continue;
            }
            if rebuy.buy_amount >= dump.sell_amount {
                continue; // not a net dump: the mirror of a pump/dump
            }
            let Some(rebuy_rate) = rebuy.buy_rate() else { continue };
            if rebuy_rate >= dump_rate {
                depth = depth.max(1);
                continue; // must re-accumulate cheaper
            }
            depth = depth.max(2);
            let drop = (dump_rate - rebuy_rate) / dump_rate;
            if drop >= config.kdp_min_drop {
                out.push(PatternMatch {
                    kind: PatternKind::Kdp,
                    target_token: pair.target,
                    quote_token: pair.quote,
                    trade_seqs: vec![dump.seq, rebuy.seq],
                    volatility: drop,
                    counterparty: dump.seller.to_string(),
                });
                found = true;
                break;
            }
        }
    }
    if found {
        return None;
    }
    Some(match depth {
        0 => "no dump followed by a smaller rebuy",
        1 => "rebuy price not below the dump price",
        _ => "price drop below kdp_min_drop",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::all_legs;
    use crate::patterns::testutil::{app, buy, sell, tk};

    fn kdp_config() -> DetectorConfig {
        DetectorConfig {
            experimental_kdp: true,
            ..DetectorConfig::paper()
        }
    }

    #[test]
    fn dump_then_cheap_rebuy_matches() {
        let e = app("E");
        let v = app("MY FARM PET");
        // dump 2M PET @0.2 DAI, rebuy 500k @0.1
        let trades = vec![
            sell(0, &e, &v, 2_000_000, 1, 400_000, 0),
            buy(1, &e, &v, 50_000, 0, 500_000, 1),
        ];
        let m = detect(&all_legs(&trades), &e, &kdp_config());
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].kind, PatternKind::Kdp);
        assert_eq!(m[0].target_token, tk(1));
        assert!((m[0].volatility - 0.5).abs() < 1e-9, "{}", m[0].volatility);
    }

    #[test]
    fn rebuy_at_higher_price_is_benign() {
        let e = app("E");
        let v = app("V");
        // sells at 0.1, rebuys at 0.2 (ordinary loss-making churn)
        let trades = vec![
            sell(0, &e, &v, 1_000_000, 1, 100_000, 0),
            buy(1, &e, &v, 100_000, 0, 500_000, 1),
        ];
        assert!(detect(&all_legs(&trades), &e, &kdp_config()).is_empty());
    }

    #[test]
    fn small_drops_are_below_threshold() {
        let e = app("E");
        let v = app("V");
        // 10% drop < the 50% default
        let trades = vec![
            sell(0, &e, &v, 1_000_000, 1, 200_000, 0),
            buy(1, &e, &v, 180_000, 0, 1_000_000, 1),
        ];
        assert!(detect(&all_legs(&trades), &e, &kdp_config()).is_empty());
    }

    #[test]
    fn buy_before_dump_does_not_match() {
        let e = app("E");
        let v = app("V");
        let trades = vec![
            buy(0, &e, &v, 50_000, 0, 500_000, 1),
            sell(1, &e, &v, 2_000_000, 1, 400_000, 0),
        ];
        assert!(detect(&all_legs(&trades), &e, &kdp_config()).is_empty());
    }
}

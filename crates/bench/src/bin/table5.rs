//! Regenerates **Table V**: wild-scan detections with TP/FP and precision
//! per pattern — and the §VI-C aggregator heuristic with `--heuristic`.
//!
//! ```sh
//! cargo run -p leishen-bench --bin table5 -- --seed 42 --scale 0.002
//! cargo run -p leishen-bench --bin table5 -- --heuristic
//! ```

use std::collections::HashMap;

use leishen::heuristics::initiated_by_aggregator;
use leishen::patterns::PatternKind;
use leishen::{DetectorConfig, LeiShen};
use leishen_bench::{cli_f64, cli_flag, cli_u64, print_table, wild_world};
use leishen_scenarios::generator::AGGREGATOR_APPS;

fn main() {
    let seed = cli_u64("--seed", 42);
    let scale = cli_f64("--scale", 0.002);
    let heuristic = cli_flag("--heuristic");

    eprintln!("generating corpus (seed={seed}, scale={scale})...");
    let (world, corpus) = wild_world(seed, scale);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());

    let mut per: HashMap<PatternKind, (usize, usize)> = HashMap::new();
    let mut detected = 0usize;
    let mut tp = 0usize;
    for gtx in &corpus {
        let record = world.chain.replay(gtx.tx).expect("recorded");
        let analysis = detector.analyze(record, &view);
        if !analysis.is_attack() {
            continue;
        }
        if heuristic
            && initiated_by_aggregator(record.from, AGGREGATOR_APPS, view.labels(), view.creations())
        {
            continue;
        }
        detected += 1;
        if gtx.class.is_attack() {
            tp += 1;
        }
        let mut kinds: Vec<PatternKind> = analysis.matches.iter().map(|m| m.kind).collect();
        kinds.sort();
        kinds.dedup();
        for kind in kinds {
            let slot = per.entry(kind).or_insert((0, 0));
            if gtx.class.pattern_is_true(kind) {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
    }

    println!(
        "Table V — detection results on the synthetic wild corpus ({} flash-loan txs{})\n",
        corpus.len(),
        if heuristic { ", aggregator heuristic ON" } else { "" }
    );
    let mut rows = Vec::new();
    let paper = |k: PatternKind| match k {
        PatternKind::Krp => ("21", "21", "0", "100%"),
        PatternKind::Sbs => ("79", "68", "11", "86.1%"),
        PatternKind::Mbs => ("107", "60", "47", "56.1%"),
        PatternKind::Kdp => ("-", "-", "-", "-"), // experimental, not in the paper
    };
    for kind in [PatternKind::Krp, PatternKind::Sbs, PatternKind::Mbs] {
        let (tp_k, fp_k) = per.get(&kind).copied().unwrap_or((0, 0));
        let n = tp_k + fp_k;
        let p = paper(kind);
        rows.push(vec![
            kind.to_string(),
            n.to_string(),
            tp_k.to_string(),
            fp_k.to_string(),
            format!("{:.1}%", 100.0 * tp_k as f64 / n.max(1) as f64),
            format!("{}/{}/{}/{}", p.0, p.1, p.2, p.3),
        ]);
    }
    print_table(
        &["Pattern", "N", "TP", "FP", "P", "paper N/TP/FP/P"],
        &rows,
    );
    println!(
        "\noverall: {detected} detected, {tp} true attacks, precision {:.1}% (paper: 180 / 142 / 78.9%)",
        100.0 * tp as f64 / detected.max(1) as f64
    );
    if heuristic {
        println!("(paper §VI-C: with the heuristic, MBS precision rises to 80%)");
    }
}

//! The detector's view of account labels.
//!
//! LeiShen consumes an Etherscan-style label cloud: a partial map from
//! addresses to DeFi-application names. This type deliberately lives in the
//! detector crate (rather than reusing a protocol-suite type) so the
//! detector depends only on the substrate — on mainnet the labels come from
//! a web service, not from the protocols themselves.

use std::collections::HashMap;

use ethsim::Address;
use serde::{Deserialize, Serialize};

/// A partial address → application-name map.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Labels {
    map: HashMap<Address, String>,
}

impl Labels {
    /// Creates an empty label set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or overwrites a label.
    pub fn set(&mut self, addr: Address, app: impl Into<String>) {
        self.map.insert(addr, app.into());
    }

    /// Removes a label (the paper strips attackers' after-the-fact labels
    /// before running detection, §VI-B).
    pub fn remove(&mut self, addr: Address) -> Option<String> {
        self.map.remove(&addr)
    }

    /// Looks up a label.
    pub fn get(&self, addr: Address) -> Option<&str> {
        self.map.get(&addr).map(String::as_str)
    }

    /// Number of labeled addresses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no address is labeled.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(address, label)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Address, &str)> {
        self.map.iter().map(|(a, s)| (*a, s.as_str()))
    }
}

impl FromIterator<(Address, String)> for Labels {
    fn from_iter<T: IntoIterator<Item = (Address, String)>>(iter: T) -> Self {
        Labels {
            map: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Address, String)> for Labels {
    fn extend<T: IntoIterator<Item = (Address, String)>>(&mut self, iter: T) {
        self.map.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut l = Labels::new();
        assert!(l.is_empty());
        let a = Address::from_u64(1);
        l.set(a, "Uniswap");
        assert_eq!(l.get(a), Some("Uniswap"));
        assert_eq!(l.len(), 1);
        assert_eq!(l.remove(a).as_deref(), Some("Uniswap"));
        assert!(l.get(a).is_none());
    }

    #[test]
    fn from_iterator() {
        let l: Labels = vec![
            (Address::from_u64(1), "A".to_string()),
            (Address::from_u64(2), "B".to_string()),
        ]
        .into_iter()
        .collect();
        assert_eq!(l.len(), 2);
        assert_eq!(l.get(Address::from_u64(2)), Some("B"));
    }
}

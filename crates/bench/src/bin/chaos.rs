//! `chaos` — the fault-injection resilience campaign.
//!
//! Builds the standard seed corpus (22 attacks + benign/confuser
//! workloads), corrupts a seed-deterministic fraction of the records with
//! the [`leishen_scenarios::chaos`] damage generators, wires induced
//! stage-level panics/delays through a [`FaultInjector`], and scans the
//! result under four pipeline configurations (serial, 4-worker parallel,
//! metered, traced) at escalating fault rates. Every campaign must
//! satisfy three hard properties:
//!
//! 1. **survival** — one verdict per input transaction, no process abort;
//! 2. **containment** — every corrupted record is quarantined with a
//!    machine-readable `invalid_input:*` reason;
//! 3. **recall under fire** — every *uncorrupted* transaction gets the
//!    ground-truth verdict: all clean attacks stay detected (recall 1.0)
//!    and no clean benign transaction is flagged.
//!
//! Results land in `BENCH_chaos.json`; violations additionally write a
//! quarantine report per failing campaign to `--report-dir` and turn the
//! exit status non-zero.
//!
//! ```text
//! cargo run --release -p leishen-bench --bin chaos -- [--seed 42]
//!     [--smoke] [--out BENCH_chaos.json] [--report-dir chaos_reports]
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use ethsim::{TxId, TxRecord};
use leishen::resilience::{FaultInjector, FaultPlan, InducedFault, PlannedFault, Verdict};
use leishen::telemetry::{MetricsSink, NoopSink, RecordingSink};
use leishen::trace::json::fmt_f64;
use leishen::trace::{FlightRecorder, NoopTracer, Reason};
use leishen::{
    install_quiet_hook, ChainView, DetectorConfig, LeiShen, ResilienceConfig, ScanEngine, TagCache,
};
use leishen_bench::{cli_flag, cli_str, cli_u64, print_table};
use leishen_scenarios::chaos::apply_input_faults;
use leishen_scenarios::fuzz::seed_case;

const CONFIGS: [&str; 4] = ["serial", "parallel4", "metered", "traced"];

/// Everything one (config, rate) campaign produced.
struct Campaign {
    config: &'static str,
    rate_permille: u32,
    txs: usize,
    corrupted: usize,
    quarantined: usize,
    panics_fired: u64,
    delays_fired: u64,
    clean_attacks: usize,
    clean_detected: usize,
    false_positives: usize,
    survived: usize,
    by_fault: BTreeMap<&'static str, usize>,
    violations: Vec<String>,
    quarantine_log: Vec<String>,
}

impl Campaign {
    fn survival_rate(&self) -> f64 {
        // Reaching this point at all means no abort; survival is the
        // fraction of inputs that came back with *some* verdict.
        if self.txs == 0 {
            1.0
        } else {
            self.survived.min(self.txs) as f64 / self.txs as f64
        }
    }

    fn recall_clean(&self) -> f64 {
        if self.clean_attacks == 0 {
            1.0
        } else {
            self.clean_detected as f64 / self.clean_attacks as f64
        }
    }
}

fn main() {
    let seed = cli_u64("--seed", 42);
    let smoke = cli_flag("--smoke");
    let out_path = cli_str("--out", "BENCH_chaos.json");
    let report_dir = cli_str("--report-dir", "chaos_reports");
    install_quiet_hook();

    let rates: &[u32] = if smoke { &[0, 100] } else { &[0, 50, 100, 250] };

    println!("building seed corpus (22 attacks + benign/confuser workloads)...");
    let start = Instant::now();
    let seeds = seed_case(DetectorConfig::paper());
    let corpus = &seeds.case;
    let flagged = seeds.expect.iter().filter(|e| e.flagged).count();
    println!(
        "corpus ready: {} transactions ({} ground-truth attacks) in {:.1}s",
        corpus.txs.len(),
        flagged,
        start.elapsed().as_secs_f64()
    );

    let detector = LeiShen::new(DetectorConfig::paper());
    let mut campaigns: Vec<Campaign> = Vec::new();

    for &rate in rates {
        // One plan per rate, shared by all four configurations, so a
        // config-dependent verdict difference is a real divergence and
        // not a sampling artifact. Same seed across rates keeps the
        // assignments rate-aligned (a record corrupted at 50‰ is also
        // corrupted at every higher rate).
        let plan = FaultPlan::new(seed, rate);
        let assignment = plan.assign(corpus.txs.len());
        let mut txs: Vec<TxRecord> = corpus.txs.clone();
        let applied = apply_input_faults(&mut txs, &assignment);
        let induced: Vec<(TxId, InducedFault)> = assignment
            .iter()
            .zip(&txs)
            .filter_map(|(slot, tx)| match slot {
                Some(PlannedFault::Induced(f)) => Some((tx.id, *f)),
                _ => None,
            })
            .collect();
        let corrupted = applied.iter().filter(|a| a.is_some()).count();
        println!(
            "rate {rate}‰: {corrupted} corrupted records, {} induced stage faults",
            induced.len()
        );

        let refs: Vec<&TxRecord> = txs.iter().collect();
        let view = corpus.view();
        for config in CONFIGS {
            let campaign = run_campaign(
                config, rate, &detector, &refs, &view, &induced, &applied, &seeds.expect,
            );
            campaigns.push(campaign);
        }
    }
    let elapsed = start.elapsed();

    print_summary(&campaigns, elapsed.as_secs_f64());

    let total_violations: usize = campaigns.iter().map(|c| c.violations.len()).sum();
    if total_violations > 0 {
        write_reports(&campaigns, Path::new(&report_dir));
    }

    let json = render_json(&campaigns, seed, smoke, corpus.txs.len(), flagged, elapsed.as_millis() as u64);
    std::fs::write(&out_path, &json).expect("write BENCH_chaos.json");
    println!("wrote {out_path}");

    if total_violations > 0 {
        eprintln!(
            "CHAOS FAILED: {total_violations} violation(s); quarantine reports in {report_dir}/"
        );
        std::process::exit(1);
    }
    println!(
        "all campaigns clean: {} configurations x {} rates, zero violations",
        CONFIGS.len(),
        rates.len()
    );
}

#[allow(clippy::too_many_arguments)]
fn run_campaign(
    config: &'static str,
    rate: u32,
    detector: &LeiShen,
    refs: &[&TxRecord],
    view: &ChainView<'_>,
    induced: &[(TxId, InducedFault)],
    applied: &[Option<leishen::resilience::InputFault>],
    expect: &[leishen::TxExpect],
) -> Campaign {
    let policy = ResilienceConfig::new();
    match config {
        "serial" => {
            let engine = ScanEngine::new(1);
            let injector = FaultInjector::new(NoopSink, induced.iter().copied());
            let scan = engine.scan_resilient_with(
                detector, refs, view, &TagCache::new(), &policy, &injector, &NoopTracer,
            );
            grade(config, rate, &scan.verdicts, applied, expect, &injector, None, None)
        }
        "parallel4" => {
            let engine = ScanEngine::new(4).allow_oversubscription();
            let injector = FaultInjector::new(NoopSink, induced.iter().copied());
            let scan = engine.scan_resilient_with(
                detector, refs, view, &TagCache::new(), &policy, &injector, &NoopTracer,
            );
            grade(config, rate, &scan.verdicts, applied, expect, &injector, None, None)
        }
        "metered" => {
            let engine = ScanEngine::new(4).allow_oversubscription();
            let injector = FaultInjector::new(RecordingSink::new(), induced.iter().copied());
            let scan = engine.scan_resilient_with(
                detector, refs, view, &TagCache::new(), &policy, &injector, &NoopTracer,
            );
            let metered_quarantined = injector.inner().counter_totals().quarantined;
            grade(
                config, rate, &scan.verdicts, applied, expect, &injector,
                Some(metered_quarantined), None,
            )
        }
        "traced" => {
            let engine = ScanEngine::new(4).allow_oversubscription();
            let injector = FaultInjector::new(NoopSink, induced.iter().copied());
            let recorder = FlightRecorder::new();
            let scan = engine.scan_resilient_with(
                detector, refs, view, &TagCache::new(), &policy, &injector, &recorder,
            );
            grade(config, rate, &scan.verdicts, applied, expect, &injector, None, Some(&recorder))
        }
        other => unreachable!("unknown config {other}"),
    }
}

/// Grades one campaign's verdicts against the corruption ground truth,
/// collecting violations instead of panicking so a failing campaign
/// still produces a full report.
#[allow(clippy::too_many_arguments)]
fn grade<S: MetricsSink>(
    config: &'static str,
    rate: u32,
    verdicts: &[Verdict],
    applied: &[Option<leishen::resilience::InputFault>],
    expect: &[leishen::TxExpect],
    injector: &FaultInjector<S>,
    metered_quarantined: Option<u64>,
    recorder: Option<&FlightRecorder>,
) -> Campaign {
    let mut c = Campaign {
        config,
        rate_permille: rate,
        txs: applied.len(),
        corrupted: applied.iter().filter(|a| a.is_some()).count(),
        quarantined: 0,
        panics_fired: injector.panics_fired(),
        delays_fired: injector.delays_fired(),
        clean_attacks: 0,
        clean_detected: 0,
        false_positives: 0,
        survived: verdicts.len(),
        by_fault: BTreeMap::new(),
        violations: Vec::new(),
        quarantine_log: Vec::new(),
    };

    if verdicts.len() != applied.len() {
        c.violations.push(format!(
            "survival: {} verdicts for {} inputs",
            verdicts.len(),
            applied.len()
        ));
        return c;
    }

    for (i, verdict) in verdicts.iter().enumerate() {
        match (verdict, applied[i]) {
            (Verdict::Indeterminate(q), Some(kind)) => {
                c.quarantined += 1;
                *c.by_fault.entry(kind.name()).or_insert(0) += 1;
                let reason = q.reason();
                c.quarantine_log.push(format!(
                    "tx#{} index {i} fault {} -> {}",
                    q.tx.0,
                    kind.name(),
                    reason
                ));
                if !reason.starts_with("invalid_input:") {
                    c.violations.push(format!(
                        "containment: corrupted tx#{} quarantined with non-input reason {reason}",
                        q.tx.0
                    ));
                }
                if let Some(rec) = recorder {
                    let traced = rec.find(q.tx).is_some_and(|t| {
                        t.decision
                            .reasons
                            .iter()
                            .any(|r| matches!(r, Reason::Indeterminate { .. }))
                    });
                    if !traced {
                        c.violations.push(format!(
                            "provenance: quarantined tx#{} has no Indeterminate trace",
                            q.tx.0
                        ));
                    }
                }
            }
            (Verdict::Indeterminate(q), None) => {
                c.quarantined += 1;
                *c.by_fault.entry("panic").or_insert(0) += 1;
                c.quarantine_log.push(format!(
                    "tx#{} index {i} uncorrupted -> {}",
                    q.tx.0,
                    q.reason()
                ));
                c.violations.push(format!(
                    "recall: uncorrupted tx#{} quarantined ({}) instead of analyzed",
                    q.tx.0,
                    q.reason()
                ));
            }
            (Verdict::Analyzed(_), Some(kind)) => {
                c.violations.push(format!(
                    "containment: corrupted tx index {i} ({}) was analyzed, not quarantined",
                    kind.name()
                ));
            }
            (Verdict::Analyzed(a), None) => {
                let want = expect[i].flagged;
                let got = a.is_attack();
                if want {
                    c.clean_attacks += 1;
                    if got {
                        c.clean_detected += 1;
                    } else {
                        c.violations.push(format!(
                            "recall: clean attack tx index {i} not flagged under faults"
                        ));
                    }
                } else if got {
                    c.false_positives += 1;
                    c.violations
                        .push(format!("precision: clean benign tx index {i} flagged under faults"));
                }
            }
        }
    }

    if let Some(metered) = metered_quarantined {
        if metered != c.quarantined as u64 {
            c.violations.push(format!(
                "telemetry: sink counted {metered} quarantines, scan produced {}",
                c.quarantined
            ));
        }
    }

    c
}

fn print_summary(campaigns: &[Campaign], secs: f64) {
    let rows: Vec<Vec<String>> = campaigns
        .iter()
        .map(|c| {
            vec![
                c.config.to_string(),
                format!("{}", c.rate_permille),
                c.txs.to_string(),
                c.corrupted.to_string(),
                c.quarantined.to_string(),
                c.panics_fired.to_string(),
                format!("{:.3}", c.recall_clean()),
                c.false_positives.to_string(),
                c.violations.len().to_string(),
            ]
        })
        .collect();
    print_table(
        &["config", "rate\u{2030}", "txs", "corrupt", "quarantine", "panics", "recall", "fp", "violations"],
        &rows,
    );
    println!("{} campaigns in {secs:.1}s", campaigns.len());
}

fn write_reports(campaigns: &[Campaign], dir: &Path) {
    std::fs::create_dir_all(dir).expect("create report dir");
    for c in campaigns.iter().filter(|c| !c.violations.is_empty()) {
        let mut body = String::new();
        let _ = writeln!(body, "campaign {} at {}permille", c.config, c.rate_permille);
        let _ = writeln!(body, "-- violations ({})", c.violations.len());
        for v in &c.violations {
            let _ = writeln!(body, "{v}");
        }
        let _ = writeln!(body, "-- quarantines ({})", c.quarantine_log.len());
        for q in &c.quarantine_log {
            let _ = writeln!(body, "{q}");
        }
        let path = dir.join(format!("chaos_{}_{}.txt", c.config, c.rate_permille));
        std::fs::write(&path, body).expect("write quarantine report");
        eprintln!("quarantine report: {}", path.display());
    }
}

fn render_json(
    campaigns: &[Campaign],
    seed: u64,
    smoke: bool,
    txs: usize,
    flagged: usize,
    elapsed_ms: u64,
) -> String {
    let mut entries = String::new();
    for (i, c) in campaigns.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n    ");
        }
        let mut by_fault = String::new();
        for (j, (name, count)) in c.by_fault.iter().enumerate() {
            if j > 0 {
                by_fault.push(',');
            }
            let _ = write!(by_fault, "\"{name}\":{count}");
        }
        let _ = write!(
            entries,
            "{{\"config\":\"{}\",\"rate_permille\":{},\"txs\":{},\"corrupted\":{},\
             \"quarantined\":{},\"panics_fired\":{},\"delays_fired\":{},\
             \"survival_rate\":{},\"recall_clean\":{},\"false_positives\":{},\
             \"quarantine_by_fault\":{{{by_fault}}},\"violations\":{}}}",
            c.config,
            c.rate_permille,
            c.txs,
            c.corrupted,
            c.quarantined,
            c.panics_fired,
            c.delays_fired,
            fmt_f64(c.survival_rate()),
            fmt_f64(c.recall_clean()),
            c.false_positives,
            c.violations.len()
        );
    }
    let min_survival = campaigns.iter().map(Campaign::survival_rate).fold(1.0, f64::min);
    let min_recall = campaigns.iter().map(Campaign::recall_clean).fold(1.0, f64::min);
    let total_violations: usize = campaigns.iter().map(|c| c.violations.len()).sum();
    format!(
        "{{\n  \"bench\": \"chaos\",\n  \"smoke\": {smoke},\n  \"seed\": {seed},\n  \
         \"corpus\": {{\"txs\": {txs}, \"flagged\": {flagged}}},\n  \
         \"campaigns\": [\n    {entries}\n  ],\n  \
         \"survival_rate\": {},\n  \"recall_clean\": {},\n  \"violations\": {total_violations},\n  \
         \"elapsed_ms\": {elapsed_ms}\n}}\n",
        fmt_f64(min_survival),
        fmt_f64(min_recall),
    )
}

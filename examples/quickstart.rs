//! Quickstart: detect a flash-loan price-manipulation attack end to end.
//!
//! Deploys the standard world, replays the bZx-1 attack (the first
//! real-world flpAttack, Feb 2020), and runs the LeiShen pipeline on it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use leishen::{DetectorConfig, LeiShen};
use leishen_repro::scenarios::attacks::all_attacks;
use leishen_repro::scenarios::World;

fn main() {
    // 1. A world: tokens, Uniswap pairs, flash-loan providers, labels.
    let mut world = World::new();

    // 2. An attack: bZx-1 — 10,000 ETH from dYdX, Compound borrow, bZx
    //    margin pump, Kyber-routed dump.
    let bzx1 = all_attacks()[0];
    let attack = bzx1(&mut world);
    println!("executed {} at block {}", attack.spec.name, {
        world.chain.replay(attack.tx).unwrap().block
    });

    // 3. The detector: replay the transaction, run the pipeline.
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());
    let record = world.chain.replay(attack.tx).expect("recorded");

    let report = detector
        .detect(record, &view, Some(&world.prices))
        .expect("bZx-1 is detected");

    println!("\n{report}");
    println!("\nflash loans:");
    for loan in &report.flash_loans {
        println!(
            "  {} lent {} units of {:?} to {}",
            loan.provider,
            loan.amount.unwrap_or(0),
            loan.token,
            loan.borrower.short()
        );
    }
    println!("\nmatched patterns:");
    for m in &report.patterns {
        println!(
            "  {} on {} (quote {}), volatility {:.1}%, counterparty {}",
            m.kind,
            m.target_token,
            m.quote_token,
            m.volatility * 100.0,
            m.counterparty
        );
    }
    println!("\nper-pair volatility (Table I metric):");
    for v in &report.volatilities {
        println!(
            "  {}-{}: {:.1}% over {} trades",
            v.token_a,
            v.token_b,
            v.volatility_pct(),
            v.samples
        );
    }
    if let Some(p) = report.profit_usd {
        println!("\nattacker profit: ${p:.0}");
    }
}

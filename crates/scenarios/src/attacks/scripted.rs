//! Trace-scripted reconstructions of the remaining 18 studied attacks.
//!
//! Each script reproduces the incident's published *transfer structure* —
//! trade order, counterparty layout (direct / routed / split-account),
//! amount relations, event emissions — which is exactly the information
//! the detectors consume. BSC-origin incidents run on our single simulated
//! chain with ETH standing in for WBNB and our Table II providers standing
//! in for PancakeSwap (the detectors' logic is chain-agnostic; the paper
//! itself evaluates BSC incidents with the same pipeline).

use ethsim::{Address, Result, TokenId, TxContext};

use super::util::{deposit_mint, direct_swap, routed_swap, split_swap, withdraw_burn};
use super::{spec, ExecutedAttack};
use crate::world::{World, E18, E6};

/// Runs `body` inside an AAVE flash loan of `amount` ETH (plus automatic
/// repayment with fee), from a fresh attacker, and wraps the outcome.
fn aave_eth_attack(
    world: &mut World,
    id: u32,
    loan_eth: u128,
    body: impl FnOnce(&mut TxContext<'_>, Address) -> Result<()>,
) -> ExecutedAttack {
    let spec = spec(id);
    world.chain.seek_date(spec.date);
    let (attacker, contract) = world.create_attacker(spec.name);
    let aave = world.aave;
    let amount = loan_eth * E18;
    let fee = aave.fee(amount).expect("fee");
    let tx = world.execute(attacker, contract, "attack", |ctx| {
        aave.flash_loan(ctx, contract, TokenId::ETH, amount, |ctx| {
            body(ctx, contract)?;
            ctx.transfer_eth(contract, aave.address, amount + fee)
        })?;
        let bal = ctx.balance(TokenId::ETH, contract);
        ctx.transfer_eth(contract, attacker, bal)
    });
    ExecutedAttack {
        spec,
        tx,
        attacker,
        contract,
    }
}

/// Same wrapper but borrowing DAI.
fn aave_dai_attack(
    world: &mut World,
    id: u32,
    amount: u128,
    body: impl FnOnce(&mut TxContext<'_>, Address) -> Result<()>,
) -> ExecutedAttack {
    let spec = spec(id);
    world.chain.seek_date(spec.date);
    let (attacker, contract) = world.create_attacker(spec.name);
    let aave = world.aave;
    let dai = world.dai.id;
    let fee = aave.fee(amount).expect("fee");
    let tx = world.execute(attacker, contract, "attack", |ctx| {
        aave.flash_loan(ctx, contract, dai, amount, |ctx| {
            body(ctx, contract)?;
            ctx.transfer_token(dai, contract, aave.address, amount + fee)
        })?;
        let bal = ctx.balance(dai, contract);
        ctx.transfer_token(dai, contract, attacker, bal)
    });
    ExecutedAttack {
        spec,
        tx,
        attacker,
        contract,
    }
}

/// 4 — Eminence (MBS): three bonding-curve rounds at escalating prices
/// (DAI-EMN volatility ~124%). Redemptions flow through a helper contract
/// so no account-level buy/sell pair forms, and the bonding curve emits no
/// explorer-visible trade events.
pub(super) fn eminence(world: &mut World) -> ExecutedAttack {
    let emn = world.deploy_token("EMN", 18, 1.0);
    let emn_app = world.scripted_app("Eminence", 1)[0];
    world.fund_token(world.dai.id, emn_app, 20_000_000 * E18);
    let dai = world.dai.id;
    aave_dai_attack(world, 4, 10_000_000 * E18, move |ctx, c| {
        // (deposit DAI, EMN minted, EMN burned, DAI redeemed) per round
        let rounds: [(u128, u128, u128); 3] = [
            (1_000_000, 1_000_000, 1_030_000),
            (1_030_000, 500_000, 1_060_900),
            (1_060_900, 482_000, 1_092_700),
        ];
        for (dai_in, emn_out, dai_out) in rounds {
            deposit_mint(ctx, c, emn_app, dai_in * E18, dai, emn_out * E18, emn.id, false)?;
            let helper = ctx.create_contract(c)?;
            ctx.transfer_token(emn.id, c, helper, emn_out * E18)?;
            ctx.burn_token(emn.id, helper, emn_out * E18)?;
            ctx.transfer_token(dai, emn_app, helper, dai_out * E18)?;
            ctx.transfer_token(dai, helper, c, dai_out * E18)?;
        }
        Ok(())
    })
}

/// 6 — Cheese Bank (SBS, DeFiRanger-visible): symmetric direct CHEESE
/// buy/sell against the bank with a no-event pump in between.
pub(super) fn cheese_bank(world: &mut World) -> ExecutedAttack {
    let cheese = world.deploy_token("CHEESE", 18, 2.0);
    let bank = world.scripted_app("Cheese Bank", 1)[0];
    let pump_pool = world.scripted_app("CheeseSwap", 1)[0];
    world.fund_token(cheese.id, bank, 1_000_000 * E18);
    world.fund_token(cheese.id, pump_pool, 1_000_000 * E18);
    world.fund_eth(bank, 2_000 * E18);
    aave_eth_attack(world, 6, 5_000, move |ctx, c| {
        // t1: buy 10,000 CHEESE for 100 ETH (0.01 ETH/CHEESE)
        direct_swap(ctx, c, bank, 100 * E18, TokenId::ETH, 10_000 * E18, cheese.id)?;
        // t2 (pump): 5,000 CHEESE for 250 ETH (0.05)
        direct_swap(ctx, c, pump_pool, 250 * E18, TokenId::ETH, 5_000 * E18, cheese.id)?;
        // t3: sell the symmetric 10,000 CHEESE back at 0.04
        direct_swap(ctx, c, bank, 10_000 * E18, cheese.id, 400 * E18, TokenId::ETH)?;
        Ok(())
    })
}

/// 7 — Value DeFi (no Table I pattern; DeFiRanger-only detection): a
/// single asymmetric pump/dump — profitable two-trade shape, but fails
/// SBS symmetry, KRP's series length and MBS's round count.
pub(super) fn value_defi(world: &mut World) -> ExecutedAttack {
    let mvusd = world.deploy_token("mvUSD", 18, 1.0);
    let value_app = world.scripted_app("Value DeFi", 1)[0];
    world.fund_token(mvusd.id, value_app, 10_000_000 * E18);
    world.fund_token(world.dai.id, value_app, 10_000_000 * E18);
    let dai = world.dai.id;
    aave_dai_attack(world, 7, 5_000_000 * E18, move |ctx, c| {
        // buy 1M mvUSD at 1.0
        direct_swap(ctx, c, value_app, 1_000_000 * E18, dai, 1_000_000 * E18, mvusd.id)?;
        // sell only 700k at 1.5 — asymmetric
        direct_swap(ctx, c, value_app, 700_000 * E18, mvusd.id, 1_050_000 * E18, dai)?;
        Ok(())
    })
}

/// 8 — Yearn (SBS via mint/remove liquidity, DeFiRanger-visible, no
/// explorer events): symmetric 3Crv mint/redeem around a pump.
pub(super) fn yearn(world: &mut World) -> ExecutedAttack {
    let threecrv = world.deploy_token("3Crv", 18, 1.0);
    let pool = world.scripted_app("Yearn", 1)[0];
    world.fund_token(world.dai.id, pool, 20_000_000 * E18);
    let dai = world.dai.id;
    aave_dai_attack(world, 8, 10_000_000 * E18, move |ctx, c| {
        // t1: deposit 1M DAI, mint 1M 3Crv (rate 1.0)
        deposit_mint(ctx, c, pool, 1_000_000 * E18, dai, 1_000_000 * E18, threecrv.id, false)?;
        // t2 (pump): deposit 400k DAI, mint only 100k 3Crv (rate 4.0)
        deposit_mint(ctx, c, pool, 400_000 * E18, dai, 100_000 * E18, threecrv.id, false)?;
        // t3: redeem the symmetric 1M 3Crv for 2M DAI (rate 2.0)
        withdraw_burn(ctx, c, pool, 1_000_000 * E18, threecrv.id, 2_000_000 * E18, dai, false)?;
        Ok(())
    })
}

/// 9 — Spartan Protocol (KRP): six escalating SPARTA buys, stash sold
/// through a mid-attack helper contract (breaking account-level
/// adjacency); Spartan's custom AMM emits no explorer-parseable events.
pub(super) fn spartan(world: &mut World) -> ExecutedAttack {
    let sparta = world.deploy_token("SPARTA", 18, 1.5);
    let pool = world.scripted_app("Spartan Protocol", 1)[0];
    world.fund_token(sparta.id, pool, 10_000_000 * E18);
    world.fund_eth(pool, 20_000 * E18);
    aave_eth_attack(world, 9, 8_000, move |ctx, c| {
        // six buys, 1,000 ETH each, output shrinking (price rising)
        for out in [10_000u128, 9_000, 8_000, 7_000, 6_000, 5_000] {
            direct_swap(ctx, c, pool, 1_000 * E18, TokenId::ETH, out * E18, sparta.id)?;
        }
        // sell all 45,000 SPARTA at the pumped price via a helper
        let helper = ctx.create_contract(c)?;
        ctx.transfer_token(sparta.id, c, helper, 45_000 * E18)?;
        ctx.transfer_token(sparta.id, helper, pool, 45_000 * E18)?;
        ctx.transfer_eth(pool, helper, 13_500 * E18)?;
        ctx.transfer_eth(helper, c, 13_500 * E18)?;
        Ok(())
    })
}

/// 10 — XToken-1 (no pattern detected by anyone): one symmetric
/// mint/redeem with no pump trade in between (SBS needs a middle trade),
/// redemption routed through a helper.
pub(super) fn xtoken1(world: &mut World) -> ExecutedAttack {
    let xsnx = world.deploy_token("xSNXa", 18, 3.0);
    let xtoken = world.scripted_app("XToken", 1)[0];
    world.fund_eth(xtoken, 10_000 * E18);
    aave_eth_attack(world, 10, 5_000, move |ctx, c| {
        deposit_mint(ctx, c, xtoken, 1_000 * E18, TokenId::ETH, 50_000 * E18, xsnx.id, false)?;
        let helper = ctx.create_contract(c)?;
        ctx.transfer_token(xsnx.id, c, helper, 50_000 * E18)?;
        ctx.burn_token(xsnx.id, helper, 50_000 * E18)?;
        ctx.transfer_eth(xtoken, helper, 1_200 * E18)?;
        ctx.transfer_eth(helper, c, 1_200 * E18)?;
        Ok(())
    })
}

/// 11 — PancakeBunny (no pattern): a reward-minting exploit — BUNNY is
/// minted against a deposit, then dumped once through a helper. One round
/// defeats MBS; no middle trade defeats SBS; one buy defeats KRP.
pub(super) fn pancake_bunny(world: &mut World) -> ExecutedAttack {
    let bunny = world.deploy_token("BUNNY", 18, 8.0);
    let vault = world.scripted_app("PancakeBunny", 1)[0];
    let dump_pool = world.scripted_app("PancakeSwap", 1)[0];
    world.fund_eth(dump_pool, 20_000 * E18);
    aave_eth_attack(world, 11, 5_000, move |ctx, c| {
        // the broken reward math mints a mountain of BUNNY for a deposit
        deposit_mint(ctx, c, vault, 100 * E18, TokenId::ETH, 1_000_000 * E18, bunny.id, false)?;
        // dump it once, via a helper
        let helper = ctx.create_contract(c)?;
        ctx.transfer_token(bunny.id, c, helper, 1_000_000 * E18)?;
        ctx.transfer_token(bunny.id, helper, dump_pool, 1_000_000 * E18)?;
        ctx.transfer_eth(dump_pool, helper, 5_000 * E18)?;
        ctx.transfer_eth(helper, c, 5_000 * E18)?;
        Ok(())
    })
}

/// 12 — JulSwap (conforms to SBS but *everyone misses it*): the victim's
/// router and pool sit in a creation tree with conflicting labels
/// (Fig. 7c), so LeiShen cannot tag them, the in/out legs never form
/// trades, and the pattern is invisible (paper §VI-B).
pub(super) fn julswap(world: &mut World) -> ExecutedAttack {
    let julb = world.deploy_token("JULb", 18, 0.5);
    let (c_in, c_out) = world.conflicted_app("JulSwap", "Venus");
    world.fund_token(julb.id, c_out, 10_000_000 * E18);
    world.fund_eth(c_out, 20_000 * E18);
    aave_eth_attack(world, 12, 5_000, move |ctx, c| {
        // SBS-shaped: buy, pump, symmetric sell — but split across the
        // untaggable in/out contracts.
        split_swap(ctx, c, c_in, c_out, 500 * E18, TokenId::ETH, 10_000 * E18, julb.id)?;
        split_swap(ctx, c, c_in, c_out, 800 * E18, TokenId::ETH, 5_000 * E18, julb.id)?;
        split_swap(ctx, c, c_in, c_out, 10_000 * E18, julb.id, 1_600 * E18, TokenId::ETH)?;
        Ok(())
    })
}

/// 13 — Belt Finance (MBS, DeFiRanger-visible): four direct vault rounds
/// with ~1% gains; Belt's vault emits no standard trade events.
pub(super) fn belt(world: &mut World) -> ExecutedAttack {
    let belt_lp = world.deploy_token("beltBUSD", 18, 1.0);
    let vault = world.scripted_app("Belt Finance", 1)[0];
    world.fund_token(world.dai.id, vault, 50_000_000 * E18);
    let dai = world.dai.id;
    aave_dai_attack(world, 13, 20_000_000 * E18, move |ctx, c| {
        let rounds: [(u128, u128, u128); 4] = [
            (8_000_000, 8_000_000, 8_080_000),
            (8_080_000, 7_920_000, 8_160_800),
            (8_160_800, 7_850_000, 8_242_400),
            (8_242_400, 7_780_000, 8_324_800),
        ];
        for (dai_in, lp_out, dai_out) in rounds {
            deposit_mint(ctx, c, vault, dai_in * E18, dai, lp_out * E18, belt_lp.id, false)?;
            withdraw_burn(ctx, c, vault, lp_out * E18, belt_lp.id, dai_out * E18, dai, false)?;
        }
        Ok(())
    })
}

/// 14 — xWin Finance (MBS, visible to everyone): three direct vault
/// rounds at sharply escalating prices, with explorer-parseable
/// Deposit/Withdraw events (BNB-XWIN volatility ~2.5·10³%).
pub(super) fn xwin(world: &mut World) -> ExecutedAttack {
    let xwin_t = world.deploy_token("XWIN", 18, 1.0);
    let vault = world.scripted_app("xWin Finance", 1)[0];
    world.fund_eth(vault, 30_000 * E18);
    aave_eth_attack(world, 14, 5_000, move |ctx, c| {
        // (eth in, xwin out, xwin back, eth out): price ~×5 per round
        let rounds: [(u128, u128); 3] = [(1_000, 1_000_000), (1_000, 200_000), (1_000, 40_000)];
        for (round, (eth_in, xwin_out)) in rounds.into_iter().enumerate() {
            deposit_mint(ctx, c, vault, eth_in * E18, TokenId::ETH, xwin_out * E18, xwin_t.id, true)?;
            let gain = 20 + round as u128; // ~+2% per round
            let eth_out = eth_in * (1_000 + gain) / 1_000;
            withdraw_burn(ctx, c, vault, xwin_out * E18, xwin_t.id, eth_out * E18, TokenId::ETH, true)?;
        }
        Ok(())
    })
}

/// 15 — Wault Finance (KRP, invisible to both baselines): six escalating
/// WEX buys and a helper-routed sell; Wault's pools emit no standard
/// trade events.
pub(super) fn wault(world: &mut World) -> ExecutedAttack {
    let wex = world.deploy_token("WEX", 18, 0.3);
    let app = world.scripted_app("Wault Finance", 1)[0];
    world.fund_token(wex.id, app, 10_000_000 * E18);
    world.fund_eth(app, 10_000 * E18);
    aave_eth_attack(world, 15, 5_000, move |ctx, c| {
        // six buys of 500 ETH each at rising prices
        for out in [50_000u128, 45_000, 40_000, 36_000, 33_000, 30_000] {
            direct_swap(ctx, c, app, 500 * E18, TokenId::ETH, out * E18, wex.id)?;
        }
        // sell all 234,000 WEX at the pumped price, via a helper
        let helper = ctx.create_contract(c)?;
        ctx.transfer_token(wex.id, c, helper, 234_000 * E18)?;
        ctx.transfer_token(wex.id, helper, app, 234_000 * E18)?;
        ctx.transfer_eth(app, helper, 3_700 * E18)?;
        ctx.transfer_eth(helper, c, 3_700 * E18)?;
        Ok(())
    })
}

/// 16 — Twindex (no pattern): the visible TWX round-trip loses money (no
/// profitable two-trade shape, no profitable MBS round, SBS rate ordering
/// violated); the actual profit comes from an unpaired KUSD drain.
pub(super) fn twindex(world: &mut World) -> ExecutedAttack {
    let twx = world.deploy_token("TWX", 18, 2.0);
    let kusd = world.deploy_token("KUSD", 18, 1.0);
    let app = world.scripted_app("Twindex", 1)[0];
    world.fund_token(twx.id, app, 1_000_000 * E18);
    world.fund_token(kusd.id, app, 5_000_000 * E18);
    world.fund_eth(app, 5_000 * E18);
    aave_eth_attack(world, 16, 5_000, move |ctx, c| {
        // buy 100k TWX at 0.02 ETH, sell at 0.019 — a visible loss
        direct_swap(ctx, c, app, 2_000 * E18, TokenId::ETH, 100_000 * E18, twx.id)?;
        direct_swap(ctx, c, app, 100_000 * E18, twx.id, 1_900 * E18, TokenId::ETH)?;
        // the real exploit: KUSD drained with nothing flowing back in
        ctx.transfer_token(kusd.id, app, c, 800_000 * E18)?;
        // launder it home as ETH via the app's reserve at fair value
        ctx.transfer_token(kusd.id, c, app, 800_000 * E18)?;
        ctx.transfer_eth(app, c, 400 * E18)?;
        Ok(())
    })
}

/// 17 — AutoShark-2 (SBS on SHARK, invisible to both baselines; the
/// Table I BNB-USDC 7% volatility shows on a side pair).
pub(super) fn autoshark2(world: &mut World) -> ExecutedAttack {
    let shark = world.deploy_token("SHARK", 18, 0.8);
    let app = world.scripted_app("AutoShark", 1)[0];
    world.fund_token(shark.id, app, 10_000_000 * E18);
    world.fund_token(world.usdc.id, app, 5_000_000 * E6);
    world.fund_eth(app, 10_000 * E18);
    let usdc = world.usdc.id;
    aave_eth_attack(world, 17, 5_000, move |ctx, c| {
        let helper_in = ctx.create_contract(c)?;
        let helper_out = ctx.create_contract(c)?;
        // SBS on SHARK: buy @0.01, pump @0.16, symmetric sell @0.03
        routed_swap(ctx, c, helper_in, app, 500 * E18, TokenId::ETH, 50_000 * E18, shark.id)?;
        direct_swap(ctx, c, app, 480 * E18, TokenId::ETH, 3_000 * E18, shark.id)?;
        routed_swap(ctx, c, helper_out, app, 50_000 * E18, shark.id, 1_500 * E18, TokenId::ETH)?;
        // side trades: BNB-USDC moves ~7% (Table I's reported pair),
        // round-tripped at a small loss so no pump/dump shape forms.
        direct_swap(ctx, c, app, 100 * E18, TokenId::ETH, 200_000 * E6, usdc)?;
        direct_swap(ctx, c, app, 200_000 * E6, usdc, 93 * E18, TokenId::ETH)?;
        Ok(())
    })
}

/// 18 — MY FARM PET (no pattern): dump first, re-buy later — the inverse
/// of every pattern's buy-before-sell ordering.
pub(super) fn my_farm_pet(world: &mut World) -> ExecutedAttack {
    let pet = world.deploy_token("MyFarmPET", 18, 0.1);
    let app = world.scripted_app("MY FARM PET", 1)[0];
    world.fund_token(pet.id, app, 10_000_000 * E18);
    world.fund_token(world.dai.id, app, 1_000_000 * E18);
    world.fund_eth(app, 10_000 * E18);
    let dai = world.dai.id;
    aave_dai_attack(world, 18, 2_000_000 * E18, move |ctx, c| {
        // exploit mints PET to the attacker up front
        ctx.mint_token(pet.id, c, 2_000_000 * E18)?;
        // dump high...
        direct_swap(ctx, c, app, 2_000_000 * E18, pet.id, 400_000 * E18, dai)?;
        // ...re-buy a little low (sell-then-buy matches nothing)
        direct_swap(ctx, c, app, 50_000 * E18, dai, 500_000 * E18, pet.id)?;
        Ok(())
    })
}

/// 19 — PancakeHunny (MBS-conforming but untaggable, like JulSwap):
/// deposits mint HUNNY against the untaggable minter `c_in`, withdrawals
/// pay out from the untaggable treasury `c_out` through a helper, so no
/// seller-consistent round ever forms for any detector.
pub(super) fn pancake_hunny(world: &mut World) -> ExecutedAttack {
    let hunny = world.deploy_token("HUNNY", 18, 0.6);
    let (c_in, c_out) = world.conflicted_app("PancakeHunny", "Goose Finance");
    world.fund_token(hunny.id, c_out, 10_000_000 * E18);
    world.fund_eth(c_out, 20_000 * E18);
    aave_eth_attack(world, 19, 5_000, move |ctx, c| {
        let rounds: [(u128, u128, u128); 3] =
            [(400, 20_000, 440), (440, 18_000, 484), (484, 16_000, 532)];
        for (eth_in, hunny_out, eth_out) in rounds {
            // deposit: pay the minter, HUNNY minted to the attacker
            ctx.transfer_eth(c, c_in, eth_in * E18)?;
            ctx.mint_token(hunny.id, c, hunny_out * E18)?;
            // withdraw: burn, treasury pays out through a helper
            let helper = ctx.create_contract(c)?;
            ctx.burn_token(hunny.id, c, hunny_out * E18)?;
            ctx.transfer_eth(c_out, helper, eth_out * E18)?;
            ctx.transfer_eth(helper, c, eth_out * E18)?;
        }
        Ok(())
    })
}

/// 20 — AutoShark-3 (SBS, DeFiRanger-visible): all legs direct against
/// the bank, no events (WBNB-JAWS volatility ~4.7·10³%).
pub(super) fn autoshark3(world: &mut World) -> ExecutedAttack {
    let jaws = world.deploy_token("JAWS", 18, 0.4);
    let app = world.scripted_app("AutoShark", 1)[0];
    world.fund_token(jaws.id, app, 50_000_000 * E18);
    world.fund_eth(app, 20_000 * E18);
    aave_eth_attack(world, 20, 5_000, move |ctx, c| {
        // buy 1M JAWS at 0.001 ETH
        direct_swap(ctx, c, app, 1_000 * E18, TokenId::ETH, 1_000_000 * E18, jaws.id)?;
        // pump to 0.05
        direct_swap(ctx, c, app, 1_500 * E18, TokenId::ETH, 30_000 * E18, jaws.id)?;
        // symmetric sell at 0.004
        direct_swap(ctx, c, app, 1_000_000 * E18, jaws.id, 4_000 * E18, TokenId::ETH)?;
        Ok(())
    })
}

/// 21 — Ploutoz Finance (SBS, DeFiRanger-visible): same shape as
/// AutoShark-3 on DOP (BUSD-DOP volatility ~3.8·10³%).
pub(super) fn ploutoz(world: &mut World) -> ExecutedAttack {
    let dop = world.deploy_token("DOP", 18, 1.2);
    let app = world.scripted_app("Ploutoz Finance", 1)[0];
    world.fund_token(dop.id, app, 50_000_000 * E18);
    world.fund_token(world.dai.id, app, 10_000_000 * E18);
    let dai = world.dai.id;
    aave_dai_attack(world, 21, 3_000_000 * E18, move |ctx, c| {
        direct_swap(ctx, c, app, 100_000 * E18, dai, 200_000 * E18, dop.id)?;
        direct_swap(ctx, c, app, 150_000 * E18, dai, 10_000 * E18, dop.id)?;
        direct_swap(ctx, c, app, 200_000 * E18, dop.id, 700_000 * E18, dai)?;
        Ok(())
    })
}

/// 22 — Saddle Finance (SBS **and** MBS simultaneously — the only Table I
/// attack matching two patterns): three profitable direct rounds whose
/// first buy and last sell are symmetric around the second round's
/// higher-priced buy.
pub(super) fn saddle(world: &mut World) -> ExecutedAttack {
    let saddle_lp = world.deploy_token("saddleUSD", 18, 1.0);
    let app = world.scripted_app("Saddle Finance", 1)[0];
    world.fund_token(saddle_lp.id, app, 10_000_000 * E18);
    world.fund_token(world.susd.id, app, 10_000_000 * E18);
    let susd = world.susd.id;
    let spec22 = spec(22);
    world.chain.seek_date(spec22.date);
    let (attacker, contract) = world.create_attacker("saddle");
    let dydx = world.dydx;
    let dai_loan = 2_000_000 * E18;
    // Borrow sUSD? dYdX holds DAI/ETH/USDC; fund it with sUSD for this one.
    world.fund_token(susd, world.dydx.address, 5_000_000 * E18);
    let tx = world.execute(attacker, contract, "attack", |ctx| {
        dydx.operate(ctx, contract, susd, dai_loan, |ctx| {
            // round 1: buy 100k @1.00, sell @1.10
            direct_swap(ctx, contract, app, 100_000 * E18, susd, 100_000 * E18, saddle_lp.id)?;
            direct_swap(ctx, contract, app, 100_000 * E18, saddle_lp.id, 110_000 * E18, susd)?;
            // round 2: buy 80k @1.60, sell @1.65
            direct_swap(ctx, contract, app, 128_000 * E18, susd, 80_000 * E18, saddle_lp.id)?;
            direct_swap(ctx, contract, app, 80_000 * E18, saddle_lp.id, 132_000 * E18, susd)?;
            // round 3: buy 100k @1.20, sell @1.40 (symmetric with round 1)
            direct_swap(ctx, contract, app, 120_000 * E18, susd, 100_000 * E18, saddle_lp.id)?;
            direct_swap(ctx, contract, app, 100_000 * E18, saddle_lp.id, 140_000 * E18, susd)?;
            ctx.transfer_token(susd, contract, dydx.address, dai_loan + 2)
        })?;
        let bal = ctx.balance(susd, contract);
        ctx.transfer_token(susd, contract, attacker, bal)
    });
    ExecutedAttack {
        spec: spec22,
        tx,
        attacker,
        contract,
    }
}

//! Symmetrical Buying and Selling (SBS) — paper §IV-B2, Fig. 4(b).
//!
//! Three trades: the borrower buys the target in `trade₁`, the price is
//! pumped by a middle buy `trade₂` (possibly executed by an intermediate
//! application at the borrower's direction, as bZx does in bZx-1), and the
//! borrower sells in `trade₃`, subject to:
//!
//! * (a) symmetry: `trade₁.amountBuy = trade₃.amountSell`;
//! * (b) rate ordering: `rate₁ < sellRate₃ < rate₂`;
//! * (c) volatility: `(rate₂ − rate₁)/rate₁ ≥ 28%`.

use crate::config::DetectorConfig;
use crate::patterns::{for_each_pair, PairLegs, PatternKind, PatternMatch};
use crate::tagging::Tag;
use crate::trades::TradeLeg;

/// Detects SBS instances across all token pairs.
pub fn detect(
    legs: &[TradeLeg<'_>],
    borrower: &Tag,
    config: &DetectorConfig,
) -> Vec<PatternMatch> {
    let mut out = Vec::new();
    let mut scratch = crate::patterns::PatternScratch::default();
    for_each_pair(legs, borrower, &mut scratch, |pair, _| {
        let _ = detect_pair(pair, config, &mut out);
    });
    out
}

/// SBS over one pair's leg views — allocation-free until a match.
///
/// Returns `None` when a match was pushed, otherwise the deepest
/// predicate that failed — the provenance layer's "why not".
pub(crate) fn detect_pair(
    pair: &PairLegs<'_, '_, '_>,
    config: &DetectorConfig,
    out: &mut Vec<PatternMatch>,
) -> Option<&'static str> {
    if pair.own_sells.is_empty() {
        return Some("no sell of the target by the borrower");
    }
    if pair.own_buys.is_empty() {
        return Some("no buy of the target by the borrower");
    }
    // Predicate depth reached across all candidate triples; the failure
    // message reports the deepest one.
    let mut depth = 0u8;
    let mut found = false;
    for &t3 in pair.own_sells {
        let t3 = pair.leg(t3);
        if found {
            break;
        }
        for &t1 in pair.own_buys {
            let t1 = pair.leg(t1);
            if found {
                break;
            }
            if t1.seq >= t3.seq {
                continue;
            }
            depth = depth.max(1);
            if !amounts_match(t1.buy_amount, t3.sell_amount, config.sbs_amount_tolerance) {
                continue;
            }
            let (Some(rate1), Some(sell_rate3)) = (t1.buy_rate(), t3.sell_rate()) else {
                continue;
            };
            depth = depth.max(2);
            for &t2 in pair.any_buys {
                let t2 = pair.leg(t2);
                if t2.seq <= t1.seq || t2.seq >= t3.seq {
                    continue;
                }
                let Some(rate2) = t2.buy_rate() else { continue };
                let ordered = rate1 < sell_rate3 && sell_rate3 < rate2;
                let volatility = (rate2 - rate1) / rate1;
                depth = depth.max(if ordered { 4 } else { 3 });
                if ordered && volatility >= config.sbs_min_volatility {
                    out.push(PatternMatch {
                        kind: PatternKind::Sbs,
                        target_token: pair.target,
                        quote_token: pair.quote,
                        trade_seqs: vec![t1.seq, t2.seq, t3.seq],
                        volatility,
                        counterparty: t1.seller.to_string(),
                    });
                    found = true; // one instance per pair
                    break;
                }
            }
        }
    }
    if found {
        return None;
    }
    Some(match depth {
        0 => "no buy preceding a sell",
        1 => "no symmetric buy/sell amounts within tolerance",
        2 => "no pump trade between the symmetric legs",
        3 => "rate ordering violated",
        _ => "volatility below sbs_min_volatility",
    })
}

fn amounts_match(a: u128, b: u128, tolerance: f64) -> bool {
    if a == b {
        return true;
    }
    if a == 0 || b == 0 {
        return false;
    }
    let hi = a.max(b) as f64;
    let lo = a.min(b) as f64;
    (hi - lo) / hi <= tolerance
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::all_legs;
    use crate::patterns::testutil::{app, buy, sell, tk};
    use crate::trades::Trade;

    /// bZx-1 shape: buy 112 WBTC @49.1, bZx pumps @110.5, sell 112 @61.3.
    /// Token 0 = ETH (quote), token 1 = WBTC (target).
    fn bzx1_trades(borrower: &Tag) -> Vec<Trade> {
        let compound = app("Compound");
        let bzx = app("bZx");
        let uni = app("Uniswap");
        vec![
            buy(0, borrower, &compound, 5_500_000, 0, 112_000, 1), // 49.1 ETH/WBTC
            buy(1, &bzx, &uni, 5_637_000, 0, 51_000, 1),           // 110.5 — the pump
            sell(2, borrower, &uni, 112_000, 1, 6_871_000, 0),     // 61.3
        ]
    }

    #[test]
    fn detects_bzx1() {
        let e = app("root:E");
        let trades = bzx1_trades(&e);
        let legs = all_legs(&trades);
        let matches = detect(&legs, &e, &DetectorConfig::default());
        assert_eq!(matches.len(), 1);
        let m = &matches[0];
        assert_eq!(m.kind, PatternKind::Sbs);
        assert_eq!(m.target_token, tk(1));
        assert_eq!(m.quote_token, tk(0));
        assert_eq!(m.trade_seqs, vec![0, 1, 2]);
        // (110.5 - 49.1)/49.1 ≈ 125%
        assert!((m.volatility - 1.25).abs() < 0.02, "{}", m.volatility);
    }

    #[test]
    fn symmetry_condition_is_enforced() {
        let e = app("E");
        let mut trades = bzx1_trades(&e);
        // Sell a different amount than bought: 90 instead of 112.
        trades[2] = sell(2, &e, &app("Uniswap"), 90_000, 1, 5_500_000, 0);
        assert!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn small_tolerance_admits_dust() {
        let e = app("E");
        let mut trades = bzx1_trades(&e);
        // 0.05% less than bought — inside the 0.1% tolerance.
        trades[2] = sell(2, &e, &app("Uniswap"), 111_950, 1, 6_868_000, 0);
        assert_eq!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).len(), 1);
    }

    #[test]
    fn volatility_threshold_is_enforced() {
        let e = app("E");
        let compound = app("Compound");
        let bzx = app("bZx");
        let uni = app("Uniswap");
        // Pump of only ~12%: 49.1 -> 55.0 (< 28%).
        let trades = vec![
            buy(0, &e, &compound, 4_910_000, 0, 100_000, 1),
            buy(1, &bzx, &uni, 550_000, 0, 10_000, 1),
            sell(2, &e, &uni, 100_000, 1, 5_200_000, 0),
        ];
        assert!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).is_empty());
        // Relaxed config (10%) accepts it.
        assert_eq!(
            detect(&all_legs(&trades), &e, &DetectorConfig::relaxed()).len(),
            1
        );
    }

    #[test]
    fn rate_ordering_is_enforced() {
        let e = app("E");
        let compound = app("Compound");
        let bzx = app("bZx");
        let uni = app("Uniswap");
        // Sell rate ABOVE the pump rate: 49.1 < 120 but 120 > 110.5 pump.
        let trades = vec![
            buy(0, &e, &compound, 4_910_000, 0, 100_000, 1),
            buy(1, &bzx, &uni, 11_050_000, 0, 100_000, 1),
            sell(2, &e, &uni, 100_000, 1, 12_000_000, 0),
        ];
        assert!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn trade_order_must_be_buy_pump_sell() {
        let e = app("E");
        let mut trades = bzx1_trades(&e);
        // Move the pump after the sell.
        trades[1].seq = 5;
        assert!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn borrower_must_own_the_symmetric_legs() {
        let e = app("E");
        let other = app("Other");
        let trades = bzx1_trades(&other);
        assert!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn pump_by_borrower_itself_also_matches() {
        let e = app("E");
        let compound = app("Compound");
        let uni = app("Uniswap");
        let trades = vec![
            buy(0, &e, &compound, 5_500_000, 0, 112_000, 1),
            buy(1, &e, &uni, 5_637_000, 0, 51_000, 1),
            sell(2, &e, &uni, 112_000, 1, 6_871_000, 0),
        ];
        assert_eq!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).len(), 1);
    }

    #[test]
    fn amounts_match_edges() {
        assert!(amounts_match(100, 100, 0.0));
        assert!(amounts_match(100_000, 99_950, 0.001));
        assert!(!amounts_match(100_000, 99_000, 0.001));
        assert!(!amounts_match(0, 5, 0.5));
        assert!(amounts_match(0, 0, 0.0));
    }
}

//! Transactions, execution traces, and receipts.
//!
//! A [`TxRecord`] is what "replaying a transaction in the modified Geth"
//! yields in the paper: the full ordered trace of transfers, logs and call
//! frames, plus metadata (initiator, entry contract, block). LeiShen
//! consumes `TxRecord`s directly.

use serde::{Deserialize, Serialize};

use crate::address::Address;
use crate::frame::CallFrame;
use crate::log::EventLog;
use crate::transfer::Transfer;

/// Identifier of an executed transaction (its global execution index).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TxId(pub u64);

impl std::fmt::Display for TxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tx#{}", self.0)
    }
}

/// Outcome of transaction execution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxStatus {
    /// The transaction committed; all its effects are in the world state.
    Success,
    /// The transaction reverted; the world state was rolled back atomically.
    /// The string carries the revert reason.
    Reverted(String),
}

impl TxStatus {
    /// Whether the transaction committed.
    pub fn is_success(&self) -> bool {
        matches!(self, TxStatus::Success)
    }
}

/// The ordered execution trace of one transaction.
///
/// All three streams share a single `seq` counter, so interleaving between
/// native transfers, token transfers, logs and calls is fully recoverable —
/// the property the paper's Geth modification exists to provide.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxTrace {
    /// Account-level asset transfers in happened-before order.
    pub transfers: Vec<Transfer>,
    /// Event logs in emission order.
    pub logs: Vec<EventLog>,
    /// Call frames in entry order.
    pub frames: Vec<CallFrame>,
    /// Contracts created during the transaction, in creation order.
    pub created: Vec<Address>,
}

impl TxTrace {
    /// Number of recorded actions across all streams.
    pub fn len(&self) -> usize {
        self.transfers.len() + self.logs.len() + self.frames.len()
    }

    /// Whether the trace recorded no actions at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the names of all invoked functions, in call order.
    pub fn function_names(&self) -> impl Iterator<Item = &str> {
        self.frames.iter().map(|f| f.function.as_str())
    }

    /// Whether some frame invoked `function` on `callee`.
    pub fn called(&self, callee: Address, function: &str) -> bool {
        self.frames
            .iter()
            .any(|f| f.callee == callee && f.function == function)
    }

    /// Whether some log named `name` was emitted by `emitter`.
    pub fn emitted(&self, emitter: Address, name: &str) -> bool {
        self.logs
            .iter()
            .any(|l| l.emitter == emitter && l.name == name)
    }
}

/// A fully executed transaction: metadata plus trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxRecord {
    /// Global transaction id.
    pub id: TxId,
    /// Block number the transaction was included in.
    pub block: u64,
    /// Unix timestamp of that block.
    pub timestamp: u64,
    /// The externally owned account that initiated the transaction.
    pub from: Address,
    /// The entry-point contract (or EOA for simple transfers).
    pub to: Address,
    /// Name of the externally invoked function.
    pub function: String,
    /// Commit/revert outcome.
    pub status: TxStatus,
    /// Ordered execution trace.
    pub trace: TxTrace,
}

impl TxRecord {
    /// The transaction initiator — in an attack this is the attacker's EOA;
    /// the flash-loan *borrower* contract is usually `self.to` or a contract
    /// it created (paper Fig. 2).
    pub fn initiator(&self) -> Address {
        self.from
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenId;

    #[test]
    fn status_helpers() {
        assert!(TxStatus::Success.is_success());
        assert!(!TxStatus::Reverted("r".into()).is_success());
    }

    #[test]
    fn trace_queries() {
        let a = Address::from_u64(1);
        let b = Address::from_u64(2);
        let mut trace = TxTrace::default();
        assert!(trace.is_empty());
        trace.frames.push(CallFrame {
            seq: 0,
            depth: 0,
            caller: a,
            callee: b,
            function: "swap".into(),
            value: 0,
        });
        trace.logs.push(EventLog {
            seq: 1,
            emitter: b,
            name: "Swap".into(),
            params: vec![],
        });
        trace.transfers.push(Transfer {
            seq: 2,
            sender: a,
            receiver: b,
            amount: 5,
            token: TokenId::ETH,
        });
        assert_eq!(trace.len(), 3);
        assert!(trace.called(b, "swap"));
        assert!(!trace.called(a, "swap"));
        assert!(trace.emitted(b, "Swap"));
        assert!(!trace.emitted(b, "Mint"));
        assert_eq!(trace.function_names().collect::<Vec<_>>(), vec!["swap"]);
    }
}

//! DeFiRanger-style detection (Wu et al., compared in paper Table IV).
//!
//! DeFiRanger lifts raw **account-level** transfers into DeFi actions and
//! matches two-trade price-manipulation patterns. Two structural
//! weaknesses, both named by the LeiShen paper, are reproduced here:
//!
//! 1. **No application-level conversion** — counterparties are raw
//!    addresses. A trade whose legs pass through an intermediary (router,
//!    margin desk) never forms, because the in/out transfers do not share
//!    one counterparty address pair.
//! 2. **Two-trade patterns only** — one buy and one later sell of the same
//!    token by the same account at a higher price. Batched buying (bZx-2's
//!    18 buys, KRP generally) is not modeled as a series; it is only
//!    caught if a *single* buy/sell pair happens to satisfy the pump/dump
//!    relation, and symmetric/multi-round structure is ignored.

use ethsim::{Address, TxRecord};
use leishen::flashloan::identify_flash_loans;
use leishen::tagging::{Tag, TaggedTransfer};
use leishen::trades::{identify_trades, Trade};

/// Minimum relative price gain between buy and sell for DeFiRanger to call
/// a pump/dump (prunes fee-level arbitrage noise; vault attacks like
/// Harvest gain ~0.5% per round and must stay detectable).
const MIN_GAIN: f64 = 0.001;

/// The DeFiRanger baseline detector.
#[derive(Clone, Copy, Debug, Default)]
pub struct DefiRanger;

/// A DeFiRanger detection: the pumped token and the two trades.
#[derive(Clone, Debug, PartialEq)]
pub struct RangerFinding {
    /// Account that bought low and sold high.
    pub actor: Address,
    /// Token bought low / sold high.
    pub token: ethsim::TokenId,
    /// Buy price (quote per target).
    pub buy_rate: f64,
    /// Sell price.
    pub sell_rate: f64,
}

impl DefiRanger {
    /// Creates the detector.
    pub fn new() -> Self {
        DefiRanger
    }

    /// Lifts account-level transfers to trades *without tagging*: every
    /// address stands for itself.
    pub fn account_level_trades(tx: &TxRecord) -> Vec<Trade> {
        let tagged: Vec<TaggedTransfer> = tx
            .trace
            .transfers
            .iter()
            .map(|t| TaggedTransfer {
                seq: t.seq,
                sender: addr_tag(t.sender),
                receiver: addr_tag(t.receiver),
                amount: t.amount,
                token: t.token,
            })
            .collect();
        identify_trades(&tagged)
    }

    /// Runs detection on one transaction. Only flash-loan transactions are
    /// considered (DeFiRanger targets price manipulation broadly, but the
    /// comparison corpus is flash-loan transactions).
    pub fn detect(&self, tx: &TxRecord) -> Vec<RangerFinding> {
        if !tx.status.is_success() {
            return Vec::new();
        }
        let loans = identify_flash_loans(tx);
        if loans.is_empty() {
            return Vec::new();
        }
        // The flash-borrowed assets are the *quote* side of a pump/dump;
        // price-manipulation findings target some other token.
        let borrowed: Vec<_> = loans.iter().filter_map(|l| l.token).collect();
        let trades = Self::account_level_trades(tx);
        let mut findings = Vec::new();
        // Two-trade pattern: some account buys X then later sells X at a
        // higher price (same quote token).
        let legs: Vec<_> = trades.iter().flat_map(Trade::views).collect();
        for buy in &legs {
            if borrowed.contains(&buy.buy_token) {
                continue;
            }
            let Some(buy_rate) = buy.buy_rate() else { continue };
            let Tag::Root(actor) = buy.buyer else { continue };
            for sell in &legs {
                if sell.seq <= buy.seq
                    || sell.buyer != buy.buyer
                    || sell.sell_token != buy.buy_token
                    || sell.buy_token != buy.sell_token
                {
                    continue;
                }
                let Some(sell_rate) = sell.sell_rate() else { continue };
                if sell_rate > buy_rate * (1.0 + MIN_GAIN) {
                    let finding = RangerFinding {
                        actor: *actor,
                        token: buy.buy_token,
                        buy_rate,
                        sell_rate,
                    };
                    if !findings.contains(&finding) {
                        findings.push(finding);
                    }
                }
            }
        }
        findings
    }

    /// Convenience: does DeFiRanger flag this transaction at all?
    pub fn is_attack(&self, tx: &TxRecord) -> bool {
        !self.detect(tx).is_empty()
    }
}

fn addr_tag(a: Address) -> Tag {
    if a.is_zero() {
        Tag::BlackHole
    } else {
        Tag::Root(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{Chain, ChainConfig, TokenId};

    /// Builds a tx with a Uniswap-style flash loan plus a body.
    fn flash_tx(
        body: impl FnOnce(&mut ethsim::TxContext<'_>, Address, Address) -> ethsim::Result<()>,
    ) -> TxRecord {
        let mut chain = Chain::new(ChainConfig::default());
        let attacker = chain.create_eoa("attacker");
        let lender = chain.create_eoa("lender-pair");
        chain.state_mut().credit_eth(lender, 1_000_000).unwrap();
        chain.state_mut().credit_eth(attacker, 10_000).unwrap();
        let tx = chain
            .execute(attacker, lender, "attack", |ctx| {
                ctx.call(attacker, lender, "swap", 0, |ctx| {
                    ctx.transfer_eth(lender, attacker, 100_000)?;
                    ctx.call(lender, attacker, "uniswapV2Call", 0, |ctx| {
                        body(ctx, attacker, lender)
                    })?;
                    ctx.transfer_eth(attacker, lender, 100_301)?;
                    Ok(())
                })
            })
            .unwrap();
        chain.replay(tx).unwrap().clone()
    }

    #[test]
    fn direct_pump_dump_is_detected() {
        let mut chain = Chain::new(ChainConfig::default());
        let deployer = chain.create_eoa("d");
        let mut tokx = None;
        chain
            .execute(deployer, deployer, "t", |ctx| {
                let c = ctx.create_contract(deployer)?;
                tokx = Some(ctx.register_token("X", 18, c));
                Ok(())
            })
            .unwrap();
        let x = tokx.unwrap();
        let victim = chain.create_eoa("victim");
        chain.state_mut().credit_eth(victim, 10_000_000).unwrap();
        let attacker = chain.create_eoa("attacker");
        let lender = chain.create_eoa("lender");
        chain.state_mut().credit_eth(lender, 1_000_000).unwrap();
        chain.state_mut().credit_eth(attacker, 10_000).unwrap();
        chain
            .execute(deployer, deployer, "fund", |ctx| {
                ctx.mint_token(x, victim, 1_000_000)?;
                Ok(())
            })
            .unwrap();
        let tx = chain
            .execute(attacker, lender, "attack", |ctx| {
                ctx.call(attacker, lender, "swap", 0, |ctx| {
                    ctx.transfer_eth(lender, attacker, 100_000)?;
                    ctx.call(lender, attacker, "uniswapV2Call", 0, |ctx| {
                        // buy 100 X for 1000 ETH (rate 10), sell for 2000 (rate 20)
                        ctx.transfer_eth(attacker, victim, 1_000)?;
                        ctx.transfer_token(x, victim, attacker, 100)?;
                        ctx.transfer_token(x, attacker, victim, 100)?;
                        ctx.transfer_eth(victim, attacker, 2_000)?;
                        Ok(())
                    })?;
                    ctx.transfer_eth(attacker, lender, 100_301)?;
                    Ok(())
                })
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap().clone();
        let findings = DefiRanger::new().detect(&rec);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].token, x);
        assert!(findings[0].sell_rate > findings[0].buy_rate);
    }

    #[test]
    fn intermediary_hop_breaks_detection() {
        // Same economics, but the sell leg goes through a router address:
        // attacker -> router -> victim. Account-level windows never pair
        // the attacker's X-out with the victim's ETH-in.
        let rec = flash_tx(|ctx, attacker, _lender| {
            let deployer = attacker; // reuse as token authority
            let c = ctx.create_contract(deployer)?;
            let x = ctx.register_token("X", 18, c);
            let victim = Address::from_seed("victim2");
            ctx.state(); // no-op read
            ctx.mint_token(x, victim, 1_000_000)?;
            // fund victim with ETH for the payout
            // (mint via credit is unavailable inside tx; use lender's ETH)
            ctx.transfer_eth(attacker, victim, 5_000)?;
            let router = Address::from_seed("router");
            // buy direct (adjacent pair)
            ctx.transfer_eth(attacker, victim, 1_000)?;
            ctx.transfer_token(x, victim, attacker, 100)?;
            // sell through the router: X goes attacker->router->victim,
            // ETH comes victim->router->attacker.
            ctx.transfer_token(x, attacker, router, 100)?;
            ctx.transfer_token(x, router, victim, 100)?;
            ctx.transfer_eth(victim, router, 2_000)?;
            ctx.transfer_eth(router, attacker, 1_999)?;
            Ok(())
        });
        assert!(rec.status.is_success(), "{:?}", rec.status);
        assert!(
            DefiRanger::new().detect(&rec).is_empty(),
            "router hop must hide the sell from account-level analysis"
        );
    }

    #[test]
    fn non_flash_loan_is_ignored() {
        let mut chain = Chain::new(ChainConfig::default());
        let a = chain.create_eoa("a");
        chain.state_mut().credit_eth(a, 100).unwrap();
        let b = chain.create_eoa("b");
        let tx = chain
            .execute(a, b, "send", |ctx| ctx.transfer_eth(a, b, 10))
            .unwrap();
        let rec = chain.replay(tx).unwrap().clone();
        assert!(!DefiRanger::new().is_attack(&rec));
        let _ = TokenId::ETH;
    }

    #[test]
    fn unprofitable_round_trip_is_not_flagged() {
        let rec = flash_tx(|ctx, attacker, _| {
            let c = ctx.create_contract(attacker)?;
            let x = ctx.register_token("X", 18, c);
            let victim = Address::from_seed("victim3");
            ctx.mint_token(x, victim, 1_000)?;
            ctx.transfer_eth(attacker, victim, 2_000)?;
            // buy at 20, sell at 19 — a loss
            ctx.transfer_eth(attacker, victim, 2_000)?;
            ctx.transfer_token(x, victim, attacker, 100)?;
            ctx.transfer_token(x, attacker, victim, 100)?;
            ctx.transfer_eth(victim, attacker, 1_900)?;
            Ok(())
        });
        assert!(!DefiRanger::new().is_attack(&rec));
    }
}

//! Input-corruption generators for chaos campaigns.
//!
//! Each generator takes a *genuine* [`TxRecord`] produced by `ethsim` and
//! breaks exactly one of the invariants [`ethsim::validate_record`]
//! checks, modelling the journal damage a real collector sees: truncated
//! feeds, reordered writes, impossible call nesting, overflowed amounts,
//! and log entries pointing past the end of the journal. The resilient
//! scan must quarantine every corrupted record with a machine-readable
//! reason while leaving clean records untouched — corruption is
//! per-transaction, so the mapping from [`FaultPlan`]
//! assignments to mutated records is position-stable and seed-deterministic.
//!
//! Not every corruption applies to every transaction (a trace with a
//! single transfer cannot have its seqs shuffled). [`corrupt`] reports
//! applicability, and [`apply_input_faults`] falls back through the other
//! fault kinds so a planned corruption is only dropped when *no* kind
//! applies — and then says so in its return value instead of silently
//! shrinking the campaign.

use ethsim::{TxRecord, MAX_AMOUNT};
use leishen::resilience::{InputFault, PlannedFault};

/// Attempts to apply `fault` to `tx`, returning whether the record was
/// actually mutated. A `false` return leaves `tx` untouched.
pub fn corrupt(tx: &mut TxRecord, fault: InputFault) -> bool {
    let trace_len = tx.trace.len() as u32;
    match fault {
        InputFault::TruncatedJournal => {
            // Drop a journal entry that is not the final action, leaving
            // a hole in the shared seq space (SeqGap).
            let Some(pos) = tx
                .trace
                .transfers
                .iter()
                .position(|t| t.seq + 1 < trace_len)
            else {
                return false;
            };
            tx.trace.transfers.remove(pos);
            true
        }
        InputFault::ShuffledSeqs => {
            // Swap two transfer seqs: the transfer stream is no longer
            // monotonic but the seq *set* is unchanged (NonMonotonicSeq,
            // and only that).
            if tx.trace.transfers.len() < 2 {
                return false;
            }
            let a = tx.trace.transfers[0].seq;
            let b = tx.trace.transfers[1].seq;
            tx.trace.transfers[0].seq = b;
            tx.trace.transfers[1].seq = a;
            true
        }
        InputFault::CyclicFrames => {
            // An impossible call tree: either a non-zero root depth or a
            // frame that enters more than one level below its
            // predecessor (RootFrameDepth / DepthJump).
            match tx.trace.frames.len() {
                0 => false,
                1 => {
                    tx.trace.frames[0].depth = 3;
                    true
                }
                n => {
                    tx.trace.frames[n - 1].depth = tx.trace.frames[n - 2].depth + 2;
                    true
                }
            }
        }
        InputFault::OverflowAmount => {
            let Some(t) = tx.trace.transfers.first_mut() else {
                return false;
            };
            t.amount = MAX_AMOUNT;
            true
        }
        InputFault::DanglingLog => {
            // Point the last log past the end of the journal: its seq
            // references an action that was never recorded (SeqGap on
            // the missing index). Mutating the *last* log keeps the log
            // stream monotonic, so exactly one invariant breaks.
            let Some(l) = tx.trace.logs.last_mut() else {
                return false;
            };
            l.seq = trace_len + 7;
            true
        }
    }
}

/// Applies the input-fault half of a [`FaultPlan`] assignment to a corpus.
///
/// `plan[i]` corrupts `txs[i]`; induced (stage-level) faults are ignored
/// here — they are wired into a
/// [`FaultInjector`](leishen::resilience::FaultInjector) by the caller.
/// When the planned kind does not apply to the record, the other kinds
/// are tried in [`InputFault::ALL`] order starting after the planned one,
/// so a planned corruption is only dropped when the record supports none.
///
/// Returns, per position, the fault kind actually applied (`None` for
/// clean, induced-fault, or inapplicable positions) — the campaign's
/// ground truth for which records must be quarantined.
pub fn apply_input_faults(
    txs: &mut [TxRecord],
    plan: &[Option<PlannedFault>],
) -> Vec<Option<InputFault>> {
    let mut applied = vec![None; txs.len()];
    for (i, slot) in plan.iter().enumerate().take(txs.len()) {
        let Some(PlannedFault::Input(kind)) = slot else {
            continue;
        };
        let start = InputFault::ALL
            .iter()
            .position(|f| f == kind)
            .unwrap_or(0);
        for offset in 0..InputFault::ALL.len() {
            let candidate = InputFault::ALL[(start + offset) % InputFault::ALL.len()];
            if corrupt(&mut txs[i], candidate) {
                applied[i] = Some(candidate);
                break;
            }
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{validate_record, Chain};
    use leishen::resilience::FaultPlan;

    fn sample() -> Vec<TxRecord> {
        let mut chain = Chain::default();
        let a = chain.create_eoa("chaos-a");
        let b = chain.create_eoa("chaos-b");
        chain.state_mut().credit_eth(a, 1_000_000).unwrap();
        chain
            .execute(a, a, "setup", |ctx| {
                let c = ctx.create_contract(a)?;
                let tok = ctx.register_token("CHAOS", 18, c);
                ctx.mint_token(tok, a, 1_000_000)?;
                Ok(())
            })
            .unwrap();
        let tok = chain.state().token_by_symbol("CHAOS").unwrap();
        for i in 0..6u128 {
            chain
                .execute(a, b, "pay", move |ctx| {
                    ctx.call(a, b, "pay", 5 + i, |inner| {
                        inner.transfer_token(tok, a, b, 50 + i)?;
                        inner.transfer_token(tok, a, b, 51 + i)?;
                        inner.emit_log(b, "Paid", vec![]);
                        Ok(())
                    })
                })
                .unwrap();
        }
        chain.transactions().to_vec()
    }

    #[test]
    fn every_fault_kind_breaks_validation_on_a_rich_record() {
        let records = sample();
        let rich = &records[records.len() - 1];
        assert!(validate_record(rich).is_empty(), "fixture must start clean");
        for kind in InputFault::ALL {
            let mut tx = rich.clone();
            assert!(corrupt(&mut tx, kind), "{} must apply", kind.name());
            let violations = validate_record(&tx);
            assert!(
                !violations.is_empty(),
                "{} must break validation",
                kind.name()
            );
        }
    }

    #[test]
    fn corruption_is_detected_not_assumed() {
        // Each kind produces a *different* violation family on the same
        // record — they are distinct damage models, not five spellings
        // of one bug.
        let records = sample();
        let rich = &records[records.len() - 1];
        let mut codes = Vec::new();
        for kind in InputFault::ALL {
            let mut tx = rich.clone();
            corrupt(&mut tx, kind);
            let violations = validate_record(&tx);
            codes.push(violations[0].code());
        }
        codes.sort_unstable();
        codes.dedup();
        assert!(codes.len() >= 4, "expected diverse violations, got {codes:?}");
    }

    #[test]
    fn inapplicable_faults_leave_the_record_clean() {
        let records = sample();
        // The setup transaction has no transfers to shuffle.
        let setup = records
            .iter()
            .find(|t| t.trace.transfers.len() < 2)
            .cloned();
        if let Some(tx) = setup {
            let mut mutated = tx.clone();
            if !corrupt(&mut mutated, InputFault::ShuffledSeqs) {
                assert_eq!(mutated, tx, "failed corruption must not mutate");
            }
        }
    }

    #[test]
    fn apply_input_faults_reports_exactly_the_corrupted_positions() {
        let mut records = sample();
        let plan = FaultPlan::inputs_only(7, 500).assign(records.len());
        let clean = records.clone();
        let applied = apply_input_faults(&mut records, &plan);
        assert_eq!(applied.len(), records.len());
        for (i, kind) in applied.iter().enumerate() {
            match kind {
                Some(_) => assert!(
                    !validate_record(&records[i]).is_empty(),
                    "position {i} reported corrupted but validates clean"
                ),
                None => assert_eq!(records[i], clean[i], "position {i} mutated silently"),
            }
        }
        assert!(
            applied.iter().any(Option::is_some),
            "a 50% plan over {} txs should corrupt something",
            records.len()
        );
    }
}

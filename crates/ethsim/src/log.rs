//! Event logs emitted by contracts during execution.
//!
//! Flash-loan transactions are identified partly by their event logs
//! (paper Table II: AAVE's `FlashLoan`, dYdX's `LogOperation`/`LogWithdraw`/
//! `LogCall`/`LogDeposit`). Logs carry a small typed parameter list instead
//! of ABI-encoded topics; the detector only ever matches on the event name,
//! the emitter, and coarse parameters, which this representation preserves.

use serde::{Deserialize, Serialize};

use crate::address::Address;
use crate::token::TokenId;

/// A typed event-log parameter value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogValue {
    /// An account address.
    Addr(Address),
    /// A raw token amount.
    Amount(u128),
    /// A token identifier.
    Token(TokenId),
    /// Free-form text (used sparingly, e.g. action names).
    Text(String),
}

impl LogValue {
    /// Returns the address if this value is an [`LogValue::Addr`].
    pub fn as_addr(&self) -> Option<Address> {
        match self {
            LogValue::Addr(a) => Some(*a),
            _ => None,
        }
    }

    /// Returns the amount if this value is an [`LogValue::Amount`].
    pub fn as_amount(&self) -> Option<u128> {
        match self {
            LogValue::Amount(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the token if this value is a [`LogValue::Token`].
    pub fn as_token(&self) -> Option<TokenId> {
        match self {
            LogValue::Token(t) => Some(*t),
            _ => None,
        }
    }
}

/// One emitted event log.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventLog {
    /// Position in the transaction's unified action stream (shared ordering
    /// with transfers and call frames).
    pub seq: u32,
    /// Contract that emitted the log.
    pub emitter: Address,
    /// Event name, e.g. `"FlashLoan"` or `"Swap"`.
    pub name: String,
    /// Named parameters in declaration order.
    pub params: Vec<(String, LogValue)>,
}

impl EventLog {
    /// Looks up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&LogValue> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_lookup() {
        let log = EventLog {
            seq: 3,
            emitter: Address::from_u64(9),
            name: "FlashLoan".into(),
            params: vec![
                ("target".into(), LogValue::Addr(Address::from_u64(1))),
                ("amount".into(), LogValue::Amount(500)),
                ("asset".into(), LogValue::Token(TokenId::ETH)),
            ],
        };
        assert_eq!(log.param("amount").and_then(LogValue::as_amount), Some(500));
        assert_eq!(
            log.param("target").and_then(LogValue::as_addr),
            Some(Address::from_u64(1))
        );
        assert_eq!(
            log.param("asset").and_then(LogValue::as_token),
            Some(TokenId::ETH)
        );
        assert!(log.param("missing").is_none());
        assert!(log.param("amount").unwrap().as_addr().is_none());
    }
}

//! Bench-regression gate: fresh `BENCH_scan.json` / `BENCH_obs.json`
//! against the committed baselines.
//!
//! ```sh
//! cargo run -p leishen-bench --release --bin bench_diff -- \
//!     --baseline-scan baseline_scan.json --baseline-obs baseline_obs.json
//! ```
//!
//! Fails (exit 1) when:
//!
//! * throughput regresses by more than `--max-regression-pct` (default
//!   25%) — compared on absolute `tx_per_sec` when the two runs measured
//!   the same corpus (seed, scale, transaction count), and on the
//!   scale-free `speedup` fields otherwise (CI smoke runs use a smaller
//!   corpus than the committed full-run baselines);
//! * `speedup_at_4_workers` falls below `--min-speedup-at-4` (default
//!   3.5) — checked on the committed baseline always, and on the fresh
//!   run too when the corpora match (a smoke run over a different corpus
//!   is not held to the full-run floor);
//! * the telemetry sink's sampled overhead exceeds
//!   `--max-sink-overhead-pct` (default 5%).
//!
//! Setup problems get their own exit codes so CI logs distinguish "the
//! baseline was never stashed" from "the baseline is corrupt": exit 2 for
//! a missing/unreadable file, exit 3 for one that does not parse as JSON.
//!
//! Exit 2 also covers the `scaling_monotonic` gate: a sweep whose
//! 8-worker throughput falls below its own 2-worker throughput by more
//! than `--scaling-tolerance-pct` (default 10%) indicates the sweep
//! itself is broken — a scheduling inversion, not a gradual regression —
//! and is reported as a setup-class failure. Like the speedup floor, it
//! judges the committed baseline always and the fresh run only when the
//! corpora match: a tiny CI smoke sweep on a saturated host measures the
//! same collapsed code path at every worker count, where inversions are
//! pure timer noise. The tolerance absorbs the residual noise of real
//! full-scale runs.
//!
//! Both JSON files are parsed with the dependency-free
//! `leishen::trace::json` parser — the same one the provenance importer
//! uses — so the gate needs nothing beyond the workspace.

use std::process::ExitCode;

use leishen::trace::json::{parse, Json};
use leishen_bench::{cli_f64, cli_str};

/// Why a benchmark document could not be loaded — missing file and
/// malformed content are different operator errors and carry different
/// exit codes.
#[derive(Debug)]
enum LoadError {
    /// The file could not be read at all (never stashed, wrong path).
    Missing(String),
    /// The file was read but is not valid JSON (truncated, corrupt).
    Malformed(String),
}

impl LoadError {
    /// The process exit code this error maps to: 2 missing, 3 malformed
    /// (1 stays reserved for genuine benchmark regressions).
    fn exit_code(&self) -> u8 {
        match self {
            LoadError::Missing(_) => 2,
            LoadError::Malformed(_) => 3,
        }
    }

    fn message(&self) -> &str {
        match self {
            LoadError::Missing(m) | LoadError::Malformed(m) => m,
        }
    }
}

fn try_load(path: &str) -> Result<Json, LoadError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        LoadError::Missing(format!(
            "bench_diff: missing baseline or fresh file {path}: {e}"
        ))
    })?;
    parse(&text).map_err(|e| {
        LoadError::Malformed(format!(
            "bench_diff: malformed JSON in {path}: {e}"
        ))
    })
}

fn load(path: &str) -> Json {
    match try_load(path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{}", e.message());
            std::process::exit(e.exit_code().into());
        }
    }
}

fn f64_at(doc: &Json, path: &[&str], file: &str) -> f64 {
    let mut cur = doc;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("{file}: missing field {}", path.join(".")));
    }
    cur.as_f64()
        .unwrap_or_else(|| panic!("{file}: {} is not a number", path.join(".")))
}

/// Whether two runs measured the same corpus and are therefore comparable
/// on absolute throughput.
fn same_corpus(a: &Json, b: &Json) -> bool {
    let key = |d: &Json| {
        let c = d.get("corpus")?;
        Some((
            c.get("seed")?.as_u64()?,
            c.get("scale")?.as_f64()?.to_bits(),
            c.get("transactions")?.as_u64()?,
        ))
    };
    matches!((key(a), key(b)), (Some(x), Some(y)) if x == y)
}

/// One throughput comparison; appends a violation when `fresh` falls more
/// than `max_drop_pct` below `base`.
fn check_drop(
    what: &str,
    base: f64,
    fresh: f64,
    max_drop_pct: f64,
    violations: &mut Vec<String>,
) {
    let change_pct = (fresh / base.max(1e-12) - 1.0) * 100.0;
    let verdict = if change_pct < -max_drop_pct { "FAIL" } else { "ok" };
    println!("  {verdict:<4} {what}: baseline {base:.1}, fresh {fresh:.1} ({change_pct:+.1}%)");
    if change_pct < -max_drop_pct {
        violations.push(format!(
            "{what} regressed {:.1}% (limit {max_drop_pct}%)",
            -change_pct
        ));
    }
}

/// The scheduled-engine worker sweep `(workers, tx_per_sec)` rows of a
/// scan document. Rows without a `mode` field (pre-sweep baselines)
/// count as scheduled.
fn sweep_rows(doc: &Json, file: &str) -> Vec<(u64, f64)> {
    doc.get("parallel")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{file}: missing parallel[]"))
        .iter()
        .filter(|r| r.get("mode").and_then(Json::as_str).is_none_or(|m| m == "scheduled"))
        .filter_map(|r| Some((r.get("workers")?.as_u64()?, r.get("tx_per_sec")?.as_f64()?)))
        .collect()
}

/// The `scaling_monotonic` gate: scaling a scheduled scan from 2 to 8
/// workers must never *lose* throughput (beyond `tolerance_pct` of timer
/// noise). Returns the violation message, if any; `None` when either row
/// is absent (smoke runs sweep fewer worker counts).
fn scaling_violation(rows: &[(u64, f64)], tolerance_pct: f64) -> Option<String> {
    let at = |w: u64| rows.iter().find(|(rw, _)| *rw == w).map(|(_, tps)| *tps);
    let (two, eight) = (at(2)?, at(8)?);
    let floor = two * (1.0 - tolerance_pct / 100.0);
    (eight < floor).then(|| {
        format!(
            "scaling not monotonic: 8-worker {eight:.1} tx/s < 2-worker {two:.1} tx/s \
             (tolerance {tolerance_pct}%)"
        )
    })
}

fn main() -> ExitCode {
    let max_drop = cli_f64("--max-regression-pct", 25.0);
    let max_sink = cli_f64("--max-sink-overhead-pct", 5.0);
    let scaling_tolerance = cli_f64("--scaling-tolerance-pct", 10.0);
    let min_speedup_at_4 = cli_f64("--min-speedup-at-4", 3.5);
    let base_scan_path = cli_str("--baseline-scan", "baseline_scan.json");
    let base_obs_path = cli_str("--baseline-obs", "baseline_obs.json");
    let fresh_scan_path = cli_str("--fresh-scan", "BENCH_scan.json");
    let fresh_obs_path = cli_str("--fresh-obs", "BENCH_obs.json");

    let base_scan = load(&base_scan_path);
    let fresh_scan = load(&fresh_scan_path);
    let base_obs = load(&base_obs_path);
    let fresh_obs = load(&fresh_obs_path);
    let mut violations = Vec::new();

    // ----- scan throughput -------------------------------------------------
    if same_corpus(&base_scan, &fresh_scan) {
        println!("scan: corpora match — comparing absolute throughput");
        check_drop(
            "serial tx/s",
            f64_at(&base_scan, &["serial", "tx_per_sec"], &base_scan_path),
            f64_at(&fresh_scan, &["serial", "tx_per_sec"], &fresh_scan_path),
            max_drop,
            &mut violations,
        );
        let base_rows = sweep_rows(&base_scan, &base_scan_path);
        let fresh_rows = sweep_rows(&fresh_scan, &fresh_scan_path);
        for (w, base_tps) in &base_rows {
            if let Some((_, fresh_tps)) = fresh_rows.iter().find(|(fw, _)| fw == w) {
                check_drop(
                    &format!("{w}-worker tx/s"),
                    *base_tps,
                    *fresh_tps,
                    max_drop,
                    &mut violations,
                );
            }
        }
    } else {
        println!("scan: corpora differ — comparing scale-free speedup");
        check_drop(
            "speedup at 4 workers",
            f64_at(&base_scan, &["speedup_at_4_workers"], &base_scan_path),
            f64_at(&fresh_scan, &["speedup_at_4_workers"], &fresh_scan_path),
            max_drop,
            &mut violations,
        );
    }

    // ----- scan: worker-scaling gates --------------------------------------
    // The speedup floor holds the committed full-run baseline to the
    // scheduler's contract; the fresh run is only held to it when it
    // measured the same corpus (CI smoke corpora are tiny and noisy).
    for (doc, path, gated) in [
        (&base_scan, &base_scan_path, true),
        (&fresh_scan, &fresh_scan_path, same_corpus(&base_scan, &fresh_scan)),
    ] {
        if !gated {
            continue;
        }
        let speedup = f64_at(doc, &["speedup_at_4_workers"], path);
        let verdict = if speedup < min_speedup_at_4 { "FAIL" } else { "ok" };
        println!(
            "  {verdict:<4} {path} speedup at 4 workers: {speedup:.2}× (floor {min_speedup_at_4}×)"
        );
        if speedup < min_speedup_at_4 {
            violations.push(format!(
                "{path}: speedup_at_4_workers {speedup:.2} below floor {min_speedup_at_4}"
            ));
        }
        if let Some(message) = scaling_violation(&sweep_rows(doc, path), scaling_tolerance) {
            eprintln!("bench_diff: {path}: {message}");
            return ExitCode::from(2);
        }
        println!(
            "  ok   {path} scaling monotonic (8-worker ≥ 2-worker within {scaling_tolerance}%)"
        );
    }

    // ----- obs: sink overhead ----------------------------------------------
    if same_corpus(&base_obs, &fresh_obs) {
        println!("obs: corpora match — comparing absolute noop throughput");
        check_drop(
            "noop tx/s",
            f64_at(&base_obs, &["sink_overhead", "noop_tx_per_sec"], &base_obs_path),
            f64_at(&fresh_obs, &["sink_overhead", "noop_tx_per_sec"], &fresh_obs_path),
            max_drop,
            &mut violations,
        );
    }
    let overhead = f64_at(&fresh_obs, &["sink_overhead", "overhead_pct"], &fresh_obs_path);
    let verdict = if overhead > max_sink { "FAIL" } else { "ok" };
    println!("  {verdict:<4} sampled sink overhead: {overhead:+.2}% (limit {max_sink}%)");
    if overhead > max_sink {
        violations.push(format!(
            "sampled sink overhead {overhead:.2}% exceeds {max_sink}%"
        ));
    }

    // ----- chaos: survival and recall-under-faults (opt-in) ----------------
    // The chaos gate only arms when a baseline is named: the plain CI
    // `test` job invocation keeps its historical argument list.
    let base_chaos_path = cli_str("--baseline-chaos", "");
    if !base_chaos_path.is_empty() {
        let fresh_chaos_path = cli_str("--fresh-chaos", "BENCH_chaos.json");
        let base_chaos = load(&base_chaos_path);
        let fresh_chaos = load(&fresh_chaos_path);
        println!("chaos: survival + recall under injected faults");

        let survival = f64_at(&fresh_chaos, &["survival_rate"], &fresh_chaos_path);
        let verdict = if survival < 1.0 { "FAIL" } else { "ok" };
        println!("  {verdict:<4} survival rate: {survival:.4} (must be 1.0)");
        if survival < 1.0 {
            violations.push(format!("chaos survival rate {survival:.4} < 1.0"));
        }

        let base_recall = f64_at(&base_chaos, &["recall_clean"], &base_chaos_path);
        let fresh_recall = f64_at(&fresh_chaos, &["recall_clean"], &fresh_chaos_path);
        let verdict = if fresh_recall < base_recall { "FAIL" } else { "ok" };
        println!(
            "  {verdict:<4} recall on uncorrupted txs: baseline {base_recall:.4}, fresh {fresh_recall:.4}"
        );
        if fresh_recall < base_recall {
            violations.push(format!(
                "chaos recall under faults dropped: {fresh_recall:.4} < baseline {base_recall:.4}"
            ));
        }

        let chaos_violations = f64_at(&fresh_chaos, &["violations"], &fresh_chaos_path);
        let verdict = if chaos_violations > 0.0 { "FAIL" } else { "ok" };
        println!("  {verdict:<4} campaign violations: {chaos_violations:.0} (must be 0)");
        if chaos_violations > 0.0 {
            violations.push(format!(
                "chaos campaign recorded {chaos_violations:.0} violation(s)"
            ));
        }
    }

    // ----- stream: sustained throughput + batch≡stream (opt-in) ------------
    // Like the chaos gate, this only arms when a baseline is named, so
    // existing invocations keep their argument lists.
    let base_stream_path = cli_str("--baseline-stream", "");
    if !base_stream_path.is_empty() {
        let fresh_stream_path = cli_str("--fresh-stream", "BENCH_stream.json");
        let base_stream = load(&base_stream_path);
        let fresh_stream = load(&fresh_stream_path);
        println!("stream: sustained rate + batch≡stream equivalence");

        // The equivalence flags are the stream bin's own assertion that
        // its verdicts matched a one-shot batch scan; a fresh run that
        // did not (or could not) record them must not pass the gate.
        for field in ["verdicts_match", "quarantines_match"] {
            let held = fresh_stream
                .get("equivalence")
                .and_then(|e| e.get(field))
                .and_then(Json::as_bool)
                .unwrap_or(false);
            let verdict = if held { "ok" } else { "FAIL" };
            println!("  {verdict:<4} equivalence.{field}: {held}");
            if !held {
                violations.push(format!("stream equivalence.{field} is not true"));
            }
        }

        // Sustained throughput compares like the scan gate: absolute
        // when the corpora match, skipped otherwise (a smoke run over a
        // different corpus says nothing about the full-run rate). The
        // p99 gets triple the throughput tolerance — tail latency under
        // a firehose producer is queueing-dominated and noisy.
        if same_corpus(&base_stream, &fresh_stream) {
            check_drop(
                "sustained stream tx/s",
                f64_at(&base_stream, &["sustained_tx_per_sec"], &base_stream_path),
                f64_at(&fresh_stream, &["sustained_tx_per_sec"], &fresh_stream_path),
                max_drop,
                &mut violations,
            );
            let base_p99 = f64_at(&base_stream, &["p99_latency_us"], &base_stream_path);
            let fresh_p99 = f64_at(&fresh_stream, &["p99_latency_us"], &fresh_stream_path);
            let limit = max_drop * 3.0;
            let growth_pct = (fresh_p99 / base_p99.max(1e-12) - 1.0) * 100.0;
            let verdict = if growth_pct > limit { "FAIL" } else { "ok" };
            println!(
                "  {verdict:<4} p99 verdict latency: baseline {base_p99:.1}µs, \
                 fresh {fresh_p99:.1}µs ({growth_pct:+.1}%)"
            );
            if growth_pct > limit {
                violations.push(format!(
                    "stream p99 latency grew {growth_pct:.1}% (limit {limit}%)"
                ));
            }
        } else {
            println!("  skip corpora differ — absolute stream rates not comparable");
        }
    }

    if violations.is_empty() {
        println!("\nbench_diff: no regressions");
        ExitCode::SUCCESS
    } else {
        println!("\nbench_diff: {} violation(s):", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_file_maps_to_exit_code_2() {
        let err = try_load("/nonexistent/bench_diff_no_such_file.json")
            .expect_err("path does not exist");
        assert!(matches!(err, LoadError::Missing(_)), "{err:?}");
        assert_eq!(err.exit_code(), 2);
        assert!(err.message().contains("missing"), "{}", err.message());
        assert!(
            err.message().contains("bench_diff_no_such_file.json"),
            "message names the offending path: {}",
            err.message()
        );
    }

    #[test]
    fn malformed_file_maps_to_exit_code_3() {
        let dir = std::env::temp_dir();
        let path = dir.join("bench_diff_malformed_test.json");
        std::fs::write(&path, "{\"bench\": ").expect("write fixture");
        let err = try_load(path.to_str().unwrap()).expect_err("file is truncated JSON");
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, LoadError::Malformed(_)), "{err:?}");
        assert_eq!(err.exit_code(), 3);
        assert!(err.message().contains("malformed"), "{}", err.message());
    }

    #[test]
    fn scaling_gate_trips_only_beyond_tolerance() {
        // 8-worker dead even with 2-worker: fine.
        let flat = [(2, 1000.0), (4, 1800.0), (8, 1000.0)];
        assert_eq!(scaling_violation(&flat, 10.0), None);
        // Within tolerance: noise, not an inversion.
        let noisy = [(2, 1000.0), (8, 950.0)];
        assert_eq!(scaling_violation(&noisy, 10.0), None);
        // A real inversion trips the gate…
        let inverted = [(2, 1000.0), (8, 600.0)];
        let message = scaling_violation(&inverted, 10.0).expect("inversion detected");
        assert!(message.contains("not monotonic"), "{message}");
        // …and a sweep missing either endpoint cannot be judged.
        assert_eq!(scaling_violation(&[(2, 1000.0)], 10.0), None);
        assert_eq!(scaling_violation(&[(8, 600.0)], 10.0), None);
        assert_eq!(scaling_violation(&[], 10.0), None);
    }

    #[test]
    fn sweep_rows_keep_scheduled_and_unlabeled_rows_only() {
        let doc = parse(
            r#"{"parallel": [
                {"workers": 2, "tx_per_sec": 10.0},
                {"workers": 4, "mode": "scheduled", "tx_per_sec": 20.0},
                {"workers": 4, "mode": "naive", "tx_per_sec": 15.0}
            ]}"#,
        )
        .expect("fixture parses");
        assert_eq!(sweep_rows(&doc, "fixture"), vec![(2, 10.0), (4, 20.0)]);
    }

    #[test]
    fn well_formed_file_loads() {
        let dir = std::env::temp_dir();
        let path = dir.join("bench_diff_wellformed_test.json");
        std::fs::write(&path, "{\"bench\": \"scan\"}").expect("write fixture");
        let doc = try_load(path.to_str().unwrap()).expect("valid JSON loads");
        std::fs::remove_file(&path).ok();
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("scan"));
    }
}

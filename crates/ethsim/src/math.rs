//! Overflow-checked amount arithmetic.
//!
//! Ledger amounts are `u128` raw units, but AMM invariants multiply two
//! ledger amounts (e.g. the constant product `x * y` of a Uniswap V2 pool
//! holding `1e22` wei of ETH and `1e13` units of USDC), which overflows
//! `u128`. This module provides [`mul_div`] with a full 256-bit intermediate,
//! plus checked helpers and an integer square root used by LP-share minting.

use crate::error::SimError;
use crate::Result;

/// Computes `a * b / d` with a 256-bit intermediate product, flooring.
///
/// # Errors
/// Returns [`SimError::DivisionByZero`] when `d == 0` and
/// [`SimError::Overflow`] when the final quotient does not fit in `u128`.
///
/// ```
/// # use ethsim::math::mul_div;
/// // 1e30 * 1e30 / 1e30 = 1e30 — the intermediate product needs 200 bits.
/// let e30 = 10u128.pow(30);
/// assert_eq!(mul_div(e30, e30, e30).unwrap(), e30);
/// ```
pub fn mul_div(a: u128, b: u128, d: u128) -> Result<u128> {
    if d == 0 {
        return Err(SimError::DivisionByZero);
    }
    let (hi, lo) = mul_u128(a, b);
    div_256_by_128(hi, lo, d)
}

/// Computes `a * b / d`, rounding the quotient up.
///
/// Used by fee math where the protocol rounds in its own favour.
///
/// # Errors
/// Same as [`mul_div`].
pub fn mul_div_ceil(a: u128, b: u128, d: u128) -> Result<u128> {
    if d == 0 {
        return Err(SimError::DivisionByZero);
    }
    let floor = mul_div(a, b, d)?;
    let (hi, lo) = mul_u128(a, b);
    // Remainder check: a*b - floor*d == 0 ?
    let (fhi, flo) = mul_u128(floor, d);
    if fhi == hi && flo == lo {
        Ok(floor)
    } else {
        floor.checked_add(1).ok_or(SimError::Overflow)
    }
}

/// Checked addition that maps overflow to [`SimError::Overflow`].
///
/// # Errors
/// Returns [`SimError::Overflow`] if `a + b` exceeds `u128::MAX`.
pub fn add(a: u128, b: u128) -> Result<u128> {
    a.checked_add(b).ok_or(SimError::Overflow)
}

/// Checked subtraction that maps underflow to [`SimError::Overflow`].
///
/// # Errors
/// Returns [`SimError::Overflow`] if `b > a`.
pub fn sub(a: u128, b: u128) -> Result<u128> {
    a.checked_sub(b).ok_or(SimError::Overflow)
}

/// Checked multiplication that maps overflow to [`SimError::Overflow`].
///
/// # Errors
/// Returns [`SimError::Overflow`] if `a * b` exceeds `u128::MAX`.
pub fn mul(a: u128, b: u128) -> Result<u128> {
    a.checked_mul(b).ok_or(SimError::Overflow)
}

/// Floor of the square root of `a * b`, computed with a 256-bit intermediate.
///
/// Uniswap V2 mints `sqrt(amount0 * amount1)` LP shares on first liquidity
/// provision; both amounts can be ~1e22, so the product needs 256 bits.
pub fn sqrt_mul(a: u128, b: u128) -> u128 {
    let (hi, lo) = mul_u128(a, b);
    if hi == 0 {
        return isqrt(lo);
    }
    // Newton's method on the 256-bit value using a u128 estimate.
    // Initial guess: sqrt(hi) << 64 is >= true root / 2.
    let mut x = (isqrt(hi).saturating_add(1)) << 64;
    if x == 0 {
        x = u128::MAX;
    }
    // Iterate x = (x + n/x) / 2 where n/x is a 256/128 division.
    for _ in 0..64 {
        let q = div_256_by_128(hi, lo, x).unwrap_or(u128::MAX);
        let nx = (x >> 1) + (q >> 1) + (x & q & 1);
        if nx >= x {
            break;
        }
        x = nx;
    }
    // x may overshoot by one; correct downwards.
    while {
        let (xh, xl) = mul_u128(x, x);
        xh > hi || (xh == hi && xl > lo)
    } {
        x -= 1;
    }
    x
}

/// Integer square root of a `u128`.
pub fn isqrt(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    let mut x = 1u128 << ((128 - n.leading_zeros()).div_ceil(2));
    loop {
        let nx = (x + n / x) >> 1;
        if nx >= x {
            break;
        }
        x = nx;
    }
    x
}

/// Full 128×128 → 256-bit multiplication, returning `(hi, lo)` limbs.
fn mul_u128(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);

    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;

    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let lo = (mid << 64) | (ll & MASK);
    let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

/// Divides the 256-bit value `(hi, lo)` by `d`, erroring when the quotient
/// does not fit in a `u128`.
fn div_256_by_128(hi: u128, lo: u128, d: u128) -> Result<u128> {
    if d == 0 {
        return Err(SimError::DivisionByZero);
    }
    if hi == 0 {
        return Ok(lo / d);
    }
    if hi >= d {
        // Quotient would need more than 128 bits.
        return Err(SimError::Overflow);
    }
    // Bit-by-bit long division on (hi, lo); 256 iterations worst case but
    // hi < d guarantees the quotient fits.
    let mut rem: u128 = hi;
    let mut q: u128 = 0;
    for i in (0..128).rev() {
        let bit = (lo >> i) & 1;
        let carry = rem >> 127;
        rem = (rem << 1) | bit;
        q <<= 1;
        if carry == 1 || rem >= d {
            rem = rem.wrapping_sub(d);
            q |= 1;
        }
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_div_small() {
        assert_eq!(mul_div(6, 7, 2).unwrap(), 21);
        assert_eq!(mul_div(0, 7, 2).unwrap(), 0);
        assert_eq!(mul_div(7, 3, 2).unwrap(), 10); // floors
    }

    #[test]
    fn mul_div_ceil_rounds_up() {
        assert_eq!(mul_div_ceil(7, 3, 2).unwrap(), 11);
        assert_eq!(mul_div_ceil(6, 4, 2).unwrap(), 12); // exact stays exact
    }

    #[test]
    fn mul_div_large_intermediate() {
        let e30 = 10u128.pow(30);
        assert_eq!(mul_div(e30, e30, e30).unwrap(), e30);
        let x = u128::MAX;
        assert_eq!(mul_div(x, x, x).unwrap(), x);
        assert_eq!(mul_div(x, 1_000_000, 1_000_000).unwrap(), x);
    }

    #[test]
    fn mul_div_errors() {
        assert!(matches!(mul_div(1, 1, 0), Err(SimError::DivisionByZero)));
        assert!(matches!(
            mul_div(u128::MAX, u128::MAX, 1),
            Err(SimError::Overflow)
        ));
    }

    #[test]
    fn checked_helpers() {
        assert_eq!(add(1, 2).unwrap(), 3);
        assert!(add(u128::MAX, 1).is_err());
        assert_eq!(sub(5, 2).unwrap(), 3);
        assert!(sub(2, 5).is_err());
        assert_eq!(mul(3, 4).unwrap(), 12);
        assert!(mul(u128::MAX, 2).is_err());
    }

    #[test]
    fn isqrt_basics() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(3), 1);
        assert_eq!(isqrt(4), 2);
        assert_eq!(isqrt(99), 9);
        assert_eq!(isqrt(100), 10);
        let big = u128::MAX;
        let r = isqrt(big);
        assert!(r * r <= big);
        assert!((r + 1).checked_mul(r + 1).map(|v| v > big).unwrap_or(true));
    }

    #[test]
    fn sqrt_mul_matches_isqrt_for_small() {
        assert_eq!(sqrt_mul(4, 9), 6);
        assert_eq!(sqrt_mul(2, 2), 2);
        assert_eq!(sqrt_mul(0, 12345), 0);
    }

    #[test]
    fn sqrt_mul_large() {
        // (1e22)^2 -> 1e22
        let e22 = 10u128.pow(22);
        assert_eq!(sqrt_mul(e22, e22), e22);
        // verify floor property on a non-square
        let a = 10u128.pow(25) + 7;
        let b = 10u128.pow(23) + 11;
        let r = sqrt_mul(a, b);
        let (h1, l1) = super::mul_u128(r, r);
        let (h2, l2) = super::mul_u128(a, b);
        assert!(h1 < h2 || (h1 == h2 && l1 <= l2), "floor property");
        let r1 = r + 1;
        let (h3, l3) = super::mul_u128(r1, r1);
        assert!(h3 > h2 || (h3 == h2 && l3 > l2), "tightness");
    }

    #[test]
    fn div_256_matches_native_when_hi_zero() {
        assert_eq!(div_256_by_128(0, 1000, 7).unwrap(), 142);
    }

    #[test]
    fn mul_u128_known_values() {
        assert_eq!(mul_u128(0, u128::MAX), (0, 0));
        assert_eq!(mul_u128(1, u128::MAX), (0, u128::MAX));
        assert_eq!(mul_u128(2, u128::MAX), (1, u128::MAX - 1));
        let (hi, lo) = mul_u128(1u128 << 127, 4);
        assert_eq!((hi, lo), (2, 0));
    }
}

//! Explorer+LeiShen (paper §VI-B, Table IV column 4).
//!
//! Etherscan and BscScan expose "transaction actions" — trades extracted
//! from **event logs**. Feeding those trades into LeiShen's pattern
//! matchers yields the paper's Explorer+LeiShen baseline. Its accuracy is
//! low "due to the reason that the two explorers extract trade actions from
//! event logs. However, some DeFi applications do not implement trade
//! events in their smart contracts" — lending markets, margin desks and
//! many vaults are invisible here.

use ethsim::{Address, TxRecord};
use leishen::config::DetectorConfig;
use leishen::flashloan::identify_flash_loans;
use leishen::patterns::{match_all, PatternMatch};
use leishen::tagging::Tag;
use leishen::trades::{Trade, TradeKind, TradeSide};

/// The Explorer+LeiShen baseline.
#[derive(Clone, Debug, Default)]
pub struct ExplorerLeiShen {
    config: DetectorConfig,
}

impl ExplorerLeiShen {
    /// Creates the baseline with LeiShen's thresholds.
    pub fn new(config: DetectorConfig) -> Self {
        ExplorerLeiShen { config }
    }

    /// Extracts explorer-visible trades from event logs. Recognized
    /// schemas are the DEX swap events our protocol suite emits
    /// (`Swap`, `LOG_SWAP`, `TokenExchange`) and vault share
    /// deposits/withdrawals (`Deposit`/`Withdraw` with share amounts);
    /// anything else — lending, margin, custom bonding curves — yields no
    /// action, exactly like the real explorers' partial coverage.
    ///
    /// Explorer "transaction actions" are attributed to the **transaction
    /// initiator** (the page shows "swap X for Y", not which internal
    /// contract traded), so every extracted trade's buyer is `tx.from`.
    pub fn trades_from_logs(tx: &TxRecord) -> Vec<Trade> {
        let mut out = Vec::new();
        let initiator = addr_tag(tx.from);
        for log in &tx.trace.logs {
            let (in_amt, in_tok, out_amt, out_tok) = match log.name.as_str() {
                "Swap" => ("amountIn", "tokenIn", "amountOut", "tokenOut"),
                "LOG_SWAP" => ("tokenAmountIn", "tokenIn", "tokenAmountOut", "tokenOut"),
                "TokenExchange" => ("amountIn", "tokenIn", "amountOut", "tokenOut"),
                _ => {
                    if let Some(trade) = vault_action(log, &initiator) {
                        out.push(trade);
                    }
                    continue;
                }
            };
            let amount_in = log.param(in_amt).and_then(|v| v.as_amount());
            let token_in = log.param(in_tok).and_then(|v| v.as_token());
            let amount_out = log.param(out_amt).and_then(|v| v.as_amount());
            let token_out = log.param(out_tok).and_then(|v| v.as_token());
            let (Some(ai), Some(ti), Some(ao), Some(to)) =
                (amount_in, token_in, amount_out, token_out)
            else {
                continue;
            };
            out.push(Trade {
                seq: log.seq,
                kind: TradeKind::Swap,
                buyer: initiator.clone(),
                seller: addr_tag(log.emitter),
                sells: TradeSide::one(ai, ti),
                buys: TradeSide::one(ao, to),
            });
        }
        out
    }

    /// Runs LeiShen's pattern matchers over the log-derived trades.
    pub fn detect(&self, tx: &TxRecord) -> Vec<PatternMatch> {
        if !tx.status.is_success() {
            return Vec::new();
        }
        let loans = identify_flash_loans(tx);
        if loans.is_empty() {
            return Vec::new();
        }
        let trades = Self::trades_from_logs(tx);
        let mut matches = Vec::new();
        let mut borrowers: Vec<Tag> = loans.iter().map(|l| addr_tag(l.borrower)).collect();
        borrowers.push(addr_tag(tx.from));
        borrowers.dedup();
        for b in &borrowers {
            for m in match_all(&trades, b, &self.config) {
                if !matches.contains(&m) {
                    matches.push(m);
                }
            }
        }
        matches
    }

    /// Whether the baseline flags the transaction.
    pub fn is_attack(&self, tx: &TxRecord) -> bool {
        !self.detect(tx).is_empty()
    }
}

fn addr_tag(a: Address) -> Tag {
    if a.is_zero() {
        Tag::BlackHole
    } else {
        Tag::Root(a)
    }
}

/// Parses vault share `Deposit`/`Withdraw` events that carry full token
/// context (underlying + share token). Events without token parameters —
/// e.g. WETH's `Deposit` — are skipped.
fn vault_action(log: &ethsim::EventLog, initiator: &Tag) -> Option<Trade> {
    let is_deposit = match log.name.as_str() {
        "Deposit" => true,
        "Withdraw" => false,
        _ => return None,
    };
    let amount = log.param("amount").and_then(|v| v.as_amount())?;
    let shares = log.param("shares").and_then(|v| v.as_amount())?;
    let underlying = log.param("underlying").and_then(|v| v.as_token())?;
    let share_token = log.param("shareToken").and_then(|v| v.as_token())?;
    let (sells, buys) = if is_deposit {
        (
            TradeSide::one(amount, underlying),
            TradeSide::one(shares, share_token),
        )
    } else {
        (
            TradeSide::one(shares, share_token),
            TradeSide::one(amount, underlying),
        )
    };
    Some(Trade {
        seq: log.seq,
        kind: if is_deposit {
            TradeKind::MintLiquidity
        } else {
            TradeKind::RemoveLiquidity
        },
        buyer: initiator.clone(),
        seller: addr_tag(log.emitter),
        sells,
        buys,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{Chain, ChainConfig, LogValue, TokenId};

    #[test]
    fn extracts_swap_events_only() {
        let mut chain = Chain::new(ChainConfig::default());
        let trader = chain.create_eoa("trader");
        let pool = chain.create_eoa("pool");
        let tx = chain
            .execute(trader, pool, "trade", |ctx| {
                ctx.emit_log(
                    pool,
                    "Swap",
                    vec![
                        ("sender".into(), LogValue::Addr(trader)),
                        ("tokenIn".into(), LogValue::Token(TokenId::ETH)),
                        ("amountIn".into(), LogValue::Amount(100)),
                        ("tokenOut".into(), LogValue::Token(TokenId::from_index(1))),
                        ("amountOut".into(), LogValue::Amount(50)),
                    ],
                );
                // a lending event the explorer does not understand
                ctx.emit_log(pool, "Borrow", vec![]);
                Ok(())
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        let trades = ExplorerLeiShen::trades_from_logs(rec);
        assert_eq!(trades.len(), 1);
        assert_eq!(trades[0].sells, vec![(100, TokenId::ETH)]);
        assert_eq!(trades[0].buys, vec![(50, TokenId::from_index(1))]);
        assert_eq!(trades[0].buyer, Tag::Root(trader));
    }

    #[test]
    fn krp_over_swap_events_is_detected() {
        // A bZx-2-like series executed directly on an event-emitting pool.
        let mut chain = Chain::new(ChainConfig::default());
        let attacker = chain.create_eoa("attacker");
        let lender = chain.create_eoa("lender");
        let pool = chain.create_eoa("pool");
        chain.state_mut().credit_eth(lender, 1_000_000).unwrap();
        chain.state_mut().credit_eth(attacker, 10_000).unwrap();
        let susd = TokenId::from_index(1);
        let tx = chain
            .execute(attacker, lender, "attack", |ctx| {
                ctx.call(attacker, lender, "swap", 0, |ctx| {
                    ctx.transfer_eth(lender, attacker, 100_000)?;
                    ctx.call(lender, attacker, "uniswapV2Call", 0, |ctx| {
                        for i in 0..6u128 {
                            ctx.emit_log(
                                pool,
                                "Swap",
                                vec![
                                    ("sender".into(), LogValue::Addr(attacker)),
                                    ("tokenIn".into(), LogValue::Token(TokenId::ETH)),
                                    ("amountIn".into(), LogValue::Amount(20_000)),
                                    ("tokenOut".into(), LogValue::Token(susd)),
                                    ("amountOut".into(), LogValue::Amount(5_000 - 300 * i)),
                                ],
                            );
                        }
                        // sell everything back at the pumped price
                        ctx.emit_log(
                            pool,
                            "Swap",
                            vec![
                                ("sender".into(), LogValue::Addr(attacker)),
                                ("tokenIn".into(), LogValue::Token(susd)),
                                ("amountIn".into(), LogValue::Amount(25_500)),
                                ("tokenOut".into(), LogValue::Token(TokenId::ETH)),
                                ("amountOut".into(), LogValue::Amount(150_000)),
                            ],
                        );
                        Ok(())
                    })?;
                    ctx.transfer_eth(attacker, lender, 100_301)?;
                    Ok(())
                })
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        let baseline = ExplorerLeiShen::new(DetectorConfig::default());
        let matches = baseline.detect(rec);
        assert!(
            matches
                .iter()
                .any(|m| m.kind == leishen::patterns::PatternKind::Krp),
            "{matches:?}"
        );
    }

    #[test]
    fn eventless_protocols_are_invisible() {
        // Same economics as a detectable attack, but the protocol emits no
        // trade events (like a lending market): nothing to match.
        let mut chain = Chain::new(ChainConfig::default());
        let attacker = chain.create_eoa("attacker");
        let lender = chain.create_eoa("lender");
        chain.state_mut().credit_eth(lender, 1_000_000).unwrap();
        let tx = chain
            .execute(attacker, lender, "attack", |ctx| {
                ctx.call(attacker, lender, "swap", 0, |ctx| {
                    ctx.transfer_eth(lender, attacker, 100_000)?;
                    ctx.call(lender, attacker, "uniswapV2Call", 0, |ctx| {
                        ctx.emit_log(lender, "Borrow", vec![]);
                        Ok(())
                    })?;
                    ctx.transfer_eth(attacker, lender, 100_301)?;
                    Ok(())
                })
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        assert!(!ExplorerLeiShen::default().is_attack(rec));
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! `#[derive(Serialize)]` here generates a *real* field-visiting impl —
//! structs drive `serialize_struct`/`serialize_field`, enums dispatch to
//! the unit/newtype/tuple/struct variant methods — so integration tests
//! that count visited primitives observe the same traversal upstream
//! serde_derive would produce. `#[derive(Deserialize)]` emits the marker
//! impl for the vendored serde's method-less `Deserialize` trait.
//!
//! The parser is hand-rolled over `proc_macro::TokenStream` (no `syn`
//! offline). Supported input surface: non-generic structs and enums
//! without `#[serde(...)]` attributes — exactly what this workspace
//! derives. Unsupported shapes fail the build with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant.
enum Fields {
    Unit,
    Named(Vec<String>),
    Unnamed(usize),
}

/// Parsed derive input.
enum Input {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, fields } => gen_struct_serialize(name, fields),
        Input::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("serde stub derive emitted invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_input(input) {
        Input::Struct { name, .. } | Input::Enum { name, .. } => name,
    };
    format!("impl<'de> ::serde::de::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde stub derive emitted invalid Rust")
}

// ---- code generation --------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("__serializer.serialize_unit_struct(\"{name}\")"),
        Fields::Unnamed(1) => {
            format!("__serializer.serialize_newtype_struct(\"{name}\", &self.0)")
        }
        Fields::Unnamed(n) => {
            let mut s = format!(
                "let mut __state = ::serde::ser::Serializer::serialize_tuple_struct(\
                 __serializer, \"{name}\", {n})?;\n"
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{i})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeTupleStruct::end(__state)");
            s
        }
        Fields::Named(names) => {
            let mut s = format!(
                "let mut __state = ::serde::ser::Serializer::serialize_struct(\
                 __serializer, \"{name}\", {})?;\n",
                names.len()
            );
            for f in names {
                s.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{f}\", &self.{f})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeStruct::end(__state)");
            s
        }
    };
    wrap_serialize_impl(name, &body)
}

fn gen_enum_serialize(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (idx, (vname, fields)) in variants.iter().enumerate() {
        let arm = match fields {
            Fields::Unit => format!(
                "{name}::{vname} => __serializer.serialize_unit_variant(\"{name}\", {idx}u32, \"{vname}\"),\n"
            ),
            Fields::Unnamed(1) => format!(
                "{name}::{vname}(__f0) => __serializer.serialize_newtype_variant(\
                 \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
            ),
            Fields::Unnamed(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let mut s = format!("{name}::{vname}({}) => {{\n", binds.join(", "));
                s.push_str(&format!(
                    "let mut __state = ::serde::ser::Serializer::serialize_tuple_variant(\
                     __serializer, \"{name}\", {idx}u32, \"{vname}\", {n})?;\n"
                ));
                for b in &binds {
                    s.push_str(&format!(
                        "::serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {b})?;\n"
                    ));
                }
                s.push_str("::serde::ser::SerializeTupleVariant::end(__state)\n}\n");
                s
            }
            Fields::Named(fnames) => {
                let mut s = format!("{name}::{vname} {{ {} }} => {{\n", fnames.join(", "));
                s.push_str(&format!(
                    "let mut __state = ::serde::ser::Serializer::serialize_struct_variant(\
                     __serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                    fnames.len()
                ));
                for f in fnames {
                    s.push_str(&format!(
                        "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{f}\", {f})?;\n"
                    ));
                }
                s.push_str("::serde::ser::SerializeStructVariant::end(__state)\n}\n");
                s
            }
        };
        arms.push_str(&arm);
    }
    let body = if variants.is_empty() {
        "match *self {}".to_string()
    } else {
        format!("match self {{\n{arms}}}")
    };
    wrap_serialize_impl(name, &body)
}

fn wrap_serialize_impl(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(\
                 &self, __serializer: __S\
             ) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

// ---- token parsing ----------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // outer attribute: `#` followed by a bracket group
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next();
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                let is_struct = id.to_string() == "struct";
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde stub derive: expected type name, got {other:?}"),
                };
                if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    panic!("serde stub derive: generic type `{name}` is not supported");
                }
                return if is_struct {
                    let fields = match iter.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Fields::Named(parse_named_fields(g.stream()))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            Fields::Unnamed(count_tuple_fields(g.stream()))
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                        other => {
                            panic!("serde stub derive: unsupported struct body for `{name}`: {other:?}")
                        }
                    };
                    Input::Struct { name, fields }
                } else {
                    let variants = match iter.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            parse_variants(g.stream())
                        }
                        other => {
                            panic!("serde stub derive: unsupported enum body for `{name}`: {other:?}")
                        }
                    };
                    Input::Enum { name, variants }
                };
            }
            // visibility paths like `pub(crate)` handled above; anything
            // else before the keyword (e.g. `union`) is unsupported
            TokenTree::Ident(id) if id.to_string() == "union" => {
                panic!("serde stub derive: unions are not supported");
            }
            _ => {}
        }
    }
    panic!("serde stub derive: no struct or enum found in input");
}

/// Field names of a named-field body, skipping attributes, visibility,
/// and full type expressions (angle-bracket depth tracked so generic
/// arguments containing commas don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next();
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                skip_until_top_level_comma(&mut iter);
            }
            other => panic!("serde stub derive: unexpected token in fields: {other:?}"),
        }
    }
    fields
}

/// Number of fields in a tuple-struct/tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i64;
    let mut in_segment = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if in_segment {
                    count += 1;
                }
                in_segment = false;
            }
            _ => in_segment = true,
        }
    }
    if in_segment {
        count += 1;
    }
    count
}

/// Enum variants with their field layouts.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                let fields = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        iter.next();
                        Fields::Unnamed(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let names = parse_named_fields(g.stream());
                        iter.next();
                        Fields::Named(names)
                    }
                    _ => Fields::Unit,
                };
                // consume an optional discriminant up to the separating comma
                skip_until_top_level_comma(&mut iter);
                variants.push((name, fields));
            }
            other => panic!("serde stub derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

/// Advances past a type or discriminant expression to the next top-level
/// comma (angle brackets tracked; groups arrive as single tokens).
fn skip_until_top_level_comma(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth = 0i64;
    for tt in iter.by_ref() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
    }
}

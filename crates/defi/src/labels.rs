//! The account label service — our Etherscan label cloud.
//!
//! The paper collects 52,500 tagged accounts of 119 DeFi applications from
//! Etherscan and observes that accounts related by creation share the same
//! application tag (§V-B1). In this reproduction, protocol deployments
//! register labels for their *publicly known* accounts (deployer EOAs,
//! factories, main pools); scenario worlds deliberately leave most pool
//! contracts unlabeled so LeiShen's tagging algorithm has the same work to
//! do as on mainnet.

use std::collections::HashMap;

use ethsim::Address;
use serde::{Deserialize, Serialize};

/// Well-known application names used across the suite. Plain strings are
/// accepted everywhere; these constants just prevent typos.
pub mod apps {
    /// Uniswap (DEX + flash-loan provider).
    pub const UNISWAP: &str = "Uniswap";
    /// AAVE lending pool (flash-loan provider).
    pub const AAVE: &str = "Aave";
    /// dYdX solo margin (flash-loan provider).
    pub const DYDX: &str = "dYdX";
    /// Balancer weighted pools.
    pub const BALANCER: &str = "Balancer";
    /// Curve-style stable pools.
    pub const CURVE: &str = "Curve";
    /// Compound lending.
    pub const COMPOUND: &str = "Compound";
    /// bZx margin trading.
    pub const BZX: &str = "bZx";
    /// Harvest Finance vaults.
    pub const HARVEST: &str = "Harvest Finance";
    /// Yearn vaults.
    pub const YEARN: &str = "Yearn";
    /// Kyber-style aggregation router.
    pub const KYBER: &str = "Kyber";
    /// Wrapped Ether contract. LeiShen's rule 2 removes transfers touching
    /// accounts with this tag.
    pub const WETH: &str = "Wrapped Ether";
}

/// Address → application-name labels, mimicking Etherscan's label cloud.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LabelService {
    labels: HashMap<Address, String>,
}

impl LabelService {
    /// Creates an empty label service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or overwrites) the label of an account.
    pub fn set(&mut self, addr: Address, app: impl Into<String>) {
        self.labels.insert(addr, app.into());
    }

    /// Removes a label — the paper removes *attackers'* labels before
    /// detection because those were only added after the attacks became
    /// public (§VI-B).
    pub fn remove(&mut self, addr: Address) -> Option<String> {
        self.labels.remove(&addr)
    }

    /// Label of `addr`, if known.
    pub fn get(&self, addr: Address) -> Option<&str> {
        self.labels.get(&addr).map(String::as_str)
    }

    /// Whether `addr` carries any label.
    pub fn is_labeled(&self, addr: Address) -> bool {
        self.labels.contains_key(&addr)
    }

    /// Number of labeled accounts.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no account is labeled.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates `(address, label)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Address, &str)> {
        self.labels.iter().map(|(a, l)| (*a, l.as_str()))
    }

    /// All addresses labeled with `app`.
    pub fn addresses_of(&self, app: &str) -> Vec<Address> {
        let mut v: Vec<Address> = self
            .labels
            .iter()
            .filter(|(_, l)| l.as_str() == app)
            .map(|(a, _)| *a)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut svc = LabelService::new();
        let a = Address::from_u64(1);
        assert!(svc.is_empty());
        svc.set(a, apps::UNISWAP);
        assert_eq!(svc.get(a), Some("Uniswap"));
        assert!(svc.is_labeled(a));
        assert_eq!(svc.len(), 1);
        assert_eq!(svc.remove(a), Some("Uniswap".to_string()));
        assert!(svc.get(a).is_none());
    }

    #[test]
    fn addresses_of_filters_by_app() {
        let mut svc = LabelService::new();
        svc.set(Address::from_u64(1), apps::UNISWAP);
        svc.set(Address::from_u64(2), apps::UNISWAP);
        svc.set(Address::from_u64(3), apps::AAVE);
        assert_eq!(svc.addresses_of(apps::UNISWAP).len(), 2);
        assert_eq!(svc.addresses_of(apps::AAVE).len(), 1);
        assert!(svc.addresses_of("nope").is_empty());
    }

    #[test]
    fn overwrite_replaces() {
        let mut svc = LabelService::new();
        let a = Address::from_u64(1);
        svc.set(a, apps::YEARN);
        svc.set(a, apps::UNISWAP);
        assert_eq!(svc.get(a), Some("Uniswap"));
        assert_eq!(svc.len(), 1);
    }
}

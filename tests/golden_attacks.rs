//! Golden-corpus regression tests: the detector's full output for all 22
//! reconstructed flpAttacks, snapshotted to `tests/golden/*.json`.
//!
//! The Table IV tests in `known_attacks.rs` pin the *verdicts*; these
//! snapshots pin the *entire analysis* — identified flash loans,
//! simplified application-level transfers, trades, borrower tags, and
//! pattern matches with volatilities — so any behavioural drift in the
//! pipeline shows up as a readable JSON diff naming the attack and the
//! field that moved, not just a flipped boolean.
//!
//! ## Updating the snapshots
//!
//! When an intentional pipeline change shifts the output, regenerate the
//! corpus and review the diff like any other code change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_attacks
//! git diff tests/golden/
//! ```
//!
//! The files are deterministic: the scenario world is seeded, addresses
//! derive from fixed seeds, amounts serialize as exact integer strings,
//! and the only floats (pattern volatilities) are formatted to six
//! decimal places.

use std::path::PathBuf;

mod common;
use common::snapshot::{exits_for, file_name, render, slug};
use common::AttackCorpus;

fn golden_dir() -> PathBuf {
    common::tests_dir("golden")
}

#[test]
fn golden_corpus_matches_snapshots() {
    let update = common::update_golden();
    let dir = golden_dir();

    let corpus = AttackCorpus::build();
    let view = corpus.view();
    let detector = common::paper_detector();

    if update {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }

    let mut failures = Vec::new();
    let mut expected_files = Vec::new();
    for attack in &corpus.attacks {
        let record = corpus.record(attack);
        let analysis = detector.analyze(record, &view);
        // Route exits through the report builder when the detector flags
        // the tx (all but the experimental-KDP attacks under the paper
        // config) so `AttackReport::with_exits` is exercised end-to-end.
        let exits = exits_for(&corpus.world, attack, &view);
        let exits = match detector.detect(record, &view, None) {
            Some(report) => report.with_exits(exits).exits,
            None => exits,
        };
        let rendered = render(&corpus.world, attack, &analysis, &exits);
        let file = file_name(attack);
        let path = dir.join(&file);
        expected_files.push(file.clone());

        if update {
            std::fs::write(&path, &rendered).expect("write snapshot");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == rendered => {}
            Ok(golden) => {
                // Point at the first diverging line to keep the failure
                // readable; the full diff is one `UPDATE_GOLDEN=1` +
                // `git diff` away.
                let line = golden
                    .lines()
                    .zip(rendered.lines())
                    .position(|(a, b)| a != b)
                    .map(|i| i + 1)
                    .unwrap_or_else(|| golden.lines().count().min(rendered.lines().count()) + 1);
                failures.push(format!(
                    "{file}: output drifted from snapshot (first difference at line {line}); \
                     if intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
                ));
            }
            Err(e) => failures.push(format!(
                "{file}: cannot read snapshot ({e}); generate with UPDATE_GOLDEN=1"
            )),
        }
    }

    // The directory must hold exactly the 22 snapshots — a stale file
    // from a renamed attack would otherwise linger unchecked.
    if !update {
        let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .filter(|n| n.ends_with(".json"))
                    .collect()
            })
            .unwrap_or_default();
        on_disk.sort();
        expected_files.sort();
        if on_disk != expected_files {
            failures.push(format!(
                "tests/golden contents mismatch:\n  on disk: {on_disk:?}\n  expected: {expected_files:?}"
            ));
        }
    }

    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// The snapshot renderer itself must be deterministic — two runs on two
/// separately built worlds produce byte-identical output.
#[test]
fn snapshots_are_deterministic_across_worlds() {
    let render_all = || {
        let corpus = AttackCorpus::build();
        let view = corpus.view();
        let detector = common::paper_detector();
        corpus
            .attacks
            .iter()
            .map(|attack| {
                let record = corpus.record(attack);
                let analysis = detector.analyze(record, &view);
                let exits = exits_for(&corpus.world, attack, &view);
                render(&corpus.world, attack, &analysis, &exits)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(render_all(), render_all());
}

#[test]
fn slugs_are_filesystem_safe() {
    assert_eq!(slug("bZx-1"), "bzx_1");
    assert_eq!(slug("MY FARM PET"), "my_farm_pet");
    assert_eq!(slug("Wault.Finance"), "wault_finance");
    let corpus = AttackCorpus::build();
    let slugs: std::collections::HashSet<String> =
        corpus.attacks.iter().map(|a| slug(a.spec.name)).collect();
    assert_eq!(slugs.len(), corpus.attacks.len(), "snapshot names must be unique");
}

//! Post-attack profit tracing (paper §VI-D2).
//!
//! "Almost all attackers transfer their attack profit with the method of
//! money laundering. Specifically, some attackers transfer profits through
//! multi-level intermediary accounts, which are also controlled by the
//! attacker. And some attackers utilize coin-mixing services, e.g.,
//! Tornado Cash, to avoid tracking."
//!
//! [`trace_exits`] follows an attacker cluster's outgoing funds across a
//! window of subsequent transactions: addresses that receive from the
//! cluster and forward onwards are treated as intermediaries; terminal
//! sinks are classified as direct cash-outs, multi-level laundering chains,
//! or coin-mixer deposits (by the sink's application tag).

use std::collections::{HashMap, HashSet};

use ethsim::{Address, CreationIndex, TokenId, TxRecord};
use serde::{Deserialize, Serialize};

use crate::labels::Labels;
use crate::tagging::{tag_of, Tag};

/// How the funds left the attacker's reach.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExitKind {
    /// One hop from the cluster to an unrelated account.
    Direct,
    /// Two or more intermediary hops before the terminal sink.
    MultiLevel {
        /// Number of intermediary accounts traversed.
        hops: u32,
    },
    /// Deposited into a labeled coin-mixing service.
    CoinMixer,
}

impl ExitKind {
    /// Stable machine-readable name, as serialized into report JSON and
    /// provenance traces.
    pub fn name(&self) -> &'static str {
        match self {
            ExitKind::Direct => "direct",
            ExitKind::MultiLevel { .. } => "multi_level",
            ExitKind::CoinMixer => "coin_mixer",
        }
    }

    /// Intermediary hops traversed (0 for direct and mixer exits).
    pub fn hops(&self) -> u32 {
        match self {
            ExitKind::MultiLevel { hops } => *hops,
            _ => 0,
        }
    }
}

/// One traced profit exit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExitReport {
    /// Terminal receiving account (for mixers, the mixer contract).
    pub sink: Address,
    /// Application tag of the sink.
    pub sink_tag: Tag,
    /// Exit classification.
    pub kind: ExitKind,
    /// Amount arriving at the sink (raw units).
    pub amount: u128,
    /// Asset.
    pub token: TokenId,
    /// The full path from the cluster boundary to the sink
    /// (intermediaries + sink).
    pub path: Vec<Address>,
}

/// Follows funds leaving `cluster` through `txs` (chronological) and
/// classifies every terminal sink.
///
/// An address is an *intermediary* when it first receives traced funds and
/// later forwards funds onward within the window; an address that receives
/// and never forwards is a *sink*. Deposits into accounts tagged with one
/// of `mixer_apps` are classified [`ExitKind::CoinMixer`] immediately.
pub fn trace_exits(
    txs: &[&TxRecord],
    cluster: &HashSet<Address>,
    labels: &Labels,
    creations: &CreationIndex,
    mixer_apps: &[&str],
) -> Vec<ExitReport> {
    // hop count at which each traced address received funds (cluster = 0)
    let mut depth: HashMap<Address, u32> = cluster.iter().map(|a| (*a, 0)).collect();
    // (receiver, token) -> (amount, path to receiver)
    let mut pending: HashMap<(Address, TokenId), (u128, Vec<Address>)> = HashMap::new();
    let mut exits = Vec::new();

    for tx in txs {
        for t in &tx.trace.transfers {
            let Some(&d) = depth.get(&t.sender) else {
                continue;
            };
            if t.receiver.is_zero() || cluster.contains(&t.receiver) {
                continue; // burns and intra-cluster shuffles
            }
            // sender forwards: whatever it was holding is now "in flight"
            let prior_path = pending
                .get(&(t.sender, t.token))
                .map(|(_, p)| p.clone())
                .unwrap_or_default();
            let mut path = prior_path;
            path.push(t.receiver);

            let tag = tag_of(t.receiver, labels, creations);
            let is_mixer = tag
                .app_name()
                .map(|a| mixer_apps.contains(&a))
                .unwrap_or(false);
            if is_mixer {
                exits.push(ExitReport {
                    sink: t.receiver,
                    sink_tag: tag,
                    kind: ExitKind::CoinMixer,
                    amount: t.amount,
                    token: t.token,
                    path,
                });
                continue;
            }
            let _ = d;
            depth.entry(t.receiver).or_insert(d + 1);
            // The receiver holds the funds until (unless) it forwards.
            let entry = pending.entry((t.receiver, t.token)).or_insert((0, path));
            entry.0 = entry.0.saturating_add(t.amount);
        }
        // When a traced holder forwards, its pending entry is consumed.
        for t in &tx.trace.transfers {
            if depth.contains_key(&t.sender) && !cluster.contains(&t.sender) {
                if let Some(entry) = pending.get_mut(&(t.sender, t.token)) {
                    entry.0 = entry.0.saturating_sub(t.amount);
                }
            }
        }
    }

    // Anything still pending is a terminal sink.
    for ((addr, token), (amount, path)) in pending {
        if amount == 0 {
            continue;
        }
        let hops = depth.get(&addr).copied().unwrap_or(1);
        exits.push(ExitReport {
            sink: addr,
            sink_tag: tag_of(addr, labels, creations),
            kind: if hops <= 1 {
                ExitKind::Direct
            } else {
                ExitKind::MultiLevel { hops: hops - 1 }
            },
            amount,
            token,
            path,
        });
    }
    // Total order (amount desc, then sink, then token) so reports are
    // deterministic regardless of HashMap iteration order.
    exits.sort_by(|a, b| {
        b.amount
            .cmp(&a.amount)
            .then(a.sink.cmp(&b.sink))
            .then(a.token.cmp(&b.token))
    });
    exits
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{Transfer, TxId, TxStatus, TxTrace};

    fn tx(transfers: &[(u64, u64, u128)]) -> TxRecord {
        let mut trace = TxTrace::default();
        for (i, (s, r, a)) in transfers.iter().copied().enumerate() {
            trace.transfers.push(Transfer {
                seq: i as u32,
                sender: Address::from_u64(s),
                receiver: Address::from_u64(r),
                amount: a,
                token: TokenId::ETH,
            });
        }
        TxRecord {
            id: TxId(0),
            block: 0,
            timestamp: 0,
            from: Address::from_u64(1),
            to: Address::from_u64(1),
            function: "f".into(),
            status: TxStatus::Success,
            trace,
        }
    }

    fn cluster(ids: &[u64]) -> HashSet<Address> {
        ids.iter().map(|i| Address::from_u64(*i)).collect()
    }

    #[test]
    fn direct_exit_is_one_hop() {
        let txs = [tx(&[(1, 10, 500)])];
        let refs: Vec<&TxRecord> = txs.iter().collect();
        let labels = Labels::new();
        let idx = CreationIndex::new(&[]);
        let exits = trace_exits(&refs, &cluster(&[1]), &labels, &idx, &["Tornado Cash"]);
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0].kind, ExitKind::Direct);
        assert_eq!(exits[0].amount, 500);
        assert_eq!(exits[0].sink, Address::from_u64(10));
    }

    #[test]
    fn multi_level_chain_is_traced_to_terminal() {
        // 1 -> 10 -> 11 -> 12 across three txs; 12 never forwards.
        let txs = [
            tx(&[(1, 10, 500)]),
            tx(&[(10, 11, 500)]),
            tx(&[(11, 12, 499)]),
        ];
        let refs: Vec<&TxRecord> = txs.iter().collect();
        let labels = Labels::new();
        let idx = CreationIndex::new(&[]);
        let exits = trace_exits(&refs, &cluster(&[1]), &labels, &idx, &[]);
        // terminal sink is 12 with 2 intermediaries (10, 11)
        let terminal = exits
            .iter()
            .find(|e| e.sink == Address::from_u64(12))
            .expect("terminal traced");
        assert_eq!(terminal.kind, ExitKind::MultiLevel { hops: 2 });
        assert_eq!(terminal.path.len(), 3);
        assert_eq!(terminal.amount, 499);
    }

    #[test]
    fn mixer_deposits_are_classified() {
        let mixer = Address::from_u64(77);
        let mut labels = Labels::new();
        labels.set(mixer, "Tornado Cash");
        let txs = [tx(&[(1, 77, 100)])];
        let refs: Vec<&TxRecord> = txs.iter().collect();
        let idx = CreationIndex::new(&[]);
        let exits = trace_exits(&refs, &cluster(&[1]), &labels, &idx, &["Tornado Cash"]);
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0].kind, ExitKind::CoinMixer);
        assert_eq!(exits[0].sink, mixer);
    }

    #[test]
    fn intra_cluster_and_burns_are_ignored() {
        let txs = [tx(&[(1, 2, 100), (1, 0, 50)])];
        let refs: Vec<&TxRecord> = txs.iter().collect();
        let labels = Labels::new();
        let idx = CreationIndex::new(&[]);
        let exits = trace_exits(&refs, &cluster(&[1, 2]), &labels, &idx, &[]);
        assert!(exits.is_empty());
    }

    #[test]
    fn untraced_senders_do_not_trigger() {
        let txs = [tx(&[(50, 60, 100)])];
        let refs: Vec<&TxRecord> = txs.iter().collect();
        let labels = Labels::new();
        let idx = CreationIndex::new(&[]);
        assert!(trace_exits(&refs, &cluster(&[1]), &labels, &idx, &[]).is_empty());
    }

    #[test]
    fn partial_forwarding_leaves_residual_sink() {
        // 10 receives 500, forwards 300 to 11: both are sinks (200 + 300).
        let txs = [tx(&[(1, 10, 500)]), tx(&[(10, 11, 300)])];
        let refs: Vec<&TxRecord> = txs.iter().collect();
        let labels = Labels::new();
        let idx = CreationIndex::new(&[]);
        let exits = trace_exits(&refs, &cluster(&[1]), &labels, &idx, &[]);
        let by_sink: HashMap<Address, u128> =
            exits.iter().map(|e| (e.sink, e.amount)).collect();
        assert_eq!(by_sink[&Address::from_u64(10)], 200);
        assert_eq!(by_sink[&Address::from_u64(11)], 300);
    }
}

//! Uniswap V2: constant-product pairs with liquidity provision and flash
//! swaps.
//!
//! Uniswap matters to the paper three ways: it is the dominant **flash loan
//! provider** (identified by a `swap` call followed by `uniswapV2Call`,
//! Table II), the **price oracle** other protocols read (the bZx attacks
//! manipulate it for exactly that reason), and the second most attacked
//! application in the wild study (Table VI).

use ethsim::state::SKey;
use ethsim::{math, Address, Chain, LogValue, Result, SimError, TokenId, TxContext};

use crate::labels::{apps, LabelService};

/// Storage slot for per-token reserves.
const SLOT_RESERVE: u16 = 0;

/// The Uniswap factory: deploys pairs and records the creation hierarchy
/// (deployer EOA → factory → pairs) that account tagging walks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniswapV2Factory {
    /// The factory contract account.
    pub address: Address,
    /// The EOA that deployed the factory.
    pub deployer: Address,
}

impl UniswapV2Factory {
    /// Deploys the factory from a fresh transaction, labeling the deployer
    /// and factory (as on Etherscan: "Uniswap: Deployer", "Uniswap: Factory
    /// Contract").
    ///
    /// # Errors
    /// Propagates substrate errors.
    pub fn deploy(
        chain: &mut Chain,
        labels: &mut LabelService,
        deployer: Address,
        app_label: &str,
    ) -> Result<Self> {
        let mut factory = None;
        chain.execute(deployer, deployer, "deployFactory", |ctx| {
            factory = Some(ctx.create_contract(deployer)?);
            Ok(())
        })?;
        let address = factory.expect("deploy closure ran");
        labels.set(deployer, app_label);
        labels.set(address, app_label);
        Ok(UniswapV2Factory { address, deployer })
    }

    /// Deploys a Uniswap factory with the canonical label.
    ///
    /// # Errors
    /// Propagates substrate errors.
    pub fn deploy_canonical(
        chain: &mut Chain,
        labels: &mut LabelService,
        deployer: Address,
    ) -> Result<Self> {
        Self::deploy(chain, labels, deployer, apps::UNISWAP)
    }
}

/// One constant-product liquidity pool over `(token0, token1)`.
///
/// All mutable state (the two reserves) lives in journaled contract
/// storage, so transaction reverts restore the pool exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniswapV2Pair {
    /// The pair contract account.
    pub address: Address,
    /// First pooled token.
    pub token0: TokenId,
    /// Second pooled token.
    pub token1: TokenId,
    /// LP share token minted to liquidity providers.
    pub lp_token: TokenId,
    /// Swap fee in basis points (30 = 0.30%, Uniswap V2's fee).
    pub fee_bps: u32,
}

impl UniswapV2Pair {
    /// Deploys a new pair from the factory. The pair contract is a *child*
    /// of the factory in the creation tree and is intentionally left
    /// unlabeled: Etherscan labels factories, while the 427 pool contracts
    /// the paper mentions are tagged only via creation-tree propagation.
    ///
    /// # Errors
    /// Propagates substrate errors.
    pub fn deploy(
        chain: &mut Chain,
        factory: &UniswapV2Factory,
        token0: TokenId,
        token1: TokenId,
        lp_symbol: &str,
    ) -> Result<Self> {
        let mut out = None;
        chain.execute(factory.deployer, factory.address, "createPair", |ctx| {
            let address = ctx.create_contract(factory.address)?;
            let lp_token = ctx.register_token(lp_symbol, 18, address);
            out = Some(UniswapV2Pair {
                address,
                token0,
                token1,
                lp_token,
                fee_bps: 30,
            });
            Ok(())
        })?;
        Ok(out.expect("deploy closure ran"))
    }

    fn reserve_key(token: TokenId) -> SKey {
        SKey::TokenMap(SLOT_RESERVE, token)
    }

    /// Current reserves `(reserve0, reserve1)`.
    pub fn reserves(&self, ctx: &TxContext<'_>) -> (u128, u128) {
        (
            ctx.sload(self.address, Self::reserve_key(self.token0)),
            ctx.sload(self.address, Self::reserve_key(self.token1)),
        )
    }

    /// Reserve of one side.
    ///
    /// # Panics
    /// Panics if `token` is not one of the pair's tokens.
    pub fn reserve_of(&self, ctx: &TxContext<'_>, token: TokenId) -> u128 {
        assert!(self.has_token(token), "token not in pair");
        ctx.sload(self.address, Self::reserve_key(token))
    }

    /// Whether `token` is one of the pooled tokens.
    pub fn has_token(&self, token: TokenId) -> bool {
        token == self.token0 || token == self.token1
    }

    /// The opposite side of `token`.
    ///
    /// # Panics
    /// Panics if `token` is not in the pair.
    pub fn other(&self, token: TokenId) -> TokenId {
        if token == self.token0 {
            self.token1
        } else if token == self.token1 {
            self.token0
        } else {
            panic!("token not in pair")
        }
    }

    fn set_reserve(&self, ctx: &mut TxContext<'_>, token: TokenId, value: u128) {
        ctx.sstore(self.address, Self::reserve_key(token), value);
    }

    /// Synchronizes stored reserves with actual token balances (Uniswap's
    /// `sync()`).
    pub fn sync(&self, ctx: &mut TxContext<'_>) {
        let b0 = ctx.balance(self.token0, self.address);
        let b1 = ctx.balance(self.token1, self.address);
        self.set_reserve(ctx, self.token0, b0);
        self.set_reserve(ctx, self.token1, b1);
        ctx.emit_log(
            self.address,
            "Sync",
            vec![
                ("reserve0".into(), LogValue::Amount(b0)),
                ("reserve1".into(), LogValue::Amount(b1)),
            ],
        );
    }

    /// Output amount of the constant-product formula with fee:
    /// `out = in·(1-fee)·R_out / (R_in + in·(1-fee))`.
    ///
    /// # Errors
    /// [`SimError::Reverted`] when the pool is empty or the input is zero.
    pub fn amount_out(&self, ctx: &TxContext<'_>, token_in: TokenId, amount_in: u128) -> Result<u128> {
        if !self.has_token(token_in) {
            return Err(SimError::revert("token not in pair"));
        }
        if amount_in == 0 {
            return Err(SimError::revert("zero input"));
        }
        let token_out = self.other(token_in);
        let r_in = self.reserve_of(ctx, token_in);
        let r_out = self.reserve_of(ctx, token_out);
        if r_in == 0 || r_out == 0 {
            return Err(SimError::revert("empty pool"));
        }
        let fee_num = 10_000u128 - self.fee_bps as u128;
        let in_with_fee = math::mul(amount_in, fee_num)?;
        let numerator_hi = in_with_fee; // in_with_fee * r_out via mul_div
        let denominator = math::add(math::mul(r_in, 10_000)?, in_with_fee)?;
        math::mul_div(numerator_hi, r_out, denominator)
    }

    /// Swaps an exact input amount, moving tokens and updating reserves.
    /// Returns the output amount.
    ///
    /// Emits a `Swap` event and records a `swap` call frame — the pieces
    /// Explorer-style baselines and flash-loan identification look at.
    ///
    /// # Errors
    /// Reverts on empty pool, zero input, insufficient trader balance, or
    /// `min_out` slippage violation.
    pub fn swap_exact_in(
        &self,
        ctx: &mut TxContext<'_>,
        trader: Address,
        token_in: TokenId,
        amount_in: u128,
        min_out: u128,
    ) -> Result<u128> {
        let pair = *self;
        ctx.call(trader, self.address, "swap", 0, |ctx| {
            let token_out = pair.other(token_in);
            let amount_out = pair.amount_out(ctx, token_in, amount_in)?;
            if amount_out < min_out {
                return Err(SimError::revert("insufficient output amount"));
            }
            ctx.transfer_token(token_in, trader, pair.address, amount_in)?;
            ctx.transfer_token(token_out, pair.address, trader, amount_out)?;
            let r_in = pair.reserve_of(ctx, token_in);
            let r_out = pair.reserve_of(ctx, token_out);
            pair.set_reserve(ctx, token_in, math::add(r_in, amount_in)?);
            pair.set_reserve(ctx, token_out, math::sub(r_out, amount_out)?);
            ctx.emit_log(
                pair.address,
                "Swap",
                vec![
                    ("sender".into(), LogValue::Addr(trader)),
                    ("tokenIn".into(), LogValue::Token(token_in)),
                    ("amountIn".into(), LogValue::Amount(amount_in)),
                    ("tokenOut".into(), LogValue::Token(token_out)),
                    ("amountOut".into(), LogValue::Amount(amount_out)),
                ],
            );
            Ok(amount_out)
        })
    }

    /// Adds liquidity at the current ratio and mints LP shares
    /// (first provision mints `sqrt(a0·a1)`).
    ///
    /// # Errors
    /// Reverts on zero amounts or insufficient balances.
    pub fn add_liquidity(
        &self,
        ctx: &mut TxContext<'_>,
        provider: Address,
        amount0: u128,
        amount1: u128,
    ) -> Result<u128> {
        let pair = *self;
        ctx.call(provider, self.address, "mint", 0, |ctx| {
            if amount0 == 0 || amount1 == 0 {
                return Err(SimError::revert("zero liquidity"));
            }
            ctx.transfer_token(pair.token0, provider, pair.address, amount0)?;
            ctx.transfer_token(pair.token1, provider, pair.address, amount1)?;
            let supply = ctx.state().total_supply(pair.lp_token);
            let (r0, r1) = pair.reserves(ctx);
            let minted = if supply == 0 {
                math::sqrt_mul(amount0, amount1)
            } else {
                let by0 = math::mul_div(amount0, supply, r0)?;
                let by1 = math::mul_div(amount1, supply, r1)?;
                by0.min(by1)
            };
            if minted == 0 {
                return Err(SimError::revert("insufficient liquidity minted"));
            }
            ctx.mint_token(pair.lp_token, provider, minted)?;
            pair.set_reserve(ctx, pair.token0, math::add(r0, amount0)?);
            pair.set_reserve(ctx, pair.token1, math::add(r1, amount1)?);
            ctx.emit_log(
                pair.address,
                "Mint",
                vec![
                    ("sender".into(), LogValue::Addr(provider)),
                    ("amount0".into(), LogValue::Amount(amount0)),
                    ("amount1".into(), LogValue::Amount(amount1)),
                    ("liquidity".into(), LogValue::Amount(minted)),
                ],
            );
            Ok(minted)
        })
    }

    /// Burns LP shares and returns the pro-rata underlying amounts.
    ///
    /// # Errors
    /// Reverts on zero shares or insufficient LP balance.
    pub fn remove_liquidity(
        &self,
        ctx: &mut TxContext<'_>,
        provider: Address,
        shares: u128,
    ) -> Result<(u128, u128)> {
        let pair = *self;
        ctx.call(provider, self.address, "burn", 0, |ctx| {
            let supply = ctx.state().total_supply(pair.lp_token);
            if shares == 0 || supply == 0 {
                return Err(SimError::revert("zero shares"));
            }
            let (r0, r1) = pair.reserves(ctx);
            let out0 = math::mul_div(r0, shares, supply)?;
            let out1 = math::mul_div(r1, shares, supply)?;
            ctx.burn_token(pair.lp_token, provider, shares)?;
            ctx.transfer_token(pair.token0, pair.address, provider, out0)?;
            ctx.transfer_token(pair.token1, pair.address, provider, out1)?;
            pair.set_reserve(ctx, pair.token0, math::sub(r0, out0)?);
            pair.set_reserve(ctx, pair.token1, math::sub(r1, out1)?);
            ctx.emit_log(
                pair.address,
                "Burn",
                vec![
                    ("sender".into(), LogValue::Addr(provider)),
                    ("amount0".into(), LogValue::Amount(out0)),
                    ("amount1".into(), LogValue::Amount(out1)),
                    ("liquidity".into(), LogValue::Amount(shares)),
                ],
            );
            Ok((out0, out1))
        })
    }

    /// Flash swap — Uniswap's flash loan (paper Table II).
    ///
    /// Transfers `amount` of `token` to `borrower`, invokes
    /// `uniswapV2Call` on the borrower (the `body` closure), and requires
    /// the pool's balance of `token` to have grown by the 0.3% fee by the
    /// time the callback returns; otherwise the transaction reverts —
    /// transaction atomicity is the lender's only protection.
    ///
    /// The recorded call-frame sequence `swap` → `uniswapV2Call` is exactly
    /// what LeiShen's flash-loan identification matches on.
    ///
    /// # Errors
    /// Reverts when liquidity is insufficient or the loan is not repaid
    /// with fee.
    pub fn flash_swap(
        &self,
        ctx: &mut TxContext<'_>,
        borrower: Address,
        token: TokenId,
        amount: u128,
        body: impl FnOnce(&mut TxContext<'_>) -> Result<()>,
    ) -> Result<()> {
        let pair = *self;
        ctx.call(borrower, self.address, "swap", 0, |ctx| {
            if !pair.has_token(token) {
                return Err(SimError::revert("token not in pair"));
            }
            let reserve = pair.reserve_of(ctx, token);
            if amount == 0 || amount >= reserve {
                return Err(SimError::revert("insufficient liquidity for flash swap"));
            }
            let balance_before = ctx.balance(token, pair.address);
            ctx.transfer_token(token, pair.address, borrower, amount)?;
            ctx.call(pair.address, borrower, "uniswapV2Call", 0, body)?;
            // Fee: 0.3% of the borrowed amount, rounded in the pool's favour.
            let fee = math::mul_div_ceil(amount, 3, 997)?;
            let required = math::add(balance_before, fee)?;
            let balance_after = ctx.balance(token, pair.address);
            if balance_after < required {
                return Err(SimError::revert("flash swap not repaid with fee"));
            }
            pair.sync(ctx);
            Ok(())
        })
    }

    /// Spot price of `base` denominated in the other token, adjusted for
    /// decimals (whole-token terms). Used by oracles and analytics, never
    /// by the ledger.
    ///
    /// # Errors
    /// Reverts when the pool is empty.
    pub fn spot_price(&self, ctx: &TxContext<'_>, base: TokenId) -> Result<f64> {
        let quote = self.other(base);
        let rb = self.reserve_of(ctx, base);
        let rq = self.reserve_of(ctx, quote);
        if rb == 0 || rq == 0 {
            return Err(SimError::revert("empty pool"));
        }
        let db = ctx.token(base)?.decimals as i32;
        let dq = ctx.token(quote)?.decimals as i32;
        Ok((rq as f64 / 10f64.powi(dq)) / (rb as f64 / 10f64.powi(db)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::ChainConfig;

    struct Setup {
        chain: Chain,
        pair: UniswapV2Pair,
        lp: Address,
        trader: Address,
        eth: TokenId,
        usdc: TokenId,
    }

    fn setup() -> Setup {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("uniswap deployer");
        let lp = chain.create_eoa("lp");
        let trader = chain.create_eoa("trader");
        let factory = UniswapV2Factory::deploy_canonical(&mut chain, &mut labels, deployer).unwrap();
        let usdc = TokenDeploymentHelper::new(&mut chain, deployer, "USDC", 6);
        let eth = TokenId::ETH;
        let pair = UniswapV2Pair::deploy(&mut chain, &factory, eth, usdc, "UNI-V2 ETH/USDC").unwrap();
        // Fund the LP: 1,000 ETH + 2,000,000 USDC (price 2000 USDC/ETH).
        chain.state_mut().credit_eth(lp, eth_units(1_000)).unwrap();
        chain.state_mut().credit_eth(trader, eth_units(100)).unwrap();
        chain
            .execute(lp, pair.address, "seed", |ctx| {
                ctx.mint_token(usdc, lp, usdc_units(2_000_000))?;
                ctx.mint_token(usdc, trader, usdc_units(100_000))?;
                pair.add_liquidity(ctx, lp, eth_units(1_000), usdc_units(2_000_000))?;
                Ok(())
            })
            .unwrap();
        Setup {
            chain,
            pair,
            lp,
            trader,
            eth,
            usdc,
        }
    }

    fn eth_units(n: u128) -> u128 {
        n * 10u128.pow(18)
    }
    fn usdc_units(n: u128) -> u128 {
        n * 10u128.pow(6)
    }

    /// Deploys a token inline for tests (avoids importing scenario glue).
    struct TokenDeploymentHelper;
    impl TokenDeploymentHelper {
        #[allow(clippy::new_ret_no_self)]
        fn new(chain: &mut Chain, deployer: Address, symbol: &str, decimals: u8) -> TokenId {
            let mut out = None;
            chain
                .execute(deployer, deployer, "deployToken", |ctx| {
                    let c = ctx.create_contract(deployer)?;
                    out = Some(ctx.register_token(symbol, decimals, c));
                    Ok(())
                })
                .unwrap();
            out.unwrap()
        }
    }

    #[test]
    fn add_liquidity_mints_sqrt_shares() {
        let s = setup();
        let mut chain = s.chain;
        chain
            .execute(s.lp, s.pair.address, "check", |ctx| {
                let supply = ctx.state().total_supply(s.pair.lp_token);
                assert_eq!(supply, math::sqrt_mul(eth_units(1_000), usdc_units(2_000_000)));
                let (r0, r1) = s.pair.reserves(ctx);
                assert_eq!(r0, eth_units(1_000));
                assert_eq!(r1, usdc_units(2_000_000));
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn swap_moves_price_along_constant_product() {
        let s = setup();
        let mut chain = s.chain;
        chain
            .execute(s.trader, s.pair.address, "swap", |ctx| {
                let before = s.pair.spot_price(ctx, s.eth)?;
                assert!((before - 2_000.0).abs() < 1.0);
                let out = s
                    .pair
                    .swap_exact_in(ctx, s.trader, s.eth, eth_units(10), 0)?;
                // ~10 * 0.997 * 2,000,000 / 1,010 ≈ 19,742 USDC
                assert!(out > usdc_units(19_000) && out < usdc_units(20_000), "{out}");
                let after = s.pair.spot_price(ctx, s.eth)?;
                assert!(after < before, "buying USDC with ETH lowers ETH price? no — \
                        adding ETH lowers the USDC-per-ETH rate");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn constant_product_never_decreases_across_swaps() {
        let s = setup();
        let mut chain = s.chain;
        chain
            .execute(s.trader, s.pair.address, "swaps", |ctx| {
                let (r0, r1) = s.pair.reserves(ctx);
                let k_before = (r0 as f64) * (r1 as f64);
                s.pair.swap_exact_in(ctx, s.trader, s.eth, eth_units(5), 0)?;
                let got = ctx.balance(s.usdc, s.trader);
                s.pair.swap_exact_in(ctx, s.trader, s.usdc, got, 0)?;
                let (r0, r1) = s.pair.reserves(ctx);
                let k_after = (r0 as f64) * (r1 as f64);
                assert!(k_after >= k_before, "fees grow k");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn slippage_guard_reverts() {
        let s = setup();
        let mut chain = s.chain;
        let tx = chain
            .execute(s.trader, s.pair.address, "swap", |ctx| {
                s.pair
                    .swap_exact_in(ctx, s.trader, s.eth, eth_units(1), u128::MAX)?;
                Ok(())
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }

    #[test]
    fn remove_liquidity_returns_pro_rata() {
        let s = setup();
        let mut chain = s.chain;
        chain
            .execute(s.lp, s.pair.address, "exit", |ctx| {
                let shares = ctx.balance(s.pair.lp_token, s.lp);
                let (out0, out1) = s.pair.remove_liquidity(ctx, s.lp, shares / 2)?;
                // Half the shares return ~half the reserves.
                let rel0 = (out0 as f64 - eth_units(500) as f64).abs() / (eth_units(500) as f64);
                let rel1 = (out1 as f64 - usdc_units(1_000_000) as f64).abs()
                    / (usdc_units(1_000_000) as f64);
                assert!(rel0 < 1e-6, "{rel0}");
                assert!(rel1 < 1e-6, "{rel1}");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn flash_swap_requires_repayment_with_fee() {
        let s = setup();
        let mut chain = s.chain;
        let borrower = chain.create_eoa("borrower");
        // Under-repaying reverts the whole transaction.
        let tx = chain
            .execute(borrower, s.pair.address, "flash", |ctx| {
                s.pair
                    .flash_swap(ctx, borrower, s.eth, eth_units(100), |ctx| {
                        // repay exactly the principal — missing the fee
                        ctx.transfer_eth(borrower, s.pair.address, eth_units(100))
                    })
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
        // The revert restored pool reserves.
        chain
            .execute(borrower, s.pair.address, "check", |ctx| {
                assert_eq!(s.pair.reserve_of(ctx, s.eth), eth_units(1_000));
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn flash_swap_succeeds_with_fee_and_records_frames() {
        let s = setup();
        let mut chain = s.chain;
        let borrower = chain.create_eoa("borrower");
        chain.state_mut().credit_eth(borrower, eth_units(1)).unwrap();
        let principal = eth_units(100);
        let fee = math::mul_div_ceil(principal, 3, 997).unwrap();
        let tx = chain
            .execute(borrower, s.pair.address, "flash", |ctx| {
                s.pair.flash_swap(ctx, borrower, s.eth, principal, |ctx| {
                    ctx.transfer_eth(borrower, s.pair.address, principal + fee)
                })
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        assert!(rec.status.is_success());
        assert!(rec.trace.called(s.pair.address, "swap"));
        assert!(rec.trace.called(borrower, "uniswapV2Call"));
        // Reserves grew by the fee.
        chain
            .execute(borrower, s.pair.address, "check", |ctx| {
                assert_eq!(s.pair.reserve_of(ctx, s.eth), eth_units(1_000) + fee);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn amount_out_rejects_degenerate_inputs() {
        let s = setup();
        let mut chain = s.chain;
        chain
            .execute(s.trader, s.pair.address, "probe", |ctx| {
                assert!(s.pair.amount_out(ctx, s.eth, 0).is_err());
                assert!(s
                    .pair
                    .amount_out(ctx, TokenId::from_index(99), 1)
                    .is_err());
                Ok(())
            })
            .unwrap();
    }
}

//! Account tagging — from 160-bit addresses to application identities
//! (paper §V-B1, Fig. 7).
//!
//! The paper observes (over 52,500 Etherscan-tagged accounts of 119 apps)
//! that accounts related by contract creation share an application tag.
//! Unknown accounts are therefore tagged by looking at their creation tree:
//!
//! * the tree contains exactly **one** distinct application tag among the
//!   account's ancestors and descendants → the account gets that tag
//!   (Fig. 7a);
//! * the tree contains **no** tag → the account is tagged with its tree's
//!   root address, which still groups the attacker EOA with the attack
//!   contracts it deployed (Fig. 7b) — the property DeFiRanger lacks;
//! * the tree contains **conflicting** tags (e.g. a Yearn deployer created
//!   a Uniswap pool; < 0.1% of accounts) → the account stays untaggable
//!   (Fig. 7c).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use ethsim::{Address, CreationIndex, TokenId, Transfer};
use serde::{Deserialize, Serialize};

use crate::labels::Labels;

/// The application-level identity of an account.
// The manual `PartialEq` below only adds an `Arc::ptr_eq` shortcut in
// front of the same comparison the derive would generate, so the derived
// `Hash` still agrees with it: equal tags hash equally.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Clone, Debug, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tag {
    /// A DeFi application name (from the label cloud or propagated).
    ///
    /// Interned as `Arc<str>` so cloning a tag — which the simplification
    /// and trade stages do constantly, and which a [`crate::scan::TagCache`]
    /// hit does once per lookup — is a reference-count bump instead of a
    /// string allocation.
    App(Arc<str>),
    /// No tag anywhere in the creation tree: identified by the tree root.
    Root(Address),
    /// Conflicting tags in the creation tree: untaggable (Fig. 7c).
    Unknown(Address),
    /// The zero / mint-burn address.
    BlackHole,
}

impl PartialEq for Tag {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            // Pointer test first: cache-interned tags share one `Arc`, so
            // the pattern stage's per-leg `buyer == borrower` compares
            // short-circuit without touching the string bytes.
            (Tag::App(a), Tag::App(b)) => Arc::ptr_eq(a, b) || a == b,
            (Tag::Root(a), Tag::Root(b)) => a == b,
            (Tag::Unknown(a), Tag::Unknown(b)) => a == b,
            (Tag::BlackHole, Tag::BlackHole) => true,
            _ => false,
        }
    }
}

impl Eq for Tag {}

impl Tag {
    /// Whether this is the BlackHole (mint/burn) tag.
    pub fn is_black_hole(&self) -> bool {
        matches!(self, Tag::BlackHole)
    }

    /// Whether the account could not be tagged (conflicting tree tags).
    pub fn is_unknown(&self) -> bool {
        matches!(self, Tag::Unknown(_))
    }

    /// The application name, when this is an [`Tag::App`].
    pub fn app_name(&self) -> Option<&str> {
        match self {
            Tag::App(name) => Some(name.as_ref()),
            _ => None,
        }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tag::App(name) => write!(f, "{name}"),
            Tag::Root(addr) => write!(f, "root:{}", addr.short()),
            Tag::Unknown(addr) => write!(f, "?{}", addr.short()),
            Tag::BlackHole => write!(f, "BlackHole"),
        }
    }
}

/// Address → [`Tag`] assignment for one transaction's accounts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TagMap {
    tags: HashMap<Address, Tag>,
}

impl TagMap {
    /// Builds the tag map for every address in `addresses`.
    pub fn build(
        addresses: impl IntoIterator<Item = Address>,
        labels: &Labels,
        creations: &CreationIndex,
    ) -> TagMap {
        TagMap::build_with(addresses, |addr| tag_of(addr, labels, creations))
    }

    /// Builds the tag map with a caller-supplied resolver — e.g. a shared
    /// [`crate::scan::TagCache`] so repeated addresses across a corpus
    /// resolve once instead of once per transaction.
    pub fn build_with(
        addresses: impl IntoIterator<Item = Address>,
        mut resolve: impl FnMut(Address) -> Tag,
    ) -> TagMap {
        let mut tags = HashMap::new();
        for addr in addresses {
            tags.entry(addr).or_insert_with(|| resolve(addr));
        }
        TagMap { tags }
    }

    /// Tag of `addr`; addresses outside the built set get computed lazily
    /// as `Root(addr)` fallbacks would be wrong, so this returns
    /// `Tag::Unknown` style fallback by address — callers should build the
    /// map over all relevant addresses first.
    pub fn get(&self, addr: Address) -> Tag {
        if addr.is_zero() {
            return Tag::BlackHole;
        }
        self.tags
            .get(&addr)
            .cloned()
            .unwrap_or(Tag::Root(addr))
    }

    /// Number of tagged addresses.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

/// Computes the tag of a single address per the Fig. 7 rules.
pub fn tag_of(addr: Address, labels: &Labels, creations: &CreationIndex) -> Tag {
    if addr.is_zero() {
        return Tag::BlackHole;
    }
    if let Some(app) = labels.get(addr) {
        return Tag::App(Arc::from(app));
    }
    // Collect distinct app names among ancestors and descendants. Names
    // are borrowed from the label cloud; only the winning one is interned.
    fn push<'a>(found: &mut Vec<&'a str>, name: &'a str) {
        if !found.contains(&name) {
            found.push(name);
        }
    }
    let mut found: Vec<&str> = Vec::new();
    for anc in creations.ancestors(addr) {
        if let Some(app) = labels.get(anc) {
            push(&mut found, app);
        }
    }
    for desc in creations.descendants(addr) {
        if let Some(app) = labels.get(desc) {
            push(&mut found, app);
        }
    }
    match found.len() {
        1 => Tag::App(Arc::from(found[0])),
        0 => Tag::Root(creations.root(addr)),
        _ => Tag::Unknown(addr),
    }
}

/// A tagged asset transfer — the paper's
/// `tagT_i = (tag_sender, tag_receiver, amount, token)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaggedTransfer {
    /// Position in the transaction's action stream (preserved through
    /// simplification so trades keep their ordering).
    pub seq: u32,
    /// Application tag of the paying account.
    pub sender: Tag,
    /// Application tag of the receiving account.
    pub receiver: Tag,
    /// Raw token units moved.
    pub amount: u128,
    /// Asset moved.
    pub token: TokenId,
}

/// Tags a transaction's account-level transfers.
pub fn tag_transfers(
    transfers: &[Transfer],
    labels: &Labels,
    creations: &CreationIndex,
) -> Vec<TaggedTransfer> {
    let addrs = transfers
        .iter()
        .flat_map(|t| [t.sender, t.receiver])
        .filter(|a| !a.is_zero());
    let map = TagMap::build(addrs, labels, creations);
    transfers
        .iter()
        .map(|t| TaggedTransfer {
            seq: t.seq,
            sender: map.get(t.sender),
            receiver: map.get(t.receiver),
            amount: t.amount,
            token: t.token,
        })
        .collect()
}

/// Tags a transaction's account-level transfers through a caller-supplied
/// resolver (which must map the zero address to [`Tag::BlackHole`]). A
/// memoizing resolver such as [`crate::scan::TagCache::resolve`] already
/// deduplicates addresses, so no per-transaction [`TagMap`] is built.
pub fn tag_transfers_with(
    transfers: &[Transfer],
    resolve: impl FnMut(Address) -> Tag,
) -> Vec<TaggedTransfer> {
    let mut out = Vec::with_capacity(transfers.len());
    tag_transfers_with_into(transfers, resolve, &mut out);
    out
}

/// [`tag_transfers_with`] into a reused buffer (cleared first). The
/// tagged list is transient in the full pipeline, so batch scanners keep
/// one buffer per worker instead of allocating one per transaction.
pub fn tag_transfers_with_into(
    transfers: &[Transfer],
    mut resolve: impl FnMut(Address) -> Tag,
    out: &mut Vec<TaggedTransfer>,
) {
    out.clear();
    out.extend(transfers.iter().map(|t| TaggedTransfer {
        seq: t.seq,
        sender: resolve(t.sender),
        receiver: resolve(t.receiver),
        amount: t.amount,
        token: t.token,
    }));
}

/// Whether two addresses belong to the same contract-creation tree.
///
/// Two accounts share ancestry when walking each one's creation chain
/// upward lands on the same root creator — the condition under which
/// [`tag_of`] gives them the same application tag (an attack contract and
/// the mixer-laundered EOAs it spawns, for example). The scheduler uses
/// this relation to keep such transactions on one worker, but it is also
/// useful on its own for forensic grouping. The zero address belongs to
/// no tree.
pub fn shares_creation_ancestry(a: Address, b: Address, creations: &CreationIndex) -> bool {
    !a.is_zero() && !b.is_zero() && creations.root(a) == creations.root(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::CreationRecord;

    fn rec(creator: Address, created: Address) -> CreationRecord {
        CreationRecord {
            creator,
            created,
            block: 0,
        }
    }

    #[test]
    fn directly_labeled_account_keeps_its_label() {
        let a = Address::from_u64(1);
        let mut labels = Labels::new();
        labels.set(a, "Uniswap");
        let idx = CreationIndex::new(&[]);
        assert_eq!(tag_of(a, &labels, &idx), Tag::App("Uniswap".into()));
    }

    #[test]
    fn fig7a_single_tag_propagates_down_and_up() {
        // a1(EOA, "Uniswap") -> a2(factory) -> a3(pool)
        let a1 = Address::from_u64(1);
        let a2 = Address::from_u64(2);
        let a3 = Address::from_u64(3);
        let mut labels = Labels::new();
        labels.set(a1, "Uniswap");
        let idx = CreationIndex::new(&[rec(a1, a2), rec(a2, a3)]);
        assert_eq!(tag_of(a3, &labels, &idx), Tag::App("Uniswap".into()));
        assert_eq!(tag_of(a2, &labels, &idx), Tag::App("Uniswap".into()));
        // upward propagation: only the *descendant* is labeled
        let mut labels2 = Labels::new();
        labels2.set(a3, "Uniswap");
        assert_eq!(tag_of(a1, &labels2, &idx), Tag::App("Uniswap".into()));
    }

    #[test]
    fn fig7b_untagged_tree_uses_root_address() {
        let b1 = Address::from_u64(11);
        let b2 = Address::from_u64(12);
        let b3 = Address::from_u64(13);
        let labels = Labels::new();
        let idx = CreationIndex::new(&[rec(b1, b2), rec(b2, b3)]);
        assert_eq!(tag_of(b3, &labels, &idx), Tag::Root(b1));
        assert_eq!(tag_of(b2, &labels, &idx), Tag::Root(b1));
        assert_eq!(tag_of(b1, &labels, &idx), Tag::Root(b1));
        // attacker EOA and its contract share one identity
        assert_eq!(tag_of(b1, &labels, &idx), tag_of(b3, &labels, &idx));
    }

    #[test]
    fn creation_ancestry_is_shared_within_a_tree_and_nowhere_else() {
        // d1 -> d2 -> {d3, d4}; d5 stands alone.
        let d1 = Address::from_u64(31);
        let d2 = Address::from_u64(32);
        let d3 = Address::from_u64(33);
        let d4 = Address::from_u64(34);
        let d5 = Address::from_u64(35);
        let idx = CreationIndex::new(&[rec(d1, d2), rec(d2, d3), rec(d2, d4)]);
        assert!(shares_creation_ancestry(d3, d4, &idx));
        assert!(shares_creation_ancestry(d1, d4, &idx));
        assert!(shares_creation_ancestry(d3, d3, &idx));
        assert!(!shares_creation_ancestry(d3, d5, &idx));
        assert!(!shares_creation_ancestry(Address::ZERO, d1, &idx));
        assert!(!shares_creation_ancestry(d1, Address::ZERO, &idx));
    }

    #[test]
    fn fig7c_conflicting_tags_stay_unknown() {
        // c1 -> c2("Yearn") ; c1 -> c3("Uniswap"); c4 created by c1
        let c1 = Address::from_u64(21);
        let c2 = Address::from_u64(22);
        let c3 = Address::from_u64(23);
        let c4 = Address::from_u64(24);
        let mut labels = Labels::new();
        labels.set(c2, "Yearn");
        labels.set(c3, "Uniswap");
        let idx = CreationIndex::new(&[rec(c1, c2), rec(c1, c3), rec(c1, c4)]);
        assert_eq!(tag_of(c1, &labels, &idx), Tag::Unknown(c1));
        // c4's ancestors (c1) are unlabeled and it has no descendants:
        // its tag set is empty -> Root(c1).
        assert_eq!(tag_of(c4, &labels, &idx), Tag::Root(c1));
        assert!(tag_of(c1, &labels, &idx).is_unknown());
    }

    #[test]
    fn black_hole_is_special() {
        let labels = Labels::new();
        let idx = CreationIndex::new(&[]);
        assert_eq!(tag_of(Address::ZERO, &labels, &idx), Tag::BlackHole);
        assert!(Tag::BlackHole.is_black_hole());
    }

    #[test]
    fn tag_transfers_maps_both_sides() {
        let uni_deployer = Address::from_u64(1);
        let pool = Address::from_u64(2);
        let attacker = Address::from_u64(3);
        let attack_contract = Address::from_u64(4);
        let mut labels = Labels::new();
        labels.set(uni_deployer, "Uniswap");
        let idx = CreationIndex::new(&[rec(uni_deployer, pool), rec(attacker, attack_contract)]);
        let transfers = vec![
            Transfer {
                seq: 0,
                sender: attack_contract,
                receiver: pool,
                amount: 10,
                token: TokenId::ETH,
            },
            Transfer {
                seq: 1,
                sender: Address::ZERO,
                receiver: attack_contract,
                amount: 5,
                token: TokenId::from_index(1),
            },
        ];
        let tagged = tag_transfers(&transfers, &labels, &idx);
        assert_eq!(tagged[0].sender, Tag::Root(attacker));
        assert_eq!(tagged[0].receiver, Tag::App("Uniswap".into()));
        assert_eq!(tagged[1].sender, Tag::BlackHole);
        assert_eq!(tagged[1].receiver, Tag::Root(attacker));
        assert_eq!(tagged[0].seq, 0);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Tag::App("Aave".into()).to_string(), "Aave");
        assert_eq!(Tag::BlackHole.to_string(), "BlackHole");
        assert!(Tag::Root(Address::from_u64(1)).to_string().starts_with("root:"));
        assert!(Tag::Unknown(Address::from_u64(1)).to_string().starts_with('?'));
    }

    #[test]
    fn app_name_accessor() {
        assert_eq!(Tag::App("X".into()).app_name(), Some("X"));
        assert_eq!(Tag::BlackHole.app_name(), None);
    }
}

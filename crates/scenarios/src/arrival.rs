//! Arrival curves: deterministic block-boundary schedules for the stream.
//!
//! The streaming service ([`leishen::stream`]) consumes a corpus one
//! block at a time; *how* the corpus is cut into blocks — and how fast
//! those blocks arrive — is the arrival curve. The batch≡stream
//! equivalence contract says the cut must never matter for verdicts, so
//! the curves here exist to (a) drive that property over interesting
//! partitions and (b) give the `stream` bench realistic load shapes:
//!
//! * [`ArrivalCurve::Steady`] — the block clock: fixed-size blocks at a
//!   fixed cadence, the paper's "monitor each new block" deployment.
//! * [`ArrivalCurve::Bursty`] — mempool weather: block sizes drawn from
//!   a seeded spread around a mean, with periodic burst blocks several
//!   times the mean, back-to-back (zero gap) like a reorg flush.
//! * [`ArrivalCurve::Adversarial`] — burst-of-attacks: long quiet
//!   stretches of small blocks, then every marked transaction run
//!   packed into single oversized blocks, modelling an attacker
//!   landing a multi-tx exploit in one block while the scanner is
//!   saturated.
//!
//! A curve is pure data: [`ArrivalCurve::blocks`] partitions `0..n`
//! into contiguous index ranges (every index exactly once, in order),
//! and [`ArrivalCurve::gaps_us`] yields the inter-arrival gap before
//! each block for benches that replay against a clock. Both are
//! deterministic in the seed, so a CI failure reproduces from the log
//! line.

use std::ops::Range;

/// A deterministic xorshift generator, matching the repo's convention
/// of small seeded PRNGs over external randomness.
#[derive(Clone, Debug)]
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point while keeping seed 0 usable.
        Xorshift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `[lo, hi]` (inclusive).
    fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next() as usize) % (hi - lo + 1)
    }
}

/// How a corpus of `n` transactions arrives at the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArrivalCurve {
    /// Fixed-size blocks on a fixed clock.
    Steady {
        /// Transactions per block (minimum 1).
        block_size: usize,
        /// Gap before each block, microseconds.
        gap_us: u64,
    },
    /// Seeded variation around `mean`, with every `period`-th block a
    /// burst of `burst × mean` transactions arriving with zero gap.
    Bursty {
        /// PRNG seed; the same seed reproduces the same schedule.
        seed: u64,
        /// Mean block size (minimum 1).
        mean: usize,
        /// Burst multiplier (burst blocks carry `burst * mean` txs).
        burst: usize,
        /// Every `period`-th block bursts (minimum 2).
        period: usize,
        /// Gap before each non-burst block, microseconds.
        gap_us: u64,
    },
    /// Quiet single/small blocks, except each contiguous run of
    /// *marked* transactions (the attacks) lands as one packed block.
    /// Built via [`ArrivalCurve::adversarial`], which captures the
    /// marks.
    Adversarial {
        /// PRNG seed for the quiet-stretch block sizes.
        seed: u64,
        /// Maximum quiet-block size (minimum 1).
        quiet: usize,
        /// Which transactions are attack-marked, by corpus index.
        marks: Vec<bool>,
    },
}

impl ArrivalCurve {
    /// A steady clock of `block_size`-transaction blocks.
    pub fn steady(block_size: usize) -> Self {
        ArrivalCurve::Steady {
            block_size: block_size.max(1),
            gap_us: 1_000,
        }
    }

    /// The bench's default bursty curve.
    pub fn bursty(seed: u64, mean: usize) -> Self {
        ArrivalCurve::Bursty {
            seed,
            mean: mean.max(1),
            burst: 8,
            period: 5,
            gap_us: 500,
        }
    }

    /// An adversarial burst-of-attacks curve: `marks[i]` is true when
    /// corpus index `i` is an attack transaction.
    pub fn adversarial(seed: u64, quiet: usize, marks: Vec<bool>) -> Self {
        ArrivalCurve::Adversarial {
            seed,
            quiet: quiet.max(1),
            marks,
        }
    }

    /// Stable name for reports: `steady`, `bursty`, `adversarial`.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalCurve::Steady { .. } => "steady",
            ArrivalCurve::Bursty { .. } => "bursty",
            ArrivalCurve::Adversarial { .. } => "adversarial",
        }
    }

    /// Partitions `0..n` into block index ranges: contiguous, in order,
    /// every index exactly once — the invariant the equivalence
    /// proptests rely on (`partition_covers_corpus` pins it here too).
    pub fn blocks(&self, n: usize) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        match self {
            ArrivalCurve::Steady { block_size, .. } => {
                let mut start = 0;
                while start < n {
                    let end = (start + block_size).min(n);
                    out.push(start..end);
                    start = end;
                }
            }
            ArrivalCurve::Bursty {
                seed,
                mean,
                burst,
                period,
                ..
            } => {
                let mut rng = Xorshift::new(*seed);
                let period = (*period).max(2);
                let mut start = 0;
                let mut i = 0usize;
                while start < n {
                    let size = if i % period == period - 1 {
                        (mean * burst).max(1)
                    } else {
                        rng.in_range(1, mean * 2)
                    };
                    let end = (start + size).min(n);
                    out.push(start..end);
                    start = end;
                    i += 1;
                }
            }
            ArrivalCurve::Adversarial { seed, quiet, marks } => {
                let mut rng = Xorshift::new(*seed);
                let marked = |i: usize| marks.get(i).copied().unwrap_or(false);
                let mut start = 0;
                while start < n {
                    let end = if marked(start) {
                        // Pack the whole contiguous attack run into one
                        // oversized block.
                        let mut end = start + 1;
                        while end < n && marked(end) {
                            end += 1;
                        }
                        end
                    } else {
                        let mut end = (start + rng.in_range(1, *quiet)).min(n);
                        // Stop the quiet block at the first mark so the
                        // attack run starts on a block boundary.
                        if let Some(first) = (start..end).find(|&i| marked(i)) {
                            end = end.min(first.max(start + 1));
                        }
                        end
                    };
                    out.push(start..end);
                    start = end;
                }
            }
        }
        out
    }

    /// The inter-arrival gap (microseconds) before each of `blocks`,
    /// for benches replaying the schedule against a wall clock. Burst
    /// blocks arrive back-to-back (gap 0).
    pub fn gaps_us(&self, blocks: &[Range<usize>]) -> Vec<u64> {
        match self {
            ArrivalCurve::Steady { gap_us, .. } => vec![*gap_us; blocks.len()],
            ArrivalCurve::Bursty {
                mean,
                burst,
                gap_us,
                ..
            } => blocks
                .iter()
                .map(|b| if b.len() >= mean * burst { 0 } else { *gap_us })
                .collect(),
            ArrivalCurve::Adversarial { quiet, .. } => blocks
                .iter()
                .map(|b| if b.len() > *quiet { 0 } else { 200 })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(blocks: &[Range<usize>], n: usize) {
        let mut next = 0;
        for b in blocks {
            assert_eq!(b.start, next, "blocks must be contiguous and ordered");
            assert!(b.end > b.start, "blocks must be non-empty");
            next = b.end;
        }
        assert_eq!(next, n, "blocks must cover the whole corpus");
    }

    #[test]
    fn partition_covers_corpus() {
        for n in [0usize, 1, 7, 100, 257] {
            assert_partition(&ArrivalCurve::steady(10).blocks(n), n);
            assert_partition(&ArrivalCurve::bursty(42, 6).blocks(n), n);
            let marks: Vec<bool> = (0..n).map(|i| i % 11 < 3).collect();
            assert_partition(&ArrivalCurve::adversarial(42, 4, marks).blocks(n), n);
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = ArrivalCurve::bursty(7, 5).blocks(200);
        let b = ArrivalCurve::bursty(7, 5).blocks(200);
        assert_eq!(a, b);
        let c = ArrivalCurve::bursty(8, 5).blocks(200);
        assert_ne!(a, c, "different seeds should cut differently");
    }

    #[test]
    fn bursty_curve_actually_bursts() {
        let curve = ArrivalCurve::bursty(42, 5);
        let blocks = curve.blocks(500);
        let max = blocks.iter().map(Range::len).max().unwrap();
        assert!(max >= 40, "expected a burst block of 8x mean, got {max}");
        let gaps = curve.gaps_us(&blocks);
        assert!(gaps.contains(&0), "bursts arrive back-to-back");
        assert!(gaps.iter().any(|&g| g > 0), "quiet blocks keep the clock");
    }

    #[test]
    fn adversarial_packs_attack_runs_into_single_blocks() {
        let n = 60;
        // Attacks at 20..28 and 45..50.
        let marks: Vec<bool> = (0..n).map(|i| (20..28).contains(&i) || (45..50).contains(&i)).collect();
        let blocks = ArrivalCurve::adversarial(3, 4, marks).blocks(n);
        assert_partition(&blocks, n);
        assert!(blocks.contains(&(20..28)), "attack run must be one block: {blocks:?}");
        assert!(blocks.contains(&(45..50)), "attack run must be one block: {blocks:?}");
    }
}

//! bZx-style margin trading.
//!
//! In bZx-1 (paper Fig. 3, step 3–4) the attacker "transfers 1,300 ETH to
//! make a margin trade on bZx. Financed by bZx, the margin trade exchanges
//! 5,637 ETH for 51 WBTC on Uniswap, which promotes the price of WBTC up to
//! 110.5 ETH/WBTC". The desk swaps *its own treasury* at the trader's
//! direction — the trader only posts margin — so the desk, not the trader,
//! eats the loss when the pumped position collapses.

use ethsim::state::SKey;
use ethsim::{math, Address, Chain, LogValue, Result, SimError, TokenId, TxContext};

use crate::amm::UniswapV2Pair;
use crate::labels::LabelService;

/// Per-user margin posted.
const SLOT_MARGIN: u16 = 0;
/// Per-user position size (target token units held by the desk for them).
const SLOT_POSITION: u16 = 1;

/// A margin-trading desk financed by its own treasury.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MarginDesk {
    /// Desk contract account.
    pub address: Address,
    /// The funding asset (what margin is posted in and what the desk
    /// spends), typically ETH.
    pub funding: TokenId,
    /// Maximum leverage in basis points over posted margin
    /// (50_000 = 5×, bZx's Fulcrum offered 5×).
    pub max_leverage_bps: u32,
}

impl MarginDesk {
    /// Deploys the desk and labels it.
    ///
    /// # Errors
    /// Propagates substrate errors.
    pub fn deploy(
        chain: &mut Chain,
        labels: &mut LabelService,
        deployer: Address,
        funding: TokenId,
        max_leverage_bps: u32,
        app_label: &str,
    ) -> Result<MarginDesk> {
        let mut address = None;
        chain.execute(deployer, deployer, "deployDesk", |ctx| {
            address = Some(ctx.create_contract(deployer)?);
            Ok(())
        })?;
        let address = address.expect("deploy closure ran");
        labels.set(deployer, app_label);
        labels.set(address, app_label);
        Ok(MarginDesk {
            address,
            funding,
            max_leverage_bps,
        })
    }

    fn margin_key(who: Address) -> SKey {
        SKey::AddrMap(SLOT_MARGIN, who)
    }
    fn position_key(who: Address) -> SKey {
        SKey::AddrMap(SLOT_POSITION, who)
    }

    /// Margin currently posted by `who`.
    pub fn margin_of(&self, ctx: &TxContext<'_>, who: Address) -> u128 {
        ctx.sload(self.address, Self::margin_key(who))
    }

    /// Open position size of `who` in target-token units.
    pub fn position_of(&self, ctx: &TxContext<'_>, who: Address) -> u128 {
        ctx.sload(self.address, Self::position_key(who))
    }

    /// Opens a leveraged long: `who` posts `margin`, and the desk swaps
    /// `margin × leverage` of **its own treasury** through `pair` into the
    /// target token, holding the position in custody.
    ///
    /// Transfer shape: `(who → desk, funding)` then a desk↔pair swap — the
    /// desk↔pair leg is the pump LeiShen must attribute to the *borrower*
    /// via app-level conversion (paper §VI-B: DeFiRanger misses "the trade
    /// between bZx and Uniswap").
    ///
    /// # Errors
    /// Reverts on zero margin, excessive leverage, or a treasury shortfall.
    pub fn open_long(
        &self,
        ctx: &mut TxContext<'_>,
        who: Address,
        margin: u128,
        leverage_bps: u32,
        pair: &UniswapV2Pair,
    ) -> Result<u128> {
        let desk = *self;
        let pair = *pair;
        ctx.call(who, self.address, "marginTrade", 0, |ctx| {
            if margin == 0 {
                return Err(SimError::revert("zero margin"));
            }
            if leverage_bps > desk.max_leverage_bps {
                return Err(SimError::revert("leverage above maximum"));
            }
            if !pair.has_token(desk.funding) {
                return Err(SimError::revert("pair lacks funding token"));
            }
            ctx.transfer_token(desk.funding, who, desk.address, margin)?;
            let m = math::add(desk.margin_of(ctx, who), margin)?;
            ctx.sstore(desk.address, Self::margin_key(who), m);

            let notional = math::mul_div(margin, leverage_bps as u128, 10_000)?;
            let treasury = ctx.balance(desk.funding, desk.address);
            if treasury < notional {
                return Err(SimError::revert("desk treasury shortfall"));
            }
            let bought = pair.swap_exact_in(ctx, desk.address, desk.funding, notional, 0)?;
            let pos = math::add(desk.position_of(ctx, who), bought)?;
            ctx.sstore(desk.address, Self::position_key(who), pos);
            ctx.emit_log(
                desk.address,
                "MarginTradeOpened",
                vec![
                    ("trader".into(), LogValue::Addr(who)),
                    ("margin".into(), LogValue::Amount(margin)),
                    ("notional".into(), LogValue::Amount(notional)),
                    ("positionDelta".into(), LogValue::Amount(bought)),
                ],
            );
            Ok(bought)
        })
    }

    /// Closes the position: the desk sells the custody tokens back through
    /// `pair` and returns the trader's margin plus/minus PnL (clamped at
    /// zero — losses beyond margin are the desk's, which is the point of
    /// the attack).
    ///
    /// # Errors
    /// Reverts when `who` has no open position.
    pub fn close_long(
        &self,
        ctx: &mut TxContext<'_>,
        who: Address,
        pair: &UniswapV2Pair,
    ) -> Result<u128> {
        let desk = *self;
        let pair = *pair;
        ctx.call(who, self.address, "closeTrade", 0, |ctx| {
            let pos = desk.position_of(ctx, who);
            if pos == 0 {
                return Err(SimError::revert("no open position"));
            }
            let target = pair.other(desk.funding);
            let proceeds = pair.swap_exact_in(ctx, desk.address, target, pos, 0)?;
            ctx.sstore(desk.address, Self::position_key(who), 0);
            let margin = desk.margin_of(ctx, who);
            ctx.sstore(desk.address, Self::margin_key(who), 0);
            // Return margin; PnL settles against the desk treasury.
            let payout = margin.min(ctx.balance(desk.funding, desk.address));
            ctx.transfer_token(desk.funding, desk.address, who, payout)?;
            ctx.emit_log(
                desk.address,
                "MarginTradeClosed",
                vec![
                    ("trader".into(), LogValue::Addr(who)),
                    ("proceeds".into(), LogValue::Amount(proceeds)),
                    ("payout".into(), LogValue::Amount(payout)),
                ],
            );
            Ok(payout)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amm::UniswapV2Factory;
    use ethsim::ChainConfig;

    const E18: u128 = 1_000_000_000_000_000_000;
    const E8: u128 = 100_000_000;

    fn setup() -> (Chain, MarginDesk, UniswapV2Pair, Address, TokenId) {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("bzx deployer");
        let whale = chain.create_eoa("whale");
        let trader = chain.create_eoa("trader");
        let eth = TokenId::ETH;
        let mut wbtc = None;
        chain
            .execute(deployer, deployer, "deployToken", |ctx| {
                let c = ctx.create_contract(deployer)?;
                wbtc = Some(ctx.register_token("WBTC", 8, c));
                Ok(())
            })
            .unwrap();
        let wbtc = wbtc.unwrap();
        let factory =
            UniswapV2Factory::deploy_canonical(&mut chain, &mut labels, deployer).unwrap();
        let pair = UniswapV2Pair::deploy(&mut chain, &factory, eth, wbtc, "UNI ETH/WBTC").unwrap();
        let desk =
            MarginDesk::deploy(&mut chain, &mut labels, deployer, eth, 50_000, "bZx").unwrap();
        chain.state_mut().credit_eth(whale, 100_000 * E18).unwrap();
        chain.state_mut().credit_eth(trader, 2_000 * E18).unwrap();
        chain
            .execute(whale, pair.address, "seed", |ctx| {
                ctx.mint_token(wbtc, whale, 500 * E8)?;
                pair.add_liquidity(ctx, whale, 10_000 * E18, 200 * E8)?;
                // desk treasury
                ctx.transfer_eth(whale, desk.address, 20_000 * E18)?;
                Ok(())
            })
            .unwrap();
        (chain, desk, pair, trader, wbtc)
    }

    #[test]
    fn open_long_pumps_the_pool() {
        let (mut chain, desk, pair, trader, _) = setup();
        chain
            .execute(trader, desk.address, "pump", |ctx| {
                let p0 = pair.spot_price(ctx, pair.other(desk.funding))?;
                let pos = desk.open_long(ctx, trader, 1_300 * E18, 43_400, &pair)?;
                assert!(pos > 0);
                let p1 = pair.spot_price(ctx, pair.other(desk.funding))?;
                assert!(p1 > p0 * 1.5, "large financed buy pumps WBTC: {p0} -> {p1}");
                assert_eq!(desk.margin_of(ctx, trader), 1_300 * E18);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn leverage_cap_enforced() {
        let (mut chain, desk, pair, trader, _) = setup();
        let tx = chain
            .execute(trader, desk.address, "greedy", |ctx| {
                desk.open_long(ctx, trader, 100 * E18, 90_000, &pair)?;
                Ok(())
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }

    #[test]
    fn desk_absorbs_losses_on_round_trip() {
        let (mut chain, desk, pair, trader, _) = setup();
        chain
            .execute(trader, desk.address, "cycle", |ctx| {
                let treasury_before = ctx.balance(desk.funding, desk.address);
                desk.open_long(ctx, trader, 500 * E18, 40_000, &pair)?;
                desk.close_long(ctx, trader, &pair)?;
                let treasury_after = ctx.balance(desk.funding, desk.address);
                // Fees + self-induced slippage: the desk ends below where it
                // started, trader got margin back.
                assert!(treasury_after < treasury_before);
                assert_eq!(ctx.balance(desk.funding, trader), 2_000 * E18);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn close_without_position_reverts() {
        let (mut chain, desk, pair, trader, _) = setup();
        let tx = chain
            .execute(trader, desk.address, "close", |ctx| {
                desk.close_long(ctx, trader, &pair)?;
                Ok(())
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }
}

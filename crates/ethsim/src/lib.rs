//! # ethsim — a deterministic Ethereum-like execution substrate
//!
//! This crate is the blockchain substrate for the LeiShen reproduction
//! (*Detecting Flash Loan Based Attacks in Ethereum*, ICDCS 2023). The paper
//! runs against a modified Geth archive node whose only role, from the
//! detector's perspective, is to replay a transaction and hand back:
//!
//! * the **totally ordered history of asset transfers** (native ETH transfers
//!   interleaved with ERC20 `Transfer` events in happened-before order — the
//!   authors' Geth patch exists precisely to recover this ordering),
//! * the **call frames** (function names of internal transactions) and
//!   **event logs** used to identify flash-loan transactions (paper Table II),
//! * the **contract-creation relationships** used by account tagging
//!   (the XBlock-ETH dataset in the paper).
//!
//! `ethsim` reproduces exactly that interface with an in-memory, journaled
//! world state. Contracts are modelled as Rust routines that manipulate
//! journaled storage through a [`TxContext`]; a transaction either commits or
//! reverts atomically, which is the property flash loans rely on.
//!
//! ## Quick tour
//!
//! ```
//! use ethsim::{Chain, ChainConfig, Address};
//!
//! # fn main() -> Result<(), ethsim::SimError> {
//! let mut chain = Chain::new(ChainConfig::default());
//! let alice = chain.create_eoa("alice");
//! let bob = chain.create_eoa("bob");
//! chain.state_mut().credit_eth(alice, 1_000)?;
//!
//! let tx = chain.execute(alice, bob, "transfer", |ctx| {
//!     ctx.transfer_eth(alice, bob, 250)
//! })?;
//!
//! let record = chain.replay(tx).expect("tx was recorded");
//! assert!(record.status.is_success());
//! assert_eq!(record.trace.transfers.len(), 1);
//! assert_eq!(chain.state().eth_balance(bob), 250);
//! # Ok(())
//! # }
//! ```
//!
//! The modules mirror the system inventory in `DESIGN.md`:
//!
//! * [`address`] — 160-bit account identifiers,
//! * [`token`] — the token registry (ETH plus ERC20-style tokens),
//! * [`math`] — overflow-checked amount arithmetic including 256-bit
//!   intermediate `mul_div`,
//! * [`state`] — journaled world state with atomic revert,
//! * [`transfer`], [`log`], [`frame`] — the per-transaction trace,
//! * [`context`] — the execution context contracts run in,
//! * [`chain`] — blocks, timestamps, transaction execution and replay,
//! * [`creation`] — the contract-creation dataset and index,
//! * [`calendar`] — block-timestamp → calendar conversion for the weekly /
//!   monthly series in the paper's Fig. 1 and Fig. 8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod calendar;
pub mod chain;
pub mod context;
pub mod creation;
pub mod error;
pub mod frame;
pub mod log;
pub mod math;
pub mod state;
pub mod token;
pub mod transfer;
pub mod tx;
pub mod validate;

pub use address::Address;
pub use calendar::{Date, MonthIndex, WeekIndex};
pub use chain::{Chain, ChainConfig, ExecStats};
pub use context::TxContext;
pub use creation::{CreationIndex, CreationRecord};
pub use error::SimError;
pub use frame::CallFrame;
pub use log::{EventLog, LogValue};
pub use state::{AccountKind, SKey, WorldState};
pub use token::{TokenId, TokenInfo};
pub use transfer::Transfer;
pub use tx::{SpanId, TxId, TxRecord, TxStatus, TxTrace};
pub use validate::{validate_record, RecordViolation, MAX_AMOUNT};

/// Convenience result alias used throughout the substrate.
pub type Result<T> = std::result::Result<T, SimError>;

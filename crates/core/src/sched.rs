//! Locality- and conflict-aware scheduling for batch scans.
//!
//! The [`crate::scan::ScanEngine`] used to cut a batch into fixed-size
//! chunks in input order and let workers steal them blindly. That keeps
//! every worker busy but ignores *what the transactions touch*: two
//! transactions hitting the same venue, flash-loan provider, or attacker
//! creation tree resolve the same tags, so scattering them across workers
//! multiplies cold front misses and shard-lock traffic on the shared
//! [`crate::scan::TagCache`], while putting them back to back on one
//! worker turns the second resolution into an unsynchronized local hit.
//!
//! This module plans a batch before any worker starts, in three layers:
//!
//! 1. **Access-set estimation** ([`access_set`]) — a cheap pre-pass over
//!    each [`TxRecord`]'s transfer journal that collects the
//!    creation-tree roots of every touched address (initiator, entry
//!    point, and both sides of every transfer), reusing the
//!    [`CreationIndex`] ancestry the tagging stage walks anyway. The root
//!    is exactly the identity tag propagation groups by (Fig. 7b), so two
//!    transactions with overlapping root sets will resolve overlapping
//!    tag sets.
//! 2. **Affinity partitioning** ([`WavePlan::build`]) — a union-find pass
//!    clusters transactions whose access sets overlap (shared ancestry ⇒
//!    shared cache working set), then lays the clusters out in *waves* in
//!    the spirit of pevm-style maximal-independent-set scheduling: each
//!    wave holds at most one chunk per cluster, so chunks running
//!    concurrently come from *disjoint* clusters and touch disjoint
//!    working sets, while consecutive chunks of one cluster reuse a hot
//!    front. Chunk size adapts to the batch: small batches get small
//!    chunks so every worker still gets work, large batches get chunks
//!    capped by the engine's configured hint.
//! 3. **Contention telemetry** ([`SchedStats`]) — the plan's shape
//!    (clusters, waves, chunks, adaptive chunk size) plus the engine's
//!    steal-retry count, delivered through
//!    [`MetricsSink::scheduled`](crate::telemetry::MetricsSink::scheduled)
//!    so benches can attribute scaling wins next to the cache's hit-rate
//!    and shard-contention counters.
//!
//! The plan is a pure reordering: [`WavePlan::order`] is a permutation of
//! the input indices, and the engine scatters verdicts back to input
//! positions, so a scheduled scan stays byte-for-byte identical to the
//! serial loop — the wave structure changes *when* a transaction is
//! analyzed, never *what* its analysis is.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::ops::Range;

use ethsim::{Address, CreationIndex, TxRecord};

use crate::scan::BuildFnv;

/// How many chunks per worker a wave aims for. More chunks balance
/// stealing better; fewer amortize queue traffic. Four keeps the tail
/// (the last, partially filled wave) short without flooding the injector.
const CHUNKS_PER_WORKER: usize = 4;

/// The creation-tree roots `tx` touches: the root of the initiator, of
/// the entry-point contract, and of both sides of every journal transfer
/// (the zero address is skipped — it is the black hole, not an account).
///
/// Roots rather than raw addresses because the root is the identity the
/// tagging stage groups by: a mixer-laundered deposit address and the
/// attack contract it funds sit in one creation tree, so both map to the
/// same root and land in the same cluster. The set is deduplicated and
/// tiny (a handful of roots per transaction), so it is kept as a plain
/// vector.
pub fn access_set(tx: &TxRecord, creations: &CreationIndex) -> Vec<Address> {
    fn push(roots: &mut Vec<Address>, creations: &CreationIndex, addr: Address) {
        if addr.is_zero() {
            return;
        }
        let root = creations.root(addr);
        if !roots.contains(&root) {
            roots.push(root);
        }
    }
    let mut roots = Vec::with_capacity(8);
    push(&mut roots, creations, tx.from);
    push(&mut roots, creations, tx.to);
    for t in &tx.trace.transfers {
        push(&mut roots, creations, t.sender);
        push(&mut roots, creations, t.receiver);
    }
    roots
}

/// Union-find over transaction indices, with the *minimum* index as every
/// set's representative so cluster identity is deterministic and clusters
/// come out ordered by their first transaction.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut i: u32) -> u32 {
        // Path halving: every probe shortcuts grandparent links.
        while self.parent[i as usize] != i {
            let p = self.parent[i as usize];
            self.parent[i as usize] = self.parent[p as usize];
            i = self.parent[i as usize];
        }
        i
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
    }
}

/// One schedulable chunk: a contiguous span of [`WavePlan::order`], all
/// from one cluster, assigned to one wave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ChunkSpan {
    start: u32,
    end: u32,
    wave: u32,
}

/// Shape of one scheduled batch, reported through
/// [`MetricsSink::scheduled`](crate::telemetry::MetricsSink::scheduled)
/// and surfaced by the throughput bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Transactions planned.
    pub transactions: usize,
    /// Affinity clusters found (0 for a naive, unscheduled plan).
    pub clusters: usize,
    /// Waves the chunks were laid out into.
    pub waves: usize,
    /// Work items pushed to the stealing queue.
    pub chunks: usize,
    /// The adaptive chunk size the plan settled on.
    pub chunk_size: usize,
    /// Transactions in the largest single cluster — when this approaches
    /// the batch size the corpus is one giant conflict component and
    /// scheduling degenerates to ordered chunking.
    pub largest_cluster: usize,
    /// Failed steal attempts across all workers (filled in by the engine
    /// after the scan; 0 in the plan itself).
    pub steal_retries: u64,
}

/// A conflict-aware execution plan for one batch: a permutation of the
/// input indices plus the chunk spans workers steal.
#[derive(Clone, Debug)]
pub struct WavePlan {
    /// Wave-major permutation of `0..n`: the scan processes
    /// `txs[order[i]]` at schedule position `i`.
    order: Vec<u32>,
    chunks: Vec<ChunkSpan>,
    stats: SchedStats,
}

impl WavePlan {
    /// Plans `txs` for `workers` workers: access sets → union-find
    /// clusters → wave layout, with the chunk size adapted to the batch
    /// (never above `chunk_hint`, shrinking for small batches so each
    /// wave still spreads across the pool).
    ///
    /// Clusters no larger than `chunk_hint` are kept **whole** — their
    /// transactions always share a chunk, so one worker front serves the
    /// whole conflict set — and small clusters are packed together up to
    /// the adaptive target so singleton transactions do not flood the
    /// queue with one-item chunks. Only clusters larger than the hint
    /// split, into hint-sized pieces laid out across consecutive waves.
    pub fn build(
        txs: &[&TxRecord],
        creations: &CreationIndex,
        workers: usize,
        chunk_hint: usize,
    ) -> WavePlan {
        let n = txs.len();
        let workers = workers.max(1);
        let hint = chunk_hint.max(1);
        let chunk_size = adaptive_chunk_size(n, workers, chunk_hint);

        // Cluster by shared creation-tree roots: the first transaction to
        // touch a root owns it; later ones union into the owner's set.
        let mut uf = UnionFind::new(n);
        let mut owner: HashMap<Address, u32, BuildFnv> =
            HashMap::with_capacity_and_hasher(n * 2, BuildFnv::default());
        for (i, tx) in txs.iter().enumerate() {
            for root in access_set(tx, creations) {
                match owner.entry(root) {
                    Entry::Occupied(e) => uf.union(i as u32, *e.get()),
                    Entry::Vacant(e) => {
                        e.insert(i as u32);
                    }
                }
            }
        }

        // Materialize clusters in first-transaction order; members stay
        // in input order within each cluster.
        let mut cluster_of_rep: HashMap<u32, u32, BuildFnv> = HashMap::default();
        let mut clusters: Vec<Vec<u32>> = Vec::new();
        for i in 0..n as u32 {
            let rep = uf.find(i);
            let c = *cluster_of_rep.entry(rep).or_insert_with(|| {
                clusters.push(Vec::new());
                (clusters.len() - 1) as u32
            });
            clusters[c as usize].push(i);
        }

        // Wave layout: wave `w` takes the `w`-th hint-sized piece of
        // every cluster, so a wave's pieces never share a cluster —
        // disjoint access sets run concurrently — while an oversized
        // cluster's own pieces run wave after wave over a warm front.
        // Within a wave, consecutive small pieces pack into one chunk up
        // to the adaptive target (a piece is never split, so a cluster
        // that fits the hint always stays chunk-whole).
        let waves = clusters
            .iter()
            .map(|c| c.len().div_ceil(hint))
            .max()
            .unwrap_or(0);
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut chunks: Vec<ChunkSpan> = Vec::new();
        for wave in 0..waves {
            let mut open: Option<u32> = None;
            let mut flush = |open: &mut Option<u32>, order: &Vec<u32>| {
                if let Some(start) = open.take() {
                    chunks.push(ChunkSpan {
                        start,
                        end: order.len() as u32,
                        wave: wave as u32,
                    });
                }
            };
            for cluster in &clusters {
                let lo = wave * hint;
                if lo >= cluster.len() {
                    continue;
                }
                let hi = (lo + hint).min(cluster.len());
                let piece = &cluster[lo..hi];
                if let Some(start) = open {
                    if order.len() - start as usize + piece.len() > chunk_size {
                        flush(&mut open, &order);
                    }
                }
                let start = *open.get_or_insert(order.len() as u32);
                order.extend_from_slice(piece);
                if order.len() - start as usize >= chunk_size {
                    flush(&mut open, &order);
                }
            }
            flush(&mut open, &order);
        }

        let stats = SchedStats {
            transactions: n,
            clusters: clusters.len(),
            waves,
            chunks: chunks.len(),
            chunk_size,
            largest_cluster: clusters.iter().map(Vec::len).max().unwrap_or(0),
            steal_retries: 0,
        };
        WavePlan {
            order,
            chunks,
            stats,
        }
    }

    /// The blind legacy layout: identity order, fixed `chunk_size`
    /// chunks, no clustering. Kept so the bench can measure scheduled vs
    /// naive on the same engine code path.
    pub fn naive(n: usize, chunk_size: usize) -> WavePlan {
        let chunk_size = chunk_size.max(1);
        let order: Vec<u32> = (0..n as u32).collect();
        let chunks: Vec<ChunkSpan> = (0..n)
            .step_by(chunk_size)
            .enumerate()
            .map(|(i, start)| ChunkSpan {
                start: start as u32,
                end: ((start + chunk_size).min(n)) as u32,
                wave: i as u32,
            })
            .collect();
        let stats = SchedStats {
            transactions: n,
            clusters: 0,
            waves: chunks.len(),
            chunks: chunks.len(),
            chunk_size,
            largest_cluster: 0,
            steal_retries: 0,
        };
        WavePlan {
            order,
            chunks,
            stats,
        }
    }

    /// The wave-major permutation of input indices.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Number of stealable work items.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The schedule positions covered by chunk `i` (index into
    /// [`WavePlan::order`]).
    pub fn chunk_range(&self, i: usize) -> Range<usize> {
        let c = self.chunks[i];
        c.start as usize..c.end as usize
    }

    /// The *input* indices chunk `i` analyzes.
    pub fn chunk_indices(&self, i: usize) -> &[u32] {
        &self.order[self.chunk_range(i)]
    }

    /// Which wave chunk `i` belongs to.
    pub fn wave_of(&self, i: usize) -> usize {
        self.chunks[i].wave as usize
    }

    /// The plan's shape (with `steal_retries` still zero).
    pub fn stats(&self) -> SchedStats {
        self.stats
    }
}

/// The chunk size for a batch of `n` over `workers` workers: aim for
/// [`CHUNKS_PER_WORKER`] chunks per worker, never exceeding the engine's
/// configured `chunk_hint` and never below 1. A 64-transaction batch on 4
/// workers gets 4-transaction chunks (every worker busy); a 10k batch
/// keeps the hint-sized chunks that amortize queue traffic.
fn adaptive_chunk_size(n: usize, workers: usize, chunk_hint: usize) -> usize {
    n.div_ceil(workers.max(1) * CHUNKS_PER_WORKER)
        .clamp(1, chunk_hint.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{CreationRecord, Transfer, TokenId, TxId, TxStatus, TxTrace};

    /// A minimal committed transaction whose journal moves one token
    /// between `sender` and `receiver`.
    fn tx(id: u64, from: u64, to: u64, sender: u64, receiver: u64) -> TxRecord {
        TxRecord {
            id: TxId(id),
            block: 0,
            timestamp: 0,
            from: Address::from_u64(from),
            to: Address::from_u64(to),
            function: "f".into(),
            status: TxStatus::Success,
            trace: TxTrace {
                transfers: vec![Transfer {
                    seq: 0,
                    sender: Address::from_u64(sender),
                    receiver: Address::from_u64(receiver),
                    amount: 1,
                    token: TokenId::ETH,
                }],
                ..TxTrace::default()
            },
        }
    }

    fn rec(creator: u64, created: u64) -> CreationRecord {
        CreationRecord {
            creator: Address::from_u64(creator),
            created: Address::from_u64(created),
            block: 0,
        }
    }

    #[test]
    fn access_set_maps_addresses_to_roots_and_dedups() {
        // 1 -> 2 -> {3, 4}: everything in the tree resolves to root 1.
        let idx = CreationIndex::new(&[rec(1, 2), rec(2, 3), rec(2, 4)]);
        let t = tx(0, 3, 4, 3, 4);
        assert_eq!(access_set(&t, &idx), vec![Address::from_u64(1)]);

        // The zero address is skipped; unrelated addresses are their own
        // root.
        let mut t2 = tx(1, 3, 99, 0, 0);
        t2.trace.transfers[0].receiver = Address::from_u64(50);
        assert_eq!(
            access_set(&t2, &idx),
            vec![
                Address::from_u64(1),
                Address::from_u64(99),
                Address::from_u64(50)
            ]
        );
    }

    #[test]
    fn mixer_laundered_tx_joins_its_creation_tree_siblings() {
        // A mixer tree: attacker EOA 100 deployed mixer 101, which
        // deployed fresh deposit addresses 102 and 103 — the laundering
        // pattern. One tx touches 102, another 103; they never share an
        // address directly, but share ancestry.
        let idx = CreationIndex::new(&[rec(100, 101), rec(101, 102), rec(101, 103)]);
        let records = [
            tx(0, 102, 200, 102, 200), // mixer child 102
            tx(1, 300, 301, 300, 301), // unrelated
            tx(2, 103, 201, 103, 201), // mixer child 103
        ];
        let txs: Vec<&TxRecord> = records.iter().collect();
        let plan = WavePlan::build(&txs, &idx, 4, 32);
        let stats = plan.stats();
        // tx0 and tx2 must cluster (same root 100) even with tx1 between
        // them; the cluster fits one chunk, so they share a chunk — and
        // therefore a wave and a worker front.
        let chunk_of = |input: u32| {
            (0..plan.chunk_count())
                .find(|&c| plan.chunk_indices(c).contains(&input))
                .expect("every tx is scheduled")
        };
        assert_eq!(chunk_of(0), chunk_of(2), "laundered txs share a chunk");
        assert_ne!(chunk_of(0), chunk_of(1), "the unrelated tx does not");
        assert_eq!(stats.clusters, 2);
        assert_eq!(stats.largest_cluster, 2);
    }

    #[test]
    fn disjoint_txs_spread_across_parallel_chunks_in_one_wave() {
        // Eight transactions over eight disjoint address sets: eight
        // clusters, all schedulable concurrently.
        let idx = CreationIndex::new(&[]);
        let records: Vec<TxRecord> = (0..8)
            .map(|i| tx(i, 1000 + i, 2000 + i, 1000 + i, 2000 + i))
            .collect();
        let txs: Vec<&TxRecord> = records.iter().collect();
        let plan = WavePlan::build(&txs, &idx, 4, 32);
        let stats = plan.stats();
        assert_eq!(stats.clusters, 8, "no false conflicts between disjoint txs");
        assert_eq!(stats.waves, 1, "independent work needs no serialization");
        assert_eq!(stats.chunks, 8);
        assert!(
            stats.chunks >= 4,
            "a 4-worker pool gets at least one chunk per worker"
        );
        for c in 0..plan.chunk_count() {
            assert_eq!(plan.wave_of(c), 0);
        }
    }

    #[test]
    fn order_is_a_permutation_and_chunks_tile_it() {
        let idx = CreationIndex::new(&[rec(1, 2), rec(1, 3)]);
        let records: Vec<TxRecord> = (0..37)
            .map(|i| {
                if i % 5 == 0 {
                    tx(i, 2, 3, 2, 3) // all in root-1's cluster
                } else {
                    tx(i, 500 + i, 600 + i, 500 + i, 600 + i)
                }
            })
            .collect();
        let txs: Vec<&TxRecord> = records.iter().collect();
        for plan in [WavePlan::build(&txs, &idx, 3, 8), WavePlan::naive(37, 8)] {
            let mut seen = [false; 37];
            for &i in plan.order() {
                assert!(!seen[i as usize], "index {i} scheduled twice");
                seen[i as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "every index scheduled");
            // Chunks tile the order exactly, in position order.
            let mut pos = 0;
            for c in 0..plan.chunk_count() {
                let r = plan.chunk_range(c);
                assert_eq!(r.start, pos);
                assert!(r.end > r.start);
                pos = r.end;
            }
            assert_eq!(pos, 37);
        }
    }

    #[test]
    fn one_giant_cluster_degenerates_to_ordered_chunking() {
        // Every tx touches venue 7: one cluster, waves = chunk count,
        // order = input order.
        let idx = CreationIndex::new(&[]);
        let records: Vec<TxRecord> = (0..10).map(|i| tx(i, 100 + i, 7, 100 + i, 7)).collect();
        let txs: Vec<&TxRecord> = records.iter().collect();
        let plan = WavePlan::build(&txs, &idx, 4, 4);
        let stats = plan.stats();
        assert_eq!(stats.clusters, 1);
        assert_eq!(stats.largest_cluster, 10);
        assert_eq!(
            plan.order(),
            (0..10u32).collect::<Vec<_>>().as_slice(),
            "single cluster keeps input order"
        );
        assert_eq!(stats.waves, stats.chunks);
    }

    #[test]
    fn adaptive_chunks_shrink_for_small_batches_and_cap_at_the_hint() {
        // Small batch: 8 txs on 4 workers → chunk size 1 (16 target
        // slots), every worker gets work.
        assert_eq!(adaptive_chunk_size(8, 4, 32), 1);
        // Large batch: the hint caps growth.
        assert_eq!(adaptive_chunk_size(100_000, 4, 32), 32);
        // In between: ceil(724 / 16) = 46 → capped to the hint.
        assert_eq!(adaptive_chunk_size(724, 4, 32), 32);
        assert_eq!(adaptive_chunk_size(724, 8, 64), 23);
        // Degenerate inputs clamp sanely.
        assert_eq!(adaptive_chunk_size(0, 4, 32), 1);
        assert_eq!(adaptive_chunk_size(10, 0, 0), 1);
    }

    #[test]
    fn empty_batch_plans_empty() {
        let idx = CreationIndex::new(&[]);
        let plan = WavePlan::build(&[], &idx, 4, 32);
        assert!(plan.order().is_empty());
        assert_eq!(plan.chunk_count(), 0);
        assert_eq!(plan.stats(), SchedStats { chunk_size: 1, ..SchedStats::default() });
    }
}

//! Asset-transfer simplification (paper §V-B2).
//!
//! Converts tagged account-level transfers into application-level transfers
//! with three rules, applied in the paper's order:
//!
//! 1. **Remove intra-app transfers** — `tag_sender == tag_receiver`; asset
//!    flows inside one application carry no trading information.
//! 2. **Remove WETH-related transfers** — either side tagged
//!    `"Wrapped Ether"`; the WETH token is unified with native ETH in all
//!    remaining transfers (WETH wraps ETH 1:1).
//! 3. **Merge inter-app transfers** — two consecutive transfers of the same
//!    token, nearly the same amount (< 0.1%), through an intermediary
//!    (`tagT_i.receiver == tagT_{i+1}.sender`) collapse into one transfer
//!    that ignores the intermediary; intermediaries are typically yield
//!    aggregators charging a sub-tolerance routing fee.

use ethsim::TokenId;
use serde::{Deserialize, Serialize};

use crate::config::DetectorConfig;
use crate::tagging::{Tag, TaggedTransfer};

/// The Wrapped Ether application tag matched by rule 2.
pub const WETH_TAG: &str = "Wrapped Ether";

/// Which simplification rule dropped a transfer — recorded by
/// decision-provenance tracing so an analyst can see exactly why a
/// journal entry never reached the trade identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropRule {
    /// Rule 1: sender and receiver share a tag.
    IntraApp,
    /// Rule 2: either side is tagged `"Wrapped Ether"`.
    WethRelated,
}

impl DropRule {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DropRule::IntraApp => "intra_app",
            DropRule::WethRelated => "weth_related",
        }
    }

    /// Inverse of [`DropRule::name`].
    pub fn from_name(name: &str) -> Option<DropRule> {
        match name {
            "intra_app" => Some(DropRule::IntraApp),
            "weth_related" => Some(DropRule::WethRelated),
            _ => None,
        }
    }
}

/// What [`simplify_into_observed`] reports about each input transfer, in
/// input order. The `seq`s are journal sequence numbers, so provenance
/// consumers can cross-link back into the raw trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimplifyAction {
    /// The transfer survived into the application-level list.
    Kept {
        /// Journal `seq` of the surviving transfer.
        seq: u32,
    },
    /// The transfer was dropped by rule 1 or 2.
    Dropped {
        /// Journal `seq` of the dropped transfer.
        seq: u32,
        /// Which rule dropped it.
        rule: DropRule,
    },
    /// The transfer was absorbed into a surviving predecessor (rule 3).
    Merged {
        /// Journal `seq` of the absorbed transfer.
        seq: u32,
        /// `seq` of the surviving transfer it merged into.
        into_seq: u32,
    },
}

/// Applies all three simplification rules, producing application-level
/// transfers. `weth_token`, when known, is rewritten to [`TokenId::ETH`]
/// *before* the rules run so that merges across a wrap boundary work.
pub fn simplify(
    tagged: &[TaggedTransfer],
    weth_token: Option<TokenId>,
    config: &DetectorConfig,
) -> Vec<TaggedTransfer> {
    let mut out = Vec::with_capacity(tagged.len());
    simplify_into(tagged, weth_token, config, &mut out);
    out
}

/// What one [`simplify_into`] pass did — the telemetry counters of the
/// simplification stage. `kept + dropped + merged` equals the input
/// length, so callers can cross-check against the raw journal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Transfers surviving into the application-level list.
    pub kept: u32,
    /// Transfers removed by rules 1–2 (intra-app or WETH-related).
    pub dropped: u32,
    /// Transfers absorbed into a predecessor by rule 3 (pass-through
    /// merges).
    pub merged: u32,
}

/// [`simplify`] writing into a caller-provided buffer (cleared first), so
/// batch scanners and benches can reuse one allocation across
/// transactions.
///
/// All three rules plus WETH-token unification run in a single forward
/// pass: a transfer is unified, filtered, and then either merged into the
/// buffer's last entry or appended. This is equivalent to chaining
/// [`unify_weth_token`] → [`remove_intra_app`] → [`remove_weth_related`] →
/// [`merge_inter_app`] because the merge rule only ever inspects the most
/// recent *surviving* transfer.
pub fn simplify_into(
    tagged: &[TaggedTransfer],
    weth_token: Option<TokenId>,
    config: &DetectorConfig,
    out: &mut Vec<TaggedTransfer>,
) -> SimplifyStats {
    // The no-op observer monomorphizes to the plain reduction loop.
    simplify_into_observed(tagged, weth_token, config, out, |_| {})
}

/// [`simplify_into`] reporting the fate of every input transfer through
/// `observe` — the decision-provenance hook. `observe` runs in input
/// order and sees exactly one [`SimplifyAction`] per input transfer.
pub fn simplify_into_observed(
    tagged: &[TaggedTransfer],
    weth_token: Option<TokenId>,
    config: &DetectorConfig,
    out: &mut Vec<TaggedTransfer>,
    observe: impl FnMut(SimplifyAction),
) -> SimplifyStats {
    simplify_core(tagged.iter(), weth_token, config, out, observe)
}

/// [`simplify_into_observed`] consuming its input: kept transfers are
/// *moved* into `out` instead of cloned, so the batch-scan hot path pays
/// no tag refcount traffic for survivors. `tagged` is left empty (its
/// allocation intact, for reuse). Output, stats, and observed actions
/// are identical to the borrowing version for the same input.
pub fn simplify_drain_observed(
    tagged: &mut Vec<TaggedTransfer>,
    weth_token: Option<TokenId>,
    config: &DetectorConfig,
    out: &mut Vec<TaggedTransfer>,
    observe: impl FnMut(SimplifyAction),
) -> SimplifyStats {
    simplify_core(tagged.drain(..), weth_token, config, out, observe)
}

/// An input item the reduction loop can inspect by reference and then
/// turn into an owned survivor: `&TaggedTransfer` clones, an owned
/// `TaggedTransfer` moves. Keeps the borrowing and draining entry points
/// on one code path so they cannot diverge.
trait SimplifyItem {
    fn peek(&self) -> &TaggedTransfer;
    fn keep(self, token: TokenId) -> TaggedTransfer;
}

impl SimplifyItem for &TaggedTransfer {
    fn peek(&self) -> &TaggedTransfer {
        self
    }

    fn keep(self, token: TokenId) -> TaggedTransfer {
        TaggedTransfer {
            seq: self.seq,
            sender: self.sender.clone(),
            receiver: self.receiver.clone(),
            amount: self.amount,
            token,
        }
    }
}

impl SimplifyItem for TaggedTransfer {
    fn peek(&self) -> &TaggedTransfer {
        self
    }

    fn keep(mut self, token: TokenId) -> TaggedTransfer {
        self.token = token;
        self
    }
}

/// The single-pass reduction behind every `simplify_*` entry point.
fn simplify_core<I: SimplifyItem>(
    items: impl Iterator<Item = I>,
    weth_token: Option<TokenId>,
    config: &DetectorConfig,
    out: &mut Vec<TaggedTransfer>,
    mut observe: impl FnMut(SimplifyAction),
) -> SimplifyStats {
    out.clear();
    let mut stats = SimplifyStats::default();
    let is_weth = |tag: &Tag| tag.app_name() == Some(WETH_TAG);
    for item in items {
        // Rules 1 and 2 are decided on the borrowed transfer — dropped
        // entries never pay a clone's tag refcount traffic.
        let t = item.peek();
        if t.sender == t.receiver {
            stats.dropped += 1;
            observe(SimplifyAction::Dropped {
                seq: t.seq,
                rule: DropRule::IntraApp,
            });
            continue;
        }
        if is_weth(&t.sender) || is_weth(&t.receiver) {
            stats.dropped += 1;
            observe(SimplifyAction::Dropped {
                seq: t.seq,
                rule: DropRule::WethRelated,
            });
            continue;
        }
        let token = if weth_token == Some(t.token) {
            TokenId::ETH
        } else {
            t.token
        };
        // Rule 3: collapse pass-throughs into the surviving predecessor.
        if let Some(prev) = out.last_mut() {
            if mergeable(prev, t, token, config.merge_tolerance) {
                // keep what the final counterparty actually received
                prev.receiver = t.receiver.clone();
                prev.amount = t.amount;
                stats.merged += 1;
                observe(SimplifyAction::Merged {
                    seq: t.seq,
                    into_seq: prev.seq,
                });
                continue;
            }
        }
        observe(SimplifyAction::Kept { seq: t.seq });
        out.push(item.keep(token));
    }
    stats.kept = out.len() as u32;
    stats
}

/// Rewrites the WETH token id to ETH (rule 2's token unification).
pub fn unify_weth_token(
    tagged: &[TaggedTransfer],
    weth_token: Option<TokenId>,
) -> Vec<TaggedTransfer> {
    let Some(weth) = weth_token else {
        return tagged.to_vec();
    };
    tagged
        .iter()
        .map(|t| {
            let mut t = t.clone();
            if t.token == weth {
                t.token = TokenId::ETH;
            }
            t
        })
        .collect()
}

/// Rule 1: drop transfers whose sender and receiver share a tag.
/// Untaggable accounts never merge (each `Tag::Unknown` is address-scoped),
/// and BlackHole↔BlackHole cannot occur.
pub fn remove_intra_app(tagged: &[TaggedTransfer]) -> Vec<TaggedTransfer> {
    tagged
        .iter()
        .filter(|t| t.sender != t.receiver)
        .cloned()
        .collect()
}

/// Rule 2: drop transfers touching the Wrapped Ether contract.
pub fn remove_weth_related(tagged: &[TaggedTransfer]) -> Vec<TaggedTransfer> {
    let is_weth = |tag: &Tag| tag.app_name() == Some(WETH_TAG);
    tagged
        .iter()
        .filter(|t| !is_weth(&t.sender) && !is_weth(&t.receiver))
        .cloned()
        .collect()
}

/// Rule 3: merge consecutive pass-through transfers, iterating so that
/// multi-level intermediary chains collapse fully.
pub fn merge_inter_app(tagged: &[TaggedTransfer], tolerance: f64) -> Vec<TaggedTransfer> {
    let mut out: Vec<TaggedTransfer> = Vec::with_capacity(tagged.len());
    for t in tagged {
        if let Some(prev) = out.last() {
            if mergeable(prev, t, t.token, tolerance) {
                let prev = out.pop().expect("last checked");
                out.push(TaggedTransfer {
                    seq: prev.seq,
                    sender: prev.sender,
                    receiver: t.receiver.clone(),
                    // keep what the final counterparty actually received
                    amount: t.amount,
                    token: t.token,
                });
                continue;
            }
        }
        out.push(t.clone());
    }
    out
}

/// `b_token` is `b`'s token *after* WETH unification — [`simplify_into`]
/// unifies lazily, so `b.token` itself may still be the WETH id.
fn mergeable(a: &TaggedTransfer, b: &TaggedTransfer, b_token: TokenId, tolerance: f64) -> bool {
    if a.token != b_token || a.receiver != b.sender {
        return false;
    }
    // Mint/burn legs (BlackHole endpoints) are trade-action primitives
    // (Table III), never pass-throughs: a deposit's mint followed by a
    // withdrawal's burn of the same amount must not collapse.
    if a.sender.is_black_hole()
        || a.receiver.is_black_hole()
        || b.sender.is_black_hole()
        || b.receiver.is_black_hole()
    {
        return false;
    }
    // A round trip back to the sender is two trade legs, not a routing hop.
    if a.sender == b.receiver {
        return false;
    }
    if a.amount == 0 || b.amount == 0 {
        return a.amount == b.amount;
    }
    let hi = a.amount.max(b.amount) as f64;
    let lo = a.amount.min(b.amount) as f64;
    (hi - lo) / hi < tolerance
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::Address;

    fn t(seq: u32, sender: Tag, receiver: Tag, amount: u128, token: u32) -> TaggedTransfer {
        TaggedTransfer {
            seq,
            sender,
            receiver,
            amount,
            token: TokenId::from_index(token),
        }
    }

    fn app(s: &str) -> Tag {
        Tag::App(s.into())
    }

    #[test]
    fn intra_app_removed() {
        let list = vec![
            t(0, app("Uniswap"), app("Uniswap"), 10, 1),
            t(1, app("Uniswap"), app("bZx"), 10, 1),
            t(2, Tag::Root(Address::from_u64(1)), Tag::Root(Address::from_u64(1)), 5, 2),
        ];
        let out = remove_intra_app(&list);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq, 1);
    }

    #[test]
    fn weth_related_removed_and_token_unified() {
        let weth = TokenId::from_index(7);
        let list = vec![
            t(0, app("bZx"), app(WETH_TAG), 10, 7),
            t(1, app(WETH_TAG), app("bZx"), 10, 0),
            t(2, app("bZx"), app("Uniswap"), 10, 7),
        ];
        let unified = unify_weth_token(&list, Some(weth));
        assert!(unified.iter().all(|x| x.token == TokenId::ETH));
        let out = remove_weth_related(&unified);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq, 2);
        assert_eq!(out[0].token, TokenId::ETH);
    }

    #[test]
    fn merge_collapses_intermediary() {
        // Fig. 6: bZx -(51 WBTC)-> Kyber -(50.97 WBTC)-> Uniswap
        let list = vec![
            t(0, app("bZx"), app("Kyber"), 51_000_000, 3),
            t(1, app("Kyber"), app("Uniswap"), 50_980_000, 3),
        ];
        let out = merge_inter_app(&list, 0.001);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sender, app("bZx"));
        assert_eq!(out[0].receiver, app("Uniswap"));
        assert_eq!(out[0].amount, 50_980_000, "final-hop amount kept");
    }

    #[test]
    fn merge_requires_same_token_adjacency_and_tolerance() {
        // different token
        let l1 = vec![
            t(0, app("A"), app("B"), 100, 1),
            t(1, app("B"), app("C"), 100, 2),
        ];
        assert_eq!(merge_inter_app(&l1, 0.001).len(), 2);
        // amount off by 1%
        let l2 = vec![
            t(0, app("A"), app("B"), 100_000, 1),
            t(1, app("B"), app("C"), 99_000, 1),
        ];
        assert_eq!(merge_inter_app(&l2, 0.001).len(), 2);
        // not chained
        let l3 = vec![
            t(0, app("A"), app("B"), 100, 1),
            t(1, app("A"), app("C"), 100, 1),
        ];
        assert_eq!(merge_inter_app(&l3, 0.001).len(), 2);
    }

    #[test]
    fn merge_collapses_multi_level_chains() {
        // A -> B -> C -> D through two intermediaries.
        let list = vec![
            t(0, app("A"), app("B"), 100_000, 1),
            t(1, app("B"), app("C"), 99_970, 1),
            t(2, app("C"), app("D"), 99_940, 1),
        ];
        let out = merge_inter_app(&list, 0.001);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sender, app("A"));
        assert_eq!(out[0].receiver, app("D"));
    }

    #[test]
    fn mint_then_burn_of_same_amount_does_not_merge() {
        // A deposit's mint followed by a withdrawal's burn — two trade
        // legs, not a pass-through.
        let list = vec![
            TaggedTransfer {
                seq: 0,
                sender: Tag::BlackHole,
                receiver: app("E"),
                amount: 100,
                token: TokenId::from_index(1),
            },
            TaggedTransfer {
                seq: 1,
                sender: app("E"),
                receiver: Tag::BlackHole,
                amount: 100,
                token: TokenId::from_index(1),
            },
        ];
        assert_eq!(merge_inter_app(&list, 0.001).len(), 2);
    }

    #[test]
    fn round_trip_to_sender_does_not_merge() {
        let list = vec![
            t(0, app("A"), app("B"), 100, 1),
            t(1, app("B"), app("A"), 100, 1),
        ];
        assert_eq!(merge_inter_app(&list, 0.001).len(), 2);
    }

    #[test]
    fn zero_amounts_merge_only_with_zero() {
        let list = vec![
            t(0, app("A"), app("B"), 0, 1),
            t(1, app("B"), app("C"), 0, 1),
        ];
        assert_eq!(merge_inter_app(&list, 0.001).len(), 1);
        let list2 = vec![
            t(0, app("A"), app("B"), 0, 1),
            t(1, app("B"), app("C"), 5, 1),
        ];
        assert_eq!(merge_inter_app(&list2, 0.001).len(), 2);
    }

    #[test]
    fn full_pipeline_order_matters() {
        // WETH unification first lets an ETH-vs-WETH pass-through merge.
        let weth = TokenId::from_index(9);
        let list = vec![
            // intra-app noise
            t(0, app("Uniswap"), app("Uniswap"), 1, 1),
            // A sends WETH to router, router sends ETH to B (post-unwrap);
            // the unwrap leg itself touches Wrapped Ether and is dropped.
            t(1, app("A"), app("Router"), 100_000, 9),
            t(2, app("Router"), app(WETH_TAG), 100_000, 9),
            t(3, app(WETH_TAG), app("Router"), 100_000, 0),
            t(4, app("Router"), app("B"), 99_990, 0),
        ];
        let out = simplify(&list, Some(weth), &DetectorConfig::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].sender, app("A"));
        assert_eq!(out[0].receiver, app("B"));
        assert_eq!(out[0].token, TokenId::ETH);
    }

    #[test]
    fn simplify_stats_account_for_every_input() {
        let weth = TokenId::from_index(9);
        let list = vec![
            t(0, app("Uniswap"), app("Uniswap"), 1, 1),
            t(1, app("A"), app("Router"), 100_000, 9),
            t(2, app("Router"), app(WETH_TAG), 100_000, 9),
            t(3, app(WETH_TAG), app("Router"), 100_000, 0),
            t(4, app("Router"), app("B"), 99_990, 0),
        ];
        let mut out = Vec::new();
        let stats = simplify_into(&list, Some(weth), &DetectorConfig::default(), &mut out);
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.dropped, 3, "one intra-app + two WETH legs");
        assert_eq!(stats.merged, 1, "A→Router→B pass-through");
        assert_eq!(
            stats.kept + stats.dropped + stats.merged,
            list.len() as u32
        );
        assert_eq!(out.len(), stats.kept as usize);
    }

    #[test]
    fn observed_simplify_reports_one_action_per_input() {
        let weth = TokenId::from_index(9);
        let list = vec![
            t(0, app("Uniswap"), app("Uniswap"), 1, 1),
            t(1, app("A"), app("Router"), 100_000, 9),
            t(2, app("Router"), app(WETH_TAG), 100_000, 9),
            t(3, app(WETH_TAG), app("Router"), 100_000, 0),
            t(4, app("Router"), app("B"), 99_990, 0),
        ];
        let mut out = Vec::new();
        let mut actions = Vec::new();
        let stats = simplify_into_observed(
            &list,
            Some(weth),
            &DetectorConfig::default(),
            &mut out,
            |a| actions.push(a),
        );
        assert_eq!(
            actions,
            vec![
                SimplifyAction::Dropped { seq: 0, rule: DropRule::IntraApp },
                SimplifyAction::Kept { seq: 1 },
                SimplifyAction::Dropped { seq: 2, rule: DropRule::WethRelated },
                SimplifyAction::Dropped { seq: 3, rule: DropRule::WethRelated },
                SimplifyAction::Merged { seq: 4, into_seq: 1 },
            ]
        );
        // The observed pass and the plain pass agree exactly.
        let mut plain = Vec::new();
        let plain_stats =
            simplify_into(&list, Some(weth), &DetectorConfig::default(), &mut plain);
        assert_eq!(out, plain);
        assert_eq!(stats, plain_stats);
        assert_eq!(DropRule::from_name("intra_app"), Some(DropRule::IntraApp));
        assert_eq!(DropRule::from_name("weth_related"), Some(DropRule::WethRelated));
        assert_eq!(DropRule::from_name("bogus"), None);
    }

    #[test]
    fn simplify_preserves_seq_order() {
        let list = vec![
            t(5, app("A"), app("B"), 10, 1),
            t(9, app("B"), app("A"), 20, 2),
        ];
        let out = simplify(&list, None, &DetectorConfig::default());
        assert_eq!(out.len(), 2);
        assert!(out[0].seq < out[1].seq);
    }
}

//! Pipeline telemetry — per-stage latency and per-transaction counters.
//!
//! The paper's evaluation (§VI) reports where LeiShen spends its time —
//! journal extraction, transfer simplification, address tagging, pattern
//! matching — but a batch scan only exposes end-to-end throughput unless
//! each stage is instrumented. This module adds that instrumentation as a
//! **zero-cost-when-disabled** sink:
//!
//! * [`MetricsSink`] — the hook trait. Its associated `ENABLED` constant
//!   is checked at compile time, so a pipeline monomorphized over
//!   [`NoopSink`] contains no timer reads, no counter stores, and no
//!   branches: `if S::ENABLED { ... }` is dead code the optimizer
//!   deletes. This is why the hot path takes a generic `S: MetricsSink`
//!   instead of a `&dyn` object.
//! * [`NoopSink`] — the default; every hook is an empty inlined body.
//! * [`RecordingSink`] — used by benches and tests: collects raw
//!   per-stage latency samples (for exact p50/p95/p99, not bucketed
//!   estimates) and aggregates [`TxCounters`] into atomic totals shared
//!   by all scan workers.
//!
//! Counters live in a per-transaction [`TxCounters`] value built on the
//! worker's stack — never in shared state — so recording a transaction is
//! one `stage()` call per pipeline stage plus one `transaction()` call,
//! and the counters themselves are allocation-free. See `DESIGN.md`'s
//! telemetry section for the overhead budget.

use std::cell::RefCell;
use std::time::Instant;

use ethsim::TxId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::sched::SchedStats;

/// The instrumented pipeline stages, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Flash-loan identification (Table II signatures) — runs for every
    /// transaction, including the ones that short-circuit.
    FlashLoan,
    /// Account tagging of the transfer journal (§V-B1).
    Tagging,
    /// Transfer simplification (§V-B2).
    Simplify,
    /// Trade identification (Table III windows).
    Trades,
    /// Pattern matching across borrower tags (KRP/SBS/MBS).
    Patterns,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 5;

/// All stages in execution order.
pub const STAGES: [Stage; STAGE_COUNT] = [
    Stage::FlashLoan,
    Stage::Tagging,
    Stage::Simplify,
    Stage::Trades,
    Stage::Patterns,
];

impl Stage {
    /// Stable dense index (position in [`STAGES`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// snake_case name used in structured output (`BENCH_obs.json`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::FlashLoan => "flash_loan",
            Stage::Tagging => "tagging",
            Stage::Simplify => "simplify",
            Stage::Trades => "trades",
            Stage::Patterns => "patterns",
        }
    }

    /// Inverse of [`Stage::name`] — used by the trace importers.
    pub fn from_name(name: &str) -> Option<Stage> {
        STAGES.iter().copied().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-transaction pipeline counters, built on the worker's stack.
///
/// Everything here is derived from values the pipeline already holds —
/// no extra hashing, no allocation — so filling one in costs a handful
/// of integer stores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxCounters {
    /// Account-level transfers in the replay journal (stage-1 input).
    pub account_transfers: u32,
    /// Flash loans identified (0 ⇒ the pipeline short-circuited).
    pub flash_loans: u32,
    /// Tag resolutions requested from the resolver (both transfer sides,
    /// borrowers, and the initiator).
    pub tags_resolved: u32,
    /// Application-level transfers surviving simplification.
    pub app_transfers: u32,
    /// Transfers dropped by simplification rules 1–2 (intra-app / WETH).
    pub transfers_dropped: u32,
    /// Pass-through merges performed by simplification rule 3.
    pub transfers_merged: u32,
    /// Trades identified from the simplified transfers.
    pub trades: u32,
    /// Distinct borrower tags the patterns were evaluated for.
    pub borrower_tags: u32,
    /// Pattern evaluations attempted (token pairs × active matchers,
    /// summed over borrower tags).
    pub patterns_tried: u32,
    /// Pattern matches reported (after dedup).
    pub patterns_matched: u32,
}

/// Per-stage lap times of one transaction, in nanoseconds.
///
/// Built on the worker's stack by the pipeline's `StageClock` and handed
/// to the sink in a single [`MetricsSink::transaction`] call, so a
/// recording sink synchronizes **once per transaction** instead of once
/// per stage. Stages the transaction never reached (the short-circuit
/// path stops after flash-loan identification) hold no sample.
#[derive(Clone, Copy, Debug)]
pub struct StageLaps {
    laps: [u64; STAGE_COUNT],
}

impl StageLaps {
    /// Sentinel for "stage not reached" — a real lap of this length
    /// (~584 years) cannot occur.
    const UNTIMED: u64 = u64::MAX;

    /// Laps with no stage recorded.
    pub fn empty() -> Self {
        StageLaps {
            laps: [Self::UNTIMED; STAGE_COUNT],
        }
    }

    /// Records `stage` as having taken `nanos`.
    #[inline]
    pub fn record(&mut self, stage: Stage, nanos: u64) {
        // Saturate at the sentinel boundary rather than aliasing it.
        self.laps[stage.index()] = nanos.min(Self::UNTIMED - 1);
    }

    /// The lap recorded for `stage`, if the transaction reached it.
    pub fn get(&self, stage: Stage) -> Option<u64> {
        let v = self.laps[stage.index()];
        (v != Self::UNTIMED).then_some(v)
    }

    /// Iterates over the recorded `(stage, nanos)` laps in execution
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        STAGES.iter().filter_map(|&s| self.get(s).map(|n| (s, n)))
    }
}

impl Default for StageLaps {
    fn default() -> Self {
        StageLaps::empty()
    }
}

/// Telemetry hook the pipeline calls.
///
/// `ENABLED` is an associated constant rather than a method so the
/// pipeline can guard its `Instant::now()` reads with a compile-time
/// check; implementations with `ENABLED = false` make the hook — and
/// the timing around it — vanish from the generated code.
///
/// The trait itself is not `Sync`: a worker thread records into its own
/// [`MetricsSink::worker_front`], which needs no cross-thread
/// synchronization at all and merges into the shared sink when dropped.
/// Only the sink *shared across* workers (what `ScanEngine` takes) must
/// be `Sync`.
pub trait MetricsSink {
    /// Whether the pipeline should time stages and build counters for
    /// this sink at all.
    const ENABLED: bool;

    /// The worker-local front of this sink (see
    /// [`MetricsSink::worker_front`]).
    type WorkerFront<'a>: MetricsSink
    where
        Self: 'a;

    /// A front for one worker: the worker records every transaction into
    /// the front — thread-local, no locks, no atomics — and the front
    /// delivers the accumulated batch to the shared sink when dropped
    /// (end of the worker's scan). For sinks that are already local
    /// (including [`NoopSink`]) this is effectively `self`.
    fn worker_front(&self) -> Self::WorkerFront<'_>;

    /// Time stage laps for one in this many transactions (per worker).
    /// `1` means every transaction. Counters are recorded regardless —
    /// only the `Instant::now` reads around stage boundaries are
    /// sampled, because on micro-second transactions the six clock
    /// reads are the bulk of the instrumentation cost (see `DESIGN.md`'s
    /// overhead budget).
    fn stage_sampling(&self) -> u32 {
        1
    }

    /// One transaction finished with these counters and stage laps
    /// (empty when the transaction was not picked for stage timing).
    fn transaction(&self, counters: &TxCounters, laps: &StageLaps);

    /// Transaction `tx` just crossed the closing boundary of `stage`.
    ///
    /// Called for every transaction (not just stage-timed ones) on
    /// enabled sinks, in stage order, from inside the pipeline — the
    /// one hook that observes a transaction *mid-analysis*. The default
    /// does nothing; the resilience layer's fault injector overrides it
    /// to land induced panics and delays at exact pipeline stages.
    fn stage_boundary(&self, _tx: TxId, _stage: Stage) {}

    /// One transaction was quarantined instead of analyzed (resilient
    /// scans only). Counted next to [`MetricsSink::transaction`] so
    /// operators can monitor degraded-mode rates per batch.
    fn quarantined(&self) {}

    /// The engine planned a multi-worker batch with this shape (see
    /// [`SchedStats`]): clusters, waves, adaptive chunk size, and the
    /// pool's steal-retry count. Reported once per batch, on the
    /// *shared* sink, after the scan completes — never from worker
    /// fronts. The default ignores it.
    fn scheduled(&self, _stats: &SchedStats) {}
}

/// The do-nothing sink: the hot path's default. Compiles to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl MetricsSink for NoopSink {
    const ENABLED: bool = false;

    type WorkerFront<'a> = NoopSink;

    #[inline(always)]
    fn worker_front(&self) -> NoopSink {
        NoopSink
    }

    #[inline(always)]
    fn transaction(&self, _counters: &TxCounters, _laps: &StageLaps) {}
}

/// Everything a [`RecordingSink`] accumulates, behind one mutex — and
/// what each [`WorkerSink`] accumulates lock-free before merging.
#[derive(Debug, Default)]
struct RecordingInner {
    stages: [Vec<u64>; STAGE_COUNT],
    totals: TxCountersTotal,
    sched: Option<SchedStats>,
}

impl RecordingInner {
    fn record(&mut self, c: &TxCounters, laps: &StageLaps) {
        for (stage, nanos) in laps.iter() {
            self.stages[stage.index()].push(nanos);
        }
        self.totals.add(c);
    }
}

/// A sink that records everything — raw stage samples and counter totals.
///
/// Shared by reference across scan workers, but never written from them
/// directly: each worker records into its [`RecordingSink::worker_front`]
/// — plain thread-local stores, no locking — and the front merges into
/// this sink's mutex once when the worker finishes. Calling
/// [`MetricsSink::transaction`] on the shared sink directly also works
/// (one mutex acquisition per call) and is what single-transaction
/// callers do; the `obs` bench bin measures the end-to-end overhead
/// against [`NoopSink`].
///
/// [`RecordingSink::new`] times every transaction's stages — exact
/// histograms, what tests want. [`RecordingSink::sampled`] times one in
/// `n` transactions, which amortizes the clock reads below the < 5%
/// overhead budget for continuous monitoring; counters stay exact
/// either way.
#[derive(Debug)]
pub struct RecordingSink {
    inner: Mutex<RecordingInner>,
    sample_every: u32,
}

impl Default for RecordingSink {
    fn default() -> Self {
        RecordingSink::new()
    }
}

impl RecordingSink {
    /// An empty sink that stage-times every transaction.
    pub fn new() -> Self {
        RecordingSink::sampled(1)
    }

    /// An empty sink that stage-times one in `n` transactions (per
    /// worker); `n` is clamped to at least 1. Counters are always exact.
    pub fn sampled(n: u32) -> Self {
        RecordingSink {
            inner: Mutex::new(RecordingInner::default()),
            sample_every: n.max(1),
        }
    }

    /// Raw latency samples (nanoseconds) recorded for `stage`, in
    /// arrival order.
    pub fn stage_samples(&self, stage: Stage) -> Vec<u64> {
        self.inner.lock().stages[stage.index()].clone()
    }

    /// Number of transactions recorded.
    pub fn transactions(&self) -> u64 {
        self.inner.lock().totals.transactions
    }

    /// Aggregated counter totals across all recorded transactions.
    pub fn counter_totals(&self) -> TxCountersTotal {
        self.inner.lock().totals
    }

    /// The shape of the most recent scheduled batch, when a
    /// multi-worker scan reported one (see [`MetricsSink::scheduled`]).
    pub fn scheduler_stats(&self) -> Option<SchedStats> {
        self.inner.lock().sched
    }

    /// Per-stage latency summary (count, total, exact percentiles).
    pub fn stage_summary(&self, stage: Stage) -> StageSummary {
        let mut samples = self.stage_samples(stage);
        summarize(stage, &mut samples)
    }

    /// Summaries for all five stages, in execution order.
    pub fn summary(&self) -> Vec<StageSummary> {
        STAGES.iter().map(|&s| self.stage_summary(s)).collect()
    }

    /// Drops all samples and zeroes the totals.
    pub fn clear(&self) {
        *self.inner.lock() = RecordingInner::default();
    }

    /// Merges a worker front's accumulated batch in one lock acquisition.
    fn absorb(&self, batch: RecordingInner) {
        let mut inner = self.inner.lock();
        for (dst, src) in inner.stages.iter_mut().zip(batch.stages) {
            dst.extend(src);
        }
        inner.totals.merge(&batch.totals);
    }
}

impl MetricsSink for RecordingSink {
    const ENABLED: bool = true;

    type WorkerFront<'a> = WorkerSink<'a>;

    fn worker_front(&self) -> WorkerSink<'_> {
        WorkerSink {
            shared: self,
            local: RefCell::new(RecordingInner::default()),
        }
    }

    fn stage_sampling(&self) -> u32 {
        self.sample_every
    }

    fn transaction(&self, c: &TxCounters, laps: &StageLaps) {
        self.inner.lock().record(c, laps);
    }

    fn quarantined(&self) {
        self.inner.lock().totals.quarantined += 1;
    }

    fn scheduled(&self, stats: &SchedStats) {
        self.inner.lock().sched = Some(*stats);
    }
}

/// One worker's thread-local front of a shared [`RecordingSink`].
///
/// Recording a transaction is a `RefCell` borrow plus plain integer
/// stores — no mutex, no atomics — which is what keeps the metered scan
/// within the < 5% overhead budget. The accumulated batch merges into
/// the shared sink when the front drops, so by the time
/// `ScanEngine::scan_metered` returns, the shared sink holds every
/// worker's samples.
#[derive(Debug)]
pub struct WorkerSink<'a> {
    shared: &'a RecordingSink,
    local: RefCell<RecordingInner>,
}

impl MetricsSink for WorkerSink<'_> {
    const ENABLED: bool = true;

    type WorkerFront<'b>
        = WorkerSink<'b>
    where
        Self: 'b;

    /// A front of a front still funnels into the same shared sink.
    fn worker_front(&self) -> WorkerSink<'_> {
        self.shared.worker_front()
    }

    fn stage_sampling(&self) -> u32 {
        self.shared.sample_every
    }

    fn transaction(&self, c: &TxCounters, laps: &StageLaps) {
        self.local.borrow_mut().record(c, laps);
    }

    fn quarantined(&self) {
        self.local.borrow_mut().totals.quarantined += 1;
    }
}

impl Drop for WorkerSink<'_> {
    fn drop(&mut self) {
        self.shared.absorb(self.local.take());
    }
}

/// Sorts `samples` in place and reduces them to a [`StageSummary`].
fn summarize(stage: Stage, samples: &mut [u64]) -> StageSummary {
    samples.sort_unstable();
    let count = samples.len() as u64;
    let total_ns: u64 = samples.iter().sum();
    let pct = |p: f64| -> u64 {
        if samples.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize - 1;
        samples[rank.min(samples.len() - 1)]
    };
    StageSummary {
        stage,
        count,
        total_ns,
        p50_ns: pct(50.0),
        p95_ns: pct(95.0),
        p99_ns: pct(99.0),
    }
}

/// Aggregated [`TxCounters`] over a recorded batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxCountersTotal {
    /// Transactions recorded.
    pub transactions: u64,
    /// Sum of [`TxCounters::account_transfers`].
    pub account_transfers: u64,
    /// Sum of [`TxCounters::flash_loans`].
    pub flash_loans: u64,
    /// Sum of [`TxCounters::tags_resolved`].
    pub tags_resolved: u64,
    /// Sum of [`TxCounters::app_transfers`].
    pub app_transfers: u64,
    /// Sum of [`TxCounters::transfers_dropped`].
    pub transfers_dropped: u64,
    /// Sum of [`TxCounters::transfers_merged`].
    pub transfers_merged: u64,
    /// Sum of [`TxCounters::trades`].
    pub trades: u64,
    /// Sum of [`TxCounters::borrower_tags`].
    pub borrower_tags: u64,
    /// Sum of [`TxCounters::patterns_tried`].
    pub patterns_tried: u64,
    /// Sum of [`TxCounters::patterns_matched`].
    pub patterns_matched: u64,
    /// Transactions quarantined instead of analyzed (resilient scans;
    /// not part of [`TxCounters`] — see [`MetricsSink::quarantined`]).
    pub quarantined: u64,
}

impl TxCountersTotal {
    /// Adds one transaction's counters.
    pub fn add(&mut self, c: &TxCounters) {
        self.transactions += 1;
        self.account_transfers += u64::from(c.account_transfers);
        self.flash_loans += u64::from(c.flash_loans);
        self.tags_resolved += u64::from(c.tags_resolved);
        self.app_transfers += u64::from(c.app_transfers);
        self.transfers_dropped += u64::from(c.transfers_dropped);
        self.transfers_merged += u64::from(c.transfers_merged);
        self.trades += u64::from(c.trades);
        self.borrower_tags += u64::from(c.borrower_tags);
        self.patterns_tried += u64::from(c.patterns_tried);
        self.patterns_matched += u64::from(c.patterns_matched);
    }

    /// Folds another total (e.g. a worker's batch) into this one.
    pub fn merge(&mut self, other: &TxCountersTotal) {
        self.transactions += other.transactions;
        self.account_transfers += other.account_transfers;
        self.flash_loans += other.flash_loans;
        self.tags_resolved += other.tags_resolved;
        self.app_transfers += other.app_transfers;
        self.transfers_dropped += other.transfers_dropped;
        self.transfers_merged += other.transfers_merged;
        self.trades += other.trades;
        self.borrower_tags += other.borrower_tags;
        self.patterns_tried += other.patterns_tried;
        self.patterns_matched += other.patterns_matched;
        self.quarantined += other.quarantined;
    }
}

/// Latency summary of one stage over a recorded batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSummary {
    /// Which stage.
    pub stage: Stage,
    /// Samples recorded (= transactions that reached the stage).
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub total_ns: u64,
    /// Median, nanoseconds (nearest-rank).
    pub p50_ns: u64,
    /// 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
}

impl StageSummary {
    /// Median in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.p50_ns as f64 / 1e3
    }

    /// 95th percentile in microseconds.
    pub fn p95_us(&self) -> f64 {
        self.p95_ns as f64 / 1e3
    }

    /// 99th percentile in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.p99_ns as f64 / 1e3
    }

    /// Total stage time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

/// Times the pipeline stages of one transaction when the sink is enabled.
///
/// A `StageClock` is constructed at pipeline entry, [`StageClock::lap`]
/// marks each stage boundary into a stack-local [`StageLaps`], and
/// [`StageClock::finish`] hands the laps plus the counters to the sink in
/// one call — so the sink synchronizes once per transaction. With a
/// disabled sink all three are free: the struct holds no timestamp and
/// every method body is dead code behind `S::ENABLED`.
pub(crate) struct StageClock {
    tx: TxId,
    start: Option<Instant>,
    laps: StageLaps,
}

impl StageClock {
    /// Starts timing if `S` records and the caller picked this
    /// transaction for stage timing; otherwise a no-op clock. `tx` is
    /// reported to [`MetricsSink::stage_boundary`] at every lap.
    pub fn start<S: MetricsSink>(_sink: &S, timed: bool, tx: TxId) -> Self {
        StageClock {
            tx,
            start: (S::ENABLED && timed).then(Instant::now),
            laps: StageLaps::empty(),
        }
    }

    /// Marks the time since the previous lap (or start) as `stage`, and
    /// restarts the clock for the next stage. Always announces the
    /// boundary to the sink (even for transactions not picked for
    /// stage timing) so mid-pipeline hooks see every transaction.
    pub fn lap<S: MetricsSink>(&mut self, sink: &S, stage: Stage) {
        if S::ENABLED {
            sink.stage_boundary(self.tx, stage);
            if self.start.is_some() {
                // One clock read serves as both this lap's end and the
                // next lap's start — the boundaries stay contiguous and
                // the cost per stage is a single `Instant::now`.
                let now = Instant::now();
                if let Some(prev) = self.start.replace(now) {
                    self.laps.record(stage, (now - prev).as_nanos() as u64);
                }
            }
        }
    }

    /// Delivers the recorded laps and `counters` to the sink.
    pub fn finish<S: MetricsSink>(self, sink: &S, counters: &TxCounters) {
        if S::ENABLED {
            sink.transaction(counters, &self.laps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_index_contiguously() {
        for (i, s) in STAGES.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(STAGES.len(), STAGE_COUNT);
    }

    /// Laps with only `Stage::Tagging` recorded, at `nanos`.
    fn tagging_laps(nanos: u64) -> StageLaps {
        let mut laps = StageLaps::empty();
        laps.record(Stage::Tagging, nanos);
        laps
    }

    #[test]
    fn noop_is_disabled() {
        const { assert!(!NoopSink::ENABLED) }
        // The hook is callable and inert.
        NoopSink.transaction(&TxCounters::default(), &StageLaps::empty());
    }

    #[test]
    fn stage_laps_track_reached_stages() {
        let mut laps = StageLaps::empty();
        assert_eq!(laps.iter().count(), 0);
        laps.record(Stage::FlashLoan, 7);
        laps.record(Stage::Patterns, 9);
        assert_eq!(laps.get(Stage::FlashLoan), Some(7));
        assert_eq!(laps.get(Stage::Tagging), None);
        assert_eq!(
            laps.iter().collect::<Vec<_>>(),
            vec![(Stage::FlashLoan, 7), (Stage::Patterns, 9)]
        );
        // The sentinel cannot be aliased by a real sample.
        laps.record(Stage::Simplify, u64::MAX);
        assert_eq!(laps.get(Stage::Simplify), Some(u64::MAX - 1));
    }

    #[test]
    fn recording_sink_aggregates() {
        let sink = RecordingSink::new();
        sink.transaction(
            &TxCounters {
                account_transfers: 4,
                flash_loans: 1,
                tags_resolved: 9,
                app_transfers: 3,
                transfers_dropped: 1,
                transfers_merged: 0,
                trades: 2,
                borrower_tags: 1,
                patterns_tried: 6,
                patterns_matched: 1,
            },
            &tagging_laps(100),
        );
        sink.transaction(&TxCounters::default(), &tagging_laps(300));
        sink.transaction(&TxCounters::default(), &tagging_laps(200));

        let s = sink.stage_summary(Stage::Tagging);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 600);
        assert_eq!(s.p50_ns, 200);
        assert_eq!(s.p99_ns, 300);
        assert_eq!(sink.stage_summary(Stage::Patterns).count, 0);

        let t = sink.counter_totals();
        assert_eq!(t.transactions, 3);
        assert_eq!(t.account_transfers, 4);
        assert_eq!(t.tags_resolved, 9);
        assert_eq!(t.patterns_tried, 6);

        sink.clear();
        assert_eq!(sink.transactions(), 0);
        assert_eq!(sink.stage_summary(Stage::Tagging).count, 0);
    }

    #[test]
    fn clock_records_only_when_enabled() {
        let sink = RecordingSink::new();
        let mut clock = StageClock::start(&sink, true, TxId(1));
        clock.lap(&sink, Stage::FlashLoan);
        clock.finish(&sink, &TxCounters::default());
        assert_eq!(sink.stage_summary(Stage::FlashLoan).count, 1);
        assert_eq!(sink.transactions(), 1);

        // An un-picked transaction still records its counters.
        let mut clock = StageClock::start(&sink, false, TxId(2));
        clock.lap(&sink, Stage::FlashLoan);
        clock.finish(&sink, &TxCounters::default());
        assert_eq!(sink.stage_summary(Stage::FlashLoan).count, 1);
        assert_eq!(sink.transactions(), 2);

        let noop = NoopSink;
        let mut clock = StageClock::start(&noop, true, TxId(3));
        clock.lap(&noop, Stage::FlashLoan);
        clock.finish(&noop, &TxCounters::default());
    }

    #[test]
    fn empty_summary_is_zero() {
        let sink = RecordingSink::new();
        let s = sink.stage_summary(Stage::Simplify);
        assert_eq!((s.count, s.p50_ns, s.p95_ns, s.p99_ns, s.total_ns), (0, 0, 0, 0, 0));
        assert_eq!(s.p50_us(), 0.0);
    }

    #[test]
    fn stage_names_are_snake_case() {
        assert_eq!(Stage::FlashLoan.name(), "flash_loan");
        assert_eq!(Stage::Patterns.to_string(), "patterns");
    }
}

//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the rand API this workspace consumes:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open ranges of the primitive integer and
//! float types, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — fast,
//! well-distributed, and deterministic per seed, but *not* stream-
//! compatible with upstream rand's ChaCha12-based `StdRng`. Nothing in
//! this workspace depends on upstream's exact value stream.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (rand 0.8 subset).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Panics if `range` is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(
            range.start < range.end,
            "cannot sample from an empty range"
        );
        T::sample_range(self, range.start, range.end)
    }

    /// A Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_range(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: PartialOrd + Sized {
    /// Uniform draw in `[low, high)`; callers guarantee `low < high`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uint {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add(wide_mod(rng, span) as $ty)
            }
        }
    )*};
}

macro_rules! impl_sample_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                low.wrapping_add(wide_mod(rng, span) as $ty)
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize, u128);
impl_sample_int!(i8, i16, i32, i64, isize, i128);

/// A uniform draw in `[0, span)` (`span == 0` means the full 2¹²⁸ range,
/// which only arises for `u128`/`i128` end-to-end spans).
fn wide_mod<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    if span == 0 {
        wide
    } else {
        wide % span
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // 53 uniform mantissa bits → unit ∈ [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + (high - low) * unit;
        // Guard the upper bound against fp rounding at extreme spans.
        if v >= high {
            low.max(high - (high - low) * f64::EPSILON)
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand uses for integer seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{RngCore, SampleUniform};

    /// Slice shuffling (rand 0.8's `SliceRandom` subset).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..25);
            assert!((10..25).contains(&v));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f >= f64::EPSILON && f < 1.0);
            let u = rng.gen_range(0u128..u128::MAX);
            assert!(u < u128::MAX);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "{buckets:?}");
        }
    }
}

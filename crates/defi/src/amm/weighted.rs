//! Balancer-style weighted constant-mean pools.
//!
//! Balancer is the most attacked application in the paper's wild study
//! (Table VI: 31 attacks by 5 attackers on 13 assets) and the victim of the
//! third real-world flpAttack in Table I, whose price volatility reached
//! 6.5·10²⁸ %. A weighted pool holds `n` tokens with normalized weights
//! `w_i`; the invariant is `∏ B_i^{w_i}` and the out-given-in formula is
//!
//! ```text
//! out = B_out · (1 − (B_in / (B_in + in·(1−fee)))^(w_in / w_out))
//! ```
//!
//! Pricing uses `f64` internally (weight exponents are fractional); all
//! ledger settlement stays in `u128` and outputs are clamped to reserves,
//! so the ledger can never go negative. This matches the fidelity the
//! detector needs: it observes trades and amounts, not invariant bits.

use ethsim::state::SKey;
use ethsim::{math, Address, Chain, LogValue, Result, SimError, TokenId, TxContext};

use crate::labels::LabelService;

const SLOT_RESERVE: u16 = 0;

/// A weighted constant-mean pool (Balancer-style), with a pool share token
/// (BPT) for joins/exits.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedPool {
    /// The pool contract account.
    pub address: Address,
    /// Pooled tokens.
    pub tokens: Vec<TokenId>,
    /// Normalized weights, parallel to `tokens` (must sum to ~1).
    pub weights: Vec<f64>,
    /// Pool share token (BPT).
    pub bpt: TokenId,
    /// Swap fee in basis points.
    pub fee_bps: u32,
}

impl WeightedPool {
    /// Deploys a weighted pool as a child of `factory_or_deployer`
    /// (labeled pools propagate their app tag to it via the creation tree).
    ///
    /// # Errors
    /// Propagates substrate errors; reverts if weights/tokens mismatch.
    ///
    /// # Panics
    /// Panics if `tokens` and `weights` lengths differ or weights don't sum
    /// to ≈ 1.
    #[allow(clippy::too_many_arguments)]
    pub fn deploy(
        chain: &mut Chain,
        _labels: &mut LabelService,
        deployer_eoa: Address,
        parent: Address,
        tokens: Vec<TokenId>,
        weights: Vec<f64>,
        bpt_symbol: &str,
        fee_bps: u32,
    ) -> Result<Self> {
        assert_eq!(tokens.len(), weights.len(), "token/weight mismatch");
        let sum: f64 = weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights must sum to 1");
        let mut out = None;
        chain.execute(deployer_eoa, parent, "createPool", |ctx| {
            let address = ctx.create_contract(parent)?;
            let bpt = ctx.register_token(bpt_symbol, 18, address);
            out = Some(WeightedPool {
                address,
                tokens: tokens.clone(),
                weights: weights.clone(),
                bpt,
                fee_bps,
            });
            Ok(())
        })?;
        Ok(out.expect("deploy closure ran"))
    }

    fn key(token: TokenId) -> SKey {
        SKey::TokenMap(SLOT_RESERVE, token)
    }

    /// Index of `token` within the pool.
    fn index_of(&self, token: TokenId) -> Option<usize> {
        self.tokens.iter().position(|t| *t == token)
    }

    /// Reserve of `token`.
    pub fn reserve_of(&self, ctx: &TxContext<'_>, token: TokenId) -> u128 {
        ctx.sload(self.address, Self::key(token))
    }

    fn set_reserve(&self, ctx: &mut TxContext<'_>, token: TokenId, v: u128) {
        ctx.sstore(self.address, Self::key(token), v);
    }

    /// Seeds initial reserves from `provider` and mints `initial_bpt`
    /// shares. Balancer pools are initialized with arbitrary share counts.
    ///
    /// # Errors
    /// Reverts on amount/token mismatch or insufficient balances.
    pub fn seed(
        &self,
        ctx: &mut TxContext<'_>,
        provider: Address,
        amounts: &[u128],
        initial_bpt: u128,
    ) -> Result<()> {
        if amounts.len() != self.tokens.len() {
            return Err(SimError::revert("seed amounts mismatch"));
        }
        let pool = self.clone();
        let amounts = amounts.to_vec();
        ctx.call(provider, self.address, "joinPool", 0, |ctx| {
            for (i, token) in pool.tokens.iter().enumerate() {
                ctx.transfer_token(*token, provider, pool.address, amounts[i])?;
                pool.set_reserve(ctx, *token, amounts[i]);
            }
            ctx.mint_token(pool.bpt, provider, initial_bpt)?;
            Ok(())
        })
    }

    /// Out-given-in under the weighted-math formula.
    ///
    /// # Errors
    /// Reverts on unknown tokens, zero input or empty reserves.
    pub fn amount_out(
        &self,
        ctx: &TxContext<'_>,
        token_in: TokenId,
        token_out: TokenId,
        amount_in: u128,
    ) -> Result<u128> {
        let i = self
            .index_of(token_in)
            .ok_or_else(|| SimError::revert("tokenIn not in pool"))?;
        let o = self
            .index_of(token_out)
            .ok_or_else(|| SimError::revert("tokenOut not in pool"))?;
        if i == o {
            return Err(SimError::revert("identical tokens"));
        }
        if amount_in == 0 {
            return Err(SimError::revert("zero input"));
        }
        let b_in = self.reserve_of(ctx, token_in);
        let b_out = self.reserve_of(ctx, token_out);
        if b_in == 0 || b_out == 0 {
            return Err(SimError::revert("empty pool"));
        }
        let fee = self.fee_bps as f64 / 10_000.0;
        let in_f = amount_in as f64 * (1.0 - fee);
        let ratio = b_in as f64 / (b_in as f64 + in_f);
        let exponent = self.weights[i] / self.weights[o];
        let out_f = b_out as f64 * (1.0 - ratio.powf(exponent));
        let out = out_f as u128;
        // Clamp: f64 rounding must never drain past the reserve.
        Ok(out.min(b_out.saturating_sub(1)))
    }

    /// Swaps exact-in between two pooled tokens.
    ///
    /// # Errors
    /// Reverts on pricing failure, insufficient balance, or `min_out`.
    pub fn swap_exact_in(
        &self,
        ctx: &mut TxContext<'_>,
        trader: Address,
        token_in: TokenId,
        token_out: TokenId,
        amount_in: u128,
        min_out: u128,
    ) -> Result<u128> {
        let pool = self.clone();
        ctx.call(trader, self.address, "swapExactAmountIn", 0, |ctx| {
            let out = pool.amount_out(ctx, token_in, token_out, amount_in)?;
            if out < min_out {
                return Err(SimError::revert("limit out"));
            }
            ctx.transfer_token(token_in, trader, pool.address, amount_in)?;
            ctx.transfer_token(token_out, pool.address, trader, out)?;
            let r_in = pool.reserve_of(ctx, token_in);
            let r_out = pool.reserve_of(ctx, token_out);
            pool.set_reserve(ctx, token_in, math::add(r_in, amount_in)?);
            pool.set_reserve(ctx, token_out, math::sub(r_out, out)?);
            ctx.emit_log(
                pool.address,
                "LOG_SWAP",
                vec![
                    ("caller".into(), LogValue::Addr(trader)),
                    ("tokenIn".into(), LogValue::Token(token_in)),
                    ("tokenAmountIn".into(), LogValue::Amount(amount_in)),
                    ("tokenOut".into(), LogValue::Token(token_out)),
                    ("tokenAmountOut".into(), LogValue::Amount(out)),
                ],
            );
            Ok(out)
        })
    }

    /// Single-asset join: deposit one token, mint BPT pro-rata to the value
    /// added (simplified single-asset deposit formula).
    ///
    /// # Errors
    /// Reverts on unknown token or empty pool.
    pub fn join_single(
        &self,
        ctx: &mut TxContext<'_>,
        provider: Address,
        token_in: TokenId,
        amount_in: u128,
    ) -> Result<u128> {
        let i = self
            .index_of(token_in)
            .ok_or_else(|| SimError::revert("token not in pool"))?;
        let pool = self.clone();
        ctx.call(provider, self.address, "joinswapExternAmountIn", 0, |ctx| {
            let b_in = pool.reserve_of(ctx, token_in);
            if b_in == 0 {
                return Err(SimError::revert("empty pool"));
            }
            let supply = ctx.state().total_supply(pool.bpt);
            let fee = pool.fee_bps as f64 / 10_000.0;
            let in_f = amount_in as f64 * (1.0 - fee * (1.0 - pool.weights[i]));
            let ratio = (b_in as f64 + in_f) / b_in as f64;
            let minted_f = supply as f64 * (ratio.powf(pool.weights[i]) - 1.0);
            let minted = minted_f as u128;
            if minted == 0 {
                return Err(SimError::revert("zero BPT out"));
            }
            ctx.transfer_token(token_in, provider, pool.address, amount_in)?;
            pool.set_reserve(ctx, token_in, math::add(b_in, amount_in)?);
            ctx.mint_token(pool.bpt, provider, minted)?;
            ctx.emit_log(
                pool.address,
                "LOG_JOIN",
                vec![
                    ("caller".into(), LogValue::Addr(provider)),
                    ("tokenIn".into(), LogValue::Token(token_in)),
                    ("tokenAmountIn".into(), LogValue::Amount(amount_in)),
                    ("bptOut".into(), LogValue::Amount(minted)),
                ],
            );
            Ok(minted)
        })
    }

    /// Single-asset exit: burn BPT, withdraw one token.
    ///
    /// # Errors
    /// Reverts on unknown token, zero shares or empty supply.
    pub fn exit_single(
        &self,
        ctx: &mut TxContext<'_>,
        provider: Address,
        token_out: TokenId,
        bpt_in: u128,
    ) -> Result<u128> {
        let o = self
            .index_of(token_out)
            .ok_or_else(|| SimError::revert("token not in pool"))?;
        let pool = self.clone();
        ctx.call(provider, self.address, "exitswapPoolAmountIn", 0, |ctx| {
            let supply = ctx.state().total_supply(pool.bpt);
            if bpt_in == 0 || supply == 0 {
                return Err(SimError::revert("zero shares"));
            }
            let b_out = pool.reserve_of(ctx, token_out);
            let ratio = 1.0 - (bpt_in as f64 / supply as f64);
            let out_f = b_out as f64 * (1.0 - ratio.powf(1.0 / pool.weights[o]));
            let out = (out_f as u128).min(b_out.saturating_sub(1));
            ctx.burn_token(pool.bpt, provider, bpt_in)?;
            ctx.transfer_token(token_out, pool.address, provider, out)?;
            pool.set_reserve(ctx, token_out, math::sub(b_out, out)?);
            ctx.emit_log(
                pool.address,
                "LOG_EXIT",
                vec![
                    ("caller".into(), LogValue::Addr(provider)),
                    ("tokenOut".into(), LogValue::Token(token_out)),
                    ("tokenAmountOut".into(), LogValue::Amount(out)),
                    ("bptIn".into(), LogValue::Amount(bpt_in)),
                ],
            );
            Ok(out)
        })
    }

    /// Spot price of `base` in `quote` terms: `(B_q / w_q) / (B_b / w_b)`,
    /// decimals-adjusted.
    ///
    /// # Errors
    /// Reverts on unknown tokens or empty reserves.
    pub fn spot_price(
        &self,
        ctx: &TxContext<'_>,
        base: TokenId,
        quote: TokenId,
    ) -> Result<f64> {
        let b = self
            .index_of(base)
            .ok_or_else(|| SimError::revert("base not in pool"))?;
        let q = self
            .index_of(quote)
            .ok_or_else(|| SimError::revert("quote not in pool"))?;
        let rb = self.reserve_of(ctx, base);
        let rq = self.reserve_of(ctx, quote);
        if rb == 0 || rq == 0 {
            return Err(SimError::revert("empty pool"));
        }
        let db = ctx.token(base)?.decimals as i32;
        let dq = ctx.token(quote)?.decimals as i32;
        let rb_f = rb as f64 / 10f64.powi(db) / self.weights[b];
        let rq_f = rq as f64 / 10f64.powi(dq) / self.weights[q];
        Ok(rq_f / rb_f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::ChainConfig;

    fn deploy_token(chain: &mut Chain, deployer: Address, symbol: &str, decimals: u8) -> TokenId {
        let mut out = None;
        chain
            .execute(deployer, deployer, "deployToken", |ctx| {
                let c = ctx.create_contract(deployer)?;
                out = Some(ctx.register_token(symbol, decimals, c));
                Ok(())
            })
            .unwrap();
        out.unwrap()
    }

    fn setup() -> (Chain, WeightedPool, Address, TokenId, TokenId) {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("balancer deployer");
        let whale = chain.create_eoa("whale");
        let weth = deploy_token(&mut chain, deployer, "WETH", 18);
        let sta = deploy_token(&mut chain, deployer, "STA", 18);
        let pool = WeightedPool::deploy(
            &mut chain,
            &mut labels,
            deployer,
            deployer,
            vec![weth, sta],
            vec![0.5, 0.5],
            "BPT",
            30,
        )
        .unwrap();
        chain
            .execute(whale, pool.address, "seed", |ctx| {
                ctx.mint_token(weth, whale, 1_000 * E18)?;
                ctx.mint_token(sta, whale, 1_000_000 * E18)?;
                pool.seed(
                    ctx,
                    whale,
                    &[500 * E18, 500_000 * E18],
                    100 * E18,
                )?;
                Ok(())
            })
            .unwrap();
        (chain, pool, whale, weth, sta)
    }

    const E18: u128 = 1_000_000_000_000_000_000;

    #[test]
    fn equal_weights_behave_like_constant_product() {
        let (mut chain, pool, whale, weth, sta) = setup();
        chain
            .execute(whale, pool.address, "swap", |ctx| {
                let out = pool.swap_exact_in(ctx, whale, weth, sta, 10 * E18, 0)?;
                // constant-product estimate: 10*0.997*500000/(500+9.97) ≈ 9777
                let est = 10.0 * 0.997 * 500_000.0 / 509.97;
                let got = out as f64 / E18 as f64;
                assert!((got - est).abs() / est < 0.01, "got {got}, est {est}");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn spot_price_reflects_weights() {
        let (mut chain, pool, whale, weth, sta) = setup();
        chain
            .execute(whale, pool.address, "probe", |ctx| {
                let p = pool.spot_price(ctx, weth, sta)?;
                assert!((p - 1_000.0).abs() < 1.0, "1000 STA per WETH, got {p}");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn join_and_exit_single_roundtrip_loses_fees_only() {
        let (mut chain, pool, whale, weth, _) = setup();
        chain
            .execute(whale, pool.address, "cycle", |ctx| {
                let before = ctx.balance(weth, whale);
                let bpt = pool.join_single(ctx, whale, weth, 10 * E18)?;
                assert!(bpt > 0);
                let back = pool.exit_single(ctx, whale, weth, bpt)?;
                assert!(back <= 10 * E18, "cannot profit from join+exit");
                assert!(back > 9 * E18, "loses at most ~fee+rounding");
                assert!(ctx.balance(weth, whale) <= before);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn swap_rejects_foreign_tokens() {
        let (mut chain, pool, whale, weth, _) = setup();
        chain
            .execute(whale, pool.address, "bad", |ctx| {
                assert!(pool
                    .amount_out(ctx, weth, TokenId::from_index(77), E18)
                    .is_err());
                assert!(pool.amount_out(ctx, weth, weth, E18).is_err());
                assert!(pool.amount_out(ctx, weth, pool.tokens[1], 0).is_err());
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn massive_swap_cannot_drain_reserve() {
        let (mut chain, pool, whale, weth, sta) = setup();
        chain
            .execute(whale, pool.address, "drain", |ctx| {
                // 490 WETH into a 500-reserve pool: huge trade, output must
                // stay below the STA reserve.
                let r_before = pool.reserve_of(ctx, sta);
                let out = pool.swap_exact_in(ctx, whale, weth, sta, 490 * E18, 0)?;
                assert!(out < r_before);
                Ok(())
            })
            .unwrap();
    }
}

//! The token registry: native ETH plus ERC20-style fungible tokens.
//!
//! The paper (§II-A) deals with two asset classes — native Ether and ERC20
//! tokens. Both are represented uniformly here by a [`TokenId`] into the
//! world-state token registry; `TokenId::ETH` is pre-registered. LP tokens
//! minted by liquidity pools are ordinary registry entries too.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::address::Address;

/// Identifier of a registered token.
///
/// `TokenId(0)` is always native ETH. All other ids are handed out by
/// [`crate::state::WorldState::register_token`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TokenId(pub(crate) u32);

impl TokenId {
    /// The native Ether pseudo-token (always id 0).
    pub const ETH: TokenId = TokenId(0);

    /// Raw registry index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is native ETH.
    pub const fn is_eth(self) -> bool {
        self.0 == 0
    }

    /// Constructs a token id from a raw index.
    ///
    /// Intended for deserialization and test fixtures; ids that were never
    /// registered will fail lookups against the registry.
    pub const fn from_index(index: u32) -> Self {
        TokenId(index)
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "token#{}", self.0)
    }
}

impl fmt::Debug for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TokenId({})", self.0)
    }
}

/// Metadata for a registered token.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenInfo {
    /// Ticker symbol, e.g. `"WBTC"`.
    pub symbol: String,
    /// Number of decimals in the raw unit representation (18 for ETH).
    pub decimals: u8,
    /// Contract address of the token (zero for native ETH).
    pub contract: Address,
}

impl TokenInfo {
    /// Converts a whole-token count into raw units
    /// (e.g. `units(3)` for an 18-decimals token is `3 * 10^18`).
    ///
    /// # Panics
    /// Panics on overflow; whole-token inputs in scenarios are far below the
    /// overflow boundary (u128 holds ~3.4e38; 18 decimals leaves 1e20 whole
    /// tokens of headroom).
    pub fn units(&self, whole: u128) -> u128 {
        whole
            .checked_mul(10u128.pow(self.decimals as u32))
            .expect("token amount overflow")
    }

    /// Converts fractional whole tokens (e.g. `1.5`) into raw units,
    /// truncating sub-unit dust. Intended for scenario scripting, not ledger
    /// math.
    pub fn units_f64(&self, whole: f64) -> u128 {
        let scaled = whole * 10f64.powi(self.decimals as i32);
        if scaled <= 0.0 {
            0
        } else {
            scaled as u128
        }
    }

    /// Converts raw units back to whole tokens as `f64` (for reports and
    /// exchange-rate math; the ledger itself never leaves `u128`).
    pub fn to_whole(&self, raw: u128) -> f64 {
        raw as f64 / 10f64.powi(self.decimals as i32)
    }

    /// Human-readable amount rendering, e.g. `"112.000000 WBTC"`.
    pub fn format(&self, raw: u128) -> String {
        format!("{:.6} {}", self.to_whole(raw), self.symbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wbtc() -> TokenInfo {
        TokenInfo {
            symbol: "WBTC".into(),
            decimals: 8,
            contract: Address::from_seed("wbtc"),
        }
    }

    #[test]
    fn eth_is_id_zero() {
        assert!(TokenId::ETH.is_eth());
        assert!(!TokenId::from_index(3).is_eth());
        assert_eq!(TokenId::ETH.index(), 0);
    }

    #[test]
    fn units_scale_by_decimals() {
        let t = wbtc();
        assert_eq!(t.units(112), 112 * 100_000_000);
        assert_eq!(t.units_f64(0.5), 50_000_000);
        assert_eq!(t.units_f64(-1.0), 0);
    }

    #[test]
    fn whole_roundtrip() {
        let t = wbtc();
        let raw = t.units(49);
        assert!((t.to_whole(raw) - 49.0).abs() < 1e-9);
    }

    #[test]
    fn format_contains_symbol() {
        let t = wbtc();
        assert_eq!(t.format(t.units(2)), "2.000000 WBTC");
    }

    #[test]
    #[should_panic(expected = "token amount overflow")]
    fn units_panics_on_overflow() {
        let t = TokenInfo {
            symbol: "X".into(),
            decimals: 18,
            contract: Address::ZERO,
        };
        let _ = t.units(u128::MAX / 2);
    }
}

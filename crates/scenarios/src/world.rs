//! The standard world: a full DeFi deployment every scenario runs on.
//!
//! Mirrors the on-chain landscape the paper's corpus lives in: base tokens,
//! WETH, deep Uniswap pairs, the three flash-loan providers of Table II,
//! a Kyber-style aggregator, an Etherscan-like label cloud, and attack-day
//! USD prices. Attack scripts extend the world with their victim protocols
//! (vaults, weighted pools, lending markets) before executing.

use defi::labels::apps;
use defi::{
    AavePool, DydxSolo, LabelService, Mixer, TokenDeployment, UniswapV2Factory, UniswapV2Pair,
    Weth, YieldAggregator,
};
use ethsim::{Address, Chain, ChainConfig, Result, TokenId, TxContext};
use leishen::analytics::UsdPriceTable;
use leishen::{ChainView, Labels};

use crate::prices::usd;

/// Wei per ETH.
pub const E18: u128 = 1_000_000_000_000_000_000;
/// Raw units per USDC/USDT (6 decimals).
pub const E6: u128 = 1_000_000;
/// Raw units per WBTC (8 decimals).
pub const E8: u128 = 100_000_000;

/// The fully deployed standard world.
pub struct World {
    /// The chain all scenarios execute on.
    pub chain: Chain,
    /// The protocol-side label registry (Etherscan label cloud).
    pub labels: LabelService,
    /// Attack-day USD prices for profit accounting.
    pub prices: UsdPriceTable,
    /// The Wrapped Ether contract.
    pub weth: Weth,
    /// Deep-pocketed liquidity provider used in world setup.
    pub whale: Address,
    /// USD Coin (6 decimals).
    pub usdc: TokenDeployment,
    /// Tether (6 decimals).
    pub usdt: TokenDeployment,
    /// Dai (18 decimals).
    pub dai: TokenDeployment,
    /// Wrapped Bitcoin (8 decimals).
    pub wbtc: TokenDeployment,
    /// Synthetix USD (18 decimals).
    pub susd: TokenDeployment,
    /// The Uniswap factory.
    pub uniswap: UniswapV2Factory,
    /// ETH/USDC pair (very deep — Harvest borrows 50M USDC here).
    pub pair_eth_usdc: UniswapV2Pair,
    /// ETH/WBTC pair (tuned so bZx-1's pump moves ~49 → ~74+ ETH/WBTC).
    pub pair_eth_wbtc: UniswapV2Pair,
    /// ETH/sUSD pair (bZx-2's 18-buy target).
    pub pair_eth_susd: UniswapV2Pair,
    /// ETH/DAI pair.
    pub pair_eth_dai: UniswapV2Pair,
    /// AAVE flash-loan pool.
    pub aave: AavePool,
    /// dYdX SoloMargin.
    pub dydx: DydxSolo,
    /// Kyber-style routing aggregator.
    pub kyber: YieldAggregator,
    /// Tornado-style coin mixer (100 ETH denomination) — the §VI-D2
    /// laundering sink.
    pub tornado: Mixer,
    attacker_counter: u32,
}

impl World {
    /// Deploys the standard world from genesis. Deterministic: two calls
    /// yield identical chains.
    ///
    /// # Panics
    /// Panics if any genesis deployment fails (programming error).
    pub fn new() -> World {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let mut prices = UsdPriceTable::new();

        let whale = chain.create_eoa("world whale");
        chain
            .state_mut()
            .credit_eth(whale, 10_000_000 * E18)
            .expect("genesis funding");

        let weth_deployer = chain.create_eoa("weth deployer");
        let weth = Weth::deploy(&mut chain, &mut labels, weth_deployer).expect("weth");

        let token_deployer = chain.create_eoa("token authority");
        let usdc = TokenDeployment::deploy(
            &mut chain,
            &mut labels,
            token_deployer,
            "USDC",
            6,
            Some("USDC"),
        )
        .expect("usdc");
        let usdt = TokenDeployment::deploy(
            &mut chain,
            &mut labels,
            token_deployer,
            "USDT",
            6,
            Some("USDT"),
        )
        .expect("usdt");
        let dai = TokenDeployment::deploy(
            &mut chain,
            &mut labels,
            token_deployer,
            "DAI",
            18,
            Some("DAI"),
        )
        .expect("dai");
        let wbtc = TokenDeployment::deploy(
            &mut chain,
            &mut labels,
            token_deployer,
            "WBTC",
            8,
            Some("WBTC"),
        )
        .expect("wbtc");
        let susd = TokenDeployment::deploy(
            &mut chain,
            &mut labels,
            token_deployer,
            "sUSD",
            18,
            Some("sUSD"),
        )
        .expect("susd");

        prices.set_whole(TokenId::ETH, usd::ETH, 18);
        prices.set_whole(weth.token, usd::ETH, 18);
        prices.set_whole(usdc.id, usd::USDC, 6);
        prices.set_whole(usdt.id, usd::USDT, 6);
        prices.set_whole(dai.id, usd::DAI, 18);
        prices.set_whole(wbtc.id, usd::WBTC, 8);
        prices.set_whole(susd.id, usd::SUSD, 18);

        let uniswap_deployer = chain.create_eoa("uniswap deployer");
        let uniswap = UniswapV2Factory::deploy_canonical(&mut chain, &mut labels, uniswap_deployer)
            .expect("uniswap factory");
        let pair_eth_usdc =
            UniswapV2Pair::deploy(&mut chain, &uniswap, TokenId::ETH, usdc.id, "UNI-V2 ETH/USDC")
                .expect("pair");
        let pair_eth_wbtc =
            UniswapV2Pair::deploy(&mut chain, &uniswap, TokenId::ETH, wbtc.id, "UNI-V2 ETH/WBTC")
                .expect("pair");
        let pair_eth_susd =
            UniswapV2Pair::deploy(&mut chain, &uniswap, TokenId::ETH, susd.id, "UNI-V2 ETH/sUSD")
                .expect("pair");
        let pair_eth_dai =
            UniswapV2Pair::deploy(&mut chain, &uniswap, TokenId::ETH, dai.id, "UNI-V2 ETH/DAI")
                .expect("pair");

        let aave_deployer = chain.create_eoa("aave deployer");
        let aave = AavePool::deploy(&mut chain, &mut labels, aave_deployer).expect("aave");
        let dydx_deployer = chain.create_eoa("dydx deployer");
        let dydx = DydxSolo::deploy(&mut chain, &mut labels, dydx_deployer).expect("dydx");
        let kyber_operator = chain.create_eoa("kyber operator");
        let kyber = YieldAggregator::deploy(&mut chain, &mut labels, kyber_operator, apps::KYBER)
            .expect("kyber");
        let tornado_deployer = chain.create_eoa("tornado deployer");
        let tornado = Mixer::deploy(
            &mut chain,
            &mut labels,
            tornado_deployer,
            100 * E18,
            "Tornado Cash",
        )
        .expect("tornado");

        // Seed liquidity. ETH/USDC is the deepest pool on mainnet and the
        // Harvest attack borrows 50M USDC from Uniswap, so make it deep.
        let seed = |chain: &mut Chain| -> Result<()> {
            let w = whale;
            chain.execute(w, Address::ZERO, "genesisSeed", |ctx| {
                ctx.mint_token(usdc.id, w, 500_000_000 * E6)?;
                ctx.mint_token(usdt.id, w, 500_000_000 * E6)?;
                ctx.mint_token(dai.id, w, 300_000_000 * E18)?;
                ctx.mint_token(wbtc.id, w, 10_000 * E8)?;
                ctx.mint_token(susd.id, w, 50_000_000 * E18)?;

                // 2,000 USDC per ETH; 100M USDC deep.
                pair_eth_usdc.add_liquidity(ctx, w, 50_000 * E18, 100_000_000 * E6)?;
                // 49.0 ETH per WBTC: 11,270 ETH / 230 WBTC (bZx-1 borrows
                // 112 WBTC against 5,500 ETH at this price).
                pair_eth_wbtc.add_liquidity(ctx, w, 11_270 * E18, 230 * E8)?;
                // 0.0038 ETH per sUSD, shallow as the 2020 pool was —
                // bZx-2's 18 × 20 ETH buys must move it 0.0038 → ~0.009.
                pair_eth_susd.add_liquidity(ctx, w, 660 * E18, 173_684 * E18)?;
                // 2,000 DAI per ETH; deep enough for the wild generator's
                // largest DAI flash swaps (the $6.1M-profit attack).
                pair_eth_dai.add_liquidity(ctx, w, 100_000 * E18, 200_000_000 * E18)?;

                // Flash-loan reserves.
                ctx.transfer_eth(w, aave.address, 500_000 * E18)?;
                ctx.mint_token(usdc.id, aave.address, 200_000_000 * E6)?;
                ctx.mint_token(dai.id, aave.address, 100_000_000 * E18)?;
                ctx.transfer_eth(w, dydx.address, 500_000 * E18)?;
                ctx.mint_token(usdc.id, dydx.address, 100_000_000 * E6)?;
                ctx.mint_token(dai.id, dydx.address, 100_000_000 * E18)?;
                Ok(())
            })?;
            Ok(())
        };
        seed(&mut chain).expect("liquidity seeding");

        World {
            chain,
            labels,
            prices,
            weth,
            whale,
            usdc,
            usdt,
            dai,
            wbtc,
            susd,
            uniswap,
            pair_eth_usdc,
            pair_eth_wbtc,
            pair_eth_susd,
            pair_eth_dai,
            aave,
            dydx,
            kyber,
            tornado,
            attacker_counter: 0,
        }
    }

    /// Deploys an unlabeled token and registers its USD price.
    pub fn deploy_token(
        &mut self,
        symbol: &str,
        decimals: u8,
        usd_per_whole: f64,
    ) -> TokenDeployment {
        let deployer = self.chain.create_eoa(&format!("{symbol} deployer"));
        let t = TokenDeployment::deploy(&mut self.chain, &mut self.labels, deployer, symbol, decimals, None)
            .expect("token deploy");
        self.prices.set_whole(t.id, usd_per_whole, decimals);
        t
    }

    /// Creates an attacker: a fresh EOA plus an attack contract it deploys
    /// in its own transaction (paper Fig. 2, step 1). Both are unlabeled —
    /// tagging groups them by their shared creation-tree root.
    pub fn create_attacker(&mut self, name: &str) -> (Address, Address) {
        self.attacker_counter += 1;
        let eoa = self
            .chain
            .create_eoa(&format!("attacker {} #{}", name, self.attacker_counter));
        let mut contract = None;
        self.chain
            .execute(eoa, eoa, "deployAttackContract", |ctx| {
                contract = Some(ctx.create_contract(eoa)?);
                Ok(())
            })
            .expect("attack contract deploy");
        (eoa, contract.expect("deploy ran"))
    }

    /// Deploys a labeled scripted application: a labeled deployer EOA plus
    /// `n_contracts` unlabeled child contracts (tagged via the creation
    /// tree, as Etherscan labels factories but not every pool).
    pub fn scripted_app(&mut self, app_name: &str, n_contracts: usize) -> Vec<Address> {
        let deployer = self.chain.create_eoa(&format!("{app_name} deployer"));
        self.labels.set(deployer, app_name);
        let mut out = Vec::with_capacity(n_contracts);
        self.chain
            .execute(deployer, deployer, "deployApp", |ctx| {
                for _ in 0..n_contracts {
                    out.push(ctx.create_contract(deployer)?);
                }
                Ok(())
            })
            .expect("scripted app deploy");
        out
    }

    /// Deploys an application whose contracts sit in creation trees with
    /// **conflicting** labels (paper Fig. 7c): each returned contract has
    /// descendants labeled with *both* application names, so its tag set
    /// has two entries and it cannot be tagged — the JulSwap /
    /// PancakeHunny failure mode.
    pub fn conflicted_app(&mut self, label_a: &str, label_b: &str) -> (Address, Address) {
        let deployer = self
            .chain
            .create_eoa(&format!("conflicted {label_a}/{label_b}"));
        let mut parents = Vec::new();
        let mut children = Vec::new();
        self.chain
            .execute(deployer, deployer, "deployConflicted", |ctx| {
                for _ in 0..2 {
                    let parent = ctx.create_contract(deployer)?;
                    // Each parent deploys one pool of each protocol family
                    // (the "open to public deployment" case the paper
                    // describes): conflicting descendants.
                    children.push(ctx.create_contract(parent)?);
                    children.push(ctx.create_contract(parent)?);
                    parents.push(parent);
                }
                Ok(())
            })
            .expect("conflicted app deploy");
        self.labels.set(children[0], label_a);
        self.labels.set(children[1], label_b);
        self.labels.set(children[2], label_a);
        self.labels.set(children[3], label_b);
        (parents[0], parents[1])
    }

    /// Funds an address with native ETH outside any transaction.
    pub fn fund_eth(&mut self, who: Address, amount: u128) {
        self.chain
            .state_mut()
            .credit_eth(who, amount)
            .expect("funding");
    }

    /// Mints tokens to an address via a funding transaction.
    pub fn fund_token(&mut self, token: TokenId, who: Address, amount: u128) {
        let whale = self.whale;
        self.chain
            .execute(whale, Address::ZERO, "fund", |ctx| {
                ctx.mint_token(token, who, amount)
            })
            .expect("token funding");
    }

    /// Converts the protocol-side label service into the detector's label
    /// cloud.
    pub fn detector_labels(&self) -> Labels {
        self.labels
            .iter()
            .map(|(a, l)| (a, l.to_string()))
            .collect()
    }

    /// Builds a [`ChainView`] over borrowed labels (caller keeps the
    /// `Labels` alive).
    pub fn view<'a>(&self, labels: &'a Labels) -> ChainView<'a> {
        ChainView::new(labels, self.chain.state().creations(), Some(self.weth.token))
    }

    /// Convenience: runs a closure as a scripted transaction from `from`.
    ///
    /// # Panics
    /// Panics if the executor itself fails (never for in-tx reverts).
    pub fn execute(
        &mut self,
        from: Address,
        to: Address,
        function: &str,
        body: impl FnOnce(&mut TxContext<'_>) -> Result<()>,
    ) -> ethsim::TxId {
        self.chain.execute(from, to, function, body).expect("executor")
    }
}

impl Default for World {
    fn default() -> Self {
        World::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_deploys_consistently() {
        let w = World::new();
        assert_eq!(w.chain.state().token_by_symbol("USDC"), Some(w.usdc.id));
        assert_eq!(w.chain.state().token_by_symbol("WETH"), Some(w.weth.token));
        assert!(w.labels.get(w.aave.address).is_some());
        assert!(w.labels.get(w.dydx.address).is_some());
        assert!(w.labels.get(w.kyber.address).is_some());
        assert!(w.prices.has(TokenId::ETH));
        assert!(w.prices.has(w.wbtc.id));
    }

    #[test]
    fn pairs_have_expected_prices() {
        let mut w = World::new();
        let whale = w.whale;
        let (p_wbtc, p_usdc, p_susd) = {
            let pair_wbtc = w.pair_eth_wbtc;
            let pair_usdc = w.pair_eth_usdc;
            let pair_susd = w.pair_eth_susd;
            let mut out = (0.0, 0.0, 0.0);
            w.execute(whale, Address::ZERO, "probe", |ctx| {
                out.0 = pair_wbtc.spot_price(ctx, pair_wbtc.token1)?; // ETH per WBTC
                out.1 = pair_usdc.spot_price(ctx, TokenId::ETH)?; // USDC per ETH
                out.2 = pair_susd.spot_price(ctx, pair_susd.token1)?; // ETH per sUSD
                Ok(())
            });
            out
        };
        assert!((p_wbtc - 49.13).abs() < 0.2, "ETH/WBTC {p_wbtc}");
        assert!((p_usdc - 2_000.0).abs() < 1.0, "USDC/ETH {p_usdc}");
        assert!((p_susd - 0.0038).abs() < 0.0002, "ETH/sUSD {p_susd}");
    }

    #[test]
    fn attacker_and_eoa_share_a_creation_root() {
        let mut w = World::new();
        let (eoa, contract) = w.create_attacker("test");
        let labels = w.detector_labels();
        let view = w.view(&labels);
        let t1 = leishen::tagging::tag_of(eoa, view.labels(), view.creations());
        let t2 = leishen::tagging::tag_of(contract, view.labels(), view.creations());
        assert_eq!(t1, t2, "EOA and attack contract share an identity");
    }

    #[test]
    fn conflicted_app_contracts_are_untaggable() {
        let mut w = World::new();
        let (c_in, c_out) = w.conflicted_app("JulSwap", "Venus");
        let labels = w.detector_labels();
        let view = w.view(&labels);
        let t_in = leishen::tagging::tag_of(c_in, view.labels(), view.creations());
        let t_out = leishen::tagging::tag_of(c_out, view.labels(), view.creations());
        assert!(t_in.is_unknown());
        assert!(t_out.is_unknown());
        assert_ne!(t_in, t_out, "distinct unknowns never merge");
    }

    #[test]
    fn scripted_app_contracts_inherit_the_label() {
        let mut w = World::new();
        let contracts = w.scripted_app("Cheese Bank", 2);
        let labels = w.detector_labels();
        let view = w.view(&labels);
        for c in contracts {
            let t = leishen::tagging::tag_of(c, view.labels(), view.creations());
            assert_eq!(t.app_name(), Some("Cheese Bank"));
        }
    }
}

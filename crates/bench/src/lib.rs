//! Shared harness code for the table/figure regeneration binaries and the
//! Criterion benches.
//!
//! Every binary regenerates one table or figure from the paper's
//! evaluation (see `DESIGN.md`'s experiment index):
//!
//! | binary    | regenerates |
//! |-----------|-------------|
//! | `fig1`    | weekly flash-loan transactions per provider |
//! | `table1`  | the 22 known attacks with volatility + patterns |
//! | `table2`  | flash-loan identification signatures |
//! | `table4`  | known-attack detection across the three detectors |
//! | `table5`  | wild-scan detections, TP/FP and precision per pattern |
//! | `table6`  | top-3 most attacked applications |
//! | `table7`  | attack profit statistics |
//! | `fig6`    | bZx-1 app-level transfer construction |
//! | `fig8`    | monthly unknown flpAttacks |
//! | `latency` | per-transaction detection latency (§VI-A) |
//! | `ablation`| threshold sweeps (§VII) |

use std::time::Instant;

use ethsim::TxRecord;
use leishen::{DetectorConfig, LeiShen, ScanEngine, TagCache};
use leishen_scenarios::generator::{generate, GeneratorConfig};
use leishen_scenarios::{run_all_attacks, ExecutedAttack, GeneratedTx, World};

/// A world with all 22 known attacks executed.
pub fn known_attack_world() -> (World, Vec<ExecutedAttack>) {
    let mut world = World::new();
    let attacks = run_all_attacks(&mut world);
    (world, attacks)
}

/// A world with the wild corpus generated.
pub fn wild_world(seed: u64, scale: f64) -> (World, Vec<GeneratedTx>) {
    let mut world = World::new();
    let corpus = generate(
        &mut world,
        &GeneratorConfig {
            seed,
            scale,
            with_attacks: true,
        },
    );
    (world, corpus)
}

/// Parses `--seed N` / `--scale F` style CLI options with defaults.
pub fn cli_f64(flag: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--flag N` u64 option.
pub fn cli_u64(flag: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--flag value` string option.
pub fn cli_str(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

/// Whether a bare `--flag` is present.
pub fn cli_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("--")
    );
    for row in rows {
        line(row);
    }
}

/// Replays a transaction set into records, sorted by transaction id —
/// the canonical batch ordering for [`ScanEngine`] scans, so serial and
/// parallel runs are comparable element by element.
pub fn corpus_records(
    world: &World,
    txs: impl Iterator<Item = ethsim::TxId>,
) -> Vec<&TxRecord> {
    let mut records: Vec<&TxRecord> = txs
        .map(|tx| world.chain.replay(tx).expect("recorded"))
        .collect();
    records.sort_by_key(|r| r.id);
    records
}

/// Times the detector over a set of transactions and returns latencies in
/// microseconds (per transaction).
pub fn measure_latencies(
    world: &World,
    txs: impl Iterator<Item = ethsim::TxId>,
    config: DetectorConfig,
) -> Vec<f64> {
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(config);
    let mut out = Vec::new();
    for tx in txs {
        let record = world.chain.replay(tx).expect("recorded");
        let start = Instant::now();
        let analysis = detector.analyze(record, &view);
        let elapsed = start.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box(&analysis);
        out.push(elapsed);
    }
    out
}

/// Per-transaction latencies (µs) through the batch-scan hot path: tags
/// resolved via one shared [`TagCache`] across the whole set. The
/// cache-warm twin of [`measure_latencies`].
pub fn measure_latencies_cached(
    world: &World,
    txs: impl Iterator<Item = ethsim::TxId>,
    config: DetectorConfig,
) -> Vec<f64> {
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(config);
    let cache = TagCache::new();
    let mut out = Vec::new();
    for tx in txs {
        let record = world.chain.replay(tx).expect("recorded");
        let start = Instant::now();
        let analysis = detector.analyze_cached(record, &view, &cache);
        let elapsed = start.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box(&analysis);
        out.push(elapsed);
    }
    out
}

/// One timed batch scan.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputRun {
    /// Worker threads used (0 ⇒ plain serial `analyze` loop, no cache).
    pub workers: usize,
    /// Transactions scanned.
    pub transactions: usize,
    /// Wall-clock time for the whole batch, microseconds.
    pub elapsed_us: f64,
    /// Transactions per second.
    pub tx_per_sec: f64,
}

impl ThroughputRun {
    fn from_elapsed(workers: usize, transactions: usize, secs: f64) -> ThroughputRun {
        ThroughputRun {
            workers,
            transactions,
            elapsed_us: secs * 1e6,
            tx_per_sec: transactions as f64 / secs.max(1e-12),
        }
    }
}

/// Times the plain serial loop (`analyze` per transaction, no shared
/// cache) over the batch — the baseline [`measure_throughput`] runs are
/// compared against. Like the engine, the loop collects every
/// [`leishen::Analysis`], so both sides are timed producing the same
/// output.
pub fn measure_serial_throughput(
    world: &World,
    txs: impl Iterator<Item = ethsim::TxId>,
    config: DetectorConfig,
) -> ThroughputRun {
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(config);
    let records = corpus_records(world, txs);
    let start = Instant::now();
    let analyses: Vec<leishen::Analysis> = records
        .iter()
        .map(|record| detector.analyze(record, &view))
        .collect();
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(&analyses);
    ThroughputRun::from_elapsed(0, records.len(), secs)
}

/// Times a [`ScanEngine`] batch scan at the given worker count — the
/// batch-scanning twin of [`measure_latencies`]. Replay happens outside
/// the timed region. The caller provides the shared [`TagCache`] so it
/// persists across batches, which is the engine's steady state: a scanner
/// that processes corpus after corpus over the same chain keeps one cache
/// alive (that is what [`ScanEngine::scan_with_cache`] is for), so only
/// the very first batch pays the cold tag-resolution misses. Pass a fresh
/// cache to time a cold scan instead.
pub fn measure_throughput(
    world: &World,
    txs: impl Iterator<Item = ethsim::TxId>,
    config: DetectorConfig,
    workers: usize,
    cache: &TagCache,
) -> ThroughputRun {
    let engine = ScanEngine::new(workers);
    measure_engine_throughput(world, txs, config, &engine, workers, cache)
}

/// [`measure_throughput`] with a caller-built engine, so sweeps can time
/// configuration variants (`with_naive_chunking`,
/// `allow_oversubscription`, chunk-size hints) against one another.
/// `workers` here is only the label recorded in the run — the engine's
/// own worker count governs the scan.
pub fn measure_engine_throughput(
    world: &World,
    txs: impl Iterator<Item = ethsim::TxId>,
    config: DetectorConfig,
    engine: &ScanEngine,
    workers: usize,
    cache: &TagCache,
) -> ThroughputRun {
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(config);
    let records = corpus_records(world, txs);
    let start = Instant::now();
    let analyses = engine.scan_with_cache(&detector, &records, &view, cache);
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(&analyses);
    ThroughputRun::from_elapsed(workers, records.len(), secs)
}

/// Sorts a sample ascending (NaN-tolerant) — do this **once**, then take
/// as many [`percentile`]s as needed.
pub fn sort_samples(samples: &mut [f64]) {
    // total_cmp gives a total order (NaNs sort after every number), so a
    // stray NaN from a zero-duration division cannot scramble the sort
    // the way the old `partial_cmp(..).unwrap_or(Equal)` comparator did.
    samples.sort_unstable_by(f64::total_cmp);
}

/// Percentile of an **ascending-sorted** sample (`p` clamped to
/// `0..=100`; a NaN `p` reads as 0), by nearest-rank. Callers sort once
/// via [`sort_samples`] instead of this function re-sorting on every
/// call. Empty input yields 0; `p = 0` yields the minimum.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
        "percentile() expects sorted input; call sort_samples() first"
    );
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        sort_samples(&mut v);
        assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_degenerate_samples() {
        // A single sample is every percentile.
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[42.0], p), 42.0);
        }
        // Two samples: nearest-rank splits at the 50th.
        let v = [1.0, 9.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 1.0);
        assert_eq!(percentile(&v, 50.1), 9.0);
        assert_eq!(percentile(&v, 100.0), 9.0);
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, -10.0), 1.0);
        assert_eq!(percentile(&v, 250.0), 3.0);
        assert_eq!(percentile(&v, f64::NAN), 1.0);
    }

    #[test]
    fn sort_samples_totally_orders_nans() {
        // NaNs land at the end, numbers stay ordered — the comparator is
        // a total order, so sorting cannot scramble finite samples.
        let mut v = vec![f64::NAN, 2.0, f64::NEG_INFINITY, 1.0, f64::INFINITY];
        sort_samples(&mut v);
        assert_eq!(v[0], f64::NEG_INFINITY);
        assert_eq!(&v[1..3], &[1.0, 2.0]);
        assert_eq!(v[3], f64::INFINITY);
        assert!(v[4].is_nan());
        // Percentiles over the finite prefix stay meaningful.
        assert_eq!(percentile(&v, 40.0), 1.0);
    }

    #[test]
    fn cli_defaults() {
        assert_eq!(cli_f64("--nope", 1.5), 1.5);
        assert_eq!(cli_u64("--nope", 7), 7);
        assert!(!cli_flag("--definitely-not-set"));
    }
}

//! The budgeted fuzzing campaign: seed pre-pass, operator round-robin,
//! shrink-on-failure, and the statistics the `fuzz` bench bin serializes.
//!
//! The campaign is deliberately detector-agnostic plumbing: everything it
//! knows about correctness lives in the [`DiffOracle`] and the seed's
//! ground-truth expectations. The caller observes every passing mutant
//! through a visitor (the bench bin uses it to diff the `baselines` crate
//! against the same mutants).

use super::ops::{OpFamily, Operator};
use super::oracle::DiffOracle;
use super::rng::FuzzRng;
use super::shrink::shrink_mutant;
use super::{CaseVerdict, Mutant, SeedCase};

/// Campaign budget and switches.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// RNG seed; equal seeds replay the identical campaign.
    pub seed: u64,
    /// Target number of *generated* mutants (not counting inapplicable
    /// operator draws).
    pub mutants: usize,
    /// Hard cap on operator draws, so a seed where most operators are
    /// inapplicable still terminates.
    pub max_attempts: usize,
    /// Shrink failing mutants (disable for raw triage speed).
    pub shrink: bool,
}

impl CampaignConfig {
    /// Default budget: `mutants` mutants from `seed`, shrinking enabled.
    pub fn new(seed: u64, mutants: usize) -> Self {
        CampaignConfig { seed, mutants, max_attempts: mutants * 4 + 64, shrink: true }
    }
}

/// Per-operator campaign counters.
#[derive(Clone, Debug)]
pub struct OperatorStats {
    /// The operator.
    pub operator: Operator,
    /// Mutants generated (operator applicable).
    pub generated: usize,
    /// Draws where the operator was inapplicable.
    pub skipped: usize,
    /// Oracle violations among this operator's mutants.
    pub violations: usize,
}

/// One oracle violation, shrunk and ready to persist.
#[derive(Clone, Debug)]
pub struct ViolationReport {
    /// Operator name (`"seed"` for the unmutated pre-pass).
    pub operator: String,
    /// Campaign iteration (0 for the pre-pass).
    pub iteration: usize,
    /// Stable violation code ([`super::Violation::code`]).
    pub code: &'static str,
    /// Human-readable violation message at find time.
    pub message: String,
    /// The shrunk reproducing mutant.
    pub shrunk: Mutant,
    /// Oracle runs the shrink spent.
    pub shrink_runs: usize,
}

/// Detector confusion counters over preserving mutants, judged against
/// ground truth (scenario metadata), per transaction.
#[derive(Clone, Copy, Debug, Default)]
pub struct Confusion {
    /// Ground-truth attacks the detector flagged.
    pub tp: usize,
    /// Benign transactions the detector flagged.
    pub fp: usize,
    /// Benign transactions the detector cleared.
    pub tn: usize,
    /// Ground-truth attacks the detector cleared.
    pub fn_: usize,
}

impl Confusion {
    /// False-positive rate `fp / (fp + tn)` (0 when the denominator is 0).
    pub fn fp_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// False-negative rate `fn / (fn + tp)` (0 when the denominator is 0).
    pub fn fn_rate(&self) -> f64 {
        ratio(self.fn_, self.fn_ + self.tp)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Everything a campaign run produced.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Budget the run was asked for.
    pub requested: usize,
    /// Mutants actually generated.
    pub generated: usize,
    /// Inapplicable operator draws.
    pub skipped: usize,
    /// Per-operator counters, in round-robin order.
    pub per_operator: Vec<OperatorStats>,
    /// Violations found on mutants, in discovery order.
    pub violations: Vec<ViolationReport>,
    /// Violation found on the *unmutated* seed by the pre-pass, if any
    /// (an injected detector bug shows up here before any mutation).
    pub seed_violation: Option<ViolationReport>,
    /// Detector-vs-ground-truth confusion over preserving mutants.
    pub confusion: Confusion,
}

impl CampaignReport {
    /// Total violation count including the seed pre-pass.
    pub fn total_violations(&self) -> usize {
        self.violations.len() + usize::from(self.seed_violation.is_some())
    }
}

/// Runs a campaign: a pre-pass of the oracle over the unmutated seed,
/// then `config.mutants` mutants drawn round-robin from
/// [`Operator::ALL`]. Failing mutants are shrunk (when enabled) and
/// reported; passing mutants are handed to `on_mutant` with their
/// verdicts.
pub fn run_campaign(
    seed: &SeedCase,
    oracle: &DiffOracle,
    config: &CampaignConfig,
    mut on_mutant: impl FnMut(&Mutant, &[CaseVerdict]),
) -> CampaignReport {
    let mut report = CampaignReport {
        requested: config.mutants,
        generated: 0,
        skipped: 0,
        per_operator: Operator::ALL
            .into_iter()
            .map(|operator| OperatorStats { operator, generated: 0, skipped: 0, violations: 0 })
            .collect(),
        violations: Vec::new(),
        seed_violation: None,
        confusion: Confusion::default(),
    };

    // Pre-pass: the unmutated history must already satisfy ground truth
    // and four-way agreement; otherwise every mutant would just echo the
    // same detector bug.
    if let Err(v) = oracle.check(&seed.case, &seed.expect) {
        let mutant = seed.as_mutant(Operator::ReorderTxs);
        let (shrunk, shrink_runs) =
            if config.shrink { shrink_mutant(&mutant, oracle) } else { (mutant, 0) };
        report.seed_violation = Some(ViolationReport {
            operator: "seed".to_string(),
            iteration: 0,
            code: v.code(),
            message: v.to_string(),
            shrunk,
            shrink_runs,
        });
    }

    let mut rng = FuzzRng::new(config.seed);
    let mut draws = 0usize;
    while report.generated < config.mutants && draws < config.max_attempts {
        let op = Operator::ALL[draws % Operator::ALL.len()];
        let iteration = draws + 1;
        draws += 1;
        let stats = report
            .per_operator
            .iter_mut()
            .find(|s| s.operator == op)
            .expect("per_operator covers ALL");
        let Some(mutant) = op.apply(seed, &mut rng) else {
            report.skipped += 1;
            stats.skipped += 1;
            continue;
        };
        report.generated += 1;
        stats.generated += 1;
        match oracle.check_mutant(&mutant) {
            Ok(verdicts) => {
                if op.family() == OpFamily::Preserving {
                    for (v, e) in verdicts.iter().zip(&mutant.expect) {
                        match (e.flagged, v.flagged) {
                            (true, true) => report.confusion.tp += 1,
                            (false, true) => report.confusion.fp += 1,
                            (false, false) => report.confusion.tn += 1,
                            (true, false) => report.confusion.fn_ += 1,
                        }
                    }
                }
                on_mutant(&mutant, &verdicts);
            }
            Err(v) => {
                stats.violations += 1;
                let (shrunk, shrink_runs) =
                    if config.shrink { shrink_mutant(&mutant, oracle) } else { (mutant, 0) };
                report.violations.push(ViolationReport {
                    operator: op.name().to_string(),
                    iteration,
                    code: v.code(),
                    message: v.to_string(),
                    shrunk,
                    shrink_runs,
                });
            }
        }
    }
    report
}

//! Chain monitor: scan a synthetic chain segment and report attacks live.
//!
//! Generates a small wild corpus (benign flash-loan traffic + injected
//! attacks), then sweeps every transaction the way an online monitor
//! would: identify flash loans, run the pipeline, print reports, and
//! summarize precision against ground truth.
//!
//! ```sh
//! cargo run --example chain_monitor            # default seed/scale
//! cargo run --example chain_monitor -- 7 0.001 # custom seed + scale
//! ```

use leishen::heuristics::initiated_by_aggregator;
use leishen::{DetectorConfig, LeiShen};
use leishen_repro::scenarios::generator::{generate, GeneratorConfig, AGGREGATOR_APPS};
use leishen_repro::scenarios::World;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.001);

    println!("deploying world and generating corpus (seed={seed}, scale={scale})...");
    let mut world = World::new();
    let corpus = generate(&mut world, &GeneratorConfig { seed, scale, with_attacks: true });
    println!("{} flash-loan transactions on chain\n", corpus.len());

    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());

    let mut detected = 0usize;
    let mut true_positives = 0usize;
    let mut dropped_by_heuristic = 0usize;
    for gtx in &corpus {
        let record = world.chain.replay(gtx.tx).expect("recorded");
        let Some(report) = detector.detect(record, &view, Some(&world.prices)) else {
            continue;
        };
        if initiated_by_aggregator(record.from, AGGREGATOR_APPS, view.labels(), view.creations())
        {
            dropped_by_heuristic += 1;
            continue;
        }
        detected += 1;
        if gtx.class.is_attack() {
            true_positives += 1;
        }
        let verdict = if gtx.class.is_attack() { "TRUE " } else { "FALSE" };
        println!(
            "[{verdict}] {report}  (app: {})",
            gtx.attacked_app.unwrap_or("-")
        );
    }

    println!("\n--- monitor summary ---");
    println!("alerts raised:        {detected}");
    println!("true attacks caught:  {true_positives}");
    println!("aggregator-dropped:   {dropped_by_heuristic}");
    if detected > 0 {
        println!(
            "precision:            {:.1}%",
            true_positives as f64 / detected as f64 * 100.0
        );
    }
}

//! Decision-provenance tracing — structured spans and events recording
//! *why* the detector flagged (or cleared) each transaction.
//!
//! Aggregate telemetry ([`crate::telemetry`]) answers "where does the
//! pipeline spend its time"; this layer answers the analyst's question:
//! *why was this transaction flagged?* For every analyzed transaction a
//! [`TxProvenance`] records
//!
//! * the per-stage spans (wall-clock offsets from a shared epoch),
//! * the full event log — flash loans found, tags assigned with the
//!   transfer that first triggered them, simplify keeps/drops/merges,
//!   identified trades, and every pattern matcher's verdict (the journal
//!   `seq`s it matched, or the first predicate that failed),
//! * the final [`Decision`] with a machine-readable [`Reason`] chain.
//!
//! The collection design mirrors the telemetry sink exactly:
//!
//! * [`TraceSink`] — compile-time-guarded hook trait; monomorphized over
//!   [`NoopTracer`] every event closure and clock read is dead code.
//! * [`FlightRecorder`] — the shared sink: a bounded ring that retains
//!   the last *N* cleared traces and **pins** every trace whose decision
//!   flagged an attack, so batch scans stay allocation-lean while
//!   attacks are always fully recorded.
//! * [`WorkerTracer`] — a per-worker lock-free front ([`FlightRecorder`]'s
//!   `worker_front`): traces accumulate in a thread-local buffer (itself
//!   ring-bounded) and merge into the shared recorder in one mutex
//!   acquisition when the worker finishes.
//!
//! Exporters live in [`export`]: JSONL event logs (one trace per line,
//! re-importable via [`export::parse_jsonl`]) and Chrome `trace_event`
//! JSON openable in `chrome://tracing` / Perfetto, with stage spans
//! nested per worker. [`json`] holds the small hand-rolled JSON parser
//! both the re-import and the `bench_diff` gate share.

pub mod export;
pub mod json;

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use ethsim::{SpanId, TxId, TxRecord};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::patterns::PatternKind;
use crate::simplify::DropRule;
use crate::telemetry::Stage;

/// One structured provenance event, in pipeline order.
///
/// Addresses, tags and tokens appear in display form: events are the
/// analyst-facing audit trail, and strings survive the JSONL round trip
/// exactly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A Table II flash-loan signature matched.
    FlashLoan {
        /// Lending protocol (display name).
        provider: String,
        /// Lender contract address.
        lender: String,
        /// Borrower contract address.
        borrower: String,
        /// Borrowed amount, when the signature exposes it.
        amount: Option<u128>,
    },
    /// A distinct tag entered the transaction's tagged transfer list.
    TagAssigned {
        /// The tag, in display form.
        tag: String,
        /// `seq` of the first journal transfer carrying the tag.
        first_seq: u32,
    },
    /// A journal transfer was dropped by simplify rules 1–2.
    SimplifyDropped {
        /// Journal `seq` of the dropped transfer.
        seq: u32,
        /// Which rule dropped it.
        rule: DropRule,
    },
    /// A journal transfer was merged into a surviving predecessor
    /// (simplify rule 3, pass-through collapse).
    SimplifyMerged {
        /// Journal `seq` of the absorbed transfer.
        seq: u32,
        /// `seq` of the surviving transfer it merged into.
        into_seq: u32,
    },
    /// Stage-2 reduction totals (`kept + dropped + merged` = journal size).
    SimplifySummary {
        /// Transfers surviving into the application-level list.
        kept: u32,
        /// Transfers dropped by rules 1–2.
        dropped: u32,
        /// Transfers merged by rule 3.
        merged: u32,
    },
    /// A Table III trade action was identified.
    TradeIdentified {
        /// `seq` of the trade's first transfer.
        seq: u32,
        /// Swap / Mint-liquidity / Remove-liquidity.
        kind: String,
        /// Buying application tag.
        buyer: String,
        /// Selling application tag.
        seller: String,
    },
    /// One matcher's verdict on one `(quote, target)` pair for one
    /// borrower tag.
    PatternVerdict {
        /// Which pattern was evaluated.
        kind: PatternKind,
        /// The borrower tag evaluated.
        borrower: String,
        /// The quote token (display form).
        quote: String,
        /// The target token (display form).
        target: String,
        /// Matched with evidence, or the first predicate that failed.
        outcome: Verdict,
    },
    /// A post-detection heuristic ran (e.g. the aggregator-initiator
    /// filter, §VI-C).
    Heuristic {
        /// Heuristic name.
        name: String,
        /// Whether the report survives the heuristic.
        passed: bool,
        /// Human-readable score/justification.
        detail: String,
    },
    /// A [`crate::forensics::trace_exits`] exit path cross-linked into
    /// the flagged trace.
    ExitTraced {
        /// Exit classification (`direct` / `multi_level` / `coin_mixer`).
        kind: String,
        /// Terminal sink address.
        sink: String,
        /// Asset (display form).
        token: String,
        /// Amount arriving at the sink.
        amount: u128,
        /// Intermediary hops traversed.
        hops: u32,
        /// Accounts on the path from cluster boundary to sink.
        path_len: u32,
    },
}

/// One matcher's outcome on one pair: the concrete journal `seq`s it
/// matched, or the first (deepest) predicate that failed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// The pattern matched.
    Matched {
        /// Journal `seq`s of the trades forming each match.
        trade_seqs: Vec<Vec<u32>>,
        /// Volatility of the first match on this pair.
        volatility: f64,
    },
    /// No match; `failed` names the deepest predicate reached.
    Rejected {
        /// The first predicate that failed.
        failed: String,
    },
}

/// One machine-readable link of a decision's reason chain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Reason {
    /// The transaction reverted; LeiShen only replays committed ones.
    Reverted,
    /// No Table II flash-loan signature matched.
    NoFlashLoan,
    /// A flash loan from `provider` was identified.
    FlashLoan {
        /// Lending protocol display name.
        provider: String,
    },
    /// Flash loan present but no attack pattern matched.
    NoPatternMatched,
    /// An attack pattern matched — the flagging evidence.
    PatternMatched {
        /// Which pattern.
        kind: PatternKind,
        /// Target token (display form).
        target: String,
        /// Quote token (display form).
        quote: String,
        /// Journal `seq`s of the matched trades.
        trade_seqs: Vec<u32>,
    },
    /// Analysis never completed: the transaction was quarantined by the
    /// resilience layer and carries no verdict either way.
    Indeterminate {
        /// Machine-readable fault code (`Quarantine::reason()`), e.g.
        /// `invalid_input:seq_gap` or `panic@tagging`.
        fault: String,
    },
}

impl Reason {
    /// Stable machine-readable code for the reason variant.
    pub fn code(&self) -> &'static str {
        match self {
            Reason::Reverted => "reverted",
            Reason::NoFlashLoan => "no_flash_loan",
            Reason::FlashLoan { .. } => "flash_loan",
            Reason::NoPatternMatched => "no_pattern",
            Reason::PatternMatched { .. } => "pattern",
            Reason::Indeterminate { .. } => "indeterminate",
        }
    }
}

/// The final decision for one transaction, with its reason chain.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Whether the transaction was flagged as a flpAttack.
    pub flagged: bool,
    /// Machine-readable reasons, in pipeline order.
    pub reasons: Vec<Reason>,
}

impl Decision {
    /// Whether the reason chain names at least one matched pattern.
    pub fn names_pattern(&self) -> bool {
        self.reasons
            .iter()
            .any(|r| matches!(r, Reason::PatternMatched { .. }))
    }
}

/// One pipeline stage's span: wall-clock offsets (nanoseconds) from the
/// recorder's epoch, so spans from different workers share a timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Which stage.
    pub stage: Stage,
    /// Start offset from the recorder epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the recorder epoch, nanoseconds.
    pub end_ns: u64,
}

/// The full decision provenance of one analyzed transaction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TxProvenance {
    /// The analyzed transaction.
    pub tx: TxId,
    /// Root span id ([`SpanId::tx_root`]).
    pub span: SpanId,
    /// Index of the scan worker that analyzed the transaction.
    pub worker: u32,
    /// Per-stage spans, in execution order (empty after short-circuits
    /// only the reached stages appear).
    pub spans: Vec<SpanRecord>,
    /// The structured event log, in pipeline order.
    pub events: Vec<TraceEvent>,
    /// The final decision and its reason chain.
    pub decision: Decision,
}

/// The trace hook the pipeline calls — the provenance twin of
/// [`crate::telemetry::MetricsSink`], with the same compile-time guard:
/// `ENABLED` is an associated constant, so a pipeline monomorphized over
/// [`NoopTracer`] contains no event construction, no clock reads and no
/// branches.
pub trait TraceSink {
    /// Whether the pipeline should build provenance for this sink.
    const ENABLED: bool;

    /// The worker-local front of this sink (see
    /// [`TraceSink::worker_front`]).
    type WorkerFront<'a>: TraceSink
    where
        Self: 'a;

    /// A front for one worker: traces recorded into the front accumulate
    /// thread-locally — no locks — and merge into the shared sink when
    /// the front drops.
    fn worker_front(&self) -> Self::WorkerFront<'_>;

    /// The shared epoch span offsets are measured from, when one exists.
    fn epoch(&self) -> Option<Instant> {
        None
    }

    /// This front's worker index (0 for shared/serial use).
    fn worker_id(&self) -> u32 {
        0
    }

    /// One transaction's finished provenance.
    fn record(&self, trace: TxProvenance);
}

/// The do-nothing tracer: the hot path's default. Compiles to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl TraceSink for NoopTracer {
    const ENABLED: bool = false;

    type WorkerFront<'a> = NoopTracer;

    #[inline(always)]
    fn worker_front(&self) -> NoopTracer {
        NoopTracer
    }

    #[inline(always)]
    fn record(&self, _trace: TxProvenance) {}
}

/// What the recorder (and each worker front) accumulates: the bounded
/// ring of recent cleared traces plus the pinned flagged ones.
#[derive(Debug, Default)]
struct RecorderBuf {
    ring: VecDeque<TxProvenance>,
    pinned: Vec<TxProvenance>,
    recorded: u64,
    evicted: u64,
}

impl RecorderBuf {
    fn record(&mut self, capacity: usize, trace: TxProvenance) {
        self.recorded += 1;
        if trace.decision.flagged {
            self.pinned.push(trace);
        } else {
            self.ring.push_back(trace);
            while self.ring.len() > capacity {
                self.ring.pop_front();
                self.evicted += 1;
            }
        }
    }

    fn merge(&mut self, capacity: usize, other: RecorderBuf) {
        self.recorded += other.recorded;
        self.evicted += other.evicted;
        self.pinned.extend(other.pinned);
        for trace in other.ring {
            self.ring.push_back(trace);
            while self.ring.len() > capacity {
                self.ring.pop_front();
                self.evicted += 1;
            }
        }
    }
}

/// The scan flight recorder: bounded ring of recent traces + pinned
/// flagged traces.
///
/// Memory is bounded by construction: the shared ring holds at most
/// `capacity` cleared traces (each worker front is bounded by the same
/// capacity while a scan is in flight), and only flagged traces — attacks
/// are rare by definition — escape the bound by being pinned. Under a
/// parallel scan the ring's "last N" is per-worker-merge approximate, as
/// with any multi-writer flight recorder; pinned traces are always exact
/// and complete.
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<RecorderBuf>,
    capacity: usize,
    epoch: Instant,
    next_worker: AtomicU32,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// Default ring capacity (cleared traces retained).
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A recorder with the default ring capacity.
    pub fn new() -> Self {
        FlightRecorder::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A recorder retaining the last `capacity` cleared traces (minimum
    /// 1); flagged traces are pinned outside the ring and never evicted.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            inner: Mutex::new(RecorderBuf::default()),
            capacity: capacity.max(1),
            epoch: Instant::now(),
            next_worker: AtomicU32::new(0),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total traces recorded (including since-evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().recorded
    }

    /// Cleared traces evicted from the ring.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().evicted
    }

    /// The retained cleared traces, oldest first.
    pub fn recent(&self) -> Vec<TxProvenance> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// The pinned (flagged) traces, in record order.
    pub fn pinned(&self) -> Vec<TxProvenance> {
        self.inner.lock().pinned.clone()
    }

    /// Every retained trace — pinned first, then the ring — sorted by
    /// transaction id for deterministic export.
    pub fn traces(&self) -> Vec<TxProvenance> {
        let inner = self.inner.lock();
        let mut all: Vec<TxProvenance> =
            inner.pinned.iter().chain(inner.ring.iter()).cloned().collect();
        all.sort_by_key(|t| t.tx);
        all
    }

    /// The retained trace of `tx`, if any (pinned or still in the ring).
    pub fn find(&self, tx: TxId) -> Option<TxProvenance> {
        let inner = self.inner.lock();
        inner
            .pinned
            .iter()
            .chain(inner.ring.iter())
            .rev()
            .find(|t| t.tx == tx)
            .cloned()
    }

    /// Appends events to the retained trace of `tx` in place — how the
    /// `trace` bin cross-links post-detection context (heuristic verdicts,
    /// forensic exit paths) into a recorded provenance. Returns `false`
    /// when the trace is no longer retained.
    pub fn annotate(&self, tx: TxId, f: impl FnOnce(&mut TxProvenance)) -> bool {
        let mut inner = self.inner.lock();
        let RecorderBuf { ring, pinned, .. } = &mut *inner;
        if let Some(t) = pinned
            .iter_mut()
            .chain(ring.iter_mut())
            .rev()
            .find(|t| t.tx == tx)
        {
            f(t);
            true
        } else {
            false
        }
    }

    /// Drops all retained traces and counters (the epoch is kept).
    pub fn clear(&self) {
        *self.inner.lock() = RecorderBuf::default();
    }

    /// Merges a worker front's accumulated batch in one lock acquisition.
    fn absorb(&self, batch: RecorderBuf) {
        self.inner.lock().merge(self.capacity, batch);
    }
}

impl TraceSink for FlightRecorder {
    const ENABLED: bool = true;

    type WorkerFront<'a> = WorkerTracer<'a>;

    fn worker_front(&self) -> WorkerTracer<'_> {
        WorkerTracer {
            shared: self,
            worker: self.next_worker.fetch_add(1, Ordering::Relaxed),
            local: RefCell::new(RecorderBuf::default()),
        }
    }

    fn epoch(&self) -> Option<Instant> {
        Some(self.epoch)
    }

    fn record(&self, trace: TxProvenance) {
        self.inner.lock().record(self.capacity, trace);
    }
}

/// One worker's lock-free front of a shared [`FlightRecorder`]: recording
/// is a `RefCell` borrow plus a ring push; the batch merges into the
/// shared recorder when the front drops.
#[derive(Debug)]
pub struct WorkerTracer<'a> {
    shared: &'a FlightRecorder,
    worker: u32,
    local: RefCell<RecorderBuf>,
}

impl TraceSink for WorkerTracer<'_> {
    const ENABLED: bool = true;

    type WorkerFront<'b>
        = WorkerTracer<'b>
    where
        Self: 'b;

    /// A front of a front still funnels into the same shared recorder.
    fn worker_front(&self) -> WorkerTracer<'_> {
        self.shared.worker_front()
    }

    fn epoch(&self) -> Option<Instant> {
        Some(self.shared.epoch)
    }

    fn worker_id(&self) -> u32 {
        self.worker
    }

    fn record(&self, trace: TxProvenance) {
        self.local
            .borrow_mut()
            .record(self.shared.capacity, trace);
    }
}

impl Drop for WorkerTracer<'_> {
    fn drop(&mut self) {
        self.shared.absorb(self.local.take());
    }
}

/// Builds one transaction's provenance on the worker's stack while the
/// pipeline runs — the trace twin of the telemetry `StageClock`. With a
/// disabled sink every method body is dead code behind `T::ENABLED`, and
/// the event closures passed to [`TraceBuilder::event`] are never built.
pub(crate) struct TraceBuilder {
    timing: Option<(Instant, Instant)>,
    spans: Vec<SpanRecord>,
    events: Vec<TraceEvent>,
}

impl TraceBuilder {
    /// Starts a builder; clocks start only when `T` records.
    pub fn start<T: TraceSink>(tracer: &T) -> Self {
        let timing = if T::ENABLED {
            let now = Instant::now();
            Some((tracer.epoch().unwrap_or(now), now))
        } else {
            None
        };
        TraceBuilder {
            timing,
            spans: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Closes the span of `stage` at the current instant and opens the
    /// next one.
    pub fn lap<T: TraceSink>(&mut self, _tracer: &T, stage: Stage) {
        if T::ENABLED {
            if let Some((epoch, start)) = self.timing {
                let now = Instant::now();
                self.spans.push(SpanRecord {
                    stage,
                    start_ns: start.saturating_duration_since(epoch).as_nanos() as u64,
                    end_ns: now.saturating_duration_since(epoch).as_nanos() as u64,
                });
                self.timing = Some((epoch, now));
            }
        }
    }

    /// Appends the event `f` builds — `f` is only called (and its
    /// captures only touched) when `T` records.
    pub fn event<T: TraceSink>(&mut self, _tracer: &T, f: impl FnOnce() -> TraceEvent) {
        if T::ENABLED {
            self.events.push(f());
        }
    }

    /// Delivers the finished provenance to the sink.
    pub fn finish<T: TraceSink>(self, tracer: &T, tx: &TxRecord, decision: Decision) {
        if T::ENABLED {
            tracer.record(TxProvenance {
                tx: tx.id,
                span: SpanId::tx_root(tx.id),
                worker: tracer.worker_id(),
                spans: self.spans,
                events: self.events,
                decision,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(tx: u64, flagged: bool) -> TxProvenance {
        TxProvenance {
            tx: TxId(tx),
            span: SpanId::tx_root(TxId(tx)),
            worker: 0,
            spans: vec![SpanRecord {
                stage: Stage::FlashLoan,
                start_ns: 0,
                end_ns: 10,
            }],
            events: Vec::new(),
            decision: Decision {
                flagged,
                reasons: if flagged {
                    vec![Reason::PatternMatched {
                        kind: PatternKind::Sbs,
                        target: "WBTC".into(),
                        quote: "ETH".into(),
                        trade_seqs: vec![1, 2, 3],
                    }]
                } else {
                    vec![Reason::NoFlashLoan]
                },
            },
        }
    }

    #[test]
    fn noop_is_disabled() {
        const { assert!(!NoopTracer::ENABLED) }
        NoopTracer.record(trace(0, false));
    }

    #[test]
    fn ring_is_bounded_and_flags_are_pinned() {
        let rec = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            rec.record(trace(i, false));
        }
        rec.record(trace(100, true));
        rec.record(trace(101, true));
        assert_eq!(rec.recent().len(), 4, "ring bounded at capacity");
        assert_eq!(rec.recent()[0].tx, TxId(6), "oldest evicted first");
        assert_eq!(rec.pinned().len(), 2, "every flagged trace pinned");
        assert_eq!(rec.evicted(), 6);
        assert_eq!(rec.recorded(), 12);
        // Flagged traces survive arbitrary later traffic.
        for i in 200..300 {
            rec.record(trace(i, false));
        }
        assert_eq!(rec.pinned().len(), 2);
        assert_eq!(rec.recent().len(), 4);
    }

    #[test]
    fn traces_are_sorted_and_findable() {
        let rec = FlightRecorder::with_capacity(8);
        rec.record(trace(5, false));
        rec.record(trace(2, true));
        rec.record(trace(9, false));
        let all = rec.traces();
        assert_eq!(
            all.iter().map(|t| t.tx.0).collect::<Vec<_>>(),
            vec![2, 5, 9]
        );
        assert!(rec.find(TxId(2)).unwrap().decision.flagged);
        assert!(rec.find(TxId(7)).is_none());
    }

    #[test]
    fn annotate_appends_events_in_place() {
        let rec = FlightRecorder::new();
        rec.record(trace(3, true));
        let ok = rec.annotate(TxId(3), |t| {
            t.events.push(TraceEvent::Heuristic {
                name: "aggregator_initiator".into(),
                passed: true,
                detail: "initiator untagged".into(),
            })
        });
        assert!(ok);
        assert_eq!(rec.find(TxId(3)).unwrap().events.len(), 1);
        assert!(!rec.annotate(TxId(99), |_| {}));
    }

    #[test]
    fn worker_front_merges_on_drop() {
        let rec = FlightRecorder::with_capacity(16);
        {
            let front = rec.worker_front();
            front.record(trace(1, false));
            front.record(trace(2, true));
            assert_eq!(rec.recorded(), 0, "nothing shared before the drop");
        }
        assert_eq!(rec.recorded(), 2);
        assert_eq!(rec.pinned().len(), 1);
        assert_eq!(rec.recent().len(), 1);
        // Worker ids are distinct per front.
        let a = rec.worker_front();
        let b = rec.worker_front();
        assert_ne!(a.worker_id(), b.worker_id());
    }

    #[test]
    fn builder_records_spans_events_and_decision() {
        let rec = FlightRecorder::new();
        let tx = TxRecord {
            id: TxId(7),
            block: 1,
            timestamp: 0,
            from: ethsim::Address::from_u64(1),
            to: ethsim::Address::from_u64(2),
            function: "f".into(),
            status: ethsim::TxStatus::Success,
            trace: Default::default(),
        };
        let mut b = TraceBuilder::start(&rec);
        b.event(&rec, || TraceEvent::SimplifySummary {
            kept: 1,
            dropped: 2,
            merged: 0,
        });
        b.lap(&rec, Stage::FlashLoan);
        b.lap(&rec, Stage::Tagging);
        b.finish(
            &rec,
            &tx,
            Decision {
                flagged: false,
                reasons: vec![Reason::NoPatternMatched],
            },
        );
        let t = rec.find(TxId(7)).expect("recorded");
        assert_eq!(t.span, SpanId::tx_root(TxId(7)));
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].stage, Stage::FlashLoan);
        assert!(t.spans[0].end_ns <= t.spans[1].start_ns + 1);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.decision.reasons[0].code(), "no_pattern");
        assert!(!t.decision.names_pattern());

        // A noop builder is inert end to end (and the closure never runs).
        let mut b = TraceBuilder::start(&NoopTracer);
        b.event(&NoopTracer, || unreachable!("disabled sinks build nothing"));
        b.lap(&NoopTracer, Stage::FlashLoan);
        b.finish(&NoopTracer, &tx, Decision::default());
    }
}

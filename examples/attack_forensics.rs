//! Forensics walk-through: every pipeline stage on bZx-1 (paper Fig. 6).
//!
//! Prints the account-level transfers, the tagged transfers, the
//! application-level transfers after each simplification rule, the
//! identified trades and the final pattern matches — the same construction
//! the paper illustrates for the bZx-1 attack.
//!
//! ```sh
//! cargo run --example attack_forensics
//! ```

use leishen::simplify::{merge_inter_app, remove_intra_app, remove_weth_related, unify_weth_token};
use leishen::tagging::tag_transfers;
use leishen::trades::identify_trades;
use leishen::{patterns, DetectorConfig};
use leishen_repro::scenarios::attacks::all_attacks;
use leishen_repro::scenarios::World;

fn main() {
    let mut world = World::new();
    let attack = all_attacks()[0](&mut world); // bZx-1
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let record = world.chain.replay(attack.tx).expect("recorded").clone();
    let token_name = |t: ethsim::TokenId| {
        world
            .chain
            .state()
            .token(t)
            .map(|i| i.symbol.clone())
            .unwrap_or_else(|_| t.to_string())
    };

    println!("=== {} — transfer construction (paper Fig. 6) ===\n", attack.spec.name);

    println!("account-level transfers ({}):", record.trace.transfers.len());
    for t in &record.trace.transfers {
        println!(
            "  T{:<3} {} -> {}  {} {}",
            t.seq,
            t.sender.short(),
            t.receiver.short(),
            t.amount,
            token_name(t.token)
        );
    }

    let tagged = tag_transfers(&record.trace.transfers, view.labels(), view.creations());
    println!("\ntagged transfers (account -> application identity):");
    for t in &tagged {
        println!(
            "  T{:<3} {} -> {}  {} {}",
            t.seq,
            t.sender,
            t.receiver,
            t.amount,
            token_name(t.token)
        );
    }

    let config = DetectorConfig::paper();
    let unified = unify_weth_token(&tagged, view.weth());
    let step1 = remove_intra_app(&unified);
    println!(
        "\nrule 1 — remove intra-app transfers: {} -> {}",
        tagged.len(),
        step1.len()
    );
    let step2 = remove_weth_related(&step1);
    println!("rule 2 — remove WETH-related transfers: {} -> {}", step1.len(), step2.len());
    let app_level = merge_inter_app(&step2, config.merge_tolerance);
    println!(
        "rule 3 — merge inter-app transfers (Kyber pass-through): {} -> {}",
        step2.len(),
        app_level.len()
    );

    println!("\napplication-level transfers:");
    for t in &app_level {
        println!(
            "  T{:<3} {} -> {}  {} {}",
            t.seq,
            t.sender,
            t.receiver,
            t.amount,
            token_name(t.token)
        );
    }

    let trades = identify_trades(&app_level);
    println!("\nidentified trades (Table III actions):");
    for tr in &trades {
        let sells: Vec<String> = tr
            .sells
            .iter()
            .map(|(a, t)| format!("{a} {}", token_name(*t)))
            .collect();
        let buys: Vec<String> = tr
            .buys
            .iter()
            .map(|(a, t)| format!("{a} {}", token_name(*t)))
            .collect();
        println!(
            "  seq {:<3} {:<18} {} gives [{}] gets [{}] from {}",
            tr.seq,
            tr.kind.to_string(),
            tr.buyer,
            sells.join(", "),
            buys.join(", "),
            tr.seller
        );
    }

    let borrower = leishen::tagging::tag_of(attack.contract, view.labels(), view.creations());
    let matches = patterns::match_all(&trades, &borrower, &config);
    println!("\npattern matches for borrower {borrower}:");
    for m in &matches {
        println!(
            "  {} on {} — trades {:?}, volatility {:.1}%",
            m.kind,
            token_name(m.target_token),
            m.trade_seqs,
            m.volatility * 100.0
        );
    }
}

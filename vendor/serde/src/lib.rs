//! Offline stand-in for `serde`.
//!
//! A faithful miniature of serde's serialization half: the
//! [`Serialize`]/[`Serializer`] traits with the full 29-method serializer
//! surface, the seven compound-serializer traits in [`ser`], and impls for
//! the primitive and std types this workspace serializes. Custom
//! `Serializer` implementations written against upstream serde (such as
//! the counting sink in `tests/serde_roundtrip.rs`) compile unchanged.
//!
//! Deserialization is intentionally a marker ([`de::Deserialize`]):
//! nothing in the workspace deserializes, and no wire-format crate is in
//! the offline dependency set. The derive emits empty `Deserialize`
//! impls so `#[derive(Serialize, Deserialize)]` lines compile as written.

#![forbid(unsafe_code)]

pub mod ser {
    //! Serialization traits.

    /// A data structure that can be serialized into any serde format.
    pub trait Serialize {
        /// Serializes `self` with the given serializer.
        fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
        where
            S: Serializer;
    }

    /// A serde data format. Mirrors upstream's 29 required methods; the
    /// compound methods return dedicated sub-serializers.
    pub trait Serializer: Sized {
        /// Output of a successful serialization.
        type Ok;
        /// Serialization error.
        type Error;
        /// Sub-serializer for sequences.
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
        /// Sub-serializer for tuples.
        type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
        /// Sub-serializer for tuple structs.
        type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
        /// Sub-serializer for tuple enum variants.
        type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
        /// Sub-serializer for maps.
        type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
        /// Sub-serializer for structs.
        type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
        /// Sub-serializer for struct enum variants.
        type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

        /// Serializes a `bool`.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i8`.
        fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i16`.
        fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i32`.
        fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i64`.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i128`.
        fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u8`.
        fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u16`.
        fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u32`.
        fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u64`.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u128`.
        fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `f32`.
        fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `f64`.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `char`.
        fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
        /// Serializes a string slice.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
        /// Serializes raw bytes.
        fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
        /// Serializes `Option::None`.
        fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `Option::Some` payload.
        fn serialize_some<T>(self, value: &T) -> Result<Self::Ok, Self::Error>
        where
            T: Serialize + ?Sized;
        /// Serializes the unit value `()`.
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
        /// Serializes a unit struct.
        fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
        /// Serializes a unit enum variant.
        fn serialize_unit_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
        ) -> Result<Self::Ok, Self::Error>;
        /// Serializes a newtype struct.
        fn serialize_newtype_struct<T>(
            self,
            name: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>
        where
            T: Serialize + ?Sized;
        /// Serializes a newtype enum variant.
        fn serialize_newtype_variant<T>(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>
        where
            T: Serialize + ?Sized;
        /// Begins a variable-length sequence.
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
        /// Begins a fixed-length tuple.
        fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
        /// Begins a tuple struct.
        fn serialize_tuple_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleStruct, Self::Error>;
        /// Begins a tuple enum variant.
        fn serialize_tuple_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleVariant, Self::Error>;
        /// Begins a map.
        fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
        /// Begins a struct.
        fn serialize_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStruct, Self::Error>;
        /// Begins a struct enum variant.
        fn serialize_struct_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStructVariant, Self::Error>;
    }

    /// Compound serializer returned by [`Serializer::serialize_seq`].
    pub trait SerializeSeq {
        /// Matches the parent serializer's `Ok`.
        type Ok;
        /// Matches the parent serializer's `Error`.
        type Error;
        /// Serializes one sequence element.
        fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
        where
            T: Serialize + ?Sized;
        /// Finishes the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer returned by [`Serializer::serialize_tuple`].
    pub trait SerializeTuple {
        /// Matches the parent serializer's `Ok`.
        type Ok;
        /// Matches the parent serializer's `Error`.
        type Error;
        /// Serializes one tuple element.
        fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
        where
            T: Serialize + ?Sized;
        /// Finishes the tuple.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer returned by [`Serializer::serialize_tuple_struct`].
    pub trait SerializeTupleStruct {
        /// Matches the parent serializer's `Ok`.
        type Ok;
        /// Matches the parent serializer's `Error`.
        type Error;
        /// Serializes one field.
        fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
        where
            T: Serialize + ?Sized;
        /// Finishes the tuple struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer returned by [`Serializer::serialize_tuple_variant`].
    pub trait SerializeTupleVariant {
        /// Matches the parent serializer's `Ok`.
        type Ok;
        /// Matches the parent serializer's `Error`.
        type Error;
        /// Serializes one field.
        fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
        where
            T: Serialize + ?Sized;
        /// Finishes the variant.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer returned by [`Serializer::serialize_map`].
    pub trait SerializeMap {
        /// Matches the parent serializer's `Ok`.
        type Ok;
        /// Matches the parent serializer's `Error`.
        type Error;
        /// Serializes one key.
        fn serialize_key<T>(&mut self, key: &T) -> Result<(), Self::Error>
        where
            T: Serialize + ?Sized;
        /// Serializes one value.
        fn serialize_value<T>(&mut self, value: &T) -> Result<(), Self::Error>
        where
            T: Serialize + ?Sized;
        /// Finishes the map.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer returned by [`Serializer::serialize_struct`].
    pub trait SerializeStruct {
        /// Matches the parent serializer's `Ok`.
        type Ok;
        /// Matches the parent serializer's `Error`.
        type Error;
        /// Serializes one named field.
        fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
        where
            T: Serialize + ?Sized;
        /// Finishes the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer returned by [`Serializer::serialize_struct_variant`].
    pub trait SerializeStructVariant {
        /// Matches the parent serializer's `Ok`.
        type Ok;
        /// Matches the parent serializer's `Error`.
        type Error;
        /// Serializes one named field.
        fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
        where
            T: Serialize + ?Sized;
        /// Finishes the variant.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

pub mod de {
    //! Deserialization markers (no wire format is vendored offline).

    /// Marker: a type the derive claims is deserializable. No method —
    /// nothing in this workspace drives deserialization.
    pub trait Deserialize<'de>: Sized {}

    /// Marker for owned-deserializable types.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
}

pub use de::Deserialize;
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---- impls for primitives ---------------------------------------------------

macro_rules! impl_serialize_primitive {
    ($($ty:ty => $method:ident,)*) => {$(
        impl ser::Serialize for $ty {
            fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

impl_serialize_primitive! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    i128 => serialize_i128,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    u128 => serialize_u128,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl ser::Serialize for usize {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl ser::Serialize for isize {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl ser::Serialize for str {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl ser::Serialize for String {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl ser::Serialize for () {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

// ---- impls for pointers and containers --------------------------------------

impl<T: ser::Serialize + ?Sized> ser::Serialize for &T {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ser::Serialize + ?Sized> ser::Serialize for &mut T {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ser::Serialize + ?Sized> ser::Serialize for Box<T> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ser::Serialize + ?Sized> ser::Serialize for std::rc::Rc<T> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ser::Serialize + ?Sized> ser::Serialize for std::sync::Arc<T> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ser::Serialize> ser::Serialize for Option<T> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: ser::Serializer,
    I: IntoIterator,
    I::Item: ser::Serialize,
{
    use ser::SerializeSeq as _;
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: ser::Serialize> ser::Serialize for [T] {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: ser::Serialize, const N: usize> ser::Serialize for [T; N] {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeTuple as _;
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

impl<T: ser::Serialize> ser::Serialize for Vec<T> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: ser::Serialize> ser::Serialize for std::collections::VecDeque<T> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: ser::Serialize, H> ser::Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: ser::Serialize> ser::Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

fn serialize_map_iter<'a, S, K, V, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: ser::Serializer,
    K: ser::Serialize + 'a,
    V: ser::Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
{
    use ser::SerializeMap as _;
    let mut map = serializer.serialize_map(Some(len))?;
    for (k, v) in iter {
        map.serialize_key(k)?;
        map.serialize_value(v)?;
    }
    map.end()
}

impl<K: ser::Serialize, V: ser::Serialize, H> ser::Serialize
    for std::collections::HashMap<K, V, H>
{
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self)
    }
}

impl<K: ser::Serialize, V: ser::Serialize> ser::Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: ser::Serialize),+> ser::Serialize for ($($name,)+) {
            fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                use ser::SerializeTuple as _;
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A.0) with 1;
    (A.0, B.1) with 2;
    (A.0, B.1, C.2) with 3;
    (A.0, B.1, C.2, D.3) with 4;
}

//! Criterion: per-stage detector latency on the heaviest known attacks
//! (paper §VI-A: 10 ms mean / 16 ms p75 per transaction).

use criterion::{criterion_group, criterion_main, Criterion};
use leishen::simplify::simplify;
use leishen::tagging::tag_transfers;
use leishen::trades::identify_trades;
use leishen::{patterns, DetectorConfig, LeiShen};
use leishen_bench::known_attack_world;

fn bench_detector(c: &mut Criterion) {
    let (world, attacks) = known_attack_world();
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());
    let config = DetectorConfig::paper();

    // bZx-1 (protocol-backed, routed) and Harvest (longest trace).
    for (name, idx) in [("bzx1", 0usize), ("harvest", 4)] {
        let record = world.chain.replay(attacks[idx].tx).expect("recorded").clone();

        c.bench_function(&format!("{name}/full_pipeline"), |b| {
            b.iter(|| std::hint::black_box(detector.analyze(&record, &view)))
        });

        c.bench_function(&format!("{name}/identify_flash_loans"), |b| {
            b.iter(|| std::hint::black_box(leishen::identify_flash_loans(&record)))
        });

        let tagged = tag_transfers(&record.trace.transfers, view.labels(), view.creations());
        c.bench_function(&format!("{name}/tagging"), |b| {
            b.iter(|| {
                std::hint::black_box(tag_transfers(
                    &record.trace.transfers,
                    view.labels(),
                    view.creations(),
                ))
            })
        });

        let app = simplify(&tagged, view.weth(), &config);
        c.bench_function(&format!("{name}/simplify"), |b| {
            b.iter(|| std::hint::black_box(simplify(&tagged, view.weth(), &config)))
        });

        let trades = identify_trades(&app);
        c.bench_function(&format!("{name}/identify_trades"), |b| {
            b.iter(|| std::hint::black_box(identify_trades(&app)))
        });

        let borrower =
            leishen::tagging::tag_of(attacks[idx].contract, view.labels(), view.creations());
        c.bench_function(&format!("{name}/pattern_matching"), |b| {
            b.iter(|| std::hint::black_box(patterns::match_all(&trades, &borrower, &config)))
        });
    }
}

criterion_group! {
    name = benches;
    // CI-friendly settings: the distributions here are tight, so
    // short measurement windows give stable numbers.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_detector
}
criterion_main!(benches);

//! The three flpAttack patterns (paper §IV-B, Fig. 4).
//!
//! Each matcher consumes the borrower's identified trades and reports
//! every `(quote, target)` token pair on which its pattern holds:
//!
//! * [`krp`] — Keep Raising Price,
//! * [`sbs`] — Symmetrical Buying and Selling,
//! * [`mbs`] — Multi-Round Buying and Selling.
//!
//! Rates follow the paper's convention: a *buy* of the target token has
//! price `amountSell / amountBuy` (quote per target); a *sell* has price
//! `amountBuy / amountSell`.
//!
//! One deliberate reading of the paper: SBS's middle (pump) trade is
//! matched for **any** buyer, not just the borrower. In bZx-1 the pump is
//! executed *by bZx* (financed margin trade) at the borrower's direction;
//! the paper both classifies bZx-1 as SBS and stresses that the bZx↔Uniswap
//! trade is essential (§VI-B), which is only consistent if the pump leg may
//! belong to an intermediate application. The symmetric legs (trade₁,
//! trade₃) remain strictly the borrower's.

pub mod kdp;
pub mod krp;
pub mod mbs;
pub mod sbs;

use ethsim::TokenId;
use serde::{Deserialize, Serialize};

use crate::config::DetectorConfig;
use crate::tagging::Tag;
use crate::trades::{Trade, TradeLeg};

/// Which attack pattern matched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PatternKind {
    /// Keep Raising Price.
    Krp,
    /// Symmetrical Buying and Selling.
    Sbs,
    /// Multi-Round Buying and Selling.
    Mbs,
    /// Keep Dumping Price — experimental, opt-in
    /// ([`DetectorConfig::experimental_kdp`]); never part of the paper's
    /// three patterns.
    Kdp,
}

impl std::fmt::Display for PatternKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternKind::Krp => write!(f, "KRP"),
            PatternKind::Sbs => write!(f, "SBS"),
            PatternKind::Mbs => write!(f, "MBS"),
            PatternKind::Kdp => write!(f, "KDP*"),
        }
    }
}

/// One matched pattern instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PatternMatch {
    /// Matched pattern.
    pub kind: PatternKind,
    /// The manipulated (target) token.
    pub target_token: TokenId,
    /// The token the target is priced in.
    pub quote_token: TokenId,
    /// `seq`s of the trades forming the pattern, in order.
    pub trade_seqs: Vec<u32>,
    /// Price volatility across the pattern's trades, as a fraction
    /// (1.25 ⇒ 125%).
    pub volatility: f64,
    /// Display name of the principal counterparty (the repeated seller).
    pub counterparty: String,
}

/// Runs all three matchers and returns every match.
pub fn match_all(
    trades: &[Trade],
    borrower: &Tag,
    config: &DetectorConfig,
) -> Vec<PatternMatch> {
    let legs = all_legs(trades);
    let mut out = Vec::new();
    out.extend(krp::detect(&legs, borrower, config));
    out.extend(sbs::detect(&legs, borrower, config));
    out.extend(mbs::detect(&legs, borrower, config));
    if config.experimental_kdp {
        out.extend(kdp::detect(&legs, borrower, config));
    }
    out
}

/// Flattens trades into single-pair legs sorted by sequence.
pub fn all_legs(trades: &[Trade]) -> Vec<TradeLeg<'_>> {
    let mut legs: Vec<TradeLeg<'_>> = trades.iter().flat_map(Trade::views).collect();
    legs.sort_by_key(|l| l.seq);
    legs
}

/// Distinct `(quote, target)` pairs traded by `borrower` (both directions
/// projected onto the target side).
pub(crate) fn borrower_pairs(legs: &[TradeLeg<'_>], borrower: &Tag) -> Vec<(TokenId, TokenId)> {
    let mut pairs = Vec::new();
    let mut push = |q: TokenId, t: TokenId| {
        if !pairs.contains(&(q, t)) {
            pairs.push((q, t));
        }
    };
    for l in legs.iter().filter(|l| l.buyer == borrower) {
        push(l.sell_token, l.buy_token); // bought target priced in sold quote
        push(l.buy_token, l.sell_token); // sold target priced in bought quote
    }
    pairs
}

/// Buy legs of `target` priced in `quote` by `buyer` (sorted by seq on
/// input order).
pub(crate) fn buys_of<'a, 'b>(
    legs: &'b [TradeLeg<'a>],
    buyer: Option<&Tag>,
    quote: TokenId,
    target: TokenId,
) -> Vec<&'b TradeLeg<'a>> {
    legs.iter()
        .filter(|l| l.buy_token == target && l.sell_token == quote && l.buy_amount > 0 && l.sell_amount > 0)
        .filter(|l| buyer.is_none_or(|b| l.buyer == b))
        .collect()
}

/// Sell legs of `target` priced in `quote` by `buyer`.
pub(crate) fn sells_of<'a, 'b>(
    legs: &'b [TradeLeg<'a>],
    buyer: Option<&Tag>,
    quote: TokenId,
    target: TokenId,
) -> Vec<&'b TradeLeg<'a>> {
    legs.iter()
        .filter(|l| l.sell_token == target && l.buy_token == quote && l.buy_amount > 0 && l.sell_amount > 0)
        .filter(|l| buyer.is_none_or(|b| l.buyer == b))
        .collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::trades::TradeKind;

    pub fn app(s: &str) -> Tag {
        Tag::App(s.into())
    }

    pub fn tk(i: u32) -> TokenId {
        TokenId::from_index(i)
    }

    /// A buy of `target` with `quote`: buyer gives `sell`, receives `buy`.
    pub fn buy(
        seq: u32,
        buyer: &Tag,
        seller: &Tag,
        sell: u128,
        quote: u32,
        buy: u128,
        target: u32,
    ) -> Trade {
        Trade {
            seq,
            kind: TradeKind::Swap,
            buyer: buyer.clone(),
            seller: seller.clone(),
            sells: vec![(sell, tk(quote))],
            buys: vec![(buy, tk(target))],
        }
    }

    /// A sell of `target` for `quote`.
    pub fn sell(
        seq: u32,
        buyer: &Tag,
        seller: &Tag,
        sell: u128,
        target: u32,
        buy: u128,
        quote: u32,
    ) -> Trade {
        Trade {
            seq,
            kind: TradeKind::Swap,
            buyer: buyer.clone(),
            seller: seller.clone(),
            sells: vec![(sell, tk(target))],
            buys: vec![(buy, tk(quote))],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn legs_are_seq_sorted() {
        let e = app("E");
        let u = app("Uni");
        let trades = vec![buy(5, &e, &u, 10, 0, 1, 1), buy(2, &e, &u, 10, 0, 2, 1)];
        let legs = all_legs(&trades);
        assert_eq!(legs[0].seq, 2);
        assert_eq!(legs[1].seq, 5);
    }

    #[test]
    fn borrower_pairs_are_both_directions_deduped() {
        let e = app("E");
        let u = app("Uni");
        let trades = vec![
            buy(0, &e, &u, 10, 0, 1, 1),
            sell(1, &e, &u, 1, 1, 10, 0),
            // someone else's trade is ignored
            buy(2, &u, &e, 7, 3, 1, 4),
        ];
        let legs = all_legs(&trades);
        let pairs = borrower_pairs(&legs, &e);
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(tk(0), tk(1))));
        assert!(pairs.contains(&(tk(1), tk(0))));
    }

    #[test]
    fn buys_and_sells_filter_by_buyer() {
        let e = app("E");
        let u = app("Uni");
        let trades = vec![buy(0, &e, &u, 10, 0, 1, 1), buy(1, &u, &e, 10, 0, 1, 1)];
        let legs = all_legs(&trades);
        assert_eq!(buys_of(&legs, Some(&e), tk(0), tk(1)).len(), 1);
        assert_eq!(buys_of(&legs, None, tk(0), tk(1)).len(), 2);
        assert!(sells_of(&legs, Some(&e), tk(0), tk(1)).is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(PatternKind::Krp.to_string(), "KRP");
        assert_eq!(PatternKind::Sbs.to_string(), "SBS");
        assert_eq!(PatternKind::Mbs.to_string(), "MBS");
    }
}

//! The Wrapped Ether (WETH) contract.
//!
//! WETH wraps native Ether 1:1 so it can be used as an ERC20 token.
//! LeiShen's second simplification rule (paper §V-B2) removes transfers
//! whose sender or receiver is tagged "Wrapped Ether" and unifies the WETH
//! token with ETH — the wrap/unwrap traffic carries no trading information.

use ethsim::{Address, Chain, LogValue, Result, SimError, TokenId, TxContext};

use crate::labels::{apps, LabelService};

/// The deployed WETH contract: its account plus the WETH token id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Weth {
    /// Contract account (labeled `"Wrapped Ether"`).
    pub address: Address,
    /// The WETH ERC20 token.
    pub token: TokenId,
}

impl Weth {
    /// Deploys the WETH contract and labels it.
    ///
    /// # Errors
    /// Propagates substrate errors.
    pub fn deploy(
        chain: &mut Chain,
        labels: &mut LabelService,
        deployer: Address,
    ) -> Result<Weth> {
        let mut out = None;
        chain.execute(deployer, deployer, "deployWeth", |ctx| {
            let address = ctx.create_contract(deployer)?;
            let token = ctx.register_token("WETH", 18, address);
            out = Some(Weth { address, token });
            Ok(())
        })?;
        let weth = out.expect("deploy closure ran");
        labels.set(weth.address, apps::WETH);
        Ok(weth)
    }

    /// Wraps native ETH: `who` sends `amount` ETH to the contract and
    /// receives the same amount of WETH.
    ///
    /// # Errors
    /// Reverts when `who` lacks the ETH.
    pub fn deposit(&self, ctx: &mut TxContext<'_>, who: Address, amount: u128) -> Result<()> {
        let weth = *self;
        ctx.call(who, self.address, "deposit", amount, |ctx| {
            ctx.mint_token(weth.token, weth.address, amount)?;
            ctx.transfer_token(weth.token, weth.address, who, amount)?;
            ctx.emit_log(
                weth.address,
                "Deposit",
                vec![
                    ("dst".into(), LogValue::Addr(who)),
                    ("wad".into(), LogValue::Amount(amount)),
                ],
            );
            Ok(())
        })
    }

    /// Unwraps WETH back to native ETH.
    ///
    /// # Errors
    /// Reverts when `who` lacks the WETH or the contract somehow lacks ETH
    /// backing (impossible under normal operation).
    pub fn withdraw(&self, ctx: &mut TxContext<'_>, who: Address, amount: u128) -> Result<()> {
        let weth = *self;
        ctx.call(who, self.address, "withdraw", 0, |ctx| {
            if ctx.balance(weth.token, who) < amount {
                return Err(SimError::revert("insufficient WETH"));
            }
            ctx.transfer_token(weth.token, who, weth.address, amount)?;
            ctx.burn_token(weth.token, weth.address, amount)?;
            ctx.transfer_eth(weth.address, who, amount)?;
            ctx.emit_log(
                weth.address,
                "Withdrawal",
                vec![
                    ("src".into(), LogValue::Addr(who)),
                    ("wad".into(), LogValue::Amount(amount)),
                ],
            );
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::ChainConfig;

    const E18: u128 = 1_000_000_000_000_000_000;

    fn setup() -> (Chain, Weth, Address) {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("weth deployer");
        let user = chain.create_eoa("user");
        let weth = Weth::deploy(&mut chain, &mut labels, deployer).unwrap();
        assert_eq!(labels.get(weth.address), Some(apps::WETH));
        chain.state_mut().credit_eth(user, 10 * E18).unwrap();
        (chain, weth, user)
    }

    #[test]
    fn wrap_unwrap_roundtrip() {
        let (mut chain, weth, user) = setup();
        chain
            .execute(user, weth.address, "wrap", |ctx| {
                weth.deposit(ctx, user, 4 * E18)?;
                assert_eq!(ctx.balance(weth.token, user), 4 * E18);
                assert_eq!(ctx.balance(TokenId::ETH, user), 6 * E18);
                weth.withdraw(ctx, user, 4 * E18)?;
                assert_eq!(ctx.balance(weth.token, user), 0);
                assert_eq!(ctx.balance(TokenId::ETH, user), 10 * E18);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn backing_is_exact() {
        let (mut chain, weth, user) = setup();
        chain
            .execute(user, weth.address, "wrap", |ctx| {
                weth.deposit(ctx, user, 3 * E18)?;
                assert_eq!(ctx.balance(TokenId::ETH, weth.address), 3 * E18);
                assert_eq!(ctx.state().total_supply(weth.token), 3 * E18);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn withdraw_more_than_held_reverts() {
        let (mut chain, weth, user) = setup();
        let tx = chain
            .execute(user, weth.address, "over", |ctx| {
                weth.deposit(ctx, user, E18)?;
                weth.withdraw(ctx, user, 2 * E18)
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }
}

//! The LeiShen pipeline (paper Fig. 5): transfer-history extraction →
//! app-level transfer construction → attack-pattern identification.

use std::collections::HashSet;

use ethsim::{Address, CreationIndex, CreationRecord, TokenId, TxRecord};

use crate::analytics::{pair_volatility, profit_of, PairVolatility, UsdPriceTable};
use crate::config::DetectorConfig;
use crate::flashloan::{identify_flash_loans, FlashLoanEvent};
use crate::labels::Labels;
use crate::patterns::{all_legs, match_all_legs_observed, PatternMatch, PatternScratch};
use crate::report::AttackReport;
use crate::scan::TagCache;
use crate::simplify::{simplify_drain_observed, SimplifyAction};
use crate::tagging::{tag_of, tag_transfers_with_into, Tag, TaggedTransfer};
use crate::telemetry::{MetricsSink, NoopSink, Stage, StageClock, TxCounters};
use crate::trace::{Decision, NoopTracer, Reason, TraceBuilder, TraceEvent, TraceSink, Verdict};
use crate::trades::{identify_trades_into, Trade};

/// The detector's read-only view of chain context: the label cloud, the
/// creation dataset, and (optionally) which token is WETH.
#[derive(Clone, Debug)]
pub struct ChainView<'a> {
    labels: &'a Labels,
    creations: CreationIndex,
    weth: Option<TokenId>,
}

impl<'a> ChainView<'a> {
    /// Builds a view from the label cloud and the creation dataset.
    pub fn new(
        labels: &'a Labels,
        creation_records: &[CreationRecord],
        weth: Option<TokenId>,
    ) -> Self {
        ChainView {
            labels,
            creations: CreationIndex::new(creation_records),
            weth,
        }
    }

    /// The label cloud.
    pub fn labels(&self) -> &Labels {
        self.labels
    }

    /// The creation index.
    pub fn creations(&self) -> &CreationIndex {
        &self.creations
    }

    /// The WETH token, when known.
    pub fn weth(&self) -> Option<TokenId> {
        self.weth
    }
}

/// Full intermediate output of one analysis — every pipeline stage exposed,
/// so callers (and the paper's figures) can inspect each step.
///
/// `PartialEq` (not `Eq`: pattern volatilities are `f64`) exists so the
/// telemetry identity tests can assert that instrumented and
/// uninstrumented runs produce *identical* results.
#[derive(Clone, Debug, PartialEq)]
pub struct Analysis {
    /// Identified flash loans (empty ⇒ not a flash-loan transaction; the
    /// pipeline stops after identification in that case).
    pub flash_loans: Vec<FlashLoanEvent>,
    /// Account-level transfer count (stage 1 input size).
    pub account_transfer_count: usize,
    /// Application-level transfers after simplification (stage 2). The
    /// stage-2a tagged account-level list is transient — it is one entry
    /// per raw transfer, so retaining it would dominate the memory of a
    /// batch scan; callers that need it can re-run [`tag_transfers`]
    /// (it is deterministic).
    ///
    /// [`tag_transfers`]: crate::tagging::tag_transfers
    pub app_transfers: Vec<TaggedTransfer>,
    /// Identified trades (stage 3a).
    pub trades: Vec<Trade>,
    /// Matched attack patterns (stage 3b).
    pub matches: Vec<PatternMatch>,
    /// Borrower tags the patterns were evaluated for.
    pub borrower_tags: Vec<Tag>,
}

impl Analysis {
    /// Whether the transaction is reported as a flpAttack.
    pub fn is_attack(&self) -> bool {
        !self.flash_loans.is_empty() && !self.matches.is_empty()
    }
}

/// The LeiShen detector.
///
/// ```
/// use leishen::{DetectorConfig, LeiShen};
/// let detector = LeiShen::new(DetectorConfig::paper());
/// assert_eq!(detector.config().mbs_min_rounds, 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LeiShen {
    config: DetectorConfig,
}

impl LeiShen {
    /// Creates a detector with the given thresholds.
    pub fn new(config: DetectorConfig) -> Self {
        LeiShen { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Runs the full pipeline on one replayed transaction.
    ///
    /// Reverted transactions and transactions without a Table II flash-loan
    /// signature short-circuit with an empty analysis (LeiShen only takes
    /// flash-loan transactions as input).
    pub fn analyze(&self, tx: &TxRecord, view: &ChainView<'_>) -> Analysis {
        self.analyze_with(tx, view, &mut |addr| {
            tag_of(addr, view.labels, &view.creations)
        })
    }

    /// Like [`LeiShen::analyze`], resolving tags through a shared
    /// [`TagCache`] so repeated addresses across a batch scan are tagged
    /// once. Produces exactly the same [`Analysis`] as `analyze`.
    pub fn analyze_cached(
        &self,
        tx: &TxRecord,
        view: &ChainView<'_>,
        cache: &TagCache,
    ) -> Analysis {
        self.analyze_with(tx, view, &mut |addr| {
            cache.resolve(addr, view.labels, &view.creations)
        })
    }

    /// Like [`LeiShen::analyze`], resolving tags through an arbitrary
    /// caller-supplied resolver, which must map the zero address to
    /// [`Tag::BlackHole`] and otherwise agree with
    /// [`tag_of`] for the view's labels and creations. This is how
    /// [`crate::scan::ScanEngine`] workers plug in their thread-local
    /// cache fronts.
    ///
    /// The resolver is a compile-time parameter (not `&mut dyn FnMut`):
    /// the pipeline calls it roughly twice per journal entry, so on the
    /// cached batch-scan path the local-map probe must inline into the
    /// tagging loop instead of going through an indirect call.
    pub fn analyze_with<R: FnMut(Address) -> Tag>(
        &self,
        tx: &TxRecord,
        view: &ChainView<'_>,
        resolve: &mut R,
    ) -> Analysis {
        self.analyze_scratch(tx, view, resolve, &mut AnalysisScratch::default())
    }

    /// Like [`LeiShen::analyze_with`], with caller-provided scratch
    /// buffers. Every intermediate the pipeline does not return moves
    /// into `scratch` and is reused on the next call, so a worker
    /// analyzing a batch pays for those buffers once instead of once per
    /// transaction. Produces exactly the same [`Analysis`] as `analyze`.
    pub fn analyze_scratch<R: FnMut(Address) -> Tag>(
        &self,
        tx: &TxRecord,
        view: &ChainView<'_>,
        resolve: &mut R,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        self.analyze_metered(tx, view, resolve, scratch, &NoopSink)
    }

    /// Like [`LeiShen::analyze_scratch`], reporting per-stage latency and
    /// per-transaction counters to `sink`. The sink is a compile-time
    /// parameter: monomorphized over [`NoopSink`] (what `analyze_scratch`
    /// does) every timer read and counter store is dead code, so the
    /// uninstrumented hot path pays nothing. Produces exactly the same
    /// [`Analysis`] as `analyze` for any sink.
    pub fn analyze_metered<S: MetricsSink, R: FnMut(Address) -> Tag>(
        &self,
        tx: &TxRecord,
        view: &ChainView<'_>,
        resolve: &mut R,
        scratch: &mut AnalysisScratch,
        sink: &S,
    ) -> Analysis {
        self.analyze_traced(tx, view, resolve, scratch, sink, &NoopTracer)
    }

    /// Like [`LeiShen::analyze_metered`], additionally recording the full
    /// decision provenance — stage spans, structured events for every
    /// reduction and matcher verdict, and the final reason chain — into
    /// `tracer`. Like the metrics sink, the tracer is a compile-time
    /// parameter: monomorphized over [`NoopTracer`] every event closure
    /// and span clock is dead code. Produces exactly the same
    /// [`Analysis`] as `analyze` for any sink/tracer combination.
    pub fn analyze_traced<S: MetricsSink, T: TraceSink, R: FnMut(Address) -> Tag>(
        &self,
        tx: &TxRecord,
        view: &ChainView<'_>,
        resolve: &mut R,
        scratch: &mut AnalysisScratch,
        sink: &S,
        tracer: &T,
    ) -> Analysis {
        let timed = S::ENABLED && {
            scratch.lap_tick = scratch.lap_tick.wrapping_add(1);
            let every = sink.stage_sampling();
            every <= 1 || scratch.lap_tick.is_multiple_of(every)
        };
        let mut clock = StageClock::start(sink, timed, tx.id);
        let mut builder = TraceBuilder::start(tracer);
        let mut counters = TxCounters::default();
        let flash_loans = if tx.status.is_success() {
            identify_flash_loans(tx)
        } else {
            Vec::new()
        };
        for loan in &flash_loans {
            builder.event(tracer, || TraceEvent::FlashLoan {
                provider: loan.provider.to_string(),
                lender: loan.lender.to_string(),
                borrower: loan.borrower.to_string(),
                amount: loan.amount,
            });
        }
        clock.lap(sink, Stage::FlashLoan);
        builder.lap(tracer, Stage::FlashLoan);
        if flash_loans.is_empty() {
            if S::ENABLED {
                counters.account_transfers = tx.trace.transfers.len() as u32;
            }
            clock.finish(sink, &counters);
            builder.finish(
                tracer,
                tx,
                Decision {
                    flagged: false,
                    reasons: vec![if tx.status.is_success() {
                        Reason::NoFlashLoan
                    } else {
                        Reason::Reverted
                    }],
                },
            );
            return Analysis {
                flash_loans,
                account_transfer_count: tx.trace.transfers.len(),
                app_transfers: Vec::new(),
                trades: Vec::new(),
                matches: Vec::new(),
                borrower_tags: Vec::new(),
            };
        }
        let AnalysisScratch {
            tagged, patterns, ..
        } = scratch;

        // Stage 2: account tagging + simplification. Buffers are sized up
        // front: simplification only ever removes or merges transfers.
        tag_transfers_with_into(&tx.trace.transfers, &mut *resolve, tagged);
        if T::ENABLED {
            // First occurrence of each distinct tag, in journal order,
            // with the transfer that triggered it.
            let mut seen: HashSet<&Tag> = HashSet::with_capacity(tagged.len());
            for t in tagged.iter() {
                for tag in [&t.sender, &t.receiver] {
                    if seen.insert(tag) {
                        builder.event(tracer, || TraceEvent::TagAssigned {
                            tag: tag.to_string(),
                            first_seq: t.seq,
                        });
                    }
                }
            }
        }
        clock.lap(sink, Stage::Tagging);
        builder.lap(tracer, Stage::Tagging);
        let mut app_transfers = Vec::with_capacity(tagged.len());
        // Draining variant: survivors move out of the scratch buffer
        // (cleared anyway on the next transaction) instead of cloning.
        let simplify_stats = simplify_drain_observed(
            tagged,
            view.weth,
            &self.config,
            &mut app_transfers,
            |action| {
                if T::ENABLED {
                    match action {
                        SimplifyAction::Kept { .. } => {}
                        SimplifyAction::Dropped { seq, rule } => builder
                            .event(tracer, || TraceEvent::SimplifyDropped { seq, rule }),
                        SimplifyAction::Merged { seq, into_seq } => builder
                            .event(tracer, || TraceEvent::SimplifyMerged { seq, into_seq }),
                    }
                }
            },
        );
        builder.event(tracer, || TraceEvent::SimplifySummary {
            kept: simplify_stats.kept,
            dropped: simplify_stats.dropped,
            merged: simplify_stats.merged,
        });
        clock.lap(sink, Stage::Simplify);
        builder.lap(tracer, Stage::Simplify);

        // Stage 3: trades + patterns, per distinct borrower tag. The tx
        // initiator is always considered a borrower identity as well — the
        // borrower contract acts on its behalf, and the two usually share a
        // creation-tree tag anyway.
        let mut trades = Vec::with_capacity(app_transfers.len() / 2 + 1);
        identify_trades_into(&app_transfers, &mut trades);
        for trade in &trades {
            builder.event(tracer, || TraceEvent::TradeIdentified {
                seq: trade.seq,
                kind: trade.kind.to_string(),
                buyer: trade.buyer.to_string(),
                seller: trade.seller.to_string(),
            });
        }
        clock.lap(sink, Stage::Trades);
        builder.lap(tracer, Stage::Trades);
        // Dedup by linear scan: a transaction has a handful of borrower
        // identities at most, and hashing a tag walks its app-name
        // string, so a set would cost more than it saves.
        let mut borrower_tags: Vec<Tag> = Vec::new();
        for loan in &flash_loans {
            let t = resolve(loan.borrower);
            if !borrower_tags.contains(&t) {
                borrower_tags.push(t);
            }
        }
        let initiator_tag = resolve(tx.from);
        if !borrower_tags.contains(&initiator_tag) {
            borrower_tags.push(initiator_tag);
        }
        // Legs are flattened once and shared across borrower tags.
        let legs = all_legs(&trades);
        let mut matches: Vec<PatternMatch> = Vec::new();
        let active_matchers = 3 + usize::from(self.config.experimental_kdp);
        for tag in &borrower_tags {
            let found =
                match_all_legs_observed(&legs, tag, &self.config, patterns, |verdict| {
                    if T::ENABLED {
                        builder.event(tracer, || TraceEvent::PatternVerdict {
                            kind: verdict.kind,
                            borrower: tag.to_string(),
                            quote: verdict.quote.to_string(),
                            target: verdict.target.to_string(),
                            outcome: match verdict.failed {
                                Some(failed) => Verdict::Rejected {
                                    failed: failed.to_string(),
                                },
                                None => Verdict::Matched {
                                    trade_seqs: verdict
                                        .matched
                                        .iter()
                                        .map(|m| m.trade_seqs.clone())
                                        .collect(),
                                    volatility: verdict
                                        .matched
                                        .first()
                                        .map_or(0.0, |m| m.volatility),
                                },
                            },
                        });
                    }
                });
            // Same linear-scan rationale: matches number in the single
            // digits, and the set this replaces cloned every match's
            // trade list and counterparty name just to build its key.
            for m in found {
                if !matches.iter().any(|have| same_match(have, &m)) {
                    matches.push(m);
                }
            }
            if S::ENABLED {
                counters.patterns_tried +=
                    (patterns.pairs_examined() * active_matchers) as u32;
            }
        }
        clock.lap(sink, Stage::Patterns);
        builder.lap(tracer, Stage::Patterns);

        if S::ENABLED {
            // Every counter is derived from state the pipeline already
            // holds; `tags_resolved` counts resolver calls exactly (two
            // per raw transfer, one per loan borrower, one initiator).
            counters.account_transfers = tx.trace.transfers.len() as u32;
            counters.flash_loans = flash_loans.len() as u32;
            counters.tags_resolved =
                (2 * tx.trace.transfers.len() + flash_loans.len() + 1) as u32;
            counters.app_transfers = simplify_stats.kept;
            counters.transfers_dropped = simplify_stats.dropped;
            counters.transfers_merged = simplify_stats.merged;
            counters.trades = trades.len() as u32;
            counters.borrower_tags = borrower_tags.len() as u32;
            counters.patterns_matched = matches.len() as u32;
        }
        clock.finish(sink, &counters);
        if T::ENABLED {
            // Reason chain: every identified loan, then either the
            // flagging evidence (one reason per deduped match) or the
            // explicit clear.
            let mut reasons = Vec::with_capacity(flash_loans.len() + matches.len().max(1));
            for loan in &flash_loans {
                reasons.push(Reason::FlashLoan {
                    provider: loan.provider.to_string(),
                });
            }
            if matches.is_empty() {
                reasons.push(Reason::NoPatternMatched);
            } else {
                for m in &matches {
                    reasons.push(Reason::PatternMatched {
                        kind: m.kind,
                        target: m.target_token.to_string(),
                        quote: m.quote_token.to_string(),
                        trade_seqs: m.trade_seqs.clone(),
                    });
                }
            }
            builder.finish(
                tracer,
                tx,
                Decision {
                    flagged: !matches.is_empty(),
                    reasons,
                },
            );
        }

        Analysis {
            flash_loans,
            account_transfer_count: tx.trace.transfers.len(),
            app_transfers,
            trades,
            matches,
            borrower_tags,
        }
    }

    /// Analyzes a transaction and, when it is an attack, produces the full
    /// report (volatility always included; profit when `prices` given).
    pub fn detect(
        &self,
        tx: &TxRecord,
        view: &ChainView<'_>,
        prices: Option<&UsdPriceTable>,
    ) -> Option<AttackReport> {
        self.detect_impl(tx, view, prices, &mut |addr| {
            tag_of(addr, view.labels, &view.creations)
        })
    }

    /// Like [`LeiShen::detect`], resolving tags through a shared
    /// [`TagCache`].
    pub fn detect_cached(
        &self,
        tx: &TxRecord,
        view: &ChainView<'_>,
        prices: Option<&UsdPriceTable>,
        cache: &TagCache,
    ) -> Option<AttackReport> {
        self.detect_impl(tx, view, prices, &mut |addr| {
            cache.resolve(addr, view.labels, &view.creations)
        })
    }

    fn detect_impl(
        &self,
        tx: &TxRecord,
        view: &ChainView<'_>,
        prices: Option<&UsdPriceTable>,
        resolve: &mut dyn FnMut(Address) -> Tag,
    ) -> Option<AttackReport> {
        // Cold path: one transaction per call, so the dyn resolver stays
        // (monomorphizing `detect` would only bloat the binary).
        let mut resolve = resolve;
        let analysis = self.analyze_with(tx, view, &mut resolve);
        if !analysis.is_attack() {
            return None;
        }
        let volatilities: Vec<PairVolatility> = pair_volatility(&analysis.trades);
        let profit_usd = prices.map(|p| {
            let accounts = borrower_accounts(tx, &analysis, resolve);
            profit_of(&tx.trace.transfers, &accounts, p)
        });
        Some(AttackReport {
            tx: tx.id,
            block: tx.block,
            timestamp: tx.timestamp,
            initiator: tx.from,
            flash_loans: analysis.flash_loans,
            patterns: analysis.matches,
            volatilities,
            profit_usd,
            exits: Vec::new(),
        })
    }
}

/// Reusable per-worker buffers for [`LeiShen::analyze_scratch`]: the
/// transient tagged-transfer list, the pattern stage's pair and series
/// buffers, and the two dedup sets. One scratch per scan worker
/// amortizes several heap allocations per transaction on the batch-scan
/// hot path.
#[derive(Debug, Default)]
pub struct AnalysisScratch {
    tagged: Vec<TaggedTransfer>,
    patterns: PatternScratch,
    /// Per-worker transaction tick driving the sink's stage-timing
    /// sampling ([`MetricsSink::stage_sampling`]).
    lap_tick: u32,
}

/// Match equality for dedup across borrower tags. `PatternMatch` is
/// `PartialEq`-only because of its `f64` volatility; here the float
/// compares by bit pattern, so two NaN volatilities of identical
/// provenance still dedup.
fn same_match(a: &PatternMatch, b: &PatternMatch) -> bool {
    a.kind == b.kind
        && a.target_token == b.target_token
        && a.quote_token == b.quote_token
        && a.volatility.to_bits() == b.volatility.to_bits()
        && a.trade_seqs == b.trade_seqs
        && a.counterparty == b.counterparty
}

/// All addresses in the transaction that share a borrower tag — the
/// attacker's account cluster for profit accounting.
fn borrower_accounts(
    tx: &TxRecord,
    analysis: &Analysis,
    resolve: &mut dyn FnMut(Address) -> Tag,
) -> HashSet<Address> {
    let mut accounts = HashSet::new();
    accounts.insert(tx.from);
    for loan in &analysis.flash_loans {
        accounts.insert(loan.borrower);
    }
    let borrower_tags: HashSet<&Tag> = analysis.borrower_tags.iter().collect();
    for t in &tx.trace.transfers {
        for addr in [t.sender, t.receiver] {
            if addr.is_zero() || accounts.contains(&addr) {
                continue;
            }
            let tag = resolve(addr);
            if borrower_tags.contains(&tag) {
                accounts.insert(addr);
            }
        }
    }
    accounts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{Chain, ChainConfig};

    /// A minimal hand-rolled flash-loan attack on the substrate: borrow
    /// from a fake Uniswap pair (proper swap/uniswapV2Call frames), run an
    /// SBS-shaped trade triple against two labeled apps, repay.
    fn build_attack_world() -> (Chain, Labels, TokenId) {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = Labels::new();
        let uni_deployer = chain.create_eoa("uni deployer");
        let comp_deployer = chain.create_eoa("comp deployer");
        labels.set(uni_deployer, "Uniswap");
        labels.set(comp_deployer, "Compound");
        // Contracts created by labeled deployers inherit tags via the tree.
        let mut pair = None;
        let mut market = None;
        chain
            .execute(uni_deployer, uni_deployer, "deploy", |ctx| {
                pair = Some(ctx.create_contract(uni_deployer)?);
                Ok(())
            })
            .unwrap();
        chain
            .execute(comp_deployer, comp_deployer, "deploy", |ctx| {
                market = Some(ctx.create_contract(comp_deployer)?);
                Ok(())
            })
            .unwrap();
        let pair = pair.unwrap();
        let market = market.unwrap();
        let mut wbtc = None;
        chain
            .execute(uni_deployer, uni_deployer, "deployToken", |ctx| {
                let c = ctx.create_contract(uni_deployer)?;
                let t = ctx.register_token("WBTC", 8, c);
                ctx.mint_token(t, market, 500_00000000)?;
                ctx.mint_token(t, pair, 500_00000000)?;
                wbtc = Some(t);
                Ok(())
            })
            .unwrap();
        chain.state_mut().credit_eth(pair, 1_000_000).unwrap();
        chain.state_mut().credit_eth(market, 1_000_000).unwrap();
        (chain, labels, wbtc.unwrap())
    }

    #[test]
    fn end_to_end_sbs_attack_detected() {
        let (mut chain, labels, wbtc) = build_attack_world();
        let attacker = chain.create_eoa("attacker");
        // Resolve contracts by walking creations: first two are pair/market.
        let pair = chain.state().creations()[0].created;
        let market = chain.state().creations()[1].created;
        let mut contract = None;
        chain
            .execute(attacker, attacker, "deploy", |ctx| {
                contract = Some(ctx.create_contract(attacker)?);
                Ok(())
            })
            .unwrap();
        let c = contract.unwrap();

        let eth = TokenId::ETH;
        let tx = chain
            .execute(attacker, c, "attack", |ctx| {
                // flash loan: 100k wei ETH from the "pair"
                ctx.call(c, pair, "swap", 0, |ctx| {
                    ctx.transfer_eth(pair, c, 100_000)?;
                    ctx.call(pair, c, "uniswapV2Call", 0, |ctx| {
                        // trade1: buy 112 WBTC-sats from Compound @ ~491
                        ctx.transfer_eth(c, market, 55_000)?;
                        ctx.transfer_token(wbtc, market, c, 112)?;
                        // trade2 (pump): Compound buys from Uniswap @ ~1105
                        ctx.transfer_eth(market, pair, 22_100)?;
                        ctx.transfer_token(wbtc, pair, market, 20)?;
                        // trade3: sell 112 back to Uniswap @ ~613
                        ctx.transfer_token(wbtc, c, pair, 112)?;
                        ctx.transfer_eth(pair, c, 68_656)?;
                        Ok(())
                    })?;
                    // repay 100_000 + fee
                    ctx.transfer_eth(c, pair, 100_301)?;
                    Ok(())
                })?;
                // take profit home
                let bal = ctx.balance(eth, c);
                ctx.transfer_eth(c, attacker, bal)?;
                Ok(())
            })
            .unwrap();

        let record = chain.replay(tx).unwrap().clone();
        assert!(record.status.is_success());
        let view = ChainView::new(&labels, chain.state().creations(), None);
        let detector = LeiShen::new(DetectorConfig::default());
        let analysis = detector.analyze(&record, &view);
        assert_eq!(analysis.flash_loans.len(), 1);
        assert!(
            analysis.is_attack(),
            "trades: {:?}\nmatches: {:?}\napp: {:?}",
            analysis.trades,
            analysis.matches,
            analysis.app_transfers
        );
        assert!(analysis
            .matches
            .iter()
            .any(|m| m.kind == crate::patterns::PatternKind::Sbs));

        // Full report with profit accounting.
        let mut prices = UsdPriceTable::new();
        prices.set_whole(eth, 1.0, 0); // 1 USD per wei for the toy scale
        let report = detector.detect(&record, &view, Some(&prices)).unwrap();
        let profit = report.profit_usd.unwrap();
        // attacker spent 55,000 + 100,301 and received 100,000 + 68,656
        assert!(
            (profit - 13_355.0).abs() < 1.0,
            "expected ~13,355, got {profit}"
        );
        assert!(!report.volatilities.is_empty());
    }

    #[test]
    fn metered_analysis_is_identical_and_counted() {
        use crate::telemetry::{RecordingSink, Stage};

        let (mut chain, labels, wbtc) = build_attack_world();
        let attacker = chain.create_eoa("attacker");
        chain.state_mut().credit_eth(attacker, 1_000).unwrap();
        let pair = chain.state().creations()[0].created;
        let tx = chain
            .execute(attacker, pair, "flash", |ctx| {
                ctx.call(attacker, pair, "swap", 0, |ctx| {
                    ctx.transfer_eth(pair, attacker, 100_000)?;
                    ctx.call(pair, attacker, "uniswapV2Call", 0, |ctx| {
                        ctx.transfer_token(wbtc, pair, attacker, 7)
                    })?;
                    ctx.transfer_eth(attacker, pair, 100_301)?;
                    Ok(())
                })
            })
            .unwrap();
        let record = chain.replay(tx).unwrap().clone();
        let view = ChainView::new(&labels, chain.state().creations(), None);
        let detector = LeiShen::new(DetectorConfig::paper());

        let plain = detector.analyze(&record, &view);
        let sink = RecordingSink::new();
        let metered = detector.analyze_metered(
            &record,
            &view,
            &mut |addr| tag_of(addr, view.labels, &view.creations),
            &mut AnalysisScratch::default(),
            &sink,
        );
        assert_eq!(plain, metered, "instrumentation must not change results");

        let totals = sink.counter_totals();
        assert_eq!(totals.transactions, 1);
        assert_eq!(
            totals.account_transfers as usize,
            record.trace.transfers.len()
        );
        assert_eq!(totals.flash_loans as usize, metered.flash_loans.len());
        assert_eq!(
            totals.tags_resolved as usize,
            2 * record.trace.transfers.len() + metered.flash_loans.len() + 1
        );
        assert_eq!(totals.app_transfers as usize, metered.app_transfers.len());
        assert_eq!(totals.trades as usize, metered.trades.len());
        assert_eq!(totals.borrower_tags as usize, metered.borrower_tags.len());
        assert_eq!(totals.patterns_matched as usize, metered.matches.len());
        // A flash-loan transaction reaches every stage exactly once.
        for stage in crate::telemetry::STAGES {
            assert_eq!(sink.stage_summary(stage).count, 1, "{stage}");
        }

        // A non-flash-loan transaction records only the short-circuit.
        let other = chain.create_eoa("other");
        chain.state_mut().credit_eth(other, 10).unwrap();
        let plain_tx = chain
            .execute(other, attacker, "send", |ctx| {
                ctx.transfer_eth(other, attacker, 5)
            })
            .unwrap();
        let plain_record = chain.replay(plain_tx).unwrap().clone();
        detector.analyze_metered(
            &plain_record,
            &view,
            &mut |addr| tag_of(addr, view.labels, &view.creations),
            &mut AnalysisScratch::default(),
            &sink,
        );
        assert_eq!(sink.counter_totals().transactions, 2);
        assert_eq!(sink.stage_summary(Stage::FlashLoan).count, 2);
        assert_eq!(sink.stage_summary(Stage::Tagging).count, 1);
    }

    #[test]
    fn chain_view_exposes_its_parts() {
        let mut labels = Labels::new();
        labels.set(Address::from_u64(1), "Uniswap");
        let records = [ethsim::CreationRecord {
            creator: Address::from_u64(1),
            created: Address::from_u64(2),
            block: 0,
        }];
        let view = ChainView::new(&labels, &records, Some(TokenId::from_index(3)));
        assert_eq!(view.labels().get(Address::from_u64(1)), Some("Uniswap"));
        assert_eq!(view.creations().parent(Address::from_u64(2)), Some(Address::from_u64(1)));
        assert_eq!(view.weth(), Some(TokenId::from_index(3)));
    }

    #[test]
    fn analysis_requires_both_loans_and_matches() {
        let base = Analysis {
            flash_loans: vec![],
            account_transfer_count: 0,
            app_transfers: vec![],
            trades: vec![],
            matches: vec![],
            borrower_tags: vec![],
        };
        assert!(!base.is_attack(), "neither");
        let with_loan = Analysis {
            flash_loans: vec![crate::flashloan::FlashLoanEvent {
                provider: crate::flashloan::Provider::Aave,
                lender: Address::from_u64(1),
                borrower: Address::from_u64(2),
                token: None,
                amount: None,
            }],
            ..base.clone()
        };
        assert!(!with_loan.is_attack(), "loan without pattern");
        let with_match = Analysis {
            matches: vec![crate::patterns::PatternMatch {
                kind: crate::patterns::PatternKind::Krp,
                target_token: TokenId::from_index(1),
                quote_token: TokenId::ETH,
                trade_seqs: vec![],
                volatility: 1.0,
                counterparty: "X".into(),
            }],
            ..base.clone()
        };
        assert!(!with_match.is_attack(), "pattern without loan");
        let both = Analysis {
            matches: with_match.matches.clone(),
            ..with_loan
        };
        assert!(both.is_attack());
    }

    #[test]
    fn non_flash_loan_tx_short_circuits() {
        let mut chain = Chain::new(ChainConfig::default());
        let labels = Labels::new();
        let a = chain.create_eoa("a");
        chain.state_mut().credit_eth(a, 10).unwrap();
        let b = chain.create_eoa("b");
        let tx = chain
            .execute(a, b, "send", |ctx| ctx.transfer_eth(a, b, 5))
            .unwrap();
        let record = chain.replay(tx).unwrap().clone();
        let view = ChainView::new(&labels, chain.state().creations(), None);
        let analysis = LeiShen::default().analyze(&record, &view);
        assert!(analysis.flash_loans.is_empty());
        assert!(!analysis.is_attack());
        assert!(analysis.app_transfers.is_empty(), "pipeline short-circuits");
        assert!(LeiShen::default().detect(&record, &view, None).is_none());
    }

    #[test]
    fn reverted_tx_is_ignored() {
        let mut chain = Chain::new(ChainConfig::default());
        let labels = Labels::new();
        let a = chain.create_eoa("a");
        let b = chain.create_eoa("b");
        let tx = chain
            .execute(a, b, "fail", |_| Err(ethsim::SimError::revert("nope")))
            .unwrap();
        let record = chain.replay(tx).unwrap().clone();
        let view = ChainView::new(&labels, chain.state().creations(), None);
        assert!(!LeiShen::default().analyze(&record, &view).is_attack());
    }

    #[test]
    fn benign_flash_loan_is_not_an_attack() {
        // Borrow and repay with no manipulation: flash loan found, no
        // pattern matched.
        let (mut chain, labels, _) = build_attack_world();
        let pair = chain.state().creations()[0].created;
        let user = chain.create_eoa("user");
        chain.state_mut().credit_eth(user, 1_000).unwrap();
        let tx = chain
            .execute(user, pair, "flash", |ctx| {
                ctx.call(user, pair, "swap", 0, |ctx| {
                    ctx.transfer_eth(pair, user, 100_000)?;
                    ctx.call(pair, user, "uniswapV2Call", 0, |_| Ok(()))?;
                    ctx.transfer_eth(user, pair, 100_301)?;
                    Ok(())
                })
            })
            .unwrap();
        let record = chain.replay(tx).unwrap().clone();
        let view = ChainView::new(&labels, chain.state().creations(), None);
        let analysis = LeiShen::default().analyze(&record, &view);
        assert_eq!(analysis.flash_loans.len(), 1);
        assert!(!analysis.is_attack());
    }
}

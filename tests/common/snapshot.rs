//! The golden-corpus snapshot renderer, shared by every suite that
//! compares detector output against `tests/golden/*.json`.
//!
//! `golden_attacks.rs` renders batch analyses with it; `golden_stream.rs`
//! renders *streamed* analyses with the same code, so the two suites can
//! never drift on formatting — a mismatch is always a behavioural
//! difference, never a renderer fork.

use std::collections::HashSet;
use std::fmt::Write as _;

use ethsim::TokenId;
use leishen::{trace_exits, Analysis, ChainView, ExitReport};
use leishen_scenarios::{ExecutedAttack, World};

/// JSON string escaping for the identifier-ish strings we emit (tags,
/// names, token symbols) — quotes, backslashes and control characters.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `"bZx-1"` → `"bzx_1"`, `"MY FARM PET"` → `"my_farm_pet"`.
pub fn slug(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    out.trim_end_matches('_').to_string()
}

/// The snapshot file name for one attack: `NN_slug.json`.
pub fn file_name(attack: &ExecutedAttack) -> String {
    format!("{:02}_{}.json", attack.spec.id, slug(attack.spec.name))
}

/// Funds leaving the attacker cluster within the attack transaction
/// itself, classified by [`trace_exits`]. Routed through
/// [`leishen::AttackReport::with_exits`] by the callers so the report
/// wiring is exercised, not just the raw forensics pass.
pub fn exits_for(world: &World, attack: &ExecutedAttack, view: &ChainView<'_>) -> Vec<ExitReport> {
    let record = world.chain.replay(attack.tx).expect("recorded");
    let cluster: HashSet<_> = [attack.attacker, attack.contract].into_iter().collect();
    trace_exits(
        &[record],
        &cluster,
        view.labels(),
        view.creations(),
        &["Tornado Cash"],
    )
}

/// Renders the detector's complete output for one attack as
/// deterministic, pretty-printed JSON.
pub fn render(
    world: &World,
    attack: &ExecutedAttack,
    analysis: &Analysis,
    exits: &[ExitReport],
) -> String {
    let sym = |t: TokenId| -> String {
        world
            .chain
            .state()
            .token(t)
            .map(|info| info.symbol.clone())
            .unwrap_or_else(|_| t.to_string())
    };
    let side = |legs: &[(u128, TokenId)]| -> String {
        legs.iter()
            .map(|(amount, token)| format!("[\"{amount}\", \"{}\"]", esc(&sym(*token))))
            .collect::<Vec<_>>()
            .join(", ")
    };

    let mut j = String::new();
    let spec = &attack.spec;
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"id\": {},", spec.id);
    let _ = writeln!(j, "  \"name\": \"{}\",", esc(spec.name));
    let _ = writeln!(j, "  \"attacked_app\": \"{}\",", esc(spec.attacked_app));
    let _ = writeln!(j, "  \"is_attack\": {},", analysis.is_attack());
    let _ = writeln!(j, "  \"account_transfers\": {},", analysis.account_transfer_count);

    let _ = writeln!(j, "  \"flash_loans\": [");
    for (i, loan) in analysis.flash_loans.iter().enumerate() {
        let token = loan
            .token
            .map(|t| format!("\"{}\"", esc(&sym(t))))
            .unwrap_or_else(|| "null".into());
        let amount = loan
            .amount
            .map(|a| format!("\"{a}\""))
            .unwrap_or_else(|| "null".into());
        let comma = if i + 1 < analysis.flash_loans.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{ \"provider\": \"{}\", \"lender\": \"{}\", \"borrower\": \"{}\", \"token\": {token}, \"amount\": {amount} }}{comma}",
            loan.provider, loan.lender, loan.borrower
        );
    }
    let _ = writeln!(j, "  ],");

    let _ = writeln!(j, "  \"app_transfers\": [");
    for (i, t) in analysis.app_transfers.iter().enumerate() {
        let comma = if i + 1 < analysis.app_transfers.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{ \"seq\": {}, \"from\": \"{}\", \"to\": \"{}\", \"amount\": \"{}\", \"token\": \"{}\" }}{comma}",
            t.seq,
            esc(&t.sender.to_string()),
            esc(&t.receiver.to_string()),
            t.amount,
            esc(&sym(t.token))
        );
    }
    let _ = writeln!(j, "  ],");

    let _ = writeln!(j, "  \"trades\": [");
    for (i, t) in analysis.trades.iter().enumerate() {
        let comma = if i + 1 < analysis.trades.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{ \"seq\": {}, \"kind\": \"{}\", \"buyer\": \"{}\", \"seller\": \"{}\", \"sells\": [{}], \"buys\": [{}] }}{comma}",
            t.seq,
            t.kind,
            esc(&t.buyer.to_string()),
            esc(&t.seller.to_string()),
            side(&t.sells),
            side(&t.buys)
        );
    }
    let _ = writeln!(j, "  ],");

    let _ = writeln!(j, "  \"borrower_tags\": [");
    for (i, tag) in analysis.borrower_tags.iter().enumerate() {
        let comma = if i + 1 < analysis.borrower_tags.len() { "," } else { "" };
        let _ = writeln!(j, "    \"{}\"{comma}", esc(&tag.to_string()));
    }
    let _ = writeln!(j, "  ],");

    let _ = writeln!(j, "  \"matches\": [");
    for (i, m) in analysis.matches.iter().enumerate() {
        let seqs = m
            .trade_seqs
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let comma = if i + 1 < analysis.matches.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{ \"kind\": \"{}\", \"target_token\": \"{}\", \"quote_token\": \"{}\", \"trade_seqs\": [{seqs}], \"volatility\": {:.6}, \"counterparty\": \"{}\" }}{comma}",
            m.kind,
            esc(&sym(m.target_token)),
            esc(&sym(m.quote_token)),
            m.volatility,
            esc(&m.counterparty)
        );
    }
    let _ = writeln!(j, "  ],");

    let _ = writeln!(j, "  \"exits\": [");
    for (i, e) in exits.iter().enumerate() {
        let comma = if i + 1 < exits.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{ \"sink\": \"{}\", \"sink_tag\": \"{}\", \"kind\": \"{}\", \"hops\": {}, \"amount\": \"{}\", \"token\": \"{}\", \"path_len\": {} }}{comma}",
            e.sink,
            esc(&e.sink_tag.to_string()),
            e.kind.name(),
            e.kind.hops(),
            e.amount,
            esc(&sym(e.token)),
            e.path.len()
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

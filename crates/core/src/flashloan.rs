//! Flash-loan transaction identification (paper §V-A, Table II).
//!
//! | Provider | Function(s)                                | Event(s) |
//! |----------|--------------------------------------------|----------|
//! | Uniswap  | `swap` then `uniswapV2Call`                | —        |
//! | AAVE     | `flashLoan`                                | `FlashLoan` |
//! | dYdX     | `Operate`,`Withdraw`,`callFunction`,`Deposit` | `LogOperation`,`LogWithdraw`,`LogCall`,`LogDeposit` |
//!
//! A transaction may take flash loans from more than one provider (seven of
//! the 44 studied attacks did; Beanstalk borrowed five assets from three
//! providers at once), so identification returns *all* loans found.

use ethsim::{Address, TokenId, TxRecord};
use serde::{Deserialize, Serialize};

/// The three flash-loan providers LeiShen monitors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Provider {
    /// Uniswap V2 flash swaps.
    Uniswap,
    /// AAVE lending-pool flash loans.
    Aave,
    /// dYdX SoloMargin operate/withdraw/call/deposit.
    Dydx,
}

impl std::fmt::Display for Provider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Provider::Uniswap => write!(f, "Uniswap"),
            Provider::Aave => write!(f, "AAVE"),
            Provider::Dydx => write!(f, "dYdX"),
        }
    }
}

/// One identified flash loan inside a transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashLoanEvent {
    /// Which provider signature matched.
    pub provider: Provider,
    /// The lending contract.
    pub lender: Address,
    /// The borrowing contract (the account whose trades the patterns
    /// inspect).
    pub borrower: Address,
    /// Borrowed asset, when recoverable from the trace.
    pub token: Option<TokenId>,
    /// Borrowed amount, when recoverable from the trace.
    pub amount: Option<u128>,
}

/// Scans a replayed transaction for the Table II signatures and returns
/// every flash loan found (empty ⇒ not a flash-loan transaction).
///
/// ```
/// # use ethsim::{Chain, ChainConfig};
/// # use leishen::identify_flash_loans;
/// let mut chain = Chain::new(ChainConfig::default());
/// let a = chain.create_eoa("a");
/// let tx = chain.execute(a, a, "noop", |_| Ok(())).unwrap();
/// assert!(identify_flash_loans(chain.replay(tx).unwrap()).is_empty());
/// ```
pub fn identify_flash_loans(tx: &TxRecord) -> Vec<FlashLoanEvent> {
    let mut out = Vec::new();
    identify_uniswap(tx, &mut out);
    identify_aave(tx, &mut out);
    identify_dydx(tx, &mut out);
    out
}

/// Uniswap: a `swap` frame on some pair `P`, followed later by a
/// `uniswapV2Call` frame *from* `P` into the borrower.
fn identify_uniswap(tx: &TxRecord, out: &mut Vec<FlashLoanEvent>) {
    for cb in tx.trace.frames.iter().filter(|f| f.function == "uniswapV2Call") {
        let lender = cb.caller;
        let borrower = cb.callee;
        let swap_before = tx
            .trace
            .frames
            .iter()
            .any(|f| f.function == "swap" && f.callee == lender && f.seq < cb.seq);
        if !swap_before {
            continue;
        }
        // The borrowed asset is the transfer lender -> borrower between the
        // swap frame and the callback frame.
        let loan_leg = tx
            .trace
            .transfers
            .iter()
            .find(|t| t.sender == lender && t.receiver == borrower && t.seq < cb.seq);
        out.push(FlashLoanEvent {
            provider: Provider::Uniswap,
            lender,
            borrower,
            token: loan_leg.map(|t| t.token),
            amount: loan_leg.map(|t| t.amount),
        });
    }
}

/// AAVE: a `flashLoan` frame plus a `FlashLoan` event from the same pool.
fn identify_aave(tx: &TxRecord, out: &mut Vec<FlashLoanEvent>) {
    for log in tx.trace.logs.iter().filter(|l| l.name == "FlashLoan") {
        let lender = log.emitter;
        let called = tx
            .trace
            .frames
            .iter()
            .any(|f| f.function == "flashLoan" && f.callee == lender);
        if !called {
            continue;
        }
        let borrower = log
            .param("target")
            .and_then(|v| v.as_addr())
            .unwrap_or(Address::ZERO);
        out.push(FlashLoanEvent {
            provider: Provider::Aave,
            lender,
            borrower,
            token: log.param("reserve").and_then(|v| v.as_token()),
            amount: log.param("amount").and_then(|v| v.as_amount()),
        });
    }
}

/// dYdX: the four logs `LogOperation`, `LogWithdraw`, `LogCall`,
/// `LogDeposit` emitted in sequence by the same SoloMargin contract.
fn identify_dydx(tx: &TxRecord, out: &mut Vec<FlashLoanEvent>) {
    for op in tx.trace.logs.iter().filter(|l| l.name == "LogOperation") {
        let solo = op.emitter;
        let mut needed = ["LogWithdraw", "LogCall", "LogDeposit"].iter();
        let mut next = needed.next();
        let mut withdraw_log = None;
        for log in tx.trace.logs.iter().filter(|l| l.seq > op.seq) {
            if log.emitter != solo {
                continue;
            }
            if let Some(want) = next {
                if log.name == **want {
                    if log.name == "LogWithdraw" {
                        withdraw_log = Some(log);
                    }
                    next = needed.next();
                    if next.is_none() {
                        break;
                    }
                }
            }
        }
        if next.is_some() {
            continue; // sequence incomplete
        }
        let borrower = withdraw_log
            .and_then(|l| l.param("account"))
            .and_then(|v| v.as_addr())
            .unwrap_or(Address::ZERO);
        out.push(FlashLoanEvent {
            provider: Provider::Dydx,
            lender: solo,
            borrower,
            token: withdraw_log
                .and_then(|l| l.param("market"))
                .and_then(|v| v.as_token()),
            amount: withdraw_log
                .and_then(|l| l.param("amount"))
                .and_then(|v| v.as_amount()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{CallFrame, EventLog, LogValue, Transfer, TxId, TxStatus, TxTrace};

    fn record(trace: TxTrace) -> TxRecord {
        TxRecord {
            id: TxId(0),
            block: 1,
            timestamp: 0,
            from: Address::from_u64(1),
            to: Address::from_u64(2),
            function: "attack".into(),
            status: TxStatus::Success,
            trace,
        }
    }

    fn frame(seq: u32, caller: Address, callee: Address, function: &str) -> CallFrame {
        CallFrame {
            seq,
            depth: 0,
            caller,
            callee,
            function: function.into(),
            value: 0,
        }
    }

    #[test]
    fn uniswap_signature() {
        let pair = Address::from_u64(10);
        let borrower = Address::from_u64(20);
        let mut trace = TxTrace::default();
        trace.frames.push(frame(0, borrower, pair, "swap"));
        trace.transfers.push(Transfer {
            seq: 1,
            sender: pair,
            receiver: borrower,
            amount: 777,
            token: TokenId::ETH,
        });
        trace.frames.push(frame(2, pair, borrower, "uniswapV2Call"));
        let loans = identify_flash_loans(&record(trace));
        assert_eq!(loans.len(), 1);
        assert_eq!(loans[0].provider, Provider::Uniswap);
        assert_eq!(loans[0].lender, pair);
        assert_eq!(loans[0].borrower, borrower);
        assert_eq!(loans[0].amount, Some(777));
    }

    #[test]
    fn plain_swap_is_not_a_flash_loan() {
        let pair = Address::from_u64(10);
        let trader = Address::from_u64(20);
        let mut trace = TxTrace::default();
        trace.frames.push(frame(0, trader, pair, "swap"));
        assert!(identify_flash_loans(&record(trace)).is_empty());
    }

    #[test]
    fn callback_without_prior_swap_is_not_a_flash_loan() {
        let pair = Address::from_u64(10);
        let borrower = Address::from_u64(20);
        let mut trace = TxTrace::default();
        trace.frames.push(frame(0, pair, borrower, "uniswapV2Call"));
        assert!(identify_flash_loans(&record(trace)).is_empty());
    }

    #[test]
    fn aave_signature() {
        let pool = Address::from_u64(30);
        let borrower = Address::from_u64(40);
        let mut trace = TxTrace::default();
        trace.frames.push(frame(0, borrower, pool, "flashLoan"));
        trace.logs.push(EventLog {
            seq: 1,
            emitter: pool,
            name: "FlashLoan".into(),
            params: vec![
                ("target".into(), LogValue::Addr(borrower)),
                ("reserve".into(), LogValue::Token(TokenId::from_index(3))),
                ("amount".into(), LogValue::Amount(5_000)),
            ],
        });
        let loans = identify_flash_loans(&record(trace));
        assert_eq!(loans.len(), 1);
        assert_eq!(loans[0].provider, Provider::Aave);
        assert_eq!(loans[0].token, Some(TokenId::from_index(3)));
        assert_eq!(loans[0].amount, Some(5_000));
    }

    #[test]
    fn aave_event_without_call_is_ignored() {
        let pool = Address::from_u64(30);
        let mut trace = TxTrace::default();
        trace.logs.push(EventLog {
            seq: 0,
            emitter: pool,
            name: "FlashLoan".into(),
            params: vec![],
        });
        assert!(identify_flash_loans(&record(trace)).is_empty());
    }

    #[test]
    fn dydx_needs_all_four_logs_in_order() {
        let solo = Address::from_u64(50);
        let borrower = Address::from_u64(60);
        let log = |seq: u32, name: &str| EventLog {
            seq,
            emitter: solo,
            name: name.into(),
            params: vec![
                ("account".into(), LogValue::Addr(borrower)),
                ("market".into(), LogValue::Token(TokenId::ETH)),
                ("amount".into(), LogValue::Amount(10_000)),
            ],
        };
        // complete sequence
        let mut trace = TxTrace::default();
        for (i, n) in ["LogOperation", "LogWithdraw", "LogCall", "LogDeposit"]
            .iter()
            .enumerate()
        {
            trace.logs.push(log(i as u32, n));
        }
        let loans = identify_flash_loans(&record(trace));
        assert_eq!(loans.len(), 1);
        assert_eq!(loans[0].provider, Provider::Dydx);
        assert_eq!(loans[0].borrower, borrower);
        assert_eq!(loans[0].amount, Some(10_000));

        // missing LogDeposit -> no loan
        let mut trace = TxTrace::default();
        for (i, n) in ["LogOperation", "LogWithdraw", "LogCall"].iter().enumerate() {
            trace.logs.push(log(i as u32, n));
        }
        assert!(identify_flash_loans(&record(trace)).is_empty());

        // out of order -> no loan
        let mut trace = TxTrace::default();
        for (i, n) in ["LogOperation", "LogCall", "LogWithdraw", "LogDeposit"]
            .iter()
            .enumerate()
        {
            trace.logs.push(log(i as u32, n));
        }
        assert!(identify_flash_loans(&record(trace)).is_empty());
    }

    #[test]
    fn multiple_providers_in_one_tx() {
        // Beanstalk-style: borrow from several providers at once.
        let pair = Address::from_u64(10);
        let pool = Address::from_u64(30);
        let borrower = Address::from_u64(40);
        let mut trace = TxTrace::default();
        trace.frames.push(frame(0, borrower, pair, "swap"));
        trace.frames.push(frame(1, pair, borrower, "uniswapV2Call"));
        trace.frames.push(frame(2, borrower, pool, "flashLoan"));
        trace.logs.push(EventLog {
            seq: 3,
            emitter: pool,
            name: "FlashLoan".into(),
            params: vec![("target".into(), LogValue::Addr(borrower))],
        });
        let loans = identify_flash_loans(&record(trace));
        assert_eq!(loans.len(), 2);
        let providers: Vec<_> = loans.iter().map(|l| l.provider).collect();
        assert!(providers.contains(&Provider::Uniswap));
        assert!(providers.contains(&Provider::Aave));
    }
}

//! Property tests for the transfer journal's total order — the substrate
//! guarantee the whole detector rests on (paper §V-A: the modified Geth
//! recovers the happened-before relationship between internal-transaction
//! Ether transfers and event-log ERC20 transfers).
//!
//! Three invariants, each over randomized transaction bodies:
//!
//! * every action stream of a trace (transfers, logs, frames) draws from
//!   one shared `seq` counter, so the merged stream has unique, and each
//!   per-stream sequence strictly increasing, positions;
//! * the journal records ETH and ERC20 transfers interleaved exactly in
//!   execution order, with the tuples `(sender, receiver, amount, token)`
//!   the paper's Fig. 6 names;
//! * `simplify` with `merge_tolerance = 0` neither drops nor reorders any
//!   transfer that crosses an application boundary — rules 1–3 only ever
//!   remove intra-app noise, WETH wrapping, and near-identical
//!   pass-throughs, never trading signal.

use proptest::prelude::*;

use ethsim::{Address, Chain, ChainConfig, TokenId};
use leishen::config::DetectorConfig;
use leishen::simplify::simplify;
use leishen::tagging::{Tag, TaggedTransfer};

/// One randomized action inside a transaction body, decoded from a raw
/// `(kind, from, to, amount)` tuple (the vendored proptest stand-in has
/// no `prop_oneof`/`prop_map`). `from`/`to` index a small account pool so
/// transfers collide on accounts often enough to exercise balance
/// bookkeeping.
#[derive(Clone, Copy, Debug)]
enum Op {
    Eth { from: usize, to: usize, amount: u128 },
    Token { from: usize, to: usize, amount: u128 },
    Mint { to: usize, amount: u128 },
    Log { emitter: usize },
}

/// Raw tuple drawn by the strategy: `(kind 0..4, from 0..3, to 0..3,
/// amount 1..1000)`.
type RawOp = (u8, usize, usize, u128);

fn decode(raw: RawOp) -> Op {
    let (kind, from, to, amount) = raw;
    match kind {
        0 => Op::Eth { from, to, amount },
        1 => Op::Token { from, to, amount },
        2 => Op::Mint { to, amount },
        _ => Op::Log { emitter: from },
    }
}

/// Executes `raw` ops in one transaction and returns the recorded trace
/// plus the transfer tuples expected from walking the ops in program
/// order.
fn run_ops(raw: &[RawOp]) -> (ethsim::TxTrace, Vec<(Address, Address, u128, TokenId)>) {
    let ops: Vec<Op> = raw.iter().copied().map(decode).collect();
    let mut chain = Chain::new(ChainConfig::default());
    let accounts: Vec<Address> = ["a", "b", "c"].iter().map(|s| chain.create_eoa(s)).collect();
    let tok = chain
        .state_mut()
        .register_token("TOK", 18, Address::from_seed("tok"));
    for &acct in &accounts {
        chain.state_mut().credit_eth(acct, 1_000_000).unwrap();
    }
    chain.state_mut().commit();
    // Token balances are seeded by a funding transaction — minting is a
    // journaled action, not a state poke.
    chain
        .execute(accounts[0], accounts[0], "fund", |ctx| {
            for &acct in &accounts {
                ctx.mint_token(tok, acct, 1_000_000)?;
            }
            Ok(())
        })
        .unwrap();

    // The expected journal, built while building the transaction: every
    // op that moves value appends its Fig. 6 tuple in program order.
    let mut expected = Vec::new();
    let tx = chain
        .execute(accounts[0], accounts[1], "journal", |ctx| {
            for op in ops {
                match op {
                    Op::Eth { from, to, amount } => {
                        ctx.transfer_eth(accounts[from], accounts[to], amount)?;
                        expected.push((accounts[from], accounts[to], amount, TokenId::ETH));
                    }
                    Op::Token { from, to, amount } => {
                        ctx.transfer_token(tok, accounts[from], accounts[to], amount)?;
                        expected.push((accounts[from], accounts[to], amount, tok));
                    }
                    Op::Mint { to, amount } => {
                        ctx.mint_token(tok, accounts[to], amount)?;
                        expected.push((Address::ZERO, accounts[to], amount, tok));
                    }
                    Op::Log { emitter } => {
                        ctx.emit_log(accounts[emitter], "Ping", vec![]);
                    }
                }
            }
            Ok(())
        })
        .unwrap();
    let trace = chain.replay(tx).unwrap().trace.clone();
    (trace, expected)
}

fn strictly_increasing(seqs: impl Iterator<Item = u32>) -> bool {
    let mut prev: Option<u32> = None;
    for s in seqs {
        if prev.is_some_and(|p| p >= s) {
            return false;
        }
        prev = Some(s);
    }
    true
}

proptest! {
    /// All three action streams draw from one counter: positions are
    /// unique across the merged stream and strictly increasing within
    /// each stream.
    #[test]
    fn trace_streams_share_one_strictly_increasing_counter(
        ops in prop::collection::vec((0u8..4, 0usize..3, 0usize..3, 1u128..1_000), 1..60)
    ) {
        let (trace, _) = run_ops(&ops);
        prop_assert!(strictly_increasing(trace.transfers.iter().map(|t| t.seq)));
        prop_assert!(strictly_increasing(trace.logs.iter().map(|l| l.seq)));
        prop_assert!(strictly_increasing(trace.frames.iter().map(|f| f.seq)));

        let mut all: Vec<u32> = trace
            .transfers
            .iter()
            .map(|t| t.seq)
            .chain(trace.logs.iter().map(|l| l.seq))
            .chain(trace.frames.iter().map(|f| f.seq))
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n, "seq positions must be unique across streams");
    }

    /// The journal is the execution order: ETH and ERC20 transfers land
    /// interleaved exactly as the body performed them, as the Fig. 6
    /// tuples `(sender, receiver, amount, token)`.
    #[test]
    fn journal_matches_execution_order(
        ops in prop::collection::vec((0u8..4, 0usize..3, 0usize..3, 1u128..1_000), 1..60)
    ) {
        let (trace, expected) = run_ops(&ops);
        let journal: Vec<_> = trace
            .transfers
            .iter()
            .map(|t| (t.sender, t.receiver, t.amount, t.token))
            .collect();
        prop_assert_eq!(journal, expected);
    }

    /// With `merge_tolerance = 0` the pass-through merge can never fire
    /// (no two amounts are *strictly* within a zero tolerance), so
    /// simplification over app-boundary transfers is exactly the rule-1
    /// intra-app filter: every cross-app transfer survives, in order,
    /// amount untouched.
    #[test]
    fn zero_tolerance_simplify_keeps_every_cross_app_transfer(
        legs in prop::collection::vec((0u64..4, 0u64..4, 1u128..1_000, 0u8..2), 1..60)
    ) {
        let token_a = TokenId::from_index(1);
        let token_b = TokenId::from_index(2);
        let tagged: Vec<TaggedTransfer> = legs
            .iter()
            .enumerate()
            .map(|(i, &(s, r, amount, tok))| TaggedTransfer {
                seq: i as u32,
                sender: Tag::Root(Address::from_u64(100 + s)),
                receiver: Tag::Root(Address::from_u64(100 + r)),
                amount,
                token: if tok == 0 { token_a } else { token_b },
            })
            .collect();
        let config = DetectorConfig {
            merge_tolerance: 0.0,
            ..DetectorConfig::paper()
        };
        let out = simplify(&tagged, None, &config);
        let expected: Vec<TaggedTransfer> = tagged
            .iter()
            .filter(|t| t.sender != t.receiver)
            .cloned()
            .collect();
        prop_assert_eq!(out, expected);
    }

    /// Under any tolerance, simplification's output sequence numbers are
    /// a subsequence of the input's — transfers are only removed or
    /// absorbed into an *earlier* survivor, never reordered.
    #[test]
    fn simplify_never_reorders(
        legs in prop::collection::vec((0u64..4, 0u64..4, 1u128..1_000, 0u8..2), 1..60),
        tolerance in 0.0f64..0.5
    ) {
        let tagged: Vec<TaggedTransfer> = legs
            .iter()
            .enumerate()
            .map(|(i, &(s, r, amount, tok))| TaggedTransfer {
                seq: i as u32,
                sender: Tag::Root(Address::from_u64(100 + s)),
                receiver: Tag::Root(Address::from_u64(100 + r)),
                amount,
                token: TokenId::from_index(1 + u32::from(tok)),
            })
            .collect();
        let config = DetectorConfig {
            merge_tolerance: tolerance,
            ..DetectorConfig::paper()
        };
        let out = simplify(&tagged, None, &config);
        prop_assert!(strictly_increasing(out.iter().map(|t| t.seq)));
        let input_seqs: std::collections::HashSet<u32> = tagged.iter().map(|t| t.seq).collect();
        prop_assert!(out.iter().all(|t| input_seqs.contains(&t.seq)));
    }
}

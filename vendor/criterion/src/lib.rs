//! Offline stand-in for `criterion`.
//!
//! A real (if minimal) benchmark harness behind criterion's API surface:
//! [`criterion_group!`]/[`criterion_main!`], the [`Criterion`] builder
//! (`sample_size`/`warm_up_time`/`measurement_time`), benchmark groups
//! with [`Throughput`], and [`Bencher::iter`]/[`Bencher::iter_batched`].
//!
//! Each benchmark warms up for the configured time, then collects
//! `sample_size` samples (each averaging enough iterations to fill its
//! share of the measurement window) and prints mean / p50 / p95 per
//! iteration, plus derived throughput when configured. No plotting, no
//! statistics beyond percentiles, no baseline persistence.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level harness state and configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark (min 2).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement window split across samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies CLI arguments (`cargo bench -- <filter>`); recognizes a
    /// bare substring filter and ignores harness flags it doesn't model.
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args.into_iter().find(|a| !a.starts_with('-'));
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, None, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Prints the closing line (upstream prints a summary; the stand-in
    /// keeps the hook so generated `main`s stay source-compatible).
    pub fn final_summary(&self) {
        println!("(criterion stand-in: benchmarks complete)");
    }

    fn run_one<F>(&self, id: &str, throughput: Option<&Throughput>, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id, throughput);
    }
}

/// Unit for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per routine call.
    Elements(u64),
    /// Bytes processed per routine call.
    Bytes(u64),
}

/// A group of related benchmarks sharing throughput configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-call throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput.as_ref(), &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Batch-size hint for [`Bencher::iter_batched`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per sample.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Drives the timed routine.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, also used to estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters as f64);
        }
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            std::hint::black_box(routine(input));
            warm_iters += 1;
        }

        self.samples_ns.clear();
        let iters_per_sample = (warm_iters.max(1)
            * self.measurement_time.as_millis().max(1) as u64
            / self.warm_up_time.as_millis().max(1) as u64
            / self.sample_size as u64)
            .clamp(1, 100_000);
        for _ in 0..self.sample_size {
            let mut total_ns = 0u128;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                total_ns += start.elapsed().as_nanos();
            }
            self.samples_ns.push(total_ns as f64 / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str, throughput: Option<&Throughput>) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples collected)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let p50 = sorted[sorted.len() / 2];
        let p95 = sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)];
        print!(
            "{id:<40} mean {:>12}  p50 {:>12}  p95 {:>12}",
            fmt_ns(mean),
            fmt_ns(p50),
            fmt_ns(p95)
        );
        match throughput {
            Some(Throughput::Elements(n)) => {
                print!("  {:>12.0} elem/s", *n as f64 / (mean / 1e9));
            }
            Some(Throughput::Bytes(n)) => {
                print!("  {:>12.0} B/s", *n as f64 / (mean / 1e9));
            }
            None => {}
        }
        println!();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, as in upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_with_throughput_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(6));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("t", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn format_is_scaled() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}

//! Cross-crate resilience integration: the full 22-attack corpus under
//! fault injection.
//!
//! The unit tests in `leishen::resilience` and `leishen::scan` prove the
//! quarantine machinery on synthetic worlds; these tests prove the
//! properties the chaos bench gates on, against the *real* seed corpus:
//!
//! * genuine `ethsim` histories always validate clean — the fault
//!   injector's ground-truth invariant list has no false positives;
//! * the resilient scan is verdict-identical to the legacy scan on clean
//!   input, in every pipeline configuration;
//! * a mixed campaign (corrupted inputs + induced stage panics) never
//!   loses a transaction: corrupted records quarantine with
//!   machine-readable reasons, clean records keep their ground-truth
//!   verdicts — recall on uncorrupted attacks stays 100%;
//! * a worker panic in the legacy (non-resilient) scan propagates as a
//!   catchable panic on the caller, not a process abort.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ethsim::{validate_record, TxId, TxRecord};
use leishen::resilience::{
    FaultInjector, FaultPlan, InducedFault, PlannedFault, Verdict,
};
use leishen::telemetry::{NoopSink, RecordingSink, Stage};
use leishen::trace::{FlightRecorder, NoopTracer, Reason};
use leishen::{install_quiet_hook, ResilienceConfig, TagCache};
use leishen_scenarios::chaos::apply_input_faults;

mod common;
use common::{engines, paper_detector, seed_corpus};

#[test]
fn genuine_corpus_has_zero_validator_violations() {
    let seeds = seed_corpus();
    for tx in &seeds.case.txs {
        let violations = validate_record(tx);
        assert!(
            violations.is_empty(),
            "tx#{} fails validation: {violations:?}",
            tx.id.0
        );
    }
}

#[test]
fn resilient_scan_is_verdict_identical_to_legacy_on_clean_corpus() {
    let seeds = seed_corpus();
    let refs: Vec<&TxRecord> = seeds.case.txs.iter().collect();
    let view = seeds.case.view();
    let detector = paper_detector();
    let policy = ResilienceConfig::new();

    for engine in engines() {
        let legacy = engine.scan(&detector, &refs, &view);
        let resilient =
            engine.scan_resilient(&detector, &refs, &view, &TagCache::new(), &policy);
        assert!(resilient.is_fully_analyzed());
        assert_eq!(resilient.stats.quarantined, 0);
        let analyses: Vec<_> = resilient.analyses().collect();
        assert_eq!(analyses.len(), legacy.len());
        for (i, (got, want)) in analyses.iter().zip(&legacy).enumerate() {
            assert_eq!(*got, want, "verdict diverged at index {i}");
        }
    }
}

#[test]
fn chaos_campaign_quarantines_corruption_and_keeps_recall() {
    install_quiet_hook();
    let seeds = seed_corpus();
    let detector = paper_detector();

    // 10% fault rate at the shared suite seed — the acceptance point
    // the bench gates on. The seed appears in every failure message so
    // a CI log line reproduces the exact fault assignment.
    let chaos_seed = common::DEFAULT_SEED;
    let plan = FaultPlan::new(chaos_seed, 100);
    let assignment = plan.assign(seeds.case.txs.len());
    let mut txs = seeds.case.txs.clone();
    let applied = apply_input_faults(&mut txs, &assignment);
    let induced: Vec<(TxId, InducedFault)> = assignment
        .iter()
        .zip(&txs)
        .filter_map(|(slot, tx)| match slot {
            Some(PlannedFault::Induced(f)) => Some((tx.id, *f)),
            _ => None,
        })
        .collect();
    assert!(
        applied.iter().any(Option::is_some),
        "a 10% plan (seed={chaos_seed}) over {} txs should corrupt at least one record",
        txs.len()
    );

    let refs: Vec<&TxRecord> = txs.iter().collect();
    let view = seeds.case.view();
    for engine in engines() {
        let injector = FaultInjector::new(RecordingSink::new(), induced.iter().copied());
        let recorder = FlightRecorder::new();
        let scan = engine.scan_resilient_with(
            &detector,
            &refs,
            &view,
            &TagCache::new(),
            &ResilienceConfig::new(),
            &injector,
            &recorder,
        );

        // Survival: one verdict per input, always.
        assert_eq!(scan.verdicts.len(), txs.len());

        for (i, verdict) in scan.verdicts.iter().enumerate() {
            match (verdict, applied[i]) {
                (Verdict::Indeterminate(q), Some(_)) => {
                    // Containment: machine-readable reason + provenance.
                    assert!(
                        q.reason().starts_with("invalid_input:"),
                        "tx#{}: {}",
                        q.tx.0,
                        q.reason()
                    );
                    let trace = recorder.find(q.tx).expect("quarantine is traced");
                    assert!(trace
                        .decision
                        .reasons
                        .iter()
                        .any(|r| matches!(r, Reason::Indeterminate { .. })));
                }
                (Verdict::Indeterminate(q), None) => {
                    panic!("uncorrupted tx#{} quarantined under seed={chaos_seed}: {}", q.tx.0, q.reason())
                }
                (Verdict::Analyzed(_), Some(kind)) => {
                    panic!("corrupted tx index {i} ({}) escaped quarantine (seed={chaos_seed})", kind.name())
                }
                (Verdict::Analyzed(a), None) => {
                    // Recall under fire: ground truth exactly preserved.
                    assert_eq!(
                        a.is_attack(),
                        seeds.expect[i].flagged,
                        "clean tx index {i} verdict changed under faults (seed={chaos_seed})"
                    );
                }
            }
        }

        // Telemetry agrees with the verdict stream.
        let quarantined = scan.verdicts.iter().filter(|v| v.is_indeterminate()).count();
        assert_eq!(scan.stats.quarantined, quarantined);
        assert_eq!(injector.inner().counter_totals().quarantined, quarantined as u64);
    }
}

#[test]
fn legacy_scan_worker_panic_is_catchable_not_fatal() {
    install_quiet_hook();
    let seeds = seed_corpus();
    let refs: Vec<&TxRecord> = seeds.case.txs.iter().collect();
    let view = seeds.case.view();
    let detector = paper_detector();
    // Target a ground-truth attack: it definitely reaches the tagging
    // stage, so the induced panic definitely fires.
    let target = seeds
        .expect
        .iter()
        .position(|e| e.flagged)
        .expect("corpus has attacks");
    let target_id = seeds.case.txs[target].id;

    for engine in engines() {
        let injector = FaultInjector::new(
            NoopSink,
            [(target_id, InducedFault::Panic { stage: Stage::Tagging })],
        );
        let cache = TagCache::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            engine.scan_instrumented(&detector, &refs, &view, &cache, &injector, &NoopTracer)
        }));
        assert!(result.is_err(), "the injected panic must propagate");
        assert_eq!(injector.panics_fired(), 1);
    }
}

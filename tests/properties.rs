//! Property-based tests over the substrate and detector invariants
//! (proptest). These are the invariants DESIGN.md commits to:
//!
//! * amount math never panics and satisfies algebraic identities,
//! * the constant-product invariant never decreases across random swaps,
//! * transaction revert restores the world state exactly,
//! * account tagging is independent of insertion order,
//! * simplification preserves per-identity net flows (absent WETH) and is
//!   idempotent,
//! * pattern matches survive irrelevant-trade interleaving,
//! * calendar conversion round-trips.

use proptest::prelude::*;

use ethsim::calendar::Date;
use ethsim::{math, Address, Chain, ChainConfig, CreationIndex, CreationRecord, TokenId};
use leishen::config::DetectorConfig;
use leishen::simplify::{merge_inter_app, remove_intra_app};
use leishen::tagging::{Tag, TagMap, TaggedTransfer};
use leishen::trades::{identify_trades, Trade, TradeKind, TradeSide};
use leishen::tagging::tag_of;
use leishen::{patterns, Labels, TagCache};

proptest! {
    #[test]
    fn mul_div_identity(a in 0u128..u128::MAX, b in 1u128..u128::MAX) {
        // a * b / b == a, whatever the magnitudes.
        prop_assert_eq!(math::mul_div(a, b, b).unwrap(), a);
    }

    #[test]
    fn mul_div_floor_bound(a in 0u128..1u128<<100, b in 0u128..1u128<<100, d in 1u128..1u128<<90) {
        let q = math::mul_div(a, b, d);
        if let Ok(q) = q {
            // q*d <= a*b < (q+1)*d  (floor property), checked via mul_div
            // round-trip: (q*d)/b <= a when b > 0.
            if b > 0 && q > 0 {
                let back = math::mul_div(q, d, b).unwrap();
                prop_assert!(back <= a);
            }
        }
    }

    #[test]
    fn isqrt_is_floor_sqrt(n in 0u128..u128::MAX) {
        let r = math::isqrt(n);
        prop_assert!(r.checked_mul(r).map(|v| v <= n).unwrap_or(false) || r == 0 && n == 0);
        if let Some(next) = r.checked_add(1) {
            prop_assert!(next.checked_mul(next).map(|v| v > n).unwrap_or(true));
        }
    }

    #[test]
    fn sqrt_mul_floor(a in 0u128..1u128<<120, b in 0u128..1u128<<120) {
        let r = math::sqrt_mul(a, b);
        // r² ≤ a·b — verified in 256-bit space via mul_div: if r > 0 then
        // (a·b)/r ≥ r.
        if r > 0 {
            let q = math::mul_div(a, b, r).unwrap();
            prop_assert!(q >= r);
        }
    }

    #[test]
    fn calendar_roundtrip(days in 0u64..40_000) {
        let ts = days * 86_400;
        let d = Date::from_unix(ts);
        prop_assert_eq!(d.to_unix(), ts);
        prop_assert!((1..=12).contains(&d.month));
        prop_assert!((1..=31).contains(&d.day));
    }

    #[test]
    fn revert_restores_state_exactly(
        ops in prop::collection::vec((0u8..4, 0u128..1_000_000), 1..40)
    ) {
        let mut chain = Chain::new(ChainConfig::default());
        let a = chain.create_eoa("a");
        let b = chain.create_eoa("b");
        chain.state_mut().credit_eth(a, 10_000_000).unwrap();
        let tok = chain.state_mut().register_token("T", 18, Address::from_seed("t"));
        chain.state_mut().commit();

        let before_a = chain.state().eth_balance(a);
        let before_b = chain.state().eth_balance(b);
        let before_supply = chain.state().total_supply(tok);

        // A transaction that performs arbitrary ops then always reverts.
        let tx = chain.execute(a, b, "chaos", |ctx| {
            for (op, amt) in &ops {
                let amt = *amt;
                match op {
                    0 => { let _ = ctx.transfer_eth(a, b, amt % 1000); }
                    1 => { let _ = ctx.mint_token(tok, b, amt); }
                    2 => { let _ = ctx.burn_token(tok, b, amt); }
                    _ => {
                        let c = ctx.create_contract(a)?;
                        ctx.sstore(c, ethsim::SKey::Field(0), amt);
                    }
                }
            }
            Err(ethsim::SimError::revert("always"))
        }).unwrap();

        prop_assert!(!chain.replay(tx).unwrap().status.is_success());
        prop_assert_eq!(chain.state().eth_balance(a), before_a);
        prop_assert_eq!(chain.state().eth_balance(b), before_b);
        prop_assert_eq!(chain.state().balance(tok, b), 0);
        prop_assert_eq!(chain.state().total_supply(tok), before_supply);
    }

    #[test]
    fn constant_product_never_decreases(
        swaps in prop::collection::vec((any::<bool>(), 1u64..1_000), 1..25)
    ) {
        use defi::{LabelService, UniswapV2Factory, UniswapV2Pair};
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("d");
        let trader = chain.create_eoa("t");
        let factory = UniswapV2Factory::deploy_canonical(&mut chain, &mut labels, deployer).unwrap();
        let mut tok = None;
        chain.execute(deployer, deployer, "tok", |ctx| {
            let c = ctx.create_contract(deployer)?;
            tok = Some(ctx.register_token("X", 18, c));
            Ok(())
        }).unwrap();
        let tok = tok.unwrap();
        let pair = UniswapV2Pair::deploy(&mut chain, &factory, TokenId::ETH, tok, "LP").unwrap();
        let e15 = 10u128.pow(15);
        chain.state_mut().credit_eth(trader, 10_000_000 * e15).unwrap();
        chain.state_mut().credit_eth(deployer, 10_000_000 * e15).unwrap();
        chain.execute(deployer, pair.address, "seed", |ctx| {
            ctx.mint_token(tok, deployer, 2_000_000 * e15)?;
            ctx.mint_token(tok, trader, 2_000_000 * e15)?;
            pair.add_liquidity(ctx, deployer, 1_000_000 * e15, 1_000_000 * e15)?;
            Ok(())
        }).unwrap();

        let mut k_before = 0f64;
        chain.execute(trader, pair.address, "k0", |ctx| {
            let (r0, r1) = pair.reserves(ctx);
            k_before = r0 as f64 * r1 as f64;
            Ok(())
        }).unwrap();

        chain.execute(trader, pair.address, "swaps", |ctx| {
            for (dir, amt) in &swaps {
                let amount = *amt as u128 * e15;
                let token_in = if *dir { TokenId::ETH } else { tok };
                // ignore failures from exhausted balances
                let _ = pair.swap_exact_in(ctx, trader, token_in, amount, 0);
            }
            Ok(())
        }).unwrap();

        let mut k_after = 0f64;
        chain.execute(trader, pair.address, "k1", |ctx| {
            let (r0, r1) = pair.reserves(ctx);
            k_after = r0 as f64 * r1 as f64;
            Ok(())
        }).unwrap();
        prop_assert!(k_after >= k_before * 0.999_999, "k {k_before} -> {k_after}");
    }

    #[test]
    fn tagging_is_order_independent(seed in 0u64..1_000) {
        // A random creation forest + labels; TagMap::build must not depend
        // on the iteration order of addresses.
        let mut records = Vec::new();
        let mut labels = Labels::new();
        let mut addrs = Vec::new();
        for i in 0..20u64 {
            let a = Address::from_u64(1000 + i);
            addrs.push(a);
            if i > 0 {
                let parent = Address::from_u64(1000 + (seed + i) % i);
                records.push(CreationRecord { creator: parent, created: a, block: 0 });
            }
            if (seed + i) % 5 == 0 {
                labels.set(a, format!("App{}", (seed + i) % 3));
            }
        }
        let idx = CreationIndex::new(&records);
        let forward = TagMap::build(addrs.clone(), &labels, &idx);
        let mut reversed_addrs = addrs.clone();
        reversed_addrs.reverse();
        let reversed = TagMap::build(reversed_addrs, &labels, &idx);
        for a in addrs {
            prop_assert_eq!(forward.get(a), reversed.get(a));
        }
    }

    #[test]
    fn tag_cache_agrees_with_uncached_resolution(seed in 0u64..1_000) {
        // Arbitrary creation forest + labels (same family of forests as
        // `tagging_is_order_independent`): the shared TagCache must be a
        // pure memo over `tag_of` — every resolution, miss or hit,
        // identical to a fresh creation-tree walk.
        let mut records = Vec::new();
        let mut labels = Labels::new();
        let mut addrs = vec![Address::ZERO];
        for i in 0..20u64 {
            let a = Address::from_u64(1000 + i);
            addrs.push(a);
            if i > 0 {
                let parent = Address::from_u64(1000 + (seed + i) % i);
                records.push(CreationRecord { creator: parent, created: a, block: 0 });
            }
            if (seed + i) % 5 == 0 {
                labels.set(a, format!("App{}", (seed + i) % 3));
            }
        }
        let idx = CreationIndex::new(&records);
        let cache = TagCache::new();
        // Two passes: the first fills the cache (misses), the second
        // answers from it (hits); both must agree with the uncached walk.
        for pass in 0..2 {
            for &a in &addrs {
                prop_assert_eq!(
                    cache.resolve(a, &labels, &idx),
                    tag_of(a, &labels, &idx),
                    "pass {} address {:?}", pass, a
                );
            }
        }
        // Second-pass lookups were all cache hits (the zero address
        // bypasses the table entirely).
        prop_assert_eq!(cache.hits(), addrs.len() as u64 - 1);
        prop_assert_eq!(cache.misses(), addrs.len() as u64 - 1);
    }

    #[test]
    fn merge_is_idempotent(
        amounts in prop::collection::vec(1u128..1_000_000, 2..20),
        seed in 0u64..100
    ) {
        // Arbitrary chains of transfers between a handful of identities.
        let tags: Vec<Tag> = (0..5).map(|i| Tag::App(format!("A{i}").into())).collect();
        let list: Vec<TaggedTransfer> = amounts.iter().enumerate().map(|(i, amt)| {
            let s = ((seed as usize) + i) % tags.len();
            let r = ((seed as usize) + i + 1 + i % 3) % tags.len();
            TaggedTransfer {
                seq: i as u32,
                sender: tags[s].clone(),
                receiver: tags[r].clone(),
                amount: *amt,
                token: TokenId::from_index((i % 3) as u32),
            }
        }).filter(|t| t.sender != t.receiver).collect();
        let once = merge_inter_app(&list, 0.001);
        let twice = merge_inter_app(&once, 0.001);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn full_simplification_is_idempotent(
        amounts in prop::collection::vec(1u128..1_000_000, 2..25),
        seed in 0u64..100
    ) {
        use leishen::simplify::simplify;
        let mut tags: Vec<Tag> = (0..4).map(|i| Tag::App(format!("A{i}").into())).collect();
        tags.push(Tag::App("Wrapped Ether".into()));
        tags.push(Tag::BlackHole);
        let list: Vec<TaggedTransfer> = amounts.iter().enumerate().map(|(i, amt)| {
            let s = ((seed as usize) + i * 3) % tags.len();
            let r = ((seed as usize) + i * 5 + 1) % tags.len();
            TaggedTransfer {
                seq: i as u32,
                sender: tags[s].clone(),
                receiver: tags[r].clone(),
                amount: *amt,
                token: TokenId::from_index((i % 3) as u32),
            }
        }).collect();
        let config = DetectorConfig::paper();
        let weth = Some(TokenId::from_index(2));
        let once = simplify(&list, weth, &config);
        let twice = simplify(&once, weth, &config);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn intra_app_removal_preserves_cross_identity_nets(
        amounts in prop::collection::vec(1u128..1_000_000, 2..30),
        seed in 0u64..100
    ) {
        let tags: Vec<Tag> = (0..4).map(|i| Tag::App(format!("A{i}").into())).collect();
        let list: Vec<TaggedTransfer> = amounts.iter().enumerate().map(|(i, amt)| {
            let s = ((seed as usize) + i) % tags.len();
            let r = ((seed as usize) * 3 + i * 7) % tags.len();
            TaggedTransfer {
                seq: i as u32,
                sender: tags[s].clone(),
                receiver: tags[r].clone(),
                amount: *amt,
                token: TokenId::ETH,
            }
        }).collect();
        let net = |transfers: &[TaggedTransfer], tag: &Tag| -> i128 {
            transfers.iter().map(|t| {
                let mut v = 0i128;
                if &t.receiver == tag { v += t.amount as i128; }
                if &t.sender == tag { v -= t.amount as i128; }
                v
            }).sum()
        };
        let cleaned = remove_intra_app(&list);
        for tag in &tags {
            prop_assert_eq!(net(&list, tag), net(&cleaned, tag));
        }
    }

    #[test]
    fn patterns_survive_irrelevant_interleaving(noise_count in 0usize..10) {
        // A fixed SBS instance with `noise_count` unrelated trades mixed in
        // between must still (and only) match SBS on the target pair.
        let e = Tag::App("E".into());
        let v = Tag::App("V".into());
        let noise_seller = Tag::App("N".into());
        let mk = |seq: u32, sells: (u128, u32), buys: (u128, u32)| Trade {
            seq,
            kind: TradeKind::Swap,
            buyer: e.clone(),
            seller: v.clone(),
            sells: TradeSide::one(sells.0, TokenId::from_index(sells.1)),
            buys: TradeSide::one(buys.0, TokenId::from_index(buys.1)),
        };
        let mut trades = vec![
            mk(0, (100_000, 0), (100, 1)),  // buy 100 @1000
            mk(10, (20_000, 0), (10, 1)),   // pump @2000
            mk(20, (100, 1), (150_000, 0)), // sell 100 @1500
        ];
        for i in 0..noise_count {
            trades.push(Trade {
                seq: 1 + i as u32, // interleaved between t1 and t2
                kind: TradeKind::Swap,
                buyer: e.clone(),
                seller: noise_seller.clone(),
                sells: TradeSide::one(7 + i as u128, TokenId::from_index(5)),
                buys: TradeSide::one(13 + i as u128, TokenId::from_index(6 + (i % 2) as u32)),
            });
        }
        let matches = patterns::match_all(&trades, &e, &DetectorConfig::paper());
        prop_assert!(
            matches.iter().any(|m| m.kind == patterns::PatternKind::Sbs
                && m.target_token == TokenId::from_index(1)),
            "{matches:?}"
        );
        prop_assert!(!matches.iter().any(|m| m.kind == patterns::PatternKind::Krp));
    }

    #[test]
    fn trade_identification_never_invents_value(
        amounts in prop::collection::vec(1u128..1_000_000, 2..20),
        seed in 0u64..50
    ) {
        // Every trade leg's amounts must come from actual transfers.
        let tags: Vec<Tag> = (0..4).map(|i| Tag::App(format!("A{i}").into())).collect();
        let list: Vec<TaggedTransfer> = amounts.iter().enumerate().map(|(i, amt)| {
            let s = ((seed as usize) + i) % tags.len();
            let r = ((seed as usize) + i * 5 + 1) % tags.len();
            TaggedTransfer {
                seq: i as u32,
                sender: tags[s].clone(),
                receiver: tags[r].clone(),
                amount: *amt,
                token: TokenId::from_index((i % 4) as u32),
            }
        }).filter(|t| t.sender != t.receiver).collect();
        let trades = identify_trades(&list);
        let transfer_amounts: std::collections::HashSet<u128> =
            list.iter().map(|t| t.amount).collect();
        for trade in &trades {
            for (amt, _) in trade.sells.iter().chain(trade.buys.iter()) {
                prop_assert!(transfer_amounts.contains(amt));
            }
        }
    }
}

// Properties of the fuzzing module's renaming operator: renaming an
// entire case is a bijection whose image resolves to the same tags, and
// neither the shared tag cache nor simplification can tell renamed
// histories apart structurally.
proptest! {
    #[test]
    fn renaming_preserves_tags_and_cache_coherence(
        seed in 0u64..500,
        salt in 0u64..1_000
    ) {
        use leishen::fuzz::{rename_case, FuzzCase};

        // The same random creation-forest family the tagging properties
        // use, packaged as a (transaction-free) fuzz case.
        let mut records = Vec::new();
        let mut labels = Labels::new();
        let mut addrs = Vec::new();
        for i in 0..20u64 {
            let a = Address::from_u64(1000 + i);
            addrs.push(a);
            if i > 0 {
                let parent = Address::from_u64(1000 + (seed + i) % i);
                records.push(CreationRecord { creator: parent, created: a, block: 0 });
            }
            if (seed + i) % 5 == 0 {
                labels.set(a, format!("App{}", (seed + i) % 3));
            }
        }
        let case = FuzzCase {
            txs: Vec::new(),
            labels,
            creations: records,
            weth: None,
        };
        let (renamed, pairs) = rename_case(&case, salt);

        // The mapping is an injection into fresh, non-zero addresses.
        let mut fresh = std::collections::HashSet::new();
        for (old, new) in &pairs {
            prop_assert!(!new.is_zero());
            prop_assert!(fresh.insert(*new), "address {new:?} assigned twice");
            prop_assert_ne!(old, new);
        }

        // Tag isomorphism: every renamed address carries the tag of its
        // pre-image with embedded root addresses mapped through the same
        // bijection (label strings are preserved, only addresses move).
        let addr_map: std::collections::HashMap<Address, Address> =
            pairs.iter().copied().collect();
        let rename_tag = |t: Tag| -> Tag {
            match t {
                Tag::Root(a) => Tag::Root(addr_map.get(&a).copied().unwrap_or(a)),
                Tag::Unknown(a) => Tag::Unknown(addr_map.get(&a).copied().unwrap_or(a)),
                other => other,
            }
        };
        let old_idx = CreationIndex::new(&case.creations);
        let new_idx = CreationIndex::new(&renamed.creations);
        for (old, new) in &pairs {
            prop_assert_eq!(
                rename_tag(tag_of(*old, &case.labels, &old_idx)),
                tag_of(*new, &renamed.labels, &new_idx),
                "tag drifted across renaming for {:?} -> {:?}", old, new
            );
        }

        // Cache coherence on the renamed forest: the shared TagCache is
        // still a pure memo over `tag_of` after renaming, on misses and
        // hits alike.
        let cache = TagCache::new();
        for pass in 0..2 {
            for (_, new) in &pairs {
                prop_assert_eq!(
                    cache.resolve(*new, &renamed.labels, &new_idx),
                    tag_of(*new, &renamed.labels, &new_idx),
                    "pass {} address {:?}", pass, new
                );
            }
        }
    }

    #[test]
    fn simplification_commutes_with_token_renaming(
        amounts in prop::collection::vec(1u128..1_000_000, 2..25),
        seed in 0u64..100,
        salt in 1u32..50
    ) {
        use leishen::simplify::simplify;

        // The same transfer family as `full_simplification_is_idempotent`,
        // plus a token bijection shaped like the renaming operator's (ETH
        // fixed, everything else moved past the highest observed index).
        let mut tags: Vec<Tag> = (0..4).map(|i| Tag::App(format!("A{i}").into())).collect();
        tags.push(Tag::App("Wrapped Ether".into()));
        tags.push(Tag::BlackHole);
        let list: Vec<TaggedTransfer> = amounts.iter().enumerate().map(|(i, amt)| {
            let s = ((seed as usize) + i * 3) % tags.len();
            let r = ((seed as usize) + i * 5 + 1) % tags.len();
            TaggedTransfer {
                seq: i as u32,
                sender: tags[s].clone(),
                receiver: tags[r].clone(),
                amount: *amt,
                token: TokenId::from_index((i % 3) as u32),
            }
        }).collect();
        let remap = |t: TokenId| -> TokenId {
            if t.is_eth() { t } else { TokenId::from_index(t.index() as u32 + 3 + salt) }
        };
        let renamed: Vec<TaggedTransfer> = list.iter().map(|t| TaggedTransfer {
            token: remap(t.token),
            ..t.clone()
        }).collect();

        let config = DetectorConfig::paper();
        let weth = Some(TokenId::from_index(2));
        let renamed_weth = weth.map(remap);

        // Idempotence survives the renaming...
        let once = simplify(&renamed, renamed_weth, &config);
        let twice = simplify(&once, renamed_weth, &config);
        prop_assert_eq!(&once, &twice);

        // ...and simplification commutes with it: renaming the simplified
        // original yields the simplified renamed history.
        let baseline: Vec<TaggedTransfer> = simplify(&list, weth, &config)
            .iter()
            .map(|t| TaggedTransfer { token: remap(t.token), ..t.clone() })
            .collect();
        prop_assert_eq!(once, baseline);
    }
}

// Scheduling identity: the wave-scheduled multi-worker engine is a pure
// reordering of per-transaction work, so on ANY corpus — whatever the
// creation forest, transfer graph, or label placement — it must produce
// byte-identical analyses to a serial scan, as must the naive
// fixed-chunking engine it replaced. The same holds on the resilient
// path with corrupted records present: scheduling must not change which
// transactions get quarantined, nor the analyses of the healthy ones.
proptest! {
    #[test]
    fn scheduled_scan_matches_serial_on_arbitrary_corpora(
        seed in 0u64..500,
        specs in prop::collection::vec(
            (0usize..20, 0usize..20, 1u128..1_000_000, 0u32..3),
            1..32
        ),
    ) {
        use ethsim::{Transfer, TxId, TxRecord, TxStatus, TxTrace};
        use leishen::{ChainView, LeiShen, ResilienceConfig, ScanEngine};

        // The random creation-forest family the tagging properties use.
        let mut records = Vec::new();
        let mut labels = Labels::new();
        let mut addrs = Vec::new();
        for i in 0..20u64 {
            let a = Address::from_u64(1000 + i);
            addrs.push(a);
            if i > 0 {
                let parent = Address::from_u64(1000 + (seed + i) % i);
                records.push(CreationRecord { creator: parent, created: a, block: 0 });
            }
            if (seed + i) % 5 == 0 {
                labels.set(a, format!("App{}", (seed + i) % 3));
            }
        }
        let view = ChainView::new(&labels, &records, None);

        let txs: Vec<TxRecord> = specs.iter().enumerate().map(|(i, &(s, r, amount, tok))| {
            TxRecord {
                id: TxId(i as u64 + 1),
                block: i as u64 / 4,
                timestamp: 1_600_000_000 + i as u64,
                from: addrs[s],
                to: addrs[r],
                function: format!("f{i}"),
                status: TxStatus::Success,
                trace: TxTrace {
                    transfers: vec![
                        Transfer {
                            seq: 0,
                            sender: addrs[s],
                            receiver: addrs[r],
                            amount,
                            token: TokenId::from_index(tok),
                        },
                        Transfer {
                            seq: 1,
                            sender: addrs[r],
                            receiver: addrs[(s + r) % addrs.len()],
                            amount: amount / 2 + 1,
                            token: TokenId::ETH,
                        },
                    ],
                    ..TxTrace::default()
                },
            }
        }).collect();
        let refs: Vec<&TxRecord> = txs.iter().collect();

        let detector = LeiShen::new(DetectorConfig::paper());
        let serial = ScanEngine::new(1);
        // Small chunk hint + lifted hardware cap so the threaded,
        // wave-planned path genuinely runs even on single-core CI.
        let scheduled = ScanEngine::new(4).with_chunk_size(2).allow_oversubscription();
        let naive = ScanEngine::new(4)
            .with_chunk_size(2)
            .allow_oversubscription()
            .with_naive_chunking();

        let dump = |analyses: &[leishen::Analysis]| -> Vec<String> {
            analyses.iter().map(|a| format!("{a:?}")).collect()
        };
        let want = dump(&serial.scan(&detector, &refs, &view));
        prop_assert_eq!(&dump(&scheduled.scan(&detector, &refs, &view)), &want);
        prop_assert_eq!(&dump(&naive.scan(&detector, &refs, &view)), &want);

        // Resilient path: corrupt every fifth record's journal (a seq far
        // past the contiguous range breaks the executor invariant) and
        // require serial and scheduled scans to quarantine identically.
        let mut corrupted = txs.clone();
        for (i, tx) in corrupted.iter_mut().enumerate() {
            if i % 5 == 0 {
                tx.trace.transfers[0].seq = 9999;
            }
        }
        let refs: Vec<&TxRecord> = corrupted.iter().collect();
        let policy = ResilienceConfig::new();
        let serial_run = serial.scan_resilient(&detector, &refs, &view, &TagCache::new(), &policy);
        let sched_run =
            scheduled.scan_resilient(&detector, &refs, &view, &TagCache::new(), &policy);
        prop_assert!(serial_run.quarantined_indices().eq(sched_run.quarantined_indices()));
        prop_assert!(serial_run.quarantined_indices().eq((0..corrupted.len()).step_by(5)));
        let verdicts = |run: &leishen::ResilientScan| -> Vec<String> {
            run.verdicts.iter().map(|v| format!("{v:?}")).collect()
        };
        prop_assert_eq!(verdicts(&serial_run), verdicts(&sched_run));
    }
}

//! Account-level asset transfers — the detector's primary input.
//!
//! The paper (§V-A, Fig. 6) denotes the *i*-th asset transfer of a
//! transaction as the tuple `T_i = (sender, receiver, amount, token)`.
//! Ether transfers live in internal transactions while ERC20 transfers live
//! in event logs; the authors modified Geth to recover the happened-before
//! relationship between the two streams. Our substrate records every
//! transfer at the moment it happens with a monotone sequence number, so the
//! journal is *born* totally ordered.

use serde::{Deserialize, Serialize};

use crate::address::Address;
use crate::token::TokenId;

/// One account-level asset transfer, in happened-before order within its
/// transaction (`seq` is the position in the transaction's unified
/// action stream, shared with logs and call frames).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Position in the transaction's unified action stream.
    pub seq: u32,
    /// Paying account (the BlackHole [`Address::ZERO`] for mints).
    pub sender: Address,
    /// Receiving account (the BlackHole for burns).
    pub receiver: Address,
    /// Raw token units moved.
    pub amount: u128,
    /// Asset moved ([`TokenId::ETH`] for native Ether).
    pub token: TokenId,
}

impl Transfer {
    /// Whether this transfer mints new tokens (sender is the BlackHole).
    ///
    /// Newly minted tokens are transferred from the BlackHole address
    /// (paper §V-C, mint-liquidity detection).
    pub fn is_mint(&self) -> bool {
        self.sender.is_zero()
    }

    /// Whether this transfer burns tokens (receiver is the BlackHole).
    pub fn is_burn(&self) -> bool {
        self.receiver.is_zero()
    }

    /// Whether this is a native-Ether transfer (recorded from internal
    /// transactions on real Ethereum) as opposed to an ERC20 transfer
    /// (recorded from event logs).
    pub fn is_native(&self) -> bool {
        self.token.is_eth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(sender: Address, receiver: Address, token: TokenId) -> Transfer {
        Transfer {
            seq: 0,
            sender,
            receiver,
            amount: 1,
            token,
        }
    }

    #[test]
    fn mint_burn_classification() {
        let a = Address::from_u64(1);
        let lp = TokenId::from_index(5);
        assert!(t(Address::ZERO, a, lp).is_mint());
        assert!(!t(Address::ZERO, a, lp).is_burn());
        assert!(t(a, Address::ZERO, lp).is_burn());
        assert!(!t(a, a, lp).is_mint());
    }

    #[test]
    fn native_classification() {
        let a = Address::from_u64(1);
        let b = Address::from_u64(2);
        assert!(t(a, b, TokenId::ETH).is_native());
        assert!(!t(a, b, TokenId::from_index(1)).is_native());
    }
}

//! Shared fixtures for the integration tests.
//!
//! Every suite that walks the Table I corpus — golden snapshots, trace
//! goldens, the fuzz oracle — needs the same setup: build a [`World`],
//! execute the 22 reconstructed attacks, derive detector labels, and view
//! the chain. This module owns that sequence once so the suites cannot
//! drift apart on corpus size or configuration.
//!
//! Each integration-test binary compiles its own copy of this module and
//! typically uses a subset of it, hence the file-wide `dead_code` allow.
#![allow(dead_code)]

use std::path::PathBuf;

use ethsim::TxRecord;
use leishen::{ChainView, DetectorConfig, Labels, LeiShen};
use leishen_scenarios::{run_all_attacks, ExecutedAttack, World};

/// The executed Table I corpus: the world the attacks ran in, their
/// execution handles, and the detector-facing label cloud.
pub struct AttackCorpus {
    /// The simulated chain after all 22 attacks have executed.
    pub world: World,
    /// One handle per reconstructed attack, in Table I order.
    pub attacks: Vec<ExecutedAttack>,
    /// Labels snapshotted from the world's protocol deployments.
    pub labels: Labels,
}

impl AttackCorpus {
    /// Builds a fresh world and runs the full 22-attack corpus in it.
    pub fn build() -> Self {
        let mut world = World::new();
        let attacks = run_all_attacks(&mut world);
        assert_eq!(attacks.len(), 22, "the Table I corpus has 22 attacks");
        let labels = world.detector_labels();
        AttackCorpus { world, attacks, labels }
    }

    /// The detector's chain view over this corpus.
    pub fn view(&self) -> ChainView<'_> {
        self.world.view(&self.labels)
    }

    /// The replayed record of one executed attack.
    pub fn record(&self, attack: &ExecutedAttack) -> &TxRecord {
        self.world.chain.replay(attack.tx).expect("attack recorded")
    }

    /// All attack records sorted by transaction id — the canonical input
    /// order for batch scans.
    pub fn sorted_records(&self) -> Vec<&TxRecord> {
        let mut records: Vec<&TxRecord> =
            self.attacks.iter().map(|a| self.record(a)).collect();
        records.sort_by_key(|r| r.id);
        records
    }

    /// How many corpus attacks the paper's LeiShen configuration flags
    /// (the `expect_leishen` ground-truth column).
    pub fn expected_flagged(&self) -> usize {
        self.attacks.iter().filter(|a| a.spec.expect_leishen).count()
    }
}

/// The detector under the paper's Table-to-Table configuration.
pub fn paper_detector() -> LeiShen {
    LeiShen::new(DetectorConfig::paper())
}

/// Whether the run should rewrite golden snapshots instead of comparing
/// (`UPDATE_GOLDEN=1`).
pub fn update_golden() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some()
}

/// `tests/<name>` resolved against the crate root, for golden and corpus
/// directories.
pub fn tests_dir(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join(name)
}

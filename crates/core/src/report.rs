//! Attack reports — LeiShen's output ("a detailed report regarding attack
//! patterns", paper §V).

use ethsim::{Address, TxId};
use serde::{Deserialize, Serialize};

use crate::analytics::PairVolatility;
use crate::flashloan::FlashLoanEvent;
use crate::forensics::ExitReport;
use crate::patterns::{PatternKind, PatternMatch};

/// The detector's verdict for one flash-loan transaction flagged as a
/// flpAttack.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttackReport {
    /// The analyzed transaction.
    pub tx: TxId,
    /// Block the transaction executed in.
    pub block: u64,
    /// Block timestamp (unix seconds).
    pub timestamp: u64,
    /// The externally owned account that initiated the transaction.
    pub initiator: Address,
    /// Flash loans identified in the transaction (Table II signatures).
    pub flash_loans: Vec<FlashLoanEvent>,
    /// Matched attack patterns.
    pub patterns: Vec<PatternMatch>,
    /// Per-pair price volatility within the transaction (Table I metric).
    pub volatilities: Vec<PairVolatility>,
    /// Attacker's net USD profit, when a price table was supplied.
    pub profit_usd: Option<f64>,
    /// Where the proceeds went ([`crate::forensics::trace_exits`] over the
    /// attacker cluster's follow-up window). Empty when no post-detection
    /// forensics pass ran; populated via [`AttackReport::with_exits`].
    pub exits: Vec<ExitReport>,
}

impl AttackReport {
    /// Attaches a forensics exit analysis to the report.
    pub fn with_exits(mut self, exits: Vec<ExitReport>) -> Self {
        self.exits = exits;
        self
    }

    /// The distinct exit kinds observed, in display order (direct,
    /// multi-level, coin-mixer), each with its occurrence count.
    pub fn exit_kind_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for e in &self.exits {
            let name = e.kind.name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        }
        counts
    }
    /// Whether a given pattern kind matched.
    pub fn has_pattern(&self, kind: PatternKind) -> bool {
        self.patterns.iter().any(|p| p.kind == kind)
    }

    /// The distinct pattern kinds that matched, in KRP/SBS/MBS order.
    pub fn pattern_kinds(&self) -> Vec<PatternKind> {
        let mut kinds: Vec<PatternKind> = self.patterns.iter().map(|p| p.kind).collect();
        kinds.sort();
        kinds.dedup();
        kinds
    }

    /// Largest pairwise volatility observed, as a fraction.
    pub fn max_volatility(&self) -> f64 {
        self.volatilities
            .first()
            .map(PairVolatility::volatility)
            .unwrap_or(0.0)
    }
}

impl std::fmt::Display for AttackReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flpAttack {} block {} patterns [", self.tx, self.block)?;
        for (i, k) in self.pattern_kinds().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, "]")?;
        if let Some(p) = self.profit_usd {
            write!(f, " profit ${p:.0}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::TokenId;

    fn pm(kind: PatternKind) -> PatternMatch {
        PatternMatch {
            kind,
            target_token: TokenId::from_index(1),
            quote_token: TokenId::ETH,
            trade_seqs: vec![0, 1],
            volatility: 1.25,
            counterparty: "Uniswap".into(),
        }
    }

    fn report() -> AttackReport {
        AttackReport {
            tx: TxId(7),
            block: 100,
            timestamp: 0,
            initiator: Address::from_u64(1),
            flash_loans: vec![],
            patterns: vec![pm(PatternKind::Mbs), pm(PatternKind::Sbs), pm(PatternKind::Mbs)],
            volatilities: vec![],
            profit_usd: Some(350_000.0),
            exits: vec![],
        }
    }

    #[test]
    fn exit_kinds_are_counted_in_order() {
        use crate::forensics::{ExitKind, ExitReport};
        let sink = |i: u64| Address::from_u64(100 + i);
        let exit = |i: u64, kind: ExitKind| ExitReport {
            sink: sink(i),
            sink_tag: crate::tagging::Tag::Unknown(sink(i)),
            kind,
            amount: 10 * (i as u128 + 1),
            token: TokenId::ETH,
            path: vec![sink(i)],
        };
        let r = report().with_exits(vec![
            exit(0, ExitKind::Direct),
            exit(1, ExitKind::CoinMixer),
            exit(2, ExitKind::Direct),
            exit(3, ExitKind::MultiLevel { hops: 2 }),
        ]);
        assert_eq!(
            r.exit_kind_counts(),
            vec![("direct", 2), ("coin_mixer", 1), ("multi_level", 1)]
        );
        assert!(report().exit_kind_counts().is_empty());
    }

    #[test]
    fn pattern_queries() {
        let r = report();
        assert!(r.has_pattern(PatternKind::Sbs));
        assert!(r.has_pattern(PatternKind::Mbs));
        assert!(!r.has_pattern(PatternKind::Krp));
        assert_eq!(r.pattern_kinds(), vec![PatternKind::Sbs, PatternKind::Mbs]);
    }

    #[test]
    fn display_mentions_patterns_and_profit() {
        let s = report().to_string();
        assert!(s.contains("SBS"));
        assert!(s.contains("MBS"));
        assert!(s.contains("$350000"));
    }

    #[test]
    fn max_volatility_defaults_to_zero() {
        assert_eq!(report().max_volatility(), 0.0);
    }

    #[test]
    fn max_volatility_reads_the_top_pair() {
        let mut r = report();
        r.volatilities = vec![
            crate::analytics::PairVolatility {
                token_a: TokenId::ETH,
                token_b: TokenId::from_index(1),
                rate_min: 1.0,
                rate_max: 2.25,
                samples: 3,
            },
            crate::analytics::PairVolatility {
                token_a: TokenId::ETH,
                token_b: TokenId::from_index(2),
                rate_min: 1.0,
                rate_max: 1.1,
                samples: 2,
            },
        ];
        assert!((r.max_volatility() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn display_without_profit_omits_dollar_figure() {
        let mut r = report();
        r.profit_usd = None;
        assert!(!r.to_string().contains('$'));
    }
}

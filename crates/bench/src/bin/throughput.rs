//! Batch-scan throughput: the serial per-transaction loop vs the
//! [`leishen::ScanEngine`] (shared tag cache + work-stealing workers) over
//! the wild corpus, at several worker counts.
//!
//! ```sh
//! cargo run -p leishen-bench --release --bin throughput
//! ```
//!
//! Prints a table and persists the numbers to `BENCH_scan.json` (see
//! `EXPERIMENTS.md` for the schema). The serial baseline is the plain
//! `LeiShen::analyze` loop every other binary uses, which re-resolves
//! every tag from the creation tree on every transaction. Each engine
//! configuration keeps one shared `TagCache` alive across repetitions —
//! the engine's steady state, where a scanner processes batch after
//! batch over the same chain and only the first (untimed, warm-up)
//! batch pays the cold tag-resolution misses.

use leishen::{DetectorConfig, TagCache};
use leishen_bench::{
    cli_f64, cli_u64, measure_latencies, measure_latencies_cached, measure_serial_throughput,
    measure_throughput, percentile, print_table, sort_samples, wild_world, ThroughputRun,
};

/// Keeps the best (highest tx/s) run seen so far. The corpus takes only
/// a few milliseconds per scan, so a single run is at the mercy of
/// scheduler noise; repetitions are **interleaved** across configurations
/// (round-robin, see `main`) so a noisy stretch of wall-clock time cannot
/// eat every repetition of one configuration while another gets a clean
/// best — and then the best of each is the stable number.
fn keep_best(best: &mut Option<ThroughputRun>, run: ThroughputRun) {
    if best.is_none_or(|b| run.tx_per_sec > b.tx_per_sec) {
        *best = Some(run);
    }
}

fn main() {
    let seed = cli_u64("--seed", 42);
    let scale = cli_f64("--scale", 0.002);
    let reps = cli_u64("--reps", 7).max(1) as usize;
    let config = DetectorConfig::paper;

    eprintln!("generating corpus (seed={seed}, scale={scale})...");
    let (world, corpus) = wild_world(seed, scale);
    let n = corpus.len();
    let txs = || corpus.iter().map(|t| t.tx);
    println!("batch-scan throughput — {n} wild flash-loan transactions (best of {reps})\n");

    // One shared tag cache per engine configuration, kept alive across
    // repetitions: the engine's steady state. The warm-up pass below is
    // the "first batch" that populates it; every timed repetition then
    // scans the way a long-running scanner does, batch after batch over
    // the same chain.
    let worker_counts = [1usize, 2, 4, 8];
    let caches: Vec<TagCache> = worker_counts.iter().map(|_| TagCache::new()).collect();

    // Warm-up: one untimed pass down each path, so cold tag-cache misses,
    // page faults, lazy allocator arenas, and branch-predictor cold
    // starts land outside the measured repetitions.
    std::hint::black_box(measure_serial_throughput(&world, txs(), config()));
    for (&w, cache) in worker_counts.iter().zip(&caches) {
        std::hint::black_box(measure_throughput(&world, txs(), config(), w, cache));
    }

    // Interleaved repetitions: each round measures the serial baseline
    // and every worker count back to back, keeping the per-configuration
    // best across rounds.
    let mut serial_best: Option<ThroughputRun> = None;
    let mut engine_best: Vec<Option<ThroughputRun>> = vec![None; worker_counts.len()];
    for _ in 0..reps {
        keep_best(
            &mut serial_best,
            measure_serial_throughput(&world, txs(), config()),
        );
        for ((slot, &w), cache) in engine_best.iter_mut().zip(&worker_counts).zip(&caches) {
            keep_best(slot, measure_throughput(&world, txs(), config(), w, cache));
        }
    }
    let serial = serial_best.expect("reps >= 1");
    let runs: Vec<ThroughputRun> = engine_best.into_iter().map(|r| r.expect("reps >= 1")).collect();

    let mut serial_lat = measure_latencies(&world, txs(), config());
    sort_samples(&mut serial_lat);

    // The engine's hot path timed per transaction (shared cache, serial
    // order) — where the batch percentiles come from.
    let mut cached_lat = measure_latencies_cached(&world, txs(), config());
    sort_samples(&mut cached_lat);

    let pcts = |lat: &[f64]| {
        (
            percentile(lat, 50.0),
            percentile(lat, 95.0),
            percentile(lat, 99.0),
        )
    };
    let (s50, s95, s99) = pcts(&serial_lat);
    let (c50, c95, c99) = pcts(&cached_lat);

    let mut rows = vec![row("serial loop", serial.tx_per_sec, 1.0, Some((s50, s95, s99)))];
    for run in &runs {
        let pct = (run.workers == 1).then_some((c50, c95, c99));
        rows.push(row(
            &format!("engine, {} worker{}", run.workers, if run.workers == 1 { "" } else { "s" }),
            run.tx_per_sec,
            run.tx_per_sec / serial.tx_per_sec,
            pct,
        ));
    }
    print_table(
        &["configuration", "tx/s", "speedup", "p50", "p95", "p99"],
        &rows,
    );

    let speedup_at_4 = runs
        .iter()
        .find(|r| r.workers == 4)
        .map(|r| r.tx_per_sec / serial.tx_per_sec)
        .unwrap_or(0.0);
    println!("\nspeedup at 4 workers: {speedup_at_4:.2}× (target ≥ 2×)");

    // Steady-state cache behaviour: after the warm-up pass plus `reps`
    // timed repetitions, nearly every tag lookup should hit.
    for (&w, cache) in worker_counts.iter().zip(&caches) {
        println!(
            "tag cache at {w} worker{}: {:.1}% hit rate ({} hits / {} misses, {} entries)",
            if w == 1 { "" } else { "s" },
            cache.hit_rate() * 100.0,
            cache.hits(),
            cache.misses(),
            cache.len(),
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"scan\",\n  \"corpus\": {{ \"seed\": {seed}, \"scale\": {scale}, \"transactions\": {n} }},\n  \"serial\": {{ \"tx_per_sec\": {:.1}, \"p50_us\": {s50:.2}, \"p95_us\": {s95:.2}, \"p99_us\": {s99:.2} }},\n  \"scan_hot_path\": {{ \"p50_us\": {c50:.2}, \"p95_us\": {c95:.2}, \"p99_us\": {c99:.2} }},\n  \"parallel\": [\n{}\n  ],\n  \"speedup_at_4_workers\": {speedup_at_4:.3}\n}}\n",
        serial.tx_per_sec,
        runs.iter()
            .zip(&caches)
            .map(|(r, cache)| format!(
                "    {{ \"workers\": {}, \"tx_per_sec\": {:.1}, \"speedup\": {:.3}, \"cache_hit_rate\": {:.4} }}",
                r.workers,
                r.tx_per_sec,
                r.tx_per_sec / serial.tx_per_sec,
                cache.hit_rate()
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write("BENCH_scan.json", &json).expect("write BENCH_scan.json");
    println!("wrote BENCH_scan.json");

    assert!(
        speedup_at_4 >= 2.0,
        "engine at 4 workers must be ≥ 2× the serial loop, got {speedup_at_4:.2}×"
    );
}

fn row(name: &str, tx_per_sec: f64, speedup: f64, pct: Option<(f64, f64, f64)>) -> Vec<String> {
    let fmt_us = |v: f64| format!("{v:.0} µs");
    let (p50, p95, p99) = match pct {
        Some((a, b, c)) => (fmt_us(a), fmt_us(b), fmt_us(c)),
        None => ("-".into(), "-".into(), "-".into()),
    };
    vec![
        name.to_string(),
        format!("{tx_per_sec:.0}"),
        format!("{speedup:.2}x"),
        p50,
        p95,
        p99,
    ]
}

//! Streaming detection service: bounded-latency online scanning.
//!
//! Everything below [`crate::scan::ScanEngine`] is batch: a finished
//! `Vec<TxRecord>` goes in, verdicts come out. The paper's detector is
//! framed as a *monitor* over arriving Ethereum blocks, so this module
//! adds the long-running service layer on top of the existing machinery:
//!
//! * **Ingest** — a producer (the chain clock, a mempool feed, a replay
//!   harness) submits [`Block`]s through a [`StreamProducer`]. Blocks
//!   land in a bounded MPSC queue ([`BoundedQueue`]); when the scanner
//!   falls behind, `submit` *blocks* — explicit backpressure, never an
//!   unbounded buffer, never a dropped transaction.
//! * **Scan** — a scanner thread drains the ingest queue one block at a
//!   time and runs each block through
//!   [`ScanEngine::scan_resilient_with`], so streamed blocks get the
//!   same conflict-aware scheduling, shared [`TagCache`], telemetry and
//!   provenance wiring as a batch scan. Each block is one telemetry /
//!   trace epoch: worker fronts merge into the shared sinks when the
//!   block's scan completes, so per-block counters land as the block
//!   lands.
//! * **Deadline budgets** — [`StreamConfig::block_budget`] gives every
//!   block a wall-clock allowance. When it expires, the remaining
//!   transactions of that block are downgraded to
//!   [`Verdict::Indeterminate`] with [`Fault::Deadline`] through the
//!   resilience layer ([`ResilienceConfig::with_deadline`]) instead of
//!   stalling the stream. A *poisoned* block — one whose scan panics
//!   outside the per-transaction guard — is downgraded the same way by
//!   a whole-block `catch_unwind` backstop; it never wedges the stream.
//! * **Emit** — verdicts flow through a second bounded queue to an
//!   emitter thread that stamps the block's end-to-end latency
//!   (submit → emit) and hands each [`BlockReport`] to the caller's
//!   callback *as it lands*, before the stream finishes.
//! * **Drain / shutdown** — when the producer closure returns, the
//!   ingest queue closes; the scanner finishes every queued block and
//!   closes the emit queue; the emitter flushes every in-flight report
//!   and returns. Every submitted transaction is emitted exactly once,
//!   deterministically, regardless of arrival timing.
//!
//! The service's correctness contract is **batch ≡ stream**: for any
//! corpus and any partition of it into blocks, the streamed verdicts,
//! quarantines, and reason chains are byte-identical to a one-shot
//! [`ScanEngine::scan_resilient`] over the concatenated corpus (the
//! equivalence proptests in `tests/stream_equivalence.rs` pin this).
//! The one deliberate divergence is deadline pressure, which can only
//! *downgrade* a verdict to `Indeterminate` — never flip flagged to
//! cleared or back. To keep the identity exact, the scanner rebases
//! each block's [`Quarantine::index`] from block-relative to
//! stream-relative positions.
//!
//! ```
//! use leishen::stream::{Block, StreamConfig, StreamService};
//! use leishen::{ChainView, DetectorConfig, Labels, LeiShen};
//!
//! let labels = Labels::new();
//! let view = ChainView::new(&labels, &[], None);
//! let detector = LeiShen::new(DetectorConfig::paper());
//! let service = StreamService::new(2, StreamConfig::default());
//! let report = service.replay(&detector, &view, []); // empty stream
//! assert_eq!(report.transactions, 0);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use ethsim::TxRecord;

use crate::detector::{Analysis, ChainView, LeiShen};
use crate::resilience::{
    payload_message, Fault, Quarantine, ResilienceConfig, Verdict,
};
use crate::scan::{ScanEngine, ScanStats, TagCache};
use crate::telemetry::{MetricsSink, NoopSink};
use crate::trace::{NoopTracer, TraceSink};

// ---------------------------------------------------------------------------
// Bounded MPSC queue
// ---------------------------------------------------------------------------

/// Counters describing one bounded queue's life, snapshotted into the
/// [`StreamReport`] so tests and the `stream` bench can see backpressure
/// instead of guessing at it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Configured capacity (items).
    pub capacity: usize,
    /// Items pushed over the queue's lifetime.
    pub pushed: u64,
    /// Deepest the queue ever got. Never exceeds `capacity`.
    pub max_depth: usize,
    /// Push calls that found the queue full and had to wait for the
    /// consumer — each one is a backpressure stall made visible.
    pub producer_waits: u64,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer queue over `std::sync::Condvar`.
///
/// `push` blocks while the queue is at capacity (counting the stall in
/// [`QueueStats::producer_waits`]); `pop` blocks while it is empty and
/// returns `None` only once the queue is closed *and* drained, which is
/// what makes shutdown a deterministic flush rather than a race.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    pushed: AtomicU64,
    producer_waits: AtomicU64,
    max_depth: AtomicU64,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            pushed: AtomicU64::new(0),
            producer_waits: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns the
    /// item back if the queue was closed before it could be enqueued.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.items.len() >= self.capacity && !state.closed {
            // One counted stall per push that had to wait, however many
            // wakeups it takes to find a slot.
            self.producer_waits.fetch_add(1, Ordering::Relaxed);
            while state.items.len() >= self.capacity && !state.closed {
                state = self.not_full.wait(state).expect("queue lock poisoned");
            }
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        self.max_depth
            .fetch_max(state.items.len() as u64, Ordering::Relaxed);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: pending `pop`s drain what is already queued and
    /// then see `None`; blocked and future `push`es fail fast.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Lifetime counters for this queue.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            capacity: self.capacity,
            pushed: self.pushed.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed) as usize,
            producer_waits: self.producer_waits.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Stream vocabulary
// ---------------------------------------------------------------------------

/// One arriving block: a number (for reporting; ordering is submission
/// order) and the transactions it carries.
pub struct Block<'a> {
    /// Block number, echoed into the matching [`BlockReport`].
    pub number: u64,
    /// The block's transactions, in intra-block order.
    pub txs: Vec<&'a TxRecord>,
}

struct InFlight<'a> {
    block: Block<'a>,
    submitted_at: Instant,
}

struct Scanned {
    number: u64,
    base: usize,
    verdicts: Vec<Verdict>,
    submitted_at: Instant,
}

/// Service policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Capacity of the ingest queue (blocks). When the scanner falls
    /// this many blocks behind, `submit` blocks the producer.
    pub ingest_capacity: usize,
    /// Capacity of the emit queue (scanned blocks). When the caller's
    /// emit callback falls behind, the scanner blocks, and backpressure
    /// propagates to the producer.
    pub emit_capacity: usize,
    /// Wall-clock budget per block. Transactions not started by the
    /// time a block's budget expires are downgraded to
    /// [`Verdict::Indeterminate`] with [`Fault::Deadline`]. `None`
    /// (default) never downgrades, making the stream byte-identical to
    /// a batch scan.
    pub block_budget: Option<Duration>,
    /// The resilience policy every block is scanned under.
    pub policy: ResilienceConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            ingest_capacity: 8,
            emit_capacity: 8,
            block_budget: None,
            policy: ResilienceConfig::default(),
        }
    }
}

impl StreamConfig {
    /// Overrides both queue capacities.
    pub fn with_capacity(mut self, ingest: usize, emit: usize) -> Self {
        self.ingest_capacity = ingest;
        self.emit_capacity = emit;
        self
    }

    /// Sets the per-block deadline budget.
    pub fn with_block_budget(mut self, budget: Duration) -> Self {
        self.block_budget = Some(budget);
        self
    }

    /// Sets the resilience policy blocks are scanned under.
    pub fn with_policy(mut self, policy: ResilienceConfig) -> Self {
        self.policy = policy;
        self
    }
}

/// The producer-side handle passed to the `run` closure: submit blocks,
/// feel backpressure. The handle is `Sync`, so a producer closure may
/// hand it to several feeder threads (mempool bursts next to the block
/// clock) — the queue is MPSC.
pub struct StreamProducer<'q, 'a> {
    ingest: &'q BoundedQueue<InFlight<'a>>,
    rejected: AtomicU64,
}

impl<'a> StreamProducer<'_, 'a> {
    /// Submits one block, blocking while the ingest queue is full.
    /// Returns `false` if the stream already shut down (the block is
    /// dropped and counted; this only happens if the scanner died).
    pub fn submit(&self, block: Block<'a>) -> bool {
        let accepted = self
            .ingest
            .push(InFlight {
                block,
                submitted_at: Instant::now(),
            })
            .is_ok();
        if !accepted {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
        accepted
    }
}

/// One emitted block: the scan's verdicts plus stream bookkeeping.
#[derive(Debug)]
pub struct BlockReport {
    /// The submitted block's number.
    pub number: u64,
    /// Stream-relative index of the block's first transaction; verdict
    /// `i` of this block sits at stream position `base + i`, and
    /// quarantine indices are already rebased to stream positions.
    pub base: usize,
    /// One verdict per transaction, in intra-block order.
    pub verdicts: Vec<Verdict>,
    /// End-to-end latency: block submitted → verdicts emitted.
    pub latency: Duration,
}

impl BlockReport {
    /// Transactions in this block.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// Whether the block carried no transactions.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }
}

/// The outcome of a full stream run, after drain.
#[derive(Debug)]
pub struct StreamReport {
    /// Every emitted block, in submission order.
    pub blocks: Vec<BlockReport>,
    /// Ingest-queue counters (producer-side backpressure).
    pub ingest: QueueStats,
    /// Emit-queue counters (consumer-side backpressure).
    pub emit: QueueStats,
    /// Total transactions streamed.
    pub transactions: usize,
    /// Analyzed transactions whose analysis flagged an attack.
    pub attacks: usize,
    /// Transactions that ended in [`Verdict::Indeterminate`].
    pub quarantined: usize,
}

impl StreamReport {
    /// Every verdict in stream order (blocks in submission order,
    /// transactions in intra-block order) — the sequence a batch scan
    /// of the concatenated corpus would return.
    pub fn verdicts(&self) -> impl Iterator<Item = &Verdict> {
        self.blocks.iter().flat_map(|b| b.verdicts.iter())
    }

    /// The completed analyses, in stream order.
    pub fn analyses(&self) -> impl Iterator<Item = &Analysis> {
        self.verdicts().filter_map(Verdict::analysis)
    }

    /// The quarantine records, in stream order (indices are
    /// stream-relative).
    pub fn quarantines(&self) -> impl Iterator<Item = &Quarantine> {
        self.verdicts().filter_map(Verdict::quarantine)
    }

    /// Stream positions of the quarantined transactions.
    pub fn quarantined_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.quarantines().map(|q| q.index)
    }

    /// The stream's totals in [`ScanStats`] shape (cache counters come
    /// from the caller-owned [`TagCache`], which outlives the run).
    pub fn scan_stats(&self, cache: &TagCache) -> ScanStats {
        ScanStats {
            transactions: self.transactions,
            attacks: self.attacks,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            quarantined: self.quarantined,
        }
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// A long-running streaming scanner over the batch [`ScanEngine`].
///
/// The service owns no corpus: `run` borrows a [`ChainView`] and a
/// [`TagCache`] exactly like the batch entry points, hosts the scanner
/// and emitter threads in a scoped pool for the duration of the call,
/// and returns once the stream has fully drained. Call `run` again for
/// the next session; the tag cache warms across runs.
#[derive(Clone, Debug)]
pub struct StreamService {
    engine: ScanEngine,
    config: StreamConfig,
}

impl StreamService {
    /// A service scanning each block with `workers` worker threads.
    pub fn new(workers: usize, config: StreamConfig) -> Self {
        StreamService {
            engine: ScanEngine::new(workers),
            config,
        }
    }

    /// A service over a caller-configured engine (chunk size, naive
    /// chunking, oversubscription).
    pub fn with_engine(engine: ScanEngine, config: StreamConfig) -> Self {
        StreamService { engine, config }
    }

    /// The service's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Replays pre-chunked blocks through the stream with no
    /// instrumentation and no emit callback — the plain entry point for
    /// tests and offline replays.
    pub fn replay<'a>(
        &self,
        detector: &LeiShen,
        view: &ChainView<'a>,
        blocks: impl IntoIterator<Item = Block<'a>>,
    ) -> StreamReport {
        let cache = TagCache::new();
        self.replay_with_cache(detector, view, &cache, blocks)
    }

    /// [`StreamService::replay`] against a caller-owned cache.
    pub fn replay_with_cache<'a>(
        &self,
        detector: &LeiShen,
        view: &ChainView<'a>,
        cache: &TagCache,
        blocks: impl IntoIterator<Item = Block<'a>>,
    ) -> StreamReport {
        self.run(
            detector,
            view,
            cache,
            &NoopSink,
            &NoopTracer,
            |producer| {
                for block in blocks {
                    if !producer.submit(block) {
                        break;
                    }
                }
            },
            |_| {},
        )
    }

    /// Runs one streaming session.
    ///
    /// `producer` executes on the calling thread with a
    /// [`StreamProducer`] handle; every `submit` feels ingest-queue
    /// backpressure. `on_emit` executes on the emitter thread, once per
    /// block, *as verdicts land* — before later blocks finish and
    /// before `run` returns. When `producer` returns, the stream drains
    /// deterministically: every submitted transaction is scanned and
    /// emitted exactly once, then `run` returns the assembled
    /// [`StreamReport`].
    #[allow(clippy::too_many_arguments)]
    pub fn run<'a, S, T, P, E>(
        &self,
        detector: &LeiShen,
        view: &ChainView<'a>,
        cache: &TagCache,
        sink: &S,
        tracer: &T,
        producer: P,
        on_emit: E,
    ) -> StreamReport
    where
        S: MetricsSink + Sync,
        T: TraceSink + Sync,
        P: FnOnce(&StreamProducer<'_, 'a>),
        E: FnMut(&BlockReport) + Send,
    {
        let ingest: BoundedQueue<InFlight<'a>> =
            BoundedQueue::new(self.config.ingest_capacity);
        let emit: BoundedQueue<Scanned> = BoundedQueue::new(self.config.emit_capacity);

        let blocks = crossbeam::thread::scope(|scope| {
            let emit_q = &emit;
            let ingest_q = &ingest;
            // Scanner: drain ingest in submission order, one block per
            // scan call (= one telemetry/trace epoch), then close the
            // emit queue so the emitter's drain is deterministic.
            let scanner = scope.spawn(move |_| {
                let mut base = 0usize;
                while let Some(item) = ingest_q.pop() {
                    let scanned = self.scan_block(detector, view, cache, sink, tracer, item, base);
                    base += scanned.verdicts.len();
                    if emit_q.push(scanned).is_err() {
                        break;
                    }
                }
                emit_q.close();
            });

            // Emitter: stamp latency, surface the report to the caller
            // as it lands, keep it for the final StreamReport.
            let mut on_emit = on_emit;
            let emitter = scope.spawn(move |_| {
                let mut blocks = Vec::new();
                while let Some(scanned) = emit_q.pop() {
                    let report = BlockReport {
                        number: scanned.number,
                        base: scanned.base,
                        verdicts: scanned.verdicts,
                        latency: scanned.submitted_at.elapsed(),
                    };
                    on_emit(&report);
                    blocks.push(report);
                }
                blocks
            });

            // Producer runs on the calling thread; when it returns (or
            // panics — the closer is unconditional so the pipeline can
            // always drain), shutdown begins.
            let handle = StreamProducer {
                ingest: &ingest,
                rejected: AtomicU64::new(0),
            };
            let produced = catch_unwind(AssertUnwindSafe(|| producer(&handle)));
            ingest.close();

            scanner.join().expect("stream scanner thread panicked");
            let blocks = emitter.join().expect("stream emitter thread panicked");
            if let Err(payload) = produced {
                std::panic::resume_unwind(payload);
            }
            blocks
        })
        .expect("stream scope failed to join");

        let transactions = blocks.iter().map(BlockReport::len).sum();
        let attacks = blocks
            .iter()
            .flat_map(|b| b.verdicts.iter())
            .filter_map(Verdict::analysis)
            .filter(|a| a.is_attack())
            .count();
        let quarantined = blocks
            .iter()
            .flat_map(|b| b.verdicts.iter())
            .filter(|v| v.is_indeterminate())
            .count();
        StreamReport {
            blocks,
            ingest: ingest.stats(),
            emit: emit.stats(),
            transactions,
            attacks,
            quarantined,
        }
    }

    /// Scans one block under the stream policy: per-block deadline,
    /// stream-relative quarantine indices, and a whole-block
    /// `catch_unwind` backstop so a poisoned block degrades to
    /// indeterminate verdicts instead of wedging the scanner.
    #[allow(clippy::too_many_arguments)]
    fn scan_block<'a, S, T>(
        &self,
        detector: &LeiShen,
        view: &ChainView<'a>,
        cache: &TagCache,
        sink: &S,
        tracer: &T,
        item: InFlight<'a>,
        base: usize,
    ) -> Scanned
    where
        S: MetricsSink + Sync,
        T: TraceSink + Sync,
    {
        let InFlight {
            block,
            submitted_at,
        } = item;
        let policy = match self.config.block_budget {
            Some(budget) => self.config.policy.with_deadline(Instant::now() + budget),
            None => self.config.policy,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.engine
                .scan_resilient_with(detector, &block.txs, view, cache, &policy, sink, tracer)
        }));
        let mut verdicts = match outcome {
            Ok(scan) => scan.verdicts,
            Err(payload) => {
                // The per-transaction guard should make this
                // unreachable; if a panic escapes it anyway, the whole
                // block degrades rather than the stream.
                let message = payload_message(payload.as_ref());
                block
                    .txs
                    .iter()
                    .enumerate()
                    .map(|(index, tx)| {
                        Verdict::Indeterminate(Quarantine {
                            tx: tx.id,
                            index,
                            fault: Fault::Panic {
                                message: message.clone(),
                            },
                            stage: None,
                            attempts: 0,
                        })
                    })
                    .collect()
            }
        };
        // Rebase quarantine indices from block-relative to
        // stream-relative so streamed quarantines compare byte-for-byte
        // against a batch scan of the concatenated corpus.
        for verdict in &mut verdicts {
            if let Verdict::Indeterminate(q) = verdict {
                q.index += base;
            }
        }
        Scanned {
            number: block.number,
            base,
            verdicts,
            submitted_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use crate::labels::Labels;
    use ethsim::{Address, CreationRecord, TokenId, Transfer, TxId, TxStatus, TxTrace};

    /// A small synthetic world: a 20-address creation forest plus `n`
    /// two-transfer transactions (the same family the root proptests
    /// use). Not attack-shaped — these tests pin plumbing, not
    /// detection; the golden replay covers the 22 attacks.
    fn synthetic(n: usize) -> (Labels, Vec<CreationRecord>, Vec<TxRecord>) {
        let mut records = Vec::new();
        let mut labels = Labels::new();
        let mut addrs = Vec::new();
        for i in 0..20u64 {
            let a = Address::from_u64(1000 + i);
            addrs.push(a);
            if i > 0 {
                let parent = Address::from_u64(1000 + (7 + i) % i);
                records.push(CreationRecord {
                    creator: parent,
                    created: a,
                    block: 0,
                });
            }
            if (7 + i) % 5 == 0 {
                labels.set(a, format!("App{}", (7 + i) % 3));
            }
        }
        let txs: Vec<TxRecord> = (0..n)
            .map(|i| {
                let (s, r) = (i % addrs.len(), (i * 3 + 1) % addrs.len());
                TxRecord {
                    id: TxId(i as u64 + 1),
                    block: i as u64 / 4,
                    timestamp: 1_600_000_000 + i as u64,
                    from: addrs[s],
                    to: addrs[r],
                    function: format!("f{i}"),
                    status: TxStatus::Success,
                    trace: TxTrace {
                        transfers: vec![
                            Transfer {
                                seq: 0,
                                sender: addrs[s],
                                receiver: addrs[r],
                                amount: 1_000 + i as u128,
                                token: TokenId::from_index(i as u32 % 3),
                            },
                            Transfer {
                                seq: 1,
                                sender: addrs[r],
                                receiver: addrs[(s + r) % addrs.len()],
                                amount: 500 + i as u128,
                                token: TokenId::ETH,
                            },
                        ],
                        ..TxTrace::default()
                    },
                }
            })
            .collect();
        (labels, records, txs)
    }

    #[test]
    fn queue_respects_capacity_and_drains_after_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        let stats = q.stats();
        assert_eq!(stats.pushed, 2);
        assert_eq!(stats.max_depth, 2);
    }

    #[test]
    fn queue_blocks_full_producer_until_consumer_frees_a_slot() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        q.push(1).unwrap();
        crossbeam::thread::scope(|scope| {
            let pusher = scope.spawn(|_| q.push(2).is_ok());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(q.pop(), Some(1));
            assert!(pusher.join().unwrap());
        })
        .unwrap();
        assert_eq!(q.pop(), Some(2));
        assert!(q.stats().producer_waits >= 1);
    }

    #[test]
    fn empty_stream_reports_nothing() {
        let labels = Labels::new();
        let view = ChainView::new(&labels, &[], None);
        let detector = LeiShen::new(DetectorConfig::paper());
        let service = StreamService::new(2, StreamConfig::default());
        let report = service.replay(&detector, &view, []);
        assert_eq!(report.transactions, 0);
        assert_eq!(report.blocks.len(), 0);
        assert_eq!(report.quarantined, 0);
    }

    #[test]
    fn streamed_verdicts_match_batch_on_a_synthetic_corpus() {
        let (labels, creations, records) = synthetic(23);
        let detector = LeiShen::new(DetectorConfig::paper());
        let view = ChainView::new(&labels, &creations, None);
        let txs: Vec<&TxRecord> = records.iter().collect();

        let policy = ResilienceConfig::default();
        let batch = ScanEngine::new(2).scan_resilient(
            &detector,
            &txs,
            &view,
            &TagCache::new(),
            &policy,
        );

        let service = StreamService::new(2, StreamConfig::default().with_policy(policy));
        let blocks: Vec<Block<'_>> = txs
            .chunks(7)
            .enumerate()
            .map(|(i, chunk)| Block {
                number: i as u64,
                txs: chunk.to_vec(),
            })
            .collect();
        let report = service.replay(&detector, &view, blocks);

        assert_eq!(report.transactions, batch.verdicts.len());
        let streamed: Vec<&Verdict> = report.verdicts().collect();
        for (i, (s, b)) in streamed.iter().zip(batch.verdicts.iter()).enumerate() {
            assert_eq!(
                format!("{s:?}"),
                format!("{b:?}"),
                "verdict {i} diverged between stream and batch"
            );
        }
        assert_eq!(report.attacks, batch.stats.attacks);
        assert_eq!(report.quarantined, batch.stats.quarantined);
    }

    #[test]
    fn expired_budget_downgrades_every_transaction() {
        let (labels, creations, records) = synthetic(12);
        let detector = LeiShen::new(DetectorConfig::paper());
        let view = ChainView::new(&labels, &creations, None);
        let txs: Vec<&TxRecord> = records.iter().collect();

        let service = StreamService::new(
            2,
            StreamConfig::default().with_block_budget(Duration::from_secs(0)),
        );
        let blocks = vec![Block {
            number: 0,
            txs: txs.clone(),
        }];
        let report = service.replay(&detector, &view, blocks);
        assert_eq!(report.quarantined, report.transactions);
        for q in report.quarantines() {
            assert_eq!(q.fault, Fault::Deadline);
            assert_eq!(q.reason(), "deadline");
        }
    }

    #[test]
    fn emit_callback_sees_blocks_in_submission_order() {
        let (labels, creations, records) = synthetic(17);
        let detector = LeiShen::new(DetectorConfig::paper());
        let view = ChainView::new(&labels, &creations, None);
        let txs: Vec<&TxRecord> = records.iter().collect();

        let service = StreamService::new(2, StreamConfig::default());
        let seen = Mutex::new(Vec::new());
        let cache = TagCache::new();
        service.run(
            &detector,
            &view,
            &cache,
            &NoopSink,
            &NoopTracer,
            |producer| {
                for (i, chunk) in txs.chunks(5).enumerate() {
                    producer.submit(Block {
                        number: i as u64,
                        txs: chunk.to_vec(),
                    });
                }
            },
            |block| seen.lock().unwrap().push(block.number),
        );
        let seen = seen.into_inner().unwrap();
        let expected: Vec<u64> = (0..txs.chunks(5).len() as u64).collect();
        assert_eq!(seen, expected);
    }
}

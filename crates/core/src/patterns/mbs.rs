//! Multi-Round Buying and Selling (MBS) — paper §IV-B3, Fig. 4(c).
//!
//! The borrower repeats buy-then-sell rounds on the target token,
//! subject to:
//!
//! * (a) one counterparty: `trade₁.seller = trade₂.seller`;
//! * (b) each round is profitable: buy price < sell price;
//! * (c) at least `N ≥ 3` rounds (Harvest Finance ran exactly 3).

use crate::config::DetectorConfig;
use crate::patterns::{for_each_pair, MatcherScratch, PairLegs, PatternKind, PatternMatch, PatternScratch};
use crate::tagging::Tag;
use crate::trades::TradeLeg;

/// Detects MBS instances across all token pairs.
pub fn detect(
    legs: &[TradeLeg<'_>],
    borrower: &Tag,
    config: &DetectorConfig,
) -> Vec<PatternMatch> {
    let mut out = Vec::new();
    let mut scratch = PatternScratch::default();
    for_each_pair(legs, borrower, &mut scratch, |pair, matcher| {
        let _ = detect_pair(pair, config, matcher, &mut out);
    });
    out
}

/// MBS over one pair's leg views. Every round consumes one buy and one
/// sell, so pairs with fewer than `min_rounds` of either fall to the
/// gate up front; past it, the event and round lists go into the reused
/// scratch, so nothing allocates until a match is emitted.
///
/// Returns `None` when at least one match was pushed, otherwise the
/// deepest predicate that failed — the provenance layer's "why not".
pub(crate) fn detect_pair(
    pair: &PairLegs<'_, '_, '_>,
    config: &DetectorConfig,
    scratch: &mut MatcherScratch,
    out: &mut Vec<PatternMatch>,
) -> Option<&'static str> {
    let buys = pair.own_buys;
    let sells = pair.own_sells;
    if buys.len() < config.mbs_min_rounds || sells.len() < config.mbs_min_rounds {
        return Some("fewer than mbs_min_rounds buys or sells of the target");
    }
    let before = out.len();
    let mut any_profitable_round = false;
    let MatcherScratch {
        sellers,
        events,
        rounds,
        ..
    } = scratch;
    // Candidate counterparties (condition a: shared seller), keyed by a
    // representative leg.
    sellers.clear();
    for &l in buys.iter().chain(sells.iter()) {
        if !sellers
            .iter()
            .any(|&s| pair.leg(s).seller == pair.leg(l).seller)
        {
            sellers.push(l);
        }
    }
    for &s in sellers.iter() {
        let seller = pair.leg(s).seller;
        // Interleave this seller's buys and sells by sequence.
        events.clear();
        events.extend(
            buys.iter()
                .filter(|&&l| pair.leg(l).seller == seller)
                .map(|&l| (true, l))
                .chain(
                    sells
                        .iter()
                        .filter(|&&l| pair.leg(l).seller == seller)
                        .map(|&l| (false, l)),
                ),
        );
        events.sort_by_key(|&(_, l)| pair.leg(l).seq);

        let mut pending_buy: Option<&TradeLeg<'_>> = None;
        rounds.clear();
        let mut min_rate = f64::INFINITY;
        let mut max_rate = f64::NEG_INFINITY;
        for &(is_buy, leg_i) in events.iter() {
            let leg = pair.leg(leg_i);
            if is_buy {
                pending_buy = Some(leg);
            } else if let Some(b) = pending_buy.take() {
                let (Some(buy_price), Some(sell_price)) = (b.buy_rate(), leg.sell_rate())
                else {
                    continue;
                };
                if buy_price < sell_price {
                    rounds.push((b.seq, leg.seq));
                    min_rate = min_rate.min(buy_price);
                    max_rate = max_rate.max(sell_price);
                }
            }
        }
        any_profitable_round |= !rounds.is_empty();
        if rounds.len() >= config.mbs_min_rounds {
            out.push(PatternMatch {
                kind: PatternKind::Mbs,
                target_token: pair.target,
                quote_token: pair.quote,
                trade_seqs: rounds.iter().flat_map(|(b, s)| [*b, *s]).collect(),
                volatility: if min_rate > 0.0 {
                    (max_rate - min_rate) / min_rate
                } else {
                    0.0
                },
                counterparty: seller.to_string(),
            });
        }
    }
    if out.len() > before {
        None
    } else if any_profitable_round {
        Some("fewer than mbs_min_rounds profitable rounds")
    } else {
        Some("no profitable buy-then-sell round")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::all_legs;
    use crate::patterns::testutil::{app, buy, sell, tk};
    use crate::trades::Trade;

    /// Harvest shape: rounds of deposit/withdraw against one vault with a
    /// small per-round gain. Token 0 = USDC (quote), token 1 = fUSDC.
    fn harvest_trades(rounds: u32, borrower: &Tag, vault: &Tag) -> Vec<Trade> {
        let mut trades = Vec::new();
        for r in 0..rounds {
            // buy ~51.4M fUSDC with ~50.0M USDC (price 0.9713)
            trades.push(buy(
                2 * r,
                borrower,
                vault,
                49_977_468,
                0,
                51_456_280,
                1,
            ));
            // sell the fUSDC back for 50.3M USDC (price 0.9775)
            trades.push(sell(
                2 * r + 1,
                borrower,
                vault,
                51_456_280,
                1,
                50_298_684,
                0,
            ));
        }
        trades
    }

    #[test]
    fn detects_harvest_three_rounds() {
        let e = app("root:E");
        let vault = app("Harvest Finance");
        let trades = harvest_trades(3, &e, &vault);
        let matches = detect(&all_legs(&trades), &e, &DetectorConfig::default());
        assert_eq!(matches.len(), 1);
        let m = &matches[0];
        assert_eq!(m.kind, PatternKind::Mbs);
        assert_eq!(m.target_token, tk(1));
        assert_eq!(m.trade_seqs.len(), 6);
        assert_eq!(m.counterparty, "Harvest Finance");
        // Harvest's volatility was ~0.5%
        assert!(m.volatility > 0.001 && m.volatility < 0.05, "{}", m.volatility);
    }

    #[test]
    fn two_rounds_are_not_enough() {
        let e = app("E");
        let vault = app("V");
        let trades = harvest_trades(2, &e, &vault);
        assert!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).is_empty());
        // relaxed config (2 rounds) accepts
        assert_eq!(
            detect(&all_legs(&trades), &e, &DetectorConfig::relaxed()).len(),
            1
        );
    }

    #[test]
    fn unprofitable_rounds_do_not_count() {
        let e = app("E");
        let vault = app("V");
        let mut trades = Vec::new();
        for r in 0..4u32 {
            trades.push(buy(2 * r, &e, &vault, 50_000_000, 0, 50_000_000, 1));
            // sells at a LOSS
            trades.push(sell(2 * r + 1, &e, &vault, 50_000_000, 1, 49_000_000, 0));
        }
        assert!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn rounds_against_different_sellers_do_not_combine() {
        let e = app("E");
        let mut trades = Vec::new();
        for r in 0..3u32 {
            let vault = app(if r % 2 == 0 { "V1" } else { "V2" });
            trades.push(buy(2 * r, &e, &vault, 50_000_000, 0, 51_000_000, 1));
            trades.push(sell(2 * r + 1, &e, &vault, 51_000_000, 1, 50_500_000, 0));
        }
        // V1 has 2 rounds, V2 has 1 — neither reaches 3.
        assert!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn interleaved_unrelated_trades_do_not_break_rounds() {
        let e = app("E");
        let vault = app("V");
        let other = app("Other");
        let mut trades = harvest_trades(3, &e, &vault);
        // noise on an unrelated pair, interleaved sequence numbers
        trades.push(buy(100, &e, &other, 5, 2, 5, 3));
        let matches = detect(&all_legs(&trades), &e, &DetectorConfig::default());
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn sell_before_any_buy_is_ignored() {
        let e = app("E");
        let vault = app("V");
        let mut trades = vec![sell(0, &e, &vault, 10, 1, 100, 0)];
        trades.extend(harvest_trades(2, &e, &vault).into_iter().map(|mut t| {
            t.seq += 1;
            t
        }));
        // leading sell has no pending buy; still only 2 rounds
        assert!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).is_empty());
    }
}

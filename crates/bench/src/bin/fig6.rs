//! Regenerates **Fig. 6**: the application-level asset-transfer
//! construction for the bZx-1 attack — account-level transfers, tags, and
//! the result of each simplification rule.
//!
//! ```sh
//! cargo run -p leishen-bench --bin fig6
//! ```

use leishen::simplify::{merge_inter_app, remove_intra_app, remove_weth_related, unify_weth_token};
use leishen::tagging::tag_transfers;
use leishen::DetectorConfig;
use leishen_scenarios::attacks::all_attacks;
use leishen_scenarios::World;

fn main() {
    let mut world = World::new();
    let attack = all_attacks()[0](&mut world); // bZx-1
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let record = world.chain.replay(attack.tx).expect("recorded");
    let name = |t: ethsim::TokenId| {
        world
            .chain
            .state()
            .token(t)
            .map(|i| i.symbol.clone())
            .unwrap_or_default()
    };

    println!("Fig. 6 — constructing application-level asset transfers ({})\n", attack.spec.name);
    println!("account-level (T_i = sender, receiver, amount, token):");
    for t in &record.trace.transfers {
        println!(
            "  T{:<2} = ({}, {}, {:.4}, {})",
            t.seq,
            t.sender.short(),
            t.receiver.short(),
            world.chain.state().token(t.token).map(|i| i.to_whole(t.amount)).unwrap_or(0.0),
            name(t.token)
        );
    }

    let tagged = tag_transfers(&record.trace.transfers, view.labels(), view.creations());
    println!("\ntagged (tagT_i = tag_sender, tag_receiver, amount, token):");
    for t in &tagged {
        println!(
            "  tagT{:<2} = ({}, {}, {:.4}, {})",
            t.seq,
            t.sender,
            t.receiver,
            world.chain.state().token(t.token).map(|i| i.to_whole(t.amount)).unwrap_or(0.0),
            name(t.token)
        );
    }

    let config = DetectorConfig::paper();
    let unified = unify_weth_token(&tagged, view.weth());
    let s1 = remove_intra_app(&unified);
    let s2 = remove_weth_related(&s1);
    let app = merge_inter_app(&s2, config.merge_tolerance);
    println!("\nafter rule 1 (remove intra-app):     {} transfers", s1.len());
    println!("after rule 2 (remove WETH-related):  {} transfers", s2.len());
    println!("after rule 3 (merge inter-app):      {} transfers", app.len());
    println!("\napplication-level (appT_i):");
    for t in &app {
        println!(
            "  appT{:<2} = ({}, {}, {:.4}, {})",
            t.seq,
            t.sender,
            t.receiver,
            world.chain.state().token(t.token).map(|i| i.to_whole(t.amount)).unwrap_or(0.0),
            name(t.token)
        );
    }
    println!("\n(The Kyber pass-through of the 112 WBTC dump has been merged; the");
    println!("attack contract and attacker EOA share one creation-root identity.)");
}

//! # defi — DeFi protocol suite on the `ethsim` substrate
//!
//! The paper's detector observes *asset transfers produced by DeFi
//! protocols*: decentralized exchanges, lending platforms, vaults, flash
//! loan providers and yield aggregators (paper §II-B). This crate
//! re-implements each protocol's **economic mechanism and transfer shape**
//! from scratch:
//!
//! * [`erc20`] — token deployment helpers,
//! * [`weth`] — the Wrapped Ether contract (1:1 wrap/unwrap; its transfers
//!   are removed by LeiShen's second simplification rule),
//! * [`amm::UniswapV2Pair`] — constant-product AMM with 0.3% fee, LP mint /
//!   burn, and **flash swaps** (`swap` → `uniswapV2Call`, paper Table II),
//! * [`amm::WeightedPool`] — Balancer-style weighted pool (the most
//!   attacked application in the paper's wild study, Table VI),
//! * [`amm::StableSwapPool`] — Curve-style stable pool (Harvest, Yearn,
//!   Value DeFi and Saddle attacks trade against these),
//! * [`vault::ShareVault`] — Harvest/Yearn-style share-price vault whose
//!   share price reads a manipulatable pool,
//! * [`lending::CompoundMarket`] — collateralized borrowing priced by a DEX
//!   oracle (bZx-1 borrows WBTC against ETH here),
//! * [`lending::MarginDesk`] — bZx-style margin trading (the financed
//!   pump of bZx-1),
//! * [`lending::AavePool`] and [`lending::DydxSolo`] — the other two flash
//!   loan providers LeiShen monitors,
//! * [`aggregator::YieldAggregator`] — routing intermediary whose pass-
//!   through transfers LeiShen merges (rule 3), and whose multi-round
//!   investment strategy is the paper's dominant MBS false-positive source,
//! * [`oracle::DexOracle`] — spot-price oracle over pools,
//! * [`labels::LabelService`] — the Etherscan-label-cloud equivalent.
//!
//! All protocol state lives in journaled `ethsim` storage, so transaction
//! revert restores pools, debts and vault shares exactly — the atomicity
//! flash loans rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregator;
pub mod amm;
pub mod erc20;
pub mod labels;
pub mod lending;
pub mod mixer;
pub mod oracle;
pub mod vault;
pub mod weth;

pub use aggregator::YieldAggregator;
pub use mixer::{Mixer, MixerNote};
pub use amm::{StableSwapPool, UniswapV2Factory, UniswapV2Pair, WeightedPool};
pub use erc20::TokenDeployment;
pub use labels::LabelService;
pub use lending::{AavePool, CompoundMarket, DydxSolo, MarginDesk};
pub use oracle::DexOracle;
pub use vault::ShareVault;
pub use weth::Weth;

//! On-chain price oracles.
//!
//! Some DEXs "serve as on-chain Oracles for other DeFi applications"
//! (paper §II-B) — which is precisely the attack surface: bZx priced sUSD
//! off Uniswap, so pumping Uniswap moved bZx's oracle. [`DexOracle`] reads
//! spot prices straight from registered constant-product pairs, with a
//! one-hop route through a common base when no direct pair exists.

use ethsim::{Result, SimError, TokenId, TxContext};

use crate::amm::UniswapV2Pair;

/// A spot-price oracle over a set of Uniswap-style pairs.
#[derive(Clone, Debug, Default)]
pub struct DexOracle {
    pairs: Vec<UniswapV2Pair>,
}

impl DexOracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a pair as a price source.
    pub fn add_pair(&mut self, pair: UniswapV2Pair) {
        self.pairs.push(pair);
    }

    /// Registered pairs.
    pub fn pairs(&self) -> &[UniswapV2Pair] {
        &self.pairs
    }

    /// Finds a direct pair holding both tokens.
    pub fn direct_pair(&self, a: TokenId, b: TokenId) -> Option<&UniswapV2Pair> {
        self.pairs
            .iter()
            .find(|p| p.has_token(a) && p.has_token(b))
    }

    /// Spot rate `quote per base` in whole-token terms. Falls back to a
    /// single hop through any shared intermediate token.
    ///
    /// # Errors
    /// [`SimError::Reverted`] when no route exists or a pool is empty.
    pub fn rate(&self, ctx: &TxContext<'_>, base: TokenId, quote: TokenId) -> Result<f64> {
        if base == quote {
            return Ok(1.0);
        }
        if let Some(pair) = self.direct_pair(base, quote) {
            return pair.spot_price(ctx, base);
        }
        // One-hop route: base -> X -> quote.
        for p1 in &self.pairs {
            if !p1.has_token(base) {
                continue;
            }
            let mid = p1.other(base);
            if let Some(p2) = self.direct_pair(mid, quote) {
                let r1 = p1.spot_price(ctx, base)?;
                let r2 = p2.spot_price(ctx, mid)?;
                return Ok(r1 * r2);
            }
        }
        Err(SimError::revert("no oracle route"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amm::UniswapV2Factory;
    use crate::labels::LabelService;
    use ethsim::{Address, Chain, ChainConfig};

    const E18: u128 = 1_000_000_000_000_000_000;

    fn deploy_token(
        chain: &mut Chain,
        deployer: Address,
        symbol: &str,
        decimals: u8,
    ) -> TokenId {
        let mut out = None;
        chain
            .execute(deployer, deployer, "deployToken", |ctx| {
                let c = ctx.create_contract(deployer)?;
                out = Some(ctx.register_token(symbol, decimals, c));
                Ok(())
            })
            .unwrap();
        out.unwrap()
    }

    #[test]
    fn direct_and_hopped_rates() {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("deployer");
        let whale = chain.create_eoa("whale");
        let factory =
            UniswapV2Factory::deploy_canonical(&mut chain, &mut labels, deployer).unwrap();
        let eth = TokenId::ETH;
        let wbtc = deploy_token(&mut chain, deployer, "WBTC", 8);
        let usdc = deploy_token(&mut chain, deployer, "USDC", 6);
        let p_eth_wbtc =
            UniswapV2Pair::deploy(&mut chain, &factory, eth, wbtc, "UNI ETH/WBTC").unwrap();
        let p_eth_usdc =
            UniswapV2Pair::deploy(&mut chain, &factory, eth, usdc, "UNI ETH/USDC").unwrap();
        chain.state_mut().credit_eth(whale, 20_000 * E18).unwrap();
        chain
            .execute(whale, factory.address, "seed", |ctx| {
                ctx.mint_token(wbtc, whale, 200 * 100_000_000)?;
                ctx.mint_token(usdc, whale, 20_000_000 * 1_000_000)?;
                // 50 ETH per WBTC, 2000 USDC per ETH
                p_eth_wbtc.add_liquidity(ctx, whale, 5_000 * E18, 100 * 100_000_000)?;
                p_eth_usdc.add_liquidity(ctx, whale, 5_000 * E18, 10_000_000 * 1_000_000)?;
                Ok(())
            })
            .unwrap();
        let mut oracle = DexOracle::new();
        oracle.add_pair(p_eth_wbtc);
        oracle.add_pair(p_eth_usdc);
        chain
            .execute(whale, factory.address, "probe", |ctx| {
                assert!((oracle.rate(ctx, eth, eth)? - 1.0).abs() < 1e-12);
                let wbtc_in_eth = oracle.rate(ctx, wbtc, eth)?;
                assert!((wbtc_in_eth - 50.0).abs() < 0.5, "got {wbtc_in_eth}");
                // hop: WBTC -> ETH -> USDC ≈ 100,000
                let wbtc_in_usdc = oracle.rate(ctx, wbtc, usdc)?;
                assert!(
                    (wbtc_in_usdc - 100_000.0).abs() < 1_000.0,
                    "got {wbtc_in_usdc}"
                );
                // no route
                assert!(oracle.rate(ctx, usdc, TokenId::from_index(55)).is_err());
                Ok(())
            })
            .unwrap();
    }
}

//! Integration: decision-provenance tracing end to end (the flight
//! recorder over the Table I corpus).
//!
//! * A traced 4-worker scan returns *identical* analyses to a serial
//!   untraced reference — tracing observes, never perturbs.
//! * Every flagged trace is pinned, names at least one matched pattern in
//!   its reason chain, and every cleared trace explains the miss.
//! * The JSONL export is the exact inverse of `parse_jsonl`, and the
//!   Chrome trace parses as JSON.
//! * The Harvest Finance trace (events + decision, timing-sanitized)
//!   matches a golden snapshot in `tests/golden_trace/`; regenerate with
//!   `UPDATE_GOLDEN=1 cargo test --test trace`.

use leishen::trace::export::{export_chrome_trace, export_json, export_jsonl, parse_jsonl};
use leishen::trace::json;
use leishen::{FlightRecorder, ScanEngine, TagCache, TxProvenance};
use leishen_scenarios::ExecutedAttack;

mod common;
use common::AttackCorpus;

fn traced_corpus() -> (Vec<ExecutedAttack>, FlightRecorder, Vec<leishen::Analysis>, Vec<leishen::Analysis>) {
    let corpus = AttackCorpus::build();
    let view = corpus.view();
    let detector = common::paper_detector();
    let records = corpus.sorted_records();

    let recorder = FlightRecorder::with_capacity(64);
    let cache = TagCache::new();
    let engine = ScanEngine::new(4).allow_oversubscription();
    let traced = engine.scan_traced(&detector, &records, &view, &cache, &recorder);
    let reference: Vec<_> = records.iter().map(|r| detector.analyze(r, &view)).collect();
    (corpus.attacks, recorder, traced, reference)
}

#[test]
fn traced_parallel_scan_is_identity_preserving() {
    let (attacks, recorder, traced, reference) = traced_corpus();
    assert_eq!(traced, reference, "tracing must not perturb analyses");
    assert_eq!(recorder.recorded(), attacks.len() as u64);

    let expected_flagged = attacks.iter().filter(|a| a.spec.expect_leishen).count();
    assert_eq!(recorder.pinned().len(), expected_flagged, "flagged traces pin");
    for trace in recorder.traces() {
        assert!(!trace.decision.reasons.is_empty(), "reason chain never empty");
        if trace.decision.flagged {
            assert!(
                trace.decision.names_pattern(),
                "tx {} flagged without naming a pattern",
                trace.tx
            );
        } else {
            // Cleared traces still explain themselves: either no flash
            // loan, or a flash loan whose patterns all rejected.
            assert!(
                trace
                    .decision
                    .reasons
                    .iter()
                    .any(|r| matches!(r.code(), "no_flash_loan" | "no_pattern" | "reverted")),
                "tx {} cleared without a clearing reason: {:?}",
                trace.tx,
                trace.decision.reasons
            );
        }
    }
}

#[test]
fn corpus_jsonl_and_chrome_exports_are_well_formed() {
    let (_, recorder, _, _) = traced_corpus();
    let traces = recorder.traces();

    let jsonl = export_jsonl(&traces);
    let parsed = parse_jsonl(&jsonl).expect("exported JSONL parses");
    assert_eq!(parsed, traces, "JSONL round trip is lossless");

    let chrome = export_chrome_trace(&traces);
    let doc = json::parse(&chrome).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(json::Json::as_arr)
        .expect("traceEvents array");
    // One tx slice + one slice per recorded stage, per trace.
    assert!(events.len() >= traces.len() * 2);
    for e in events {
        assert_eq!(e.get("ph").and_then(json::Json::as_str), Some("X"));
    }
}

/// Worker assignment and span timings vary run to run; the *content* of a
/// trace (stage sequence, events, decision) must not.
fn sanitized(mut trace: TxProvenance) -> TxProvenance {
    trace.worker = 0;
    for span in &mut trace.spans {
        span.start_ns = 0;
        span.end_ns = 0;
    }
    trace
}

#[test]
fn harvest_finance_trace_matches_golden_snapshot() {
    let update = common::update_golden();
    let (attacks, recorder, _, _) = traced_corpus();
    let harvest = attacks
        .iter()
        .find(|a| a.spec.name == "Harvest Finance")
        .expect("corpus has Harvest Finance");
    let trace = recorder.find(harvest.tx).expect("trace recorded");
    assert!(trace.decision.flagged, "Harvest Finance is detected");

    // Pretty-print the sanitized single-line export so snapshot diffs are
    // readable line by line.
    let compact = export_json(&sanitized(trace));
    let mut rendered = String::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for c in compact.chars() {
        if in_str {
            rendered.push(c);
            match c {
                '\\' if !escaped => escaped = true,
                '"' if !escaped => in_str = false,
                _ => escaped = false,
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                rendered.push(c);
            }
            '{' | '[' => {
                depth += 1;
                rendered.push(c);
                rendered.push('\n');
                rendered.push_str(&"  ".repeat(depth));
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                rendered.push('\n');
                rendered.push_str(&"  ".repeat(depth));
                rendered.push(c);
            }
            ',' => {
                rendered.push(c);
                rendered.push('\n');
                rendered.push_str(&"  ".repeat(depth));
            }
            _ => rendered.push(c),
        }
    }
    rendered.push('\n');

    let path = common::tests_dir("golden_trace").join("05_harvest_finance.json");
    if update {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden_trace");
        std::fs::write(&path, &rendered).expect("write trace snapshot");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("snapshot missing; generate with UPDATE_GOLDEN=1 cargo test --test trace");
    assert_eq!(
        golden, rendered,
        "Harvest Finance provenance drifted; if intentional, regenerate with \
         UPDATE_GOLDEN=1 and review the diff"
    );
}

/// Two independently built worlds produce identical sanitized traces —
/// the snapshot above is stable by construction, not by luck.
#[test]
fn sanitized_traces_are_deterministic_across_worlds() {
    let render = || {
        let (_, recorder, _, _) = traced_corpus();
        recorder
            .traces()
            .into_iter()
            .map(|t| export_json(&sanitized(t)))
            .collect::<Vec<_>>()
    };
    assert_eq!(render(), render());
}

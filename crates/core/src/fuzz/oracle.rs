//! The differential oracle: four pipeline configurations, one verdict.
//!
//! Every mutant is analyzed by (1) a serial reference loop over
//! [`LeiShen::analyze`], (2) a 4-worker parallel scan, (3) the same scan
//! with the metrics sink recording, and (4) with the flight recorder
//! tracing. The instrumented paths are zero-cost abstractions that claim
//! to be observation-only — the oracle is the generative check of that
//! claim. The serial verdicts are then checked against the per-transaction
//! expectations (ground-truth flag, pinned flash-loan bit and pattern
//! kinds).

use crate::config::DetectorConfig;
use crate::detector::{Analysis, LeiShen};
use crate::patterns::PatternKind;
use crate::scan::{ScanEngine, TagCache};
use crate::telemetry::RecordingSink;
use crate::trace::FlightRecorder;

use super::{CaseVerdict, FuzzCase, Mutant, TxExpect};

/// Display names of the four configurations, in run order. The serial
/// loop is the reference the other three are diffed against.
pub const CONFIG_NAMES: [&str; 4] = ["serial", "parallel", "metered", "traced"];

/// An oracle failure: either two configurations disagreed, or the
/// reference verdict contradicts a transaction's expectation.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Configuration `config` produced a different analysis than the
    /// serial reference for the transaction at `tx_index`.
    ConfigDisagreement {
        /// Which configuration disagreed (one of [`CONFIG_NAMES`]).
        config: &'static str,
        /// Index into the case's transaction list.
        tx_index: usize,
    },
    /// The detector's flag contradicts the ground-truth expectation.
    WrongFlag {
        /// Index into the case's transaction list.
        tx_index: usize,
        /// Ground-truth expectation.
        expected: bool,
        /// What the detector said.
        got: CaseVerdict,
    },
    /// Flash-loan identification contradicts a pinned expectation.
    WrongLoan {
        /// Index into the case's transaction list.
        tx_index: usize,
        /// Pinned expectation.
        expected: bool,
        /// Whether a flash loan was identified.
        got: bool,
    },
    /// Matched pattern kinds contradict a pinned expectation.
    WrongKinds {
        /// Index into the case's transaction list.
        tx_index: usize,
        /// Pinned sorted kinds.
        expected: Vec<PatternKind>,
        /// Observed sorted kinds.
        got: Vec<PatternKind>,
    },
}

impl Violation {
    /// Stable machine-readable code; the shrinker reduces while the
    /// *same code* keeps reproducing (so it cannot wander from, say, a
    /// parallel-divergence bug to an unrelated expectation failure).
    pub fn code(&self) -> &'static str {
        match self {
            Violation::ConfigDisagreement { .. } => "config_disagreement",
            Violation::WrongFlag { .. } => "wrong_flag",
            Violation::WrongLoan { .. } => "wrong_loan",
            Violation::WrongKinds { .. } => "wrong_kinds",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::ConfigDisagreement { config, tx_index } => {
                write!(f, "config {config} disagrees with serial reference at tx #{tx_index}")
            }
            Violation::WrongFlag { tx_index, expected, got } => write!(
                f,
                "tx #{tx_index}: expected flagged={expected}, got flagged={} \
                 (flash_loan={}, kinds={:?})",
                got.flagged, got.flash_loan, got.kinds
            ),
            Violation::WrongLoan { tx_index, expected, got } => {
                write!(f, "tx #{tx_index}: expected flash_loan={expected}, got {got}")
            }
            Violation::WrongKinds { tx_index, expected, got } => {
                write!(f, "tx #{tx_index}: expected kinds {expected:?}, got {got:?}")
            }
        }
    }
}

/// The four-configuration differential oracle.
pub struct DiffOracle {
    detector: LeiShen,
    engine: ScanEngine,
}

impl DiffOracle {
    /// Builds an oracle around a detector configuration. The parallel
    /// engine uses 4 workers with a small chunk size (oversubscription
    /// allowed) so work-stealing interleavings actually vary.
    pub fn new(config: DetectorConfig) -> Self {
        DiffOracle {
            detector: LeiShen::new(config),
            engine: ScanEngine::new(4).with_chunk_size(4).allow_oversubscription(),
        }
    }

    /// The detector under test.
    pub fn detector(&self) -> &LeiShen {
        &self.detector
    }

    /// Runs all four configurations over `case` and cross-checks them.
    /// Returns the serial reference analyses on agreement.
    pub fn analyses(&self, case: &FuzzCase) -> Result<Vec<Analysis>, Violation> {
        let view = case.view();
        let records = case.records();
        let serial: Vec<Analysis> =
            records.iter().map(|r| self.detector.analyze(r, &view)).collect();

        let parallel = self.engine.scan_with_cache(&self.detector, &records, &view, &TagCache::new());
        diff("parallel", &serial, &parallel)?;

        let sink = RecordingSink::new();
        let metered =
            self.engine.scan_metered(&self.detector, &records, &view, &TagCache::new(), &sink);
        diff("metered", &serial, &metered)?;

        let recorder = FlightRecorder::with_capacity(64);
        let traced =
            self.engine.scan_traced(&self.detector, &records, &view, &TagCache::new(), &recorder);
        diff("traced", &serial, &traced)?;

        Ok(serial)
    }

    /// Runs the four configurations and checks the reference verdicts
    /// against `expect` (one entry per transaction). Returns the verdicts
    /// on success.
    ///
    /// # Panics
    /// Panics if `expect.len() != case.txs.len()`.
    pub fn check(&self, case: &FuzzCase, expect: &[TxExpect]) -> Result<Vec<CaseVerdict>, Violation> {
        assert_eq!(expect.len(), case.txs.len(), "one expectation per transaction");
        let analyses = self.analyses(case)?;
        let verdicts: Vec<CaseVerdict> = analyses.iter().map(CaseVerdict::of).collect();
        for (tx_index, (v, e)) in verdicts.iter().zip(expect).enumerate() {
            if v.flagged != e.flagged {
                return Err(Violation::WrongFlag {
                    tx_index,
                    expected: e.flagged,
                    got: v.clone(),
                });
            }
            if let Some(loan) = e.flash_loan {
                if v.flash_loan != loan {
                    return Err(Violation::WrongLoan {
                        tx_index,
                        expected: loan,
                        got: v.flash_loan,
                    });
                }
            }
            if let Some(kinds) = &e.kinds {
                if &v.kinds != kinds {
                    return Err(Violation::WrongKinds {
                        tx_index,
                        expected: kinds.clone(),
                        got: v.kinds.clone(),
                    });
                }
            }
        }
        Ok(verdicts)
    }

    /// Checks a mutant (case + expectations in one value).
    pub fn check_mutant(&self, mutant: &Mutant) -> Result<Vec<CaseVerdict>, Violation> {
        self.check(&mutant.case, &mutant.expect)
    }
}

/// First index where `got` differs from the serial reference.
fn diff(config: &'static str, serial: &[Analysis], got: &[Analysis]) -> Result<(), Violation> {
    if serial.len() != got.len() {
        return Err(Violation::ConfigDisagreement { config, tx_index: serial.len().min(got.len()) });
    }
    for (tx_index, (a, b)) in serial.iter().zip(got).enumerate() {
        if a != b {
            return Err(Violation::ConfigDisagreement { config, tx_index });
        }
    }
    Ok(())
}

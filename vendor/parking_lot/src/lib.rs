//! Offline stand-in for `parking_lot`.
//!
//! Thin veneers over `std::sync` primitives exposing the poison-free
//! `parking_lot` calling convention (`lock()`/`read()`/`write()` return
//! guards directly). A poisoned std lock is recovered rather than
//! propagated — matching `parking_lot`, which has no poisoning at all.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires a shared read guard without blocking, or `None` if a
    /// writer holds (or is waiting for) the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard without blocking, or `None` if
    /// the lock is held.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_variants_yield_while_held() {
        let l = RwLock::new(0);
        {
            let _r = l.read();
            assert!(l.try_read().is_some());
            assert!(l.try_write().is_none());
        }
        {
            let w = l.try_write();
            assert!(w.is_some());
            assert!(l.try_read().is_none());
        }
        assert!(l.try_read().is_some());
    }
}

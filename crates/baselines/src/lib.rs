//! # leishen-baselines — the detectors LeiShen is compared against
//!
//! The paper's Table IV evaluates three detectors on the 22 known
//! flpAttacks; this crate implements the two competitors (LeiShen itself
//! lives in the `leishen` crate), plus the price-volatility monitor of Xue
//! et al. discussed in §I/§VIII:
//!
//! * [`defiranger`] — DeFiRanger (Wu et al.): detects price manipulation
//!   from **account-level** transfers with **two-trade** pump/dump
//!   patterns. It performs no application-level conversion, so any
//!   intermediary (a router hop, a desk-financed trade) breaks transfer
//!   adjacency and hides the trade — the failure mode the paper calls out
//!   ("it cannot detect some key trade actions, e.g. the trade between bZx
//!   and Uniswap"), and it cannot relate different accounts of the same
//!   application.
//! * [`explorer`] — Explorer+LeiShen: extracts trades **from event logs
//!   only** (Etherscan/BscScan "transaction action" style) and feeds them
//!   to LeiShen's pattern matchers. Protocols that do not emit trade
//!   events are invisible, which is why this combination found only 4 of
//!   22 known attacks.
//! * [`volatility`] — a Xue-et-al.-style monitor that flags a flash-loan
//!   transaction when some pair's intra-transaction price volatility
//!   exceeds a threshold; it structurally misses low-volatility attacks
//!   like Harvest Finance (0.5%).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod defiranger;
pub mod explorer;
pub mod volatility;

pub use defiranger::DefiRanger;
pub use explorer::ExplorerLeiShen;
pub use volatility::VolatilityMonitor;

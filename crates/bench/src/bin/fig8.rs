//! Regenerates **Fig. 8**: monthly *unknown* flpAttacks detected in the
//! wild (first attack June 2020; surge Aug 2020 – Feb 2021; 2020 average
//! 6.5/month vs 2021's 4.3/month).
//!
//! ```sh
//! cargo run -p leishen-bench --bin fig8
//! ```

use std::collections::BTreeMap;

use ethsim::calendar::MonthIndex;
use leishen::{DetectorConfig, LeiShen};
use leishen_bench::{cli_f64, cli_u64, wild_world};

fn main() {
    let seed = cli_u64("--seed", 42);
    let scale = cli_f64("--scale", 0.002);
    eprintln!("generating corpus (seed={seed}, scale={scale})...");
    let (world, corpus) = wild_world(seed, scale);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());

    let mut monthly: BTreeMap<MonthIndex, usize> = BTreeMap::new();
    for gtx in corpus.iter().filter(|t| t.class.is_attack() && !t.known) {
        let record = world.chain.replay(gtx.tx).expect("recorded");
        if detector.analyze(record, &view).is_attack() {
            *monthly.entry(gtx.month).or_insert(0) += 1;
        }
    }

    println!("Fig. 8 — monthly unknown flpAttacks detected\n");
    let max = monthly.values().max().copied().unwrap_or(1).max(1);
    for (month, n) in &monthly {
        println!("{:<8} {:>3}  {}", month.label(), n, "#".repeat(n * 50 / max));
    }
    let year_sum = |y: i32| -> usize {
        monthly
            .iter()
            .filter(|(m, _)| m.0.div_euclid(12) == y)
            .map(|(_, n)| n)
            .sum()
    };
    let y2020 = year_sum(2020);
    let y2021 = year_sum(2021);
    println!("\n2020: {} attacks over 7 active months (avg {:.1}/mo; paper 6.5)", y2020, y2020 as f64 / 7.0);
    println!("2021: {} attacks (avg {:.1}/mo; paper 4.3)", y2021, y2021 as f64 / 12.0);
    println!("total unknown attacks: {} (paper: 109)", monthly.values().sum::<usize>());
}

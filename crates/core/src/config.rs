//! Detector configuration — every threshold the paper names, in one place.
//!
//! Defaults are the paper's published values; the §VII limitations
//! discussion ("If we set these parameters in a more relaxed way, e.g.,
//! considering a KRP attack with at least three buy trades instead of five,
//! the number of detected flpAttacks would be higher… however, the false
//! positive rate would increase") is reproduced by the `ablation` bench,
//! which sweeps these fields.

use serde::{Deserialize, Serialize};

/// Thresholds and tolerances of the LeiShen pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Minimum number of buy trades in a KRP series (paper: `N ≥ 5`,
    /// "the minimum value in real-world flpAttacks conforming to this
    /// attack pattern").
    pub krp_min_buys: usize,
    /// Minimum price volatility between the SBS buy legs (paper: 28%,
    /// expressed as a fraction: 0.28).
    pub sbs_min_volatility: f64,
    /// Relative tolerance when matching `trade₁.amountBuy =
    /// trade₃.amountSell` in SBS (real attacks resell exactly what they
    /// bought; a small tolerance absorbs token transfer-fee dust).
    pub sbs_amount_tolerance: f64,
    /// Minimum number of buy/sell rounds in an MBS series (paper: `N ≥ 3`).
    pub mbs_min_rounds: usize,
    /// Maximum relative amount difference for merging inter-app transfers
    /// (paper: "we set the difference in the number of assets between
    /// inter-app transfers to be less than 0.1%").
    pub merge_tolerance: f64,
    /// **Experimental, off by default**: enable the Keep Dumping Price
    /// (KDP) pattern — dump-then-cheap-rebuy, the §VII future-work
    /// direction (would classify MY FARM PET). Never enabled in the
    /// paper-reproduction figures.
    pub experimental_kdp: bool,
    /// Minimum relative price drop between the dump and the rebuy for KDP
    /// (fraction; 0.5 = the rebuy must be at least 50% cheaper).
    pub kdp_min_drop: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            krp_min_buys: 5,
            sbs_min_volatility: 0.28,
            sbs_amount_tolerance: 0.001,
            mbs_min_rounds: 3,
            merge_tolerance: 0.001,
            experimental_kdp: false,
            kdp_min_drop: 0.5,
        }
    }
}

impl DetectorConfig {
    /// The paper's published configuration (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// The §VII "relaxed" configuration: KRP accepts 3 buys — more
    /// detections, more false positives.
    pub fn relaxed() -> Self {
        DetectorConfig {
            krp_min_buys: 3,
            sbs_min_volatility: 0.10,
            mbs_min_rounds: 2,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DetectorConfig::default();
        assert_eq!(c.krp_min_buys, 5);
        assert!((c.sbs_min_volatility - 0.28).abs() < 1e-12);
        assert_eq!(c.mbs_min_rounds, 3);
        assert!((c.merge_tolerance - 0.001).abs() < 1e-12);
        assert_eq!(c, DetectorConfig::paper());
    }

    #[test]
    fn relaxed_is_looser_everywhere() {
        let r = DetectorConfig::relaxed();
        let p = DetectorConfig::paper();
        assert!(r.krp_min_buys < p.krp_min_buys);
        assert!(r.sbs_min_volatility < p.sbs_min_volatility);
        assert!(r.mbs_min_rounds < p.mbs_min_rounds);
    }
}
